// Golden-file determinism for the IR-centred backend pipeline: compiling
// the same program twice must produce byte-identical Tydi-IR text and VHDL
// (the IR is the backend contract — any nondeterminism in lowering, symbol
// indexing or emission order shows up here). Plus DRC rule coverage driven
// through the new IR path (drc::check consumes ir::Module directly) and the
// fletchgen reader manifest recovered from the IR.
#include <gtest/gtest.h>

#include "src/drc/drc.hpp"
#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/ir/ir.hpp"
#include "src/support/intern.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

// The quickstart example's design (paper Sec. IV-B adder interface).
constexpr std::string_view kQuickstart = R"tydi(
Group AdderInput {
  data0: Bit(32),
  data1: Bit(32),
}
type Input = Stream(AdderInput, d=1, c=2);

Group Bit32Result {
  data: Bit(32),
  overflow: Bit(1),
}
type Result = Stream(Bit32Result, d=1, c=2);

streamlet adder_top_s {
  operands: Input in,
  sum: Result out,
}

impl adder_top of adder_top_s {
  instance add(adder_i<type Input, type Result>),
  operands => add.in_,
  add.out => sum,
}
)tydi";

// The pipeline_chain example shape: a chain of identical template stages.
constexpr std::string_view kPipelineChain = R"tydi(
type t_word = Stream(Bit(16), d=1, c=2);

streamlet stage_s { in_: t_word in, out: t_word out, }
impl stage of stage_s @ external { }

streamlet chain_s { feed: t_word in, result: t_word out, }
impl chain_top of chain_s {
  instance st(stage) [3],
  feed => st[0].in_,
  for i in 0->2 {
    st[i].out => st[i + 1].in_,
  }
  st[2].out => result,
}
)tydi";

driver::CompileResult compile_text(std::string_view source,
                                   const std::string& top) {
  driver::CompileOptions options;
  options.top = top;
  return driver::compile_source(std::string(source), options);
}

TEST(IrGolden, QuickstartDeterministic) {
  auto a = compile_text(kQuickstart, "adder_top");
  auto b = compile_text(kQuickstart, "adder_top");
  ASSERT_TRUE(a.success()) << a.report();
  EXPECT_FALSE(a.ir_text.empty());
  EXPECT_FALSE(a.vhdl_text.empty());
  EXPECT_EQ(a.ir_text, b.ir_text);
  EXPECT_EQ(a.vhdl_text, b.vhdl_text);
}

TEST(IrGolden, PipelineChainDeterministic) {
  auto a = compile_text(kPipelineChain, "chain_top");
  auto b = compile_text(kPipelineChain, "chain_top");
  ASSERT_TRUE(a.success()) << a.report();
  EXPECT_EQ(a.ir_text, b.ir_text);
  EXPECT_EQ(a.vhdl_text, b.vhdl_text);
}

TEST(IrGolden, AllTpchQueriesDeterministic) {
  for (const tpch::QueryCase& q : tpch::queries()) {
    auto a = tpch::compile_query(q);
    auto b = tpch::compile_query(q);
    ASSERT_TRUE(a.success()) << q.id << q.note << "\n" << a.report();
    EXPECT_EQ(a.ir_text, b.ir_text) << q.id << q.note;
    EXPECT_EQ(a.vhdl_text, b.vhdl_text) << q.id << q.note;
  }
}

// ---------------------------------------------------------------------------
// Cross-compile template memo (driver::CompileSession): a warm compile —
// served by the process-wide memo and the parse cache — must be
// byte-identical to the cold compile and to a standalone driver::compile.
// ---------------------------------------------------------------------------

TEST(IrGolden, SessionColdVsWarmByteIdentical) {
  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  driver::CompileSession session;
  auto cold = tpch::compile_query(*q6, session);
  ASSERT_TRUE(cold.success()) << cold.report();
  EXPECT_EQ(cold.template_cache.session_hits(), 0u);

  auto warm = tpch::compile_query(*q6, session);
  ASSERT_TRUE(warm.success()) << warm.report();
  // The second compile is served by the memo (top impl replays its whole
  // insertion window) and must reproduce the IR and VHDL byte for byte.
  EXPECT_GT(warm.template_cache.session_hits(), 0u);
  EXPECT_EQ(warm.template_cache.misses(), 0u);
  EXPECT_EQ(cold.ir_text, warm.ir_text);
  EXPECT_EQ(cold.vhdl_text, warm.vhdl_text);

  // And both match a session-less compile exactly.
  auto plain = tpch::compile_query(*q6);
  EXPECT_EQ(plain.ir_text, cold.ir_text);
  EXPECT_EQ(plain.vhdl_text, cold.vhdl_text);
}

TEST(IrGolden, SessionWarmBatchMatchesColdForAllTpchQueries) {
  driver::CompileSession session;
  std::vector<std::pair<std::string, std::string>> cold_texts;
  for (const tpch::QueryCase& q : tpch::queries()) {
    auto r = tpch::compile_query(q, session);
    ASSERT_TRUE(r.success()) << q.id << q.note << "\n" << r.report();
    cold_texts.emplace_back(r.ir_text, r.vhdl_text);
  }
  std::size_t i = 0;
  for (const tpch::QueryCase& q : tpch::queries()) {
    auto r = tpch::compile_query(q, session);
    ASSERT_TRUE(r.success()) << q.id << q.note << "\n" << r.report();
    EXPECT_EQ(r.ir_text, cold_texts[i].first) << q.id << q.note;
    EXPECT_EQ(r.vhdl_text, cold_texts[i].second) << q.id << q.note;
    ++i;
  }
  EXPECT_GT(session.memo().stats().impl_hits, 0u);
}

TEST(IrGolden, SessionMemoInvalidatesOnSourceChange) {
  // Same session, same file name and id, different content: the stamped
  // memo entries must not serve the stale elaboration.
  const std::string a = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s { a => b, }
)";
  std::string b = a;
  const std::string needle = "Bit(8)";
  b.replace(b.find(needle), needle.size(), "Bit(16)");

  driver::CompileOptions options;
  options.top = "top";
  driver::CompileSession session;
  auto ra = session.compile({{"input.td", a}}, options);
  ASSERT_TRUE(ra.success()) << ra.report();
  auto rb = session.compile({{"input.td", b}}, options);
  ASSERT_TRUE(rb.success()) << rb.report();
  EXPECT_NE(ra.vhdl_text, rb.vhdl_text);
  EXPECT_NE(rb.vhdl_text.find("std_logic_vector(15 downto 0)"),
            std::string::npos);
  // Flip back: the replaced entry must not leak the Bit(16) elaboration.
  auto ra2 = session.compile({{"input.td", a}}, options);
  ASSERT_TRUE(ra2.success()) << ra2.report();
  EXPECT_EQ(ra.vhdl_text, ra2.vhdl_text);
  EXPECT_EQ(ra.ir_text, ra2.ir_text);
  // Explicit invalidation drops every cache.
  session.invalidate();
  EXPECT_EQ(session.memo().impl_count(), 0u);
  EXPECT_EQ(session.parse_cache_size(), 0u);
  auto ra3 = session.compile({{"input.td", a}}, options);
  EXPECT_EQ(ra3.template_cache.session_hits(), 0u);
  EXPECT_EQ(ra.vhdl_text, ra3.vhdl_text);
}

TEST(IrGolden, SessionMemoInvalidatesOnCrossFileDependencyChange) {
  // The decl's own file is unchanged; the file defining the type it
  // resolves changes. Dependency stamps must reject the memo entry — a
  // session compile stays byte-identical to a sessionless compile.
  const std::string types_v1 = "type t = Stream(Bit(8), d=1, c=2);\n";
  const std::string types_v2 = "type t = Stream(Bit(16), d=1, c=2);\n";
  const std::string design = R"(
streamlet s { a: t in, b: t out, }
impl top of s { a => b, }
)";
  driver::CompileOptions options;
  options.top = "top";
  driver::CompileSession session;
  auto v1 = session.compile(
      {{"types.td", types_v1}, {"design.td", design}}, options);
  ASSERT_TRUE(v1.success()) << v1.report();
  auto v2 = session.compile(
      {{"types.td", types_v2}, {"design.td", design}}, options);
  ASSERT_TRUE(v2.success()) << v2.report();
  EXPECT_NE(v2.vhdl_text.find("std_logic_vector(15 downto 0)"),
            std::string::npos)
      << "stale memo entry served after a cross-file type edit";
  auto plain = driver::compile(
      {{"types.td", types_v2}, {"design.td", design}}, options);
  EXPECT_EQ(plain.vhdl_text, v2.vhdl_text);
  EXPECT_EQ(plain.ir_text, v2.ir_text);

  // Same shape for a cross-file *constant* edit.
  const std::string consts_v1 = "const w = 8;\n";
  const std::string consts_v2 = "const w = 24;\n";
  const std::string const_design = R"(
streamlet cs { a: Stream(Bit(w), d=1, c=2) in, b: Stream(Bit(w), d=1, c=2) out, }
impl ctop of cs { a => b, }
)";
  options.top = "ctop";
  auto c1 = session.compile(
      {{"consts.td", consts_v1}, {"design.td", const_design}}, options);
  ASSERT_TRUE(c1.success()) << c1.report();
  auto c2 = session.compile(
      {{"consts.td", consts_v2}, {"design.td", const_design}}, options);
  ASSERT_TRUE(c2.success()) << c2.report();
  EXPECT_NE(c2.vhdl_text.find("std_logic_vector(23 downto 0)"),
            std::string::npos)
      << "stale memo entry served after a cross-file constant edit";
}

TEST(IrGolden, SessionMemoHandlesSharedChildrenAcrossDifferentTops) {
  // Compile 1 (top1) elaborates wz before wy; the shared child `leaf`
  // enters the design through wz, so wy's memoized insertion window lacks
  // it. Compile 2 (top2) reaches wy first: the memo must refuse the hit
  // (missing precondition) and re-elaborate, matching a cold compile.
  const std::string source = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet leaf_s { a: t in, b: t out, }
impl leaf of leaf_s @ external { }
streamlet wrap_s { a: t in, b: t out, }
impl wz of wrap_s { instance c(leaf), a => c.a, c.b => b, }
impl wy of wrap_s { instance c(leaf), a => c.a, c.b => b, }
streamlet top_s { a: t in, a2: t in, b: t out, b2: t out, }
impl top1 of top_s {
  instance z(wz),
  instance y(wy),
  a => z.a, a2 => y.a, z.b => b, y.b => b2,
}
streamlet top2_s { a: t in, b: t out, }
impl top2 of top2_s { instance y(wy), a => y.a, y.b => b, }
)";
  driver::CompileSession session;
  driver::CompileOptions o1;
  o1.top = "top1";
  auto r1 = session.compile({{"input.td", source}}, o1);
  ASSERT_TRUE(r1.success()) << r1.report();
  driver::CompileOptions o2;
  o2.top = "top2";
  auto r2 = session.compile({{"input.td", source}}, o2);
  ASSERT_TRUE(r2.success()) << r2.report();
  auto plain = driver::compile({{"input.td", source}}, o2);
  EXPECT_EQ(plain.ir_text, r2.ir_text);
  EXPECT_EQ(plain.vhdl_text, r2.vhdl_text);
}

TEST(IrGolden, SessionMemoTracksTransitiveConstChains) {
  // w2 in consts_b.td is baked from base in consts_a.td; editing only
  // consts_a.td must still invalidate entries that read w2.
  const std::string a_v1 = "const base = 8;\n";
  const std::string a_v2 = "const base = 16;\n";
  const std::string b = "const w2 = base * 2;\n";
  const std::string design = R"(
streamlet s { a: Stream(Bit(w2), d=1, c=2) in, b: Stream(Bit(w2), d=1, c=2) out, }
impl top of s { a => b, }
)";
  driver::CompileOptions options;
  options.top = "top";
  driver::CompileSession session;
  auto r1 = session.compile(
      {{"consts_a.td", a_v1}, {"consts_b.td", b}, {"design.td", design}},
      options);
  ASSERT_TRUE(r1.success()) << r1.report();
  auto r2 = session.compile(
      {{"consts_a.td", a_v2}, {"consts_b.td", b}, {"design.td", design}},
      options);
  ASSERT_TRUE(r2.success()) << r2.report();
  EXPECT_NE(r2.vhdl_text.find("std_logic_vector(31 downto 0)"),
            std::string::npos)
      << "stale memo entry: transitive const chain not invalidated";
}

TEST(IrGolden, SessionMemoTracksNestedTypeAliasChains) {
  // `t` in types_b.td aliases `ft` in types_a.td. The second streamlet
  // resolves `t` through the per-compile type cache — its entry must still
  // depend on types_a.td.
  const std::string a_v1 = "type ft = Stream(Bit(8), d=1, c=2);\n";
  const std::string a_v2 = "type ft = Stream(Bit(16), d=1, c=2);\n";
  const std::string b = "type t = ft;\n";
  const std::string design = R"(
streamlet s1 { a: t in, b: t out, }
impl i1 of s1 { a => b, }
streamlet s2 { a: t in, b: t out, }
impl i2 of s2 { a => b, }
streamlet top_s { a: t in, a2: t in, b: t out, b2: t out, }
impl top1 of top_s {
  instance x(i1),
  instance y(i2),
  a => x.a, a2 => y.a, x.b => b, y.b => b2,
}
streamlet top2_s { a: t in, b: t out, }
impl top2 of top2_s { instance y(i2), a => y.a, y.b => b, }
)";
  driver::CompileSession session;
  driver::CompileOptions o1;
  o1.top = "top1";
  auto r1 = session.compile(
      {{"types_a.td", a_v1}, {"types_b.td", b}, {"design.td", design}}, o1);
  ASSERT_TRUE(r1.success()) << r1.report();
  driver::CompileOptions o2;
  o2.top = "top2";
  auto r2 = session.compile(
      {{"types_a.td", a_v2}, {"types_b.td", b}, {"design.td", design}}, o2);
  ASSERT_TRUE(r2.success()) << r2.report();
  EXPECT_NE(r2.vhdl_text.find("std_logic_vector(15 downto 0)"),
            std::string::npos)
      << "stale memo entry: nested type alias chain not invalidated";
  auto plain = driver::compile(
      {{"types_a.td", a_v2}, {"types_b.td", b}, {"design.td", design}}, o2);
  EXPECT_EQ(plain.vhdl_text, r2.vhdl_text);
}

TEST(IrGolden, CompileBatchRunsTheWholeWorkload) {
  driver::CompileSession session;
  const std::vector<driver::BatchJob> jobs = tpch::batch_jobs();
  driver::BatchResult cold = driver::compile_batch(session, jobs);
  EXPECT_TRUE(cold.success()) << cold.render();
  EXPECT_EQ(cold.entries.size(), tpch::queries().size());
  EXPECT_GT(cold.bytes_emitted, 0u);

  driver::BatchResult warm = driver::compile_batch(session, jobs);
  EXPECT_TRUE(warm.success()) << warm.render();
  EXPECT_EQ(warm.bytes_emitted, cold.bytes_emitted);
  // Warm batch is memo-served: strictly better cache behaviour.
  EXPECT_GT(warm.template_cache.session_hits(), 0u);
  EXPECT_GT(warm.template_cache.hit_rate(), cold.template_cache.hit_rate());
  EXPECT_GE(warm.template_cache.hit_rate(), 0.9);
  // Rendered report carries per-query rows plus the aggregate.
  const std::string report = warm.render();
  EXPECT_NE(report.find("TPC-H 6"), std::string::npos);
  EXPECT_NE(report.find("(aggregate)"), std::string::npos);
}

TEST(IrGolden, ReEmittingTheStoredModuleIsStable) {
  auto result = compile_text(kQuickstart, "adder_top");
  ASSERT_TRUE(result.success()) << result.report();
  // Emitting the module again (and re-lowering the design) reproduces the
  // text byte for byte.
  EXPECT_EQ(ir::emit(result.ir), result.ir_text);
  EXPECT_EQ(ir::emit(ir::lower(result.design)), result.ir_text);
}

// ---------------------------------------------------------------------------
// DRC rules driven directly through the IR path: lower the design, run
// drc::check on the module, and read the per-rule counts.
// ---------------------------------------------------------------------------

drc::DrcReport check_ir(std::string_view source, const std::string& top,
                        bool sugaring = false) {
  driver::CompileOptions options;
  options.top = top;
  options.sugaring = sugaring;
  options.run_drc = false;  // run the check ourselves on the module
  options.emit_vhdl = false;
  auto result = driver::compile_source(std::string(source), options);
  support::DiagnosticEngine diags;
  return drc::check(result.ir, drc::DrcOptions{}, diags);
}

TEST(DrcViaIr, CleanDesignHasNoViolations) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(DrcViaIr, TypeMismatchReported) {
  auto report = check_ir(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(16), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kTypeEquality), 0u);
}

TEST(DrcViaIr, ClockDomainCrossingReported) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ clk_a, b: t out @ clk_b, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kClockDomain), 0u);
}

TEST(DrcViaIr, DirectionViolationReported) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  b => a,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kDirection), 0u);
}

TEST(DrcViaIr, PortUseCountViolationsReported) {
  // b driven twice, c never driven.
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, a2: t in, b: t out, c: t out, }
impl top of s {
  a => b,
  a2 => b,
}
)",
                         "top");
  EXPECT_GE(report.count(drc::Rule::kPortUseCount), 2u);
}

TEST(DrcViaIr, ResolutionViolationsComeFromEndpointStatus) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => nosuch.in_,
  a => missing_port,
}
)",
                         "top");
  EXPECT_GE(report.count(drc::Rule::kResolution), 2u);
}

TEST(DrcViaIr, HandBuiltModuleChecksWithoutElaboration) {
  // The DRC consumes ir::Module directly — a module assembled by hand (no
  // elab::Design anywhere) is checkable too.
  ir::Module m;
  ir::IrStreamlet s;
  s.sym = support::intern("hand_s");
  s.name = "hand_s";
  s.display_name = "hand_s";
  ir::IrPort p;
  p.sym = support::intern("a");
  p.name = "a";
  p.vhdl = "a";
  p.dir = lang::PortDir::kIn;
  p.clock_domain = "default";
  p.clock_sym = support::intern("default");
  s.ports.push_back(std::move(p));
  m.streamlets.push_back(std::move(s));

  ir::IrImpl impl;
  impl.sym = support::intern("hand_i");
  impl.name = "hand_i";
  impl.display_name = "hand_i";
  impl.streamlet_sym = support::intern("hand_s");
  impl.streamlet = 0;
  m.impls.push_back(std::move(impl));
  m.rebuild_index();

  support::DiagnosticEngine diags;
  auto report = drc::check(m, drc::DrcOptions{}, diags);
  // Source port `a` is never used -> exactly one R2 violation.
  EXPECT_EQ(report.count(drc::Rule::kPortUseCount), 1u);
}

// ---------------------------------------------------------------------------
// Fletchgen as an IR consumer: reader interfaces are recovered from the
// lowered module, not from a re-traversal of the elaborated design.
// ---------------------------------------------------------------------------

TEST(FletchgenViaIr, RecoversReadersFromLoweredTpchQuery) {
  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  auto result = tpch::compile_query(*q6);
  ASSERT_TRUE(result.success()) << result.report();

  auto readers = fletcher::readers_of(result.ir);
  ASSERT_FALSE(readers.empty());
  bool found_lineitem = false;
  for (const fletcher::ReaderInfo& r : readers) {
    if (r.table == "lineitem") {
      found_lineitem = true;
      EXPECT_FALSE(r.ports.empty());
      for (const fletcher::ReaderPort& p : r.ports) {
        EXPECT_GT(p.data_bits, 0) << p.column;
      }
    }
  }
  EXPECT_TRUE(found_lineitem);

  std::string manifest = fletcher::generate_reader_manifest(result.ir);
  EXPECT_NE(manifest.find("reader lineitem"), std::string::npos);
  EXPECT_NE(manifest.find("bits="), std::string::npos);
  // Deterministic.
  EXPECT_EQ(manifest, fletcher::generate_reader_manifest(result.ir));
}

}  // namespace
}  // namespace tydi
