// Golden-file determinism for the IR-centred backend pipeline: compiling
// the same program twice must produce byte-identical Tydi-IR text and VHDL
// (the IR is the backend contract — any nondeterminism in lowering, symbol
// indexing or emission order shows up here). Plus DRC rule coverage driven
// through the new IR path (drc::check consumes ir::Module directly) and the
// fletchgen reader manifest recovered from the IR.
#include <gtest/gtest.h>

#include "src/drc/drc.hpp"
#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/ir/ir.hpp"
#include "src/support/intern.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

// The quickstart example's design (paper Sec. IV-B adder interface).
constexpr std::string_view kQuickstart = R"tydi(
Group AdderInput {
  data0: Bit(32),
  data1: Bit(32),
}
type Input = Stream(AdderInput, d=1, c=2);

Group Bit32Result {
  data: Bit(32),
  overflow: Bit(1),
}
type Result = Stream(Bit32Result, d=1, c=2);

streamlet adder_top_s {
  operands: Input in,
  sum: Result out,
}

impl adder_top of adder_top_s {
  instance add(adder_i<type Input, type Result>),
  operands => add.in_,
  add.out => sum,
}
)tydi";

// The pipeline_chain example shape: a chain of identical template stages.
constexpr std::string_view kPipelineChain = R"tydi(
type t_word = Stream(Bit(16), d=1, c=2);

streamlet stage_s { in_: t_word in, out: t_word out, }
impl stage of stage_s @ external { }

streamlet chain_s { feed: t_word in, result: t_word out, }
impl chain_top of chain_s {
  instance st(stage) [3],
  feed => st[0].in_,
  for i in 0->2 {
    st[i].out => st[i + 1].in_,
  }
  st[2].out => result,
}
)tydi";

driver::CompileResult compile_text(std::string_view source,
                                   const std::string& top) {
  driver::CompileOptions options;
  options.top = top;
  return driver::compile_source(std::string(source), options);
}

TEST(IrGolden, QuickstartDeterministic) {
  auto a = compile_text(kQuickstart, "adder_top");
  auto b = compile_text(kQuickstart, "adder_top");
  ASSERT_TRUE(a.success()) << a.report();
  EXPECT_FALSE(a.ir_text.empty());
  EXPECT_FALSE(a.vhdl_text.empty());
  EXPECT_EQ(a.ir_text, b.ir_text);
  EXPECT_EQ(a.vhdl_text, b.vhdl_text);
}

TEST(IrGolden, PipelineChainDeterministic) {
  auto a = compile_text(kPipelineChain, "chain_top");
  auto b = compile_text(kPipelineChain, "chain_top");
  ASSERT_TRUE(a.success()) << a.report();
  EXPECT_EQ(a.ir_text, b.ir_text);
  EXPECT_EQ(a.vhdl_text, b.vhdl_text);
}

TEST(IrGolden, AllTpchQueriesDeterministic) {
  for (const tpch::QueryCase& q : tpch::queries()) {
    auto a = tpch::compile_query(q);
    auto b = tpch::compile_query(q);
    ASSERT_TRUE(a.success()) << q.id << q.note << "\n" << a.report();
    EXPECT_EQ(a.ir_text, b.ir_text) << q.id << q.note;
    EXPECT_EQ(a.vhdl_text, b.vhdl_text) << q.id << q.note;
  }
}

TEST(IrGolden, ReEmittingTheStoredModuleIsStable) {
  auto result = compile_text(kQuickstart, "adder_top");
  ASSERT_TRUE(result.success()) << result.report();
  // Emitting the module again (and re-lowering the design) reproduces the
  // text byte for byte.
  EXPECT_EQ(ir::emit(result.ir), result.ir_text);
  EXPECT_EQ(ir::emit(ir::lower(result.design)), result.ir_text);
}

// ---------------------------------------------------------------------------
// DRC rules driven directly through the IR path: lower the design, run
// drc::check on the module, and read the per-rule counts.
// ---------------------------------------------------------------------------

drc::DrcReport check_ir(std::string_view source, const std::string& top,
                        bool sugaring = false) {
  driver::CompileOptions options;
  options.top = top;
  options.sugaring = sugaring;
  options.run_drc = false;  // run the check ourselves on the module
  options.emit_vhdl = false;
  auto result = driver::compile_source(std::string(source), options);
  support::DiagnosticEngine diags;
  return drc::check(result.ir, drc::DrcOptions{}, diags);
}

TEST(DrcViaIr, CleanDesignHasNoViolations) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(DrcViaIr, TypeMismatchReported) {
  auto report = check_ir(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(16), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kTypeEquality), 0u);
}

TEST(DrcViaIr, ClockDomainCrossingReported) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ clk_a, b: t out @ clk_b, }
impl top of s {
  a => b,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kClockDomain), 0u);
}

TEST(DrcViaIr, DirectionViolationReported) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  b => a,
}
)",
                         "top");
  EXPECT_GT(report.count(drc::Rule::kDirection), 0u);
}

TEST(DrcViaIr, PortUseCountViolationsReported) {
  // b driven twice, c never driven.
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, a2: t in, b: t out, c: t out, }
impl top of s {
  a => b,
  a2 => b,
}
)",
                         "top");
  EXPECT_GE(report.count(drc::Rule::kPortUseCount), 2u);
}

TEST(DrcViaIr, ResolutionViolationsComeFromEndpointStatus) {
  auto report = check_ir(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => nosuch.in_,
  a => missing_port,
}
)",
                         "top");
  EXPECT_GE(report.count(drc::Rule::kResolution), 2u);
}

TEST(DrcViaIr, HandBuiltModuleChecksWithoutElaboration) {
  // The DRC consumes ir::Module directly — a module assembled by hand (no
  // elab::Design anywhere) is checkable too.
  ir::Module m;
  ir::IrStreamlet s;
  s.sym = support::intern("hand_s");
  s.name = "hand_s";
  s.display_name = "hand_s";
  ir::IrPort p;
  p.sym = support::intern("a");
  p.name = "a";
  p.vhdl = "a";
  p.dir = lang::PortDir::kIn;
  p.clock_domain = "default";
  p.clock_sym = support::intern("default");
  s.ports.push_back(std::move(p));
  m.streamlets.push_back(std::move(s));

  ir::IrImpl impl;
  impl.sym = support::intern("hand_i");
  impl.name = "hand_i";
  impl.display_name = "hand_i";
  impl.streamlet_sym = support::intern("hand_s");
  impl.streamlet = 0;
  m.impls.push_back(std::move(impl));
  m.rebuild_index();

  support::DiagnosticEngine diags;
  auto report = drc::check(m, drc::DrcOptions{}, diags);
  // Source port `a` is never used -> exactly one R2 violation.
  EXPECT_EQ(report.count(drc::Rule::kPortUseCount), 1u);
}

// ---------------------------------------------------------------------------
// Fletchgen as an IR consumer: reader interfaces are recovered from the
// lowered module, not from a re-traversal of the elaborated design.
// ---------------------------------------------------------------------------

TEST(FletchgenViaIr, RecoversReadersFromLoweredTpchQuery) {
  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  auto result = tpch::compile_query(*q6);
  ASSERT_TRUE(result.success()) << result.report();

  auto readers = fletcher::readers_of(result.ir);
  ASSERT_FALSE(readers.empty());
  bool found_lineitem = false;
  for (const fletcher::ReaderInfo& r : readers) {
    if (r.table == "lineitem") {
      found_lineitem = true;
      EXPECT_FALSE(r.ports.empty());
      for (const fletcher::ReaderPort& p : r.ports) {
        EXPECT_GT(p.data_bits, 0) << p.column;
      }
    }
  }
  EXPECT_TRUE(found_lineitem);

  std::string manifest = fletcher::generate_reader_manifest(result.ir);
  EXPECT_NE(manifest.find("reader lineitem"), std::string::npos);
  EXPECT_NE(manifest.find("bits="), std::string::npos);
  // Deterministic.
  EXPECT_EQ(manifest, fletcher::generate_reader_manifest(result.ir));
}

}  // namespace
}  // namespace tydi
