// Overload and degradation tests for the compile service: admission
// control (queue-full / draining sheds with kUnavailable + retry-after),
// two-class priority ordering, deadline propagation and expiry, client
// disconnect cancellation, graceful drain (verb- and signal-driven), and
// byte-identity of accepted work under saturation. The SLEEP debug verb is
// the deterministic load: it occupies exactly one worker for a known time
// and reports the global execution sequence number, so ordering assertions
// do not depend on compile timings. This binary also runs under TSan in CI
// (sim-shard-tsan) — keep sleeps short.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/service/queue.hpp"
#include "src/service/server.hpp"
#include "src/service/service.hpp"
#include "src/support/retry.hpp"
#include "src/support/status.hpp"

namespace tydi {
namespace {

using support::StatusCode;

/// Polls `pred` every 2ms for up to `ms`; true when it held.
bool wait_until(const std::function<bool()>& pred, double ms = 2000.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Extracts the trailing sequence number from a SLEEP payload
/// ("slept <ms> seq <n>").
std::uint64_t sleep_seq(const std::string& payload) {
  const std::size_t pos = payload.rfind("seq ");
  EXPECT_NE(pos, std::string::npos) << payload;
  return pos == std::string::npos
             ? 0
             : std::stoull(payload.substr(pos + 4));
}

TEST(BoundedPriorityQueue, InteractiveDequeuesBeforeBatch) {
  service::BoundedPriorityQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, service::Priority::kBatch));
  ASSERT_TRUE(q.try_push(2, service::Priority::kInteractive));
  ASSERT_TRUE(q.try_push(3, service::Priority::kBatch));
  ASSERT_TRUE(q.try_push(4, service::Priority::kInteractive));
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 4);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedPriorityQueue, TryPushRespectsCapacityAndClose) {
  service::BoundedPriorityQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, service::Priority::kInteractive));
  EXPECT_TRUE(q.try_push(2, service::Priority::kBatch));
  EXPECT_FALSE(q.try_push(3, service::Priority::kInteractive));  // full
  q.close();
  int out = 0;
  EXPECT_TRUE(q.pop(out));  // queued items survive close
  EXPECT_TRUE(q.pop(out));
  EXPECT_FALSE(q.pop(out));  // closed + empty
  EXPECT_FALSE(q.try_push(4, service::Priority::kInteractive));
}

TEST(ServiceEnvelope, ParsesTokensInAnyOrder) {
  service::RequestEnvelope env;
  std::string error;
  ASSERT_TRUE(service::parse_envelope(
      "DEADLINE_MS 250 PRIO batch ATTEMPT 3 TPCH 6 vhdl", env, error));
  EXPECT_EQ(env.priority, service::Priority::kBatch);
  EXPECT_EQ(env.deadline_ms, 250.0);
  EXPECT_EQ(env.attempt, 3u);
  EXPECT_EQ(env.rest, "TPCH 6 vhdl");

  ASSERT_TRUE(service::parse_envelope("PING", env, error));
  EXPECT_EQ(env.priority, service::Priority::kInteractive);
  EXPECT_EQ(env.deadline_ms, 0.0);
  EXPECT_EQ(env.attempt, 1u);
  EXPECT_EQ(env.rest, "PING");

  EXPECT_FALSE(service::parse_envelope("PRIO wrong PING", env, error));
  EXPECT_FALSE(service::parse_envelope("DEADLINE_MS nope PING", env, error));
  EXPECT_FALSE(service::parse_envelope("DEADLINE_MS -5 PING", env, error));
  EXPECT_FALSE(service::parse_envelope("ATTEMPT 0 PING", env, error));
}

TEST(ServiceEnvelope, MalformedEnvelopeIsInvalidArgument) {
  service::ServiceConfig config;
  config.workers = 1;
  service::CompileService svc(config);
  service::Response r = svc.handle_line("PRIO sideways PING");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.requests_failed(), 1u);
}

TEST(ServiceOverload, ShedsWithRetryAfterWhenQueueFull) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  service::CompileService svc(config);

  // Occupy the single worker, then fill the single queue slot.
  service::PendingRequest running = svc.submit("SLEEP 250");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  service::PendingRequest queued = svc.submit("SLEEP 10");
  ASSERT_EQ(svc.queue_depth(), 1u);

  // Third compile admission sheds immediately — bounded, non-blocking.
  service::Response shed = svc.handle_line("SLEEP 10");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.status.exit_code(), 12);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_NE(shed.payload.find("queue full"), std::string::npos);
  EXPECT_EQ(svc.requests_shed(), 1u);

  // Meta verbs are never shed: introspection works while saturated.
  service::Response health = svc.handle_line("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.payload.find("\"shed_total\":1"), std::string::npos);

  // The shed response round-trips its retry-after hint over the wire.
  service::Response parsed;
  ASSERT_TRUE(service::parse_response(shed.serialize(), parsed));
  EXPECT_EQ(parsed.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(parsed.retry_after_ms, 0.0);

  // Admitted work is unaffected by the shed.
  EXPECT_TRUE(running.take().ok());
  EXPECT_TRUE(queued.take().ok());
}

TEST(ServiceOverload, InteractiveRunsBeforeQueuedBatch) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  service::CompileService svc(config);

  service::PendingRequest running = svc.submit("SLEEP 150");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  // Batch requests arrive first, interactive afterwards — the worker must
  // still drain every interactive item before any batch item.
  service::PendingRequest batch1 = svc.submit("PRIO batch SLEEP 5");
  service::PendingRequest batch2 = svc.submit("PRIO batch SLEEP 5");
  service::PendingRequest inter1 = svc.submit("SLEEP 5");
  service::PendingRequest inter2 = svc.submit("PRIO interactive SLEEP 5");

  service::Response r_b1 = batch1.take();
  service::Response r_b2 = batch2.take();
  service::Response r_i1 = inter1.take();
  service::Response r_i2 = inter2.take();
  ASSERT_TRUE(r_b1.ok() && r_b2.ok() && r_i1.ok() && r_i2.ok());
  EXPECT_LT(sleep_seq(r_i1.payload), sleep_seq(r_b1.payload));
  EXPECT_LT(sleep_seq(r_i2.payload), sleep_seq(r_b1.payload));
  EXPECT_LT(sleep_seq(r_b1.payload), sleep_seq(r_b2.payload));
  EXPECT_TRUE(running.take().ok());
}

TEST(ServiceOverload, DeadlineExpiredInQueueIsShed) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  service::CompileService svc(config);

  service::PendingRequest running = svc.submit("SLEEP 150");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  // Deadline far shorter than the head-of-line sleep: expires in queue.
  service::PendingRequest doomed = svc.submit("DEADLINE_MS 20 SLEEP 10");
  service::Response r = doomed.take();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(r.retry_after_ms, 0.0);
  EXPECT_NE(r.payload.find("deadline expired"), std::string::npos);
  EXPECT_TRUE(running.take().ok());
}

TEST(ServiceOverload, DeadlineBoundsExecution) {
  service::ServiceConfig config;
  config.workers = 1;
  service::CompileService svc(config);
  // Free worker, but the deadline caps execution: SLEEP aborts early.
  const auto start = std::chrono::steady_clock::now();
  service::Response r = svc.handle_line("DEADLINE_MS 40 SLEEP 5000");
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  EXPECT_LT(elapsed, 2000.0);
}

TEST(ServiceOverload, CancelledQueuedRequestNeverExecutes) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  service::CompileService svc(config);

  service::PendingRequest running = svc.submit("SLEEP 100");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  service::PendingRequest queued = svc.submit("SLEEP 5");
  queued.cancel();  // client hung up while queued
  service::Response r = queued.take();
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  EXPECT_NE(r.payload.find("disconnected"), std::string::npos);
  EXPECT_TRUE(running.take().ok());
}

TEST(ServiceOverload, CancelAbortsExecutingRequest) {
  service::ServiceConfig config;
  config.workers = 1;
  service::CompileService svc(config);
  service::PendingRequest running = svc.submit("SLEEP 5000");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  const auto start = std::chrono::steady_clock::now();
  running.cancel();
  service::Response r = running.take();
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  EXPECT_LT(elapsed, 2000.0);  // aborted at a poll, not after 5s
}

TEST(ServiceOverload, DrainCompletesInFlightThenShedsNewWork) {
  service::ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.drain_deadline_ms = 3000.0;
  service::CompileService svc(config);

  service::PendingRequest a = svc.submit("SLEEP 60");
  service::PendingRequest b = svc.submit("SLEEP 60");
  svc.begin_drain();
  EXPECT_TRUE(svc.draining());

  // New compile admissions shed; meta still answers, as "draining".
  service::Response shed = svc.handle_line("SLEEP 5");
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.payload.find("draining"), std::string::npos);
  service::Response health = svc.handle_line("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.payload.find("\"status\":\"draining\""),
            std::string::npos);
  EXPECT_NE(health.payload.find("\"draining\":true"), std::string::npos);

  svc.drain();
  // Drain completed the accepted work rather than dropping it.
  EXPECT_TRUE(a.take().ok());
  EXPECT_TRUE(b.take().ok());
}

TEST(ServiceOverload, DrainDeadlineCancelsStragglers) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.drain_deadline_ms = 40.0;
  service::CompileService svc(config);

  service::PendingRequest stuck = svc.submit("SLEEP 10000");
  ASSERT_TRUE(wait_until([&] { return svc.queue_depth() == 0; }));
  service::PendingRequest queued = svc.submit("SLEEP 10000");

  const auto start = std::chrono::steady_clock::now();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5000.0);  // did not wait out two 10s sleeps

  service::Response r_stuck = stuck.take();
  EXPECT_EQ(r_stuck.status.code(), StatusCode::kAborted);
  service::Response r_queued = queued.take();
  EXPECT_EQ(r_queued.status.code(), StatusCode::kUnavailable);
}

TEST(ServiceOverload, SaturationPreservesByteIdentity) {
  // One warm reference compile, then the same query under saturation with
  // retries: every accepted response must be byte-identical.
  service::ServiceConfig reference_config;
  reference_config.workers = 1;
  service::CompileService reference_svc(reference_config);
  service::Response reference = reference_svc.handle_line("TPCH 6 vhdl");
  ASSERT_TRUE(reference.ok());

  service::ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 2;
  service::CompileService svc(config);

  constexpr int kClients = 8;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      support::RetryPolicy policy;
      policy.max_attempts = 10;
      policy.base_ms = 5.0;
      policy.seed = static_cast<std::uint64_t>(c);
      support::Retry retry(policy);
      for (;;) {
        service::Response r = svc.handle_line("TPCH 6 vhdl");
        if (r.ok()) {
          ++accepted;
          if (r.payload != reference.payload) ++wrong;
          return;
        }
        if (r.status.code() != StatusCode::kUnavailable) {
          ++wrong;
          return;
        }
        ++shed;
        double delay_ms = 0.0;
        if (!retry.next_delay_ms(r.retry_after_ms, delay_ms)) return;
        // Bound test wall-clock: the hint can reach seconds under load.
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::min(delay_ms, 50.0)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(accepted.load(), 0);
  EXPECT_EQ(svc.requests_shed(), static_cast<std::uint64_t>(shed.load()));
}

// ---------------------------------------------------------------------------
// Socket end-to-end.

struct TestDaemon {
  explicit TestDaemon(service::ServiceConfig svc_config,
                      std::size_t max_connections = 0,
                      bool handle_signals = false)
      : service(svc_config) {
    config.socket_path =
        "/tmp/tydid_overload_" + std::to_string(::getpid()) + "_" +
        std::to_string(++instance_counter()) + ".sock";
    config.max_connections = max_connections;
    config.handle_signals = handle_signals;
    thread = std::thread([this]() {
      status = service::serve(service, config);
    });
    service::Response ping;
    support::Status up;
    for (int attempt = 0; attempt < 400; ++attempt) {
      up = service::request(config.socket_path, "PING", ping);
      if (up.is_ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(up.is_ok()) << up.render();
  }

  ~TestDaemon() {
    if (thread.joinable()) {
      // SHUTDOWN itself can be shed by the connection limit while a
      // just-finished connection still occupies its slot — retry until a
      // served response confirms the drain began.
      for (int attempt = 0; attempt < 400; ++attempt) {
        service::Response bye;
        const support::Status s =
            service::request(config.socket_path, "SHUTDOWN", bye);
        if (s.is_ok() && bye.ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      thread.join();
    }
  }

  static int& instance_counter() {
    static int counter = 0;
    return counter;
  }

  service::CompileService service;
  service::ServerConfig config;
  support::Status status;
  std::thread thread;
};

TEST(ServiceServerOverload, SaturatedDaemonShedsAndServes) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  TestDaemon daemon(config);

  constexpr int kClients = 10;
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      service::Response r;
      support::Status s =
          service::request(daemon.config.socket_path, "SLEEP 20", r);
      if (!s.is_ok()) {
        errors[c] = s.render();
        return;
      }
      if (r.ok()) {
        ++ok;
        return;
      }
      if (r.status.code() == StatusCode::kUnavailable) {
        if (r.retry_after_ms <= 0.0) {
          errors[c] = "shed without retry-after hint";
        }
        ++shed;
        return;
      }
      errors[c] = "unexpected failure: " + r.payload;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }
  // Capacity is worker + queue slot = 2 concurrent admissions; with 10
  // simultaneous clients both outcomes must occur.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kClients);
}

TEST(ServiceServerOverload, RetryingClientLandsOnSaturatedDaemon) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  TestDaemon daemon(config);

  // Keep the daemon busy from a background thread.
  std::thread load([&]() {
    for (int i = 0; i < 6; ++i) {
      service::Response r;
      (void)service::request(daemon.config.socket_path, "SLEEP 30", r);
    }
  });

  support::RetryPolicy policy;
  policy.max_attempts = 12;
  policy.base_ms = 10.0;
  policy.seed = 99;
  service::Response r;
  int attempts = 0;
  support::Status s = service::request_with_retry(
      daemon.config.socket_path, "TPCH 6 vhdl", policy, r, &attempts);
  load.join();
  ASSERT_TRUE(s.is_ok()) << s.render();
  ASSERT_TRUE(r.ok()) << r.payload;
  EXPECT_GE(attempts, 1);
  EXPECT_NE(r.payload.find("VHDL generated"), std::string::npos);
}

TEST(ServiceServerOverload, ConnectionLimitShedsAtTransport) {
  service::ServiceConfig config;
  config.workers = 1;
  TestDaemon daemon(config, /*max_connections=*/1);

  // Hold one connection open mid-request, then connect again: the second
  // connection gets a one-frame kUnavailable shed.
  std::thread holder([&]() {
    service::Response r;
    (void)service::request(daemon.config.socket_path, "SLEEP 120", r);
  });
  // Give the holder time to be accepted.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service::Response r;
  support::Status s =
      service::request(daemon.config.socket_path, "PING", r);
  holder.join();
  ASSERT_TRUE(s.is_ok()) << s.render();
  if (!r.ok()) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_GT(r.retry_after_ms, 0.0);
    EXPECT_NE(r.payload.find("connection limit"), std::string::npos);
  }
  // Either way the daemon stays healthy afterwards — retry while the
  // holder's slot is released.
  ASSERT_TRUE(wait_until([&] {
    return service::request(daemon.config.socket_path, "PING", r).is_ok() &&
           r.ok();
  }));
}

TEST(ServiceServerOverload, DisconnectedClientAbortsInFlightCompile) {
  service::ServiceConfig config;
  config.workers = 1;
  TestDaemon daemon(config);

  // Raw client: send a long SLEEP, then hang up without reading the reply.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, daemon.config.socket_path.c_str(),
                daemon.config.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char* line = "SLEEP 10000\n";
    ASSERT_EQ(::write(fd, line, std::strlen(line)),
              static_cast<ssize_t>(std::strlen(line)));
    // Wait until the worker actually started the sleep, then vanish.
    ASSERT_TRUE(wait_until([&] { return daemon.service.in_flight() > 0; }));
    ::close(fd);
  }

  // The disconnect probe cancels the sleep, freeing the single worker far
  // sooner than the 10s it asked for.
  const auto start = std::chrono::steady_clock::now();
  service::Response r;
  support::Status s =
      service::request(daemon.config.socket_path, "SLEEP 10", r);
  const double elapsed =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(s.is_ok()) << s.render();
  EXPECT_TRUE(r.ok()) << r.payload;
  EXPECT_LT(elapsed, 5000.0);
  EXPECT_EQ(daemon.service.requests_failed(), 1u);  // the aborted sleep
}

TEST(ServiceServerOverload, SigtermDrainsAndUnlinksSocket) {
  service::ServiceConfig config;
  config.workers = 2;
  config.drain_deadline_ms = 2000.0;
  TestDaemon daemon(config, /*max_connections=*/0, /*handle_signals=*/true);

  // In-flight work when the signal lands must still complete.
  std::thread worker_client([&]() {
    service::Response r;
    support::Status s =
        service::request(daemon.config.socket_path, "SLEEP 80", r);
    EXPECT_TRUE(s.is_ok()) << s.render();
    EXPECT_TRUE(r.ok()) << r.payload;
  });
  ASSERT_TRUE(wait_until([&] { return daemon.service.in_flight() > 0; }));

  ASSERT_EQ(std::raise(SIGTERM), 0);
  worker_client.join();
  daemon.thread.join();
  EXPECT_TRUE(daemon.status.is_ok()) << daemon.status.render();
  EXPECT_TRUE(daemon.service.draining());
  // No stale socket after a signal-driven shutdown.
  EXPECT_NE(::access(daemon.config.socket_path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace tydi
