// Type-transformation component tests (the paper's Sec. IV-C third stdlib
// category, listed there as future work and implemented here): splitting a
// Group stream into field streams and recombining them.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"

namespace tydi {
namespace {

constexpr std::string_view kRoundTripSource = R"(
Group Pair {
  hi: Bit(16),
  lo: Bit(8),
}
type t_pair = Stream(Pair, d=1, c=2);
type t_hi = Stream(Bit(16), d=1, c=2);
type t_lo = Stream(Bit(8), d=1, c=2);

streamlet top_s {
  feed: t_pair in,
  rebuilt: t_pair out,
}

impl top of top_s {
  instance split(group_split2_i<type t_pair, type t_hi, type t_lo>),
  instance combine(group_combine2_i<type t_hi, type t_lo, type t_pair>),
  feed => split.in_,
  split.out_a => combine.in_a,
  split.out_b => combine.in_b,
  combine.out => rebuilt,
}
)";

TEST(Transform, SplitCombineRoundTripCompilesClean) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kRoundTripSource), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_TRUE(result.drc_report.clean()) << result.drc_report.render();
}

TEST(Transform, RtlSlicesAndConcatenates) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kRoundTripSource), options);
  ASSERT_TRUE(result.success()) << result.report();
  const std::string& vhdl = result.vhdl_text;
  // Split slices the 24-bit group into 23..8 and 7..0.
  EXPECT_NE(vhdl.find("(23 downto 8);"), std::string::npos);
  EXPECT_NE(vhdl.find("(7 downto 0);"), std::string::npos);
  // Combine concatenates.
  EXPECT_NE(vhdl.find("in_a_data & in_b_data;"), std::string::npos);
  // Neither is a black box.
  std::size_t behavioural = 0;
  for (std::size_t pos = vhdl.find("architecture behavioural of");
       pos != std::string::npos;
       pos = vhdl.find("architecture behavioural of", pos + 1)) {
    ++behavioural;
  }
  EXPECT_GE(behavioural, 2u);
}

TEST(Transform, SimulationPreservesPacketCountAndOrder) {
  driver::CompileOptions options;
  options.top = "top";
  options.emit_vhdl = false;
  auto compiled =
      driver::compile_source(std::string(kRoundTripSource), options);
  ASSERT_TRUE(compiled.success()) << compiled.report();

  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions sim_options;
  sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < 16; ++i) {
    stim.packets.emplace_back(10.0 * i, sim::Packet{100 + i, i == 15});
  }
  sim_options.stimuli.push_back(std::move(stim));
  auto result = engine.run(sim_options);

  ASSERT_TRUE(result.top_outputs.contains("rebuilt"));
  const auto& rebuilt = result.top_outputs.at("rebuilt");
  ASSERT_EQ(rebuilt.size(), 16u);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].second.value, static_cast<std::int64_t>(100 + i));
  }
  EXPECT_FALSE(result.deadlock);
}

TEST(Transform, StrictTypingStillEnforced) {
  // Splitting into the wrong field type is a DRC error, not a silent
  // reinterpretation.
  constexpr std::string_view bad = R"(
Group Pair {
  hi: Bit(16),
  lo: Bit(8),
}
type t_pair = Stream(Pair, d=1, c=2);
type t_hi = Stream(Bit(16), d=1, c=2);
type t_wrong = Stream(Bit(8), d=1, c=2);
type t_lo = Stream(Bit(8), d=1, c=2);

streamlet top_s {
  feed: t_pair in,
  a: t_hi out,
  b: t_lo out,
}
impl top of top_s {
  instance split(group_split2_i<type t_pair, type t_hi, type t_wrong>),
  feed => split.in_,
  split.out_a => a,
  split.out_b => b,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(bad), options);
  // split.out_b has type t_wrong, the port b expects t_lo: strict equality
  // fails even though both are Bit(8) streams.
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.drc_report.count(drc::Rule::kTypeEquality), 0u);
}

}  // namespace
}  // namespace tydi
