// Expression-interpreter tests: the variable system and math system of
// Sec. IV-A, including the paper's decimal-width example.
#include <gtest/gtest.h>
#include <cmath>
#include <algorithm>

#include "src/eval/interp.hpp"
#include "src/parser/parser.hpp"

namespace tydi::eval {
namespace {

Value eval_str(std::string_view text, const Scope& scope = Scope()) {
  support::DiagnosticEngine diags;
  // Wrap as a const declaration so we can reuse the full parser.
  std::string source = "const x = " + std::string(text) + ";";
  lang::SourceFile file = lang::parse(source, support::FileId{1}, diags);
  EXPECT_EQ(diags.error_count(), 0u) << diags.render();
  const auto& decl = std::get<lang::ConstDecl>(file.decls.at(0).node);
  return evaluate(*decl.init, scope);
}

TEST(Eval, IntegerArithmetic) {
  EXPECT_EQ(eval_str("1 + 2 * 3").as_int(), 7);
  EXPECT_EQ(eval_str("(1 + 2) * 3").as_int(), 9);
  EXPECT_EQ(eval_str("10 / 3").as_int(), 3);
  EXPECT_EQ(eval_str("10 % 3").as_int(), 1);
  EXPECT_EQ(eval_str("-5 + 2").as_int(), -3);
}

TEST(Eval, FloatArithmeticAndPromotion) {
  EXPECT_DOUBLE_EQ(eval_str("1.5 + 2").as_float(), 3.5);
  EXPECT_DOUBLE_EQ(eval_str("7 / 2.0").as_float(), 3.5);
  EXPECT_TRUE(eval_str("1 + 2").is_int());
  EXPECT_TRUE(eval_str("1 + 2.0").is_float());
}

TEST(Eval, PowerOperator) {
  EXPECT_EQ(eval_str("2 ** 10").as_int(), 1024);
  EXPECT_TRUE(eval_str("2 ** 10").is_int());
  EXPECT_DOUBLE_EQ(eval_str("2.0 ** 0.5").as_float(), std::sqrt(2.0));
  // Right-associative: 2 ** 3 ** 2 = 2 ** 9.
  EXPECT_EQ(eval_str("2 ** 3 ** 2").as_int(), 512);
}

TEST(Eval, PaperDecimalWidthExample) {
  // Sec. IV-A: Bit(ceil(log2(10 ** 15 - 1))) represents Decimal(15).
  EXPECT_EQ(eval_str("ceil(log2(10 ** 15 - 1))").as_int(), 50);
  // And parameterized by a variable:
  Scope scope;
  scope.define("decimal_width_memory", Value(std::int64_t{15}));
  EXPECT_EQ(
      eval_str("ceil(log2(10 ** decimal_width_memory - 1))", scope).as_int(),
      50);
}

TEST(Eval, MathBuiltins) {
  EXPECT_EQ(eval_str("floor(2.9)").as_int(), 2);
  EXPECT_EQ(eval_str("round(2.5)").as_int(), 3);
  EXPECT_EQ(eval_str("abs(-7)").as_int(), 7);
  EXPECT_EQ(eval_str("min(3, 1, 2)").as_int(), 1);
  EXPECT_EQ(eval_str("max(3, 1, 2)").as_int(), 3);
  EXPECT_EQ(eval_str("pow(2, 8)").as_int(), 256);
  EXPECT_DOUBLE_EQ(eval_str("log10(1000)").as_float(), 3.0);
  EXPECT_NEAR(eval_str("ln(2.718281828459045)").as_float(), 1.0, 1e-12);
}

TEST(Eval, Comparisons) {
  EXPECT_TRUE(eval_str("1 < 2").as_bool());
  EXPECT_TRUE(eval_str("2 <= 2").as_bool());
  EXPECT_FALSE(eval_str("1 > 2").as_bool());
  EXPECT_TRUE(eval_str("1 == 1.0").as_bool());
  EXPECT_TRUE(eval_str("\"abc\" < \"abd\"").as_bool());
  EXPECT_TRUE(eval_str("\"a\" == \"a\"").as_bool());
  EXPECT_TRUE(eval_str("\"a\" != \"b\"").as_bool());
}

TEST(Eval, ShortCircuitLogicals) {
  // The right side would divide by zero if evaluated.
  EXPECT_FALSE(eval_str("false && (1 / 0 == 1)").as_bool());
  EXPECT_TRUE(eval_str("true || (1 / 0 == 1)").as_bool());
}

TEST(Eval, StringConcatenation) {
  EXPECT_EQ(eval_str("\"MED \" + \"BAG\"").as_string(), "MED BAG");
}

TEST(Eval, Ranges) {
  Value v = eval_str("0 -> 4");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 4u);
  EXPECT_EQ(v.as_array()[0].as_int(), 0);
  EXPECT_EQ(v.as_array()[3].as_int(), 3);
  // `..` is an alias.
  EXPECT_EQ(eval_str("2 .. 5").as_array().size(), 3u);
  // Empty range.
  EXPECT_TRUE(eval_str("3 -> 3").as_array().empty());
}

TEST(Eval, ArraysAndIndexing) {
  EXPECT_EQ(eval_str("[10, 20, 30][1]").as_int(), 20);
  EXPECT_EQ(eval_str("len([1, 2, 3])").as_int(), 3);
  EXPECT_EQ(eval_str("len(\"MED BAG\")").as_int(), 7);
  // Array concatenation with '+'.
  EXPECT_EQ(eval_str("len([1] + [2, 3])").as_int(), 3);
}

TEST(Eval, ClockDomainValues) {
  Value v = eval_str("clockdomain(\"sys\", 200)");
  ASSERT_TRUE(v.is_clock());
  EXPECT_EQ(v.as_clock().name, "sys");
  EXPECT_DOUBLE_EQ(v.as_clock().frequency_mhz, 200.0);
  // Identity is the name only.
  EXPECT_TRUE(eval_str("clockdomain(\"a\") == clockdomain(\"a\", 50)")
                  .as_bool());
}

TEST(Eval, ErrorsCarryLocations) {
  EXPECT_THROW((void)eval_str("1 / 0"), EvalError);
  EXPECT_THROW((void)eval_str("1 % 0"), EvalError);
  EXPECT_THROW((void)eval_str("unknown_var"), EvalError);
  EXPECT_THROW((void)eval_str("log2(-1)"), EvalError);
  EXPECT_THROW((void)eval_str("[1, 2][5]"), EvalError);
  EXPECT_THROW((void)eval_str("[1, 2][-1]"), EvalError);
  EXPECT_THROW((void)eval_str("1 + \"a\""), EvalError);
  EXPECT_THROW((void)eval_str("nosuchfn(1)"), EvalError);
  EXPECT_THROW((void)eval_str("1 && true"), EvalError);
  EXPECT_THROW((void)eval_str("0.5 -> 2"), EvalError);
}

TEST(Eval, TypedHelpers) {
  support::DiagnosticEngine diags;
  lang::SourceFile file = lang::parse("const x = ceil(2.5);",
                                      support::FileId{1}, diags);
  const auto& decl = std::get<lang::ConstDecl>(file.decls.at(0).node);
  Scope scope;
  EXPECT_EQ(evaluate_int(*decl.init, scope), 3);
  EXPECT_DOUBLE_EQ(evaluate_number(*decl.init, scope), 3.0);
  EXPECT_THROW((void)evaluate_bool(*decl.init, scope), EvalError);
}

TEST(Scope, ImmutabilityAndShadowing) {
  Scope root;
  EXPECT_TRUE(root.define("x", Value(std::int64_t{1})));
  // Redefinition in the same scope is rejected (immutability, Sec. IV-A).
  EXPECT_FALSE(root.define("x", Value(std::int64_t{2})));
  EXPECT_EQ(root.lookup("x")->as_int(), 1);

  // Shadowing in a child scope is allowed.
  Scope child(&root);
  EXPECT_TRUE(child.define("x", Value(std::int64_t{42})));
  EXPECT_EQ(child.lookup("x")->as_int(), 42);
  EXPECT_EQ(root.lookup("x")->as_int(), 1);
  // Lookup falls through to the parent for unshadowed names.
  EXPECT_TRUE(root.define("y", Value(std::string("deep"))));
  EXPECT_EQ(child.lookup("y")->as_string(), "deep");
  EXPECT_FALSE(child.lookup("z").has_value());
}

TEST(ValueTest, DisplayForms) {
  EXPECT_EQ(Value(std::int64_t{8}).to_display(), "8");
  EXPECT_EQ(Value(true).to_display(), "true");
  EXPECT_EQ(Value(std::string("hi")).to_display(), "\"hi\"");
  Array arr;
  arr.push_back(Value(std::int64_t{1}));
  arr.push_back(Value(std::int64_t{2}));
  EXPECT_EQ(Value(std::move(arr)).to_display(), "[1, 2]");
  EXPECT_EQ(Value(ClockDomain{"sys", 100.0}).to_display(),
            "clockdomain(sys)");
}

TEST(ValueTest, TypeNames) {
  EXPECT_EQ(Value(std::int64_t{1}).type_name(), "int");
  EXPECT_EQ(Value(1.5).type_name(), "float");
  EXPECT_EQ(Value(std::string("s")).type_name(), "string");
  EXPECT_EQ(Value(false).type_name(), "bool");
  EXPECT_EQ(Value(ClockDomain{}).type_name(), "clockdomain");
  EXPECT_EQ(Value(Array{}).type_name(), "array");
  EXPECT_EQ(Value().type_name(), "none");
}

TEST(Eval, BuiltinFunctionListIsStable) {
  const auto& names = builtin_function_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "ceil"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "log2"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "clockdomain"),
            names.end());
}

}  // namespace
}  // namespace tydi::eval
