// Behaviour-model semantics tests: conservation and ordering properties of
// the built-in simulator models (duplicator, filter, accumulator, mux/demux,
// join2) plus testbench generation consistency.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/tb/testbench.hpp"

namespace tydi {
namespace {

struct SimSetup {
  driver::CompileResult compiled;
  sim::SimResult result;
};

SimSetup run(std::string_view source, const std::string& top,
             const std::vector<std::pair<std::string, std::vector<sim::Packet>>>&
                 stimuli,
             double interval_ns = 10.0) {
  driver::CompileOptions options;
  options.top = top;
  options.emit_vhdl = false;
  SimSetup setup{driver::compile_source(std::string(source), options), {}};
  EXPECT_TRUE(setup.compiled.success()) << setup.compiled.report();
  support::DiagnosticEngine diags;
  sim::Engine engine(setup.compiled.design, diags);
  sim::SimOptions sim_options;
  sim_options.max_time_ns = 1.0e7;
  for (const auto& [port, packets] : stimuli) {
    sim::Stimulus stim;
    stim.port = port;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      stim.packets.emplace_back(interval_ns * static_cast<double>(i),
                                packets[i]);
    }
    sim_options.stimuli.push_back(std::move(stim));
  }
  setup.result = engine.run(sim_options);
  return setup;
}

std::vector<sim::Packet> counting_packets(int n) {
  std::vector<sim::Packet> out;
  for (int i = 0; i < n; ++i) out.push_back(sim::Packet{i, i == n - 1});
  return out;
}

TEST(BehaviorDuplicator, ConservesPacketsOnAllOutputs) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
streamlet s { feed: t in, o1: t out, o2: t out, o3: t out, }
impl top of s {
  instance d(duplicator_i<type t, 3>),
  feed => d.in_,
  d.out_[0] => o1,
  d.out_[1] => o2,
  d.out_[2] => o3,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(20)}});
  for (const char* port : {"o1", "o2", "o3"}) {
    ASSERT_TRUE(setup.result.top_outputs.contains(port)) << port;
    const auto& packets = setup.result.top_outputs.at(port);
    ASSERT_EQ(packets.size(), 20u) << port;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      EXPECT_EQ(packets[i].second.value, static_cast<std::int64_t>(i));
    }
  }
  EXPECT_FALSE(setup.result.deadlock);
}

TEST(BehaviorFilter, DropsWhereKeepIsZero) {
  // keep = (value % 2 == 0)? We drive keep explicitly from a second input.
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
streamlet s { feed: t in, keep_in: std_bool in, kept: t out, }
impl top of s {
  instance f(filter_i<type t, type std_bool>),
  feed => f.in_,
  keep_in => f.keep,
  f.out => kept,
}
)";
  std::vector<sim::Packet> keeps;
  for (int i = 0; i < 10; ++i) keeps.push_back(sim::Packet{i % 2, i == 9});
  auto setup =
      run(source, "top", {{"feed", counting_packets(10)}, {"keep_in", keeps}});
  const auto& kept = setup.result.top_outputs.at("kept");
  // Odd indices kept (keep=1 at i%2==1).
  ASSERT_EQ(kept.size(), 5u);
  EXPECT_EQ(kept[0].second.value, 1);
  EXPECT_EQ(kept[4].second.value, 9);
  EXPECT_FALSE(setup.result.deadlock);
}

TEST(BehaviorAccumulator, SumsUntilLast) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
type t_sum = Stream(Bit(32), d=1, c=2);
streamlet s { feed: t in, total: t_sum out, }
impl top of s {
  instance a(accumulator_i<type t, type t_sum>),
  feed => a.in_,
  a.out => total,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(10)}});
  const auto& totals = setup.result.top_outputs.at("total");
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].second.value, 45);  // 0 + 1 + ... + 9
  EXPECT_TRUE(totals[0].second.last);
}

TEST(BehaviorJoin2, AddsOperandStreams) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
type t_o = Stream(Bit(32), d=1, c=2);
streamlet s { lhs_in: t in, rhs_in: t in, sum: t_o out, }
impl top of s {
  instance a(add2_i<type t, type t, type t_o>),
  lhs_in => a.lhs,
  rhs_in => a.rhs,
  a.out => sum,
}
)";
  std::vector<sim::Packet> tens;
  for (int i = 0; i < 8; ++i) tens.push_back(sim::Packet{10 * i, i == 7});
  auto setup = run(source, "top",
                   {{"lhs_in", counting_packets(8)}, {"rhs_in", tens}});
  const auto& sums = setup.result.top_outputs.at("sum");
  ASSERT_EQ(sums.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sums[i].second.value, static_cast<std::int64_t>(11 * i));
  }
}

TEST(BehaviorDemuxMux, RoundRobinPreservesOrderThroughParallelPaths) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
streamlet s { feed: t in, merged: t out, }
impl top of s {
  instance d(demux_i<type t, 3>),
  instance m(mux_i<type t, 3>),
  feed => d.in_,
  d.out_[0] => m.in_[0],
  d.out_[1] => m.in_[1],
  d.out_[2] => m.in_[2],
  m.out => merged,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(30)}});
  const auto& merged = setup.result.top_outputs.at("merged");
  ASSERT_EQ(merged.size(), 30u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].second.value, static_cast<std::int64_t>(i));
  }
}

TEST(BehaviorLogic, AndOrReductions) {
  constexpr std::string_view source = R"(
streamlet s { p1: std_bool in, p2: std_bool in, both: std_bool out, either: std_bool out, }
impl top of s {
  instance a(logic_and_i<type std_bool, 2>),
  instance o(logic_or_i<type std_bool, 2>),
  instance d1(duplicator_i<type std_bool, 2>),
  instance d2(duplicator_i<type std_bool, 2>),
  p1 => d1.in_,
  p2 => d2.in_,
  d1.out_[0] => a.in_[0],
  d2.out_[0] => a.in_[1],
  d1.out_[1] => o.in_[0],
  d2.out_[1] => o.in_[1],
  a.out => both,
  o.out => either,
}
)";
  std::vector<sim::Packet> p1 = {{1, false}, {1, false}, {0, false}, {0, true}};
  std::vector<sim::Packet> p2 = {{1, false}, {0, false}, {1, false}, {0, true}};
  auto setup = run(source, "top", {{"p1", p1}, {"p2", p2}});
  const auto& both = setup.result.top_outputs.at("both");
  const auto& either = setup.result.top_outputs.at("either");
  ASSERT_EQ(both.size(), 4u);
  ASSERT_EQ(either.size(), 4u);
  EXPECT_EQ(both[0].second.value, 1);
  EXPECT_EQ(both[1].second.value, 0);
  EXPECT_EQ(both[2].second.value, 0);
  EXPECT_EQ(both[3].second.value, 0);
  EXPECT_EQ(either[0].second.value, 1);
  EXPECT_EQ(either[1].second.value, 1);
  EXPECT_EQ(either[2].second.value, 1);
  EXPECT_EQ(either[3].second.value, 0);
}

TEST(BehaviorSimBlock, PayloadExpressionAndStartHandler) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(32), d=1, c=2);
streamlet gen_s { out: t out, }
impl gen_i of gen_s @ external {
  sim {
    on start {
      send(out, 111);
    }
  }
}
streamlet s { feed: t in, tripled: t out, primed: t out, }
impl scale_i of process_unit_s<type t, type t> @ external {
  sim {
    on in_.receive {
      send(out, payload * 3);
      ack(in_);
    }
  }
}
impl top of s {
  instance g(gen_i),
  instance m(scale_i),
  feed => m.in_,
  m.out => tripled,
  g.out => primed,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(4)}});
  const auto& tripled = setup.result.top_outputs.at("tripled");
  ASSERT_EQ(tripled.size(), 4u);
  EXPECT_EQ(tripled[2].second.value, 6);
  const auto& primed = setup.result.top_outputs.at("primed");
  ASSERT_EQ(primed.size(), 1u);
  EXPECT_EQ(primed[0].second.value, 111);
}

TEST(BehaviorSimBlock, ForLoopUnrollsInHandlers) {
  // Sec. V-A: "the 'if' and 'for' syntax is available in the event
  // handler". A burst generator emits `burst` packets per input.
  constexpr std::string_view source = R"(
type t = Stream(Bit(32), d=1, c=2);
streamlet s { feed: t in, bursts: t out, }
impl burster of process_unit_s<type t, type t> @ external {
  const burst = 3;
  sim {
    on in_.receive {
      for k in 0->burst {
        send(out, payload * 10 + k);
      }
      ack(in_);
    }
  }
}
impl top of s {
  instance b(burster),
  feed => b.in_,
  b.out => bursts,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(4)}}, 100.0);
  const auto& bursts = setup.result.top_outputs.at("bursts");
  ASSERT_EQ(bursts.size(), 12u);
  // First input (value 0) yields 0, 1, 2; second (value 1) yields 10, 11, 12.
  EXPECT_EQ(bursts[0].second.value, 0);
  EXPECT_EQ(bursts[1].second.value, 1);
  EXPECT_EQ(bursts[2].second.value, 2);
  EXPECT_EQ(bursts[3].second.value, 10);
  EXPECT_EQ(bursts[5].second.value, 12);
  EXPECT_FALSE(setup.result.deadlock);
}

TEST(BehaviorSimBlock, ForLoopWithDelayKeepsLocals) {
  // Delays inside the unrolled loop must preserve the loop binding across
  // the suspension.
  constexpr std::string_view source = R"(
type t = Stream(Bit(32), d=1, c=2);
streamlet s { feed: t in, slow: t out, }
impl spacer of process_unit_s<type t, type t> @ external {
  sim {
    on in_.receive {
      for k in 0->2 {
        delay(4);
        send(out, payload + k);
      }
      ack(in_);
    }
  }
}
impl top of s {
  instance sp(spacer),
  feed => sp.in_,
  sp.out => slow,
}
)";
  auto setup = run(source, "top", {{"feed", {sim::Packet{100, true}}}});
  const auto& slow = setup.result.top_outputs.at("slow");
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].second.value, 100);
  EXPECT_EQ(slow[1].second.value, 101);
  // The second packet is one delay later than the first.
  EXPECT_GT(slow[1].first, slow[0].first);
}

TEST(Testbench, IrAndVhdlConsistentWithTrace) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
streamlet s { feed: t in, echoed: t out, }
impl echo of process_unit_s<type t, type t> @ external {
  sim {
    on in_.receive { send(out); ack(in_); }
  }
}
impl top of s {
  instance e(echo),
  feed => e.in_,
  e.out => echoed,
}
)";
  auto setup = run(source, "top", {{"feed", counting_packets(3)}});
  tb::TestbenchOptions options;
  options.name = "tb_echo";

  std::string ir = tb::emit_ir_testbench(setup.compiled.ir, setup.result,
                                         options);
  EXPECT_NE(ir.find("testbench tb_echo for top"), std::string::npos);
  // Three drives and three expects.
  std::size_t drives = 0;
  std::size_t expects = 0;
  for (std::size_t pos = ir.find("drive "); pos != std::string::npos;
       pos = ir.find("drive ", pos + 1)) {
    ++drives;
  }
  for (std::size_t pos = ir.find("expect "); pos != std::string::npos;
       pos = ir.find("expect ", pos + 1)) {
    ++expects;
  }
  EXPECT_EQ(drives, 3u);
  EXPECT_EQ(expects, 3u);

  std::string vhdl = tb::emit_vhdl_testbench(setup.compiled.ir,
                                             setup.result, options);
  EXPECT_NE(vhdl.find("entity tb_echo is"), std::string::npos);
  EXPECT_NE(vhdl.find("dut : entity work.top"), std::string::npos);
  EXPECT_NE(vhdl.find("stimulus : process"), std::string::npos);
  EXPECT_NE(vhdl.find("checker : process"), std::string::npos);
  // Expected values appear as assertions.
  EXPECT_NE(vhdl.find("assert unsigned(echoed_data) = to_unsigned(2"),
            std::string::npos);
}

TEST(BehaviorSource, BuiltinSourceRespectsCountParam) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(16), d=1, c=2);
streamlet s { produced: t out, }
impl top of s {
  instance src(source_i<type t>),
  src.out => produced,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  options.emit_vhdl = false;
  auto compiled = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(compiled.success()) << compiled.report();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions sim_options;
  sim_options.model_params["src"] = {{"count", 17.0},
                                     {"interval_cycles", 2.0}};
  auto result = engine.run(sim_options);
  ASSERT_TRUE(result.top_outputs.contains("produced"));
  EXPECT_EQ(result.top_outputs.at("produced").size(), 17u);
}

}  // namespace
}  // namespace tydi
