// Lexer unit tests: token classification, literals, operators, comments,
// and error handling.
#include <gtest/gtest.h>

#include "src/lexer/lexer.hpp"

namespace tydi::lang {
namespace {

std::vector<Token> lex(std::string_view text) {
  return Lexer::tokenize(text, support::FileId{1});
}

std::vector<TokenKind> kinds(std::string_view text) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(text)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, WhitespaceOnlyYieldsEnd) {
  auto tokens = lex("  \t\r\n  \n");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, Identifiers) {
  auto tokens = lex("foo _bar baz_9");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz_9");
}

TEST(Lexer, KeywordsAreNotIdentifiers) {
  auto tokens = lex("streamlet impl const type for if assert sim");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwStreamlet);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwImpl);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwConst);
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwType);
  EXPECT_EQ(tokens[4].kind, TokenKind::kKwFor);
  EXPECT_EQ(tokens[5].kind, TokenKind::kKwIf);
  EXPECT_EQ(tokens[6].kind, TokenKind::kKwAssert);
  EXPECT_EQ(tokens[7].kind, TokenKind::kKwSim);
}

TEST(Lexer, LogicalTypeKeywords) {
  auto tokens = lex("Null Bit Group Union Stream");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwNull);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwBit);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwGroup);
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwUnion);
  EXPECT_EQ(tokens[4].kind, TokenKind::kKwStream);
}

TEST(Lexer, CaseSensitivity) {
  // `group` (lowercase) is an identifier, `Group` is the keyword.
  auto tokens = lex("group Group");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwGroup);
}

TEST(Lexer, DecimalIntegers) {
  auto tokens = lex("0 42 1234567890");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 1234567890);
}

TEST(Lexer, HexAndBinaryIntegers) {
  auto tokens = lex("0xff 0b1010 0XAB");
  EXPECT_EQ(tokens[0].int_value, 255);
  EXPECT_EQ(tokens[1].int_value, 10);
  EXPECT_EQ(tokens[2].int_value, 0xAB);
}

TEST(Lexer, FloatLiterals) {
  auto tokens = lex("3.14 0.5 2e3 1.5e-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.015);
}

TEST(Lexer, IntegerFollowedByRangeIsNotFloat) {
  // `0..4` must lex as INT DOTDOT INT, not a malformed float.
  auto k = kinds("0..4");
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], TokenKind::kIntLiteral);
  EXPECT_EQ(k[1], TokenKind::kDotDot);
  EXPECT_EQ(k[2], TokenKind::kIntLiteral);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  auto tokens = lex(R"("hello" "a\"b" "tab\there")");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "tab\there");
}

TEST(Lexer, StringWithSpacesMatchesSqlLiterals) {
  auto tokens = lex("\"MED BAG\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "MED BAG");
}

TEST(Lexer, UnterminatedStringIsError) {
  auto tokens = lex("\"oops");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
}

TEST(Lexer, NewlineInStringIsError) {
  auto tokens = lex("\"a\nb\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
}

TEST(Lexer, MultiCharOperators) {
  auto k = kinds("=> -> .. ** == != <= >= && ||");
  std::vector<TokenKind> expected = {
      TokenKind::kFatArrow, TokenKind::kThinArrow, TokenKind::kDotDot,
      TokenKind::kStarStar, TokenKind::kEqEq,      TokenKind::kNotEq,
      TokenKind::kLessEq,   TokenKind::kGreaterEq, TokenKind::kAmpAmp,
      TokenKind::kPipePipe, TokenKind::kEnd};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, SingleCharOperators) {
  auto k = kinds("{ } ( ) [ ] < > = + - * / % , ; : . @ !");
  EXPECT_EQ(k.size(), 21u);
  EXPECT_EQ(k[0], TokenKind::kLBrace);
  EXPECT_EQ(k[6], TokenKind::kLess);
  EXPECT_EQ(k[7], TokenKind::kGreater);
  EXPECT_EQ(k[19], TokenKind::kBang);
}

TEST(Lexer, LineCommentsSkipped) {
  auto k = kinds("a // comment with => tokens\nb");
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], TokenKind::kIdentifier);
  EXPECT_EQ(k[1], TokenKind::kIdentifier);
}

TEST(Lexer, BlockCommentsSkipped) {
  auto k = kinds("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(k.size(), 3u);
}

TEST(Lexer, UnterminatedBlockCommentReachesEof) {
  auto k = kinds("a /* never closed");
  ASSERT_EQ(k.size(), 2u);
  EXPECT_EQ(k[0], TokenKind::kIdentifier);
  EXPECT_EQ(k[1], TokenKind::kEnd);
}

TEST(Lexer, StrayAmpersandIsError) {
  auto tokens = lex("a & b");
  EXPECT_EQ(tokens[1].kind, TokenKind::kError);
}

TEST(Lexer, UnknownCharacterIsError) {
  auto tokens = lex("$");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
  EXPECT_NE(tokens[0].text.find("unexpected"), std::string::npos);
}

TEST(Lexer, LocationsTrackOffsets) {
  auto tokens = lex("ab cd");
  EXPECT_EQ(tokens[0].loc.offset, 0u);
  EXPECT_EQ(tokens[1].loc.offset, 3u);
}

TEST(Lexer, ConnectionArrowVsComparison) {
  // `a=>b` vs `a>=b` vs `a=b`.
  EXPECT_EQ(kinds("a=>b")[1], TokenKind::kFatArrow);
  EXPECT_EQ(kinds("a>=b")[1], TokenKind::kGreaterEq);
  EXPECT_EQ(kinds("a=b")[1], TokenKind::kEq);
}

TEST(Lexer, TokenKindNamesAreDistinctAndNonEmpty) {
  // Exercise the diagnostic name table.
  for (int k = 0; k <= static_cast<int>(TokenKind::kError); ++k) {
    EXPECT_FALSE(token_kind_name(static_cast<TokenKind>(k)).empty());
  }
}

}  // namespace
}  // namespace tydi::lang
