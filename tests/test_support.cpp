// Support-layer tests: source management, diagnostics, the LoC counter
// that Table IV depends on, the rope-backed code writer (including an
// allocation-count regression check), tables, and identifier sanitization.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/support/diagnostic.hpp"
#include "src/support/intern.hpp"
#include "src/support/retry.hpp"
#include "src/support/source.hpp"
#include "src/support/status.hpp"
#include "src/support/text.hpp"

// Process-wide allocation counter for the CodeWriter regression test: every
// operator new in this test binary bumps the counter, so a test can assert
// an upper bound on the allocations a code path performs.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tydi::support {
namespace {

TEST(Interner, RoundTripAndDedup) {
  Interner interner;
  Symbol a = interner.intern("alpha");
  Symbol b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.str(a), "alpha");
  EXPECT_EQ(interner.str(b), "beta");
  // Dedup: same string, same symbol — no new entry.
  std::size_t size = interner.size();
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.intern(std::string("alpha")), a);
  EXPECT_EQ(interner.size(), size);
}

TEST(Interner, StableSymbolsAcrossGrowth) {
  Interner interner;
  Symbol first = interner.intern("first");
  const std::string& before = interner.str(first);
  // Force the storage through several growth steps.
  std::vector<Symbol> symbols;
  for (int i = 0; i < 1000; ++i) {
    symbols.push_back(interner.intern("sym_" + std::to_string(i)));
  }
  // Old symbol still resolves and its string address did not move.
  EXPECT_EQ(interner.str(first), "first");
  EXPECT_EQ(&interner.str(first), &before);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.intern("sym_" + std::to_string(i)), symbols[i]);
    EXPECT_EQ(interner.str(symbols[i]), "sym_" + std::to_string(i));
  }
}

TEST(Interner, FindDoesNotInsert) {
  Interner interner;
  EXPECT_EQ(interner.find("ghost"), kNoSymbol);
  EXPECT_EQ(interner.size(), 0u);
  Symbol s = interner.intern("ghost");
  EXPECT_EQ(interner.find("ghost"), s);
}

TEST(Interner, GlobalSingletonIsStable) {
  Symbol a = intern("global_interner_test_symbol");
  Symbol b = intern("global_interner_test_symbol");
  EXPECT_EQ(a, b);
  EXPECT_EQ(symbol_name(a), "global_interner_test_symbol");
}

TEST(SourceManager, LineColumnMapping) {
  SourceManager sm;
  FileId id = sm.add("test.td", "line one\nline two\nthird");
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(sm.name(id), "test.td");

  LineCol lc = sm.line_col(Loc{id, 0});
  EXPECT_EQ(lc.line, 1u);
  EXPECT_EQ(lc.column, 1u);

  lc = sm.line_col(Loc{id, 9});  // 'l' of "line two"
  EXPECT_EQ(lc.line, 2u);
  EXPECT_EQ(lc.column, 1u);

  lc = sm.line_col(Loc{id, 23});  // last char of "third"
  EXPECT_EQ(lc.line, 3u);
  EXPECT_EQ(lc.column, 6u);

  EXPECT_EQ(sm.describe(Loc{id, 9}), "test.td:2:1");
}

TEST(SourceManager, SynthesizedLocations) {
  SourceManager sm;
  EXPECT_EQ(sm.describe(Loc::synthesized()), "<synthesized>");
  LineCol lc = sm.line_col(Loc::synthesized());
  EXPECT_EQ(lc.line, 0u);
}

TEST(SourceManager, MissingFileReturnsInvalidId) {
  SourceManager sm;
  EXPECT_FALSE(sm.add_file("/no/such/file.td").valid());
}

TEST(Diagnostics, CountsAndRendering) {
  SourceManager sm;
  FileId id = sm.add("x.td", "abc\ndef\n");
  DiagnosticEngine diags(&sm);
  diags.error("parser", "bad token", Loc{id, 4});
  diags.warning("drc", "suspicious", Loc{id, 0});
  diags.note("sugar", "inserted voider", {});

  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);

  std::string rendered = diags.render();
  EXPECT_NE(rendered.find("error: x.td:2:1: [parser] bad token"),
            std::string::npos);
  EXPECT_NE(rendered.find("warning:"), std::string::npos);
  EXPECT_NE(rendered.find("note:"), std::string::npos);

  EXPECT_EQ(diags.by_phase("drc").size(), 1u);
  EXPECT_EQ(diags.by_phase("nothing").size(), 0u);

  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(LocCounter, TydiRules) {
  // Blank lines and comment-only lines do not count.
  EXPECT_EQ(count_tydi_loc(""), 0u);
  EXPECT_EQ(count_tydi_loc("\n\n\n"), 0u);
  EXPECT_EQ(count_tydi_loc("// only a comment\n"), 0u);
  EXPECT_EQ(count_tydi_loc("const x = 1;\n"), 1u);
  EXPECT_EQ(count_tydi_loc("const x = 1; // trailing comment\n"), 1u);
  EXPECT_EQ(count_tydi_loc("  // indented comment\nconst x = 1;\n"), 1u);
  EXPECT_EQ(count_tydi_loc("/* block\nspanning\nlines */\nconst x = 1;\n"),
            1u);
  // Code sharing a line with the end of a block comment still counts.
  EXPECT_EQ(count_tydi_loc("a\n/* c */ b\n"), 2u);
}

TEST(LocCounter, VhdlRules) {
  EXPECT_EQ(count_vhdl_loc("-- comment only\n"), 0u);
  EXPECT_EQ(count_vhdl_loc("signal x : std_logic;\n-- note\n\n"), 1u);
}

TEST(CodeWriter, IndentationManagement) {
  CodeWriter w;
  w.open("begin");
  w.line("middle");
  w.open("nested {");
  w.line("deep");
  w.close("}");
  w.close("end");
  w.line();
  EXPECT_EQ(w.str(), "begin\n  middle\n  nested {\n    deep\n  }\nend\n\n");
  // dedent below zero is clamped.
  CodeWriter w2;
  w2.dedent();
  w2.line("x");
  EXPECT_EQ(w2.str(), "x\n");
}

TEST(CodeWriter, MultiPieceLinesAndRawWrites) {
  CodeWriter w;
  // Pieces concatenate with a single indent prefix and newline.
  w.open("entity e is");
  w.line("signal ", std::string("sig_a"), std::string_view("_data"), " : ",
         "std_logic", ";");
  w.close("end;");
  // All-empty pieces behave like a blank line: no trailing spaces.
  w.indent();
  w.line("", "", "");
  w.dedent();
  w.write("raw");
  w.write(" tail\n");
  EXPECT_EQ(w.str(),
            "entity e is\n  signal sig_a_data : std_logic;\nend;\n\nraw "
            "tail\n");
  EXPECT_EQ(w.bytes(), w.str().size());
}

TEST(CodeWriter, ConstructorDepthAndTake) {
  CodeWriter w("  ", 1);
  EXPECT_EQ(w.depth(), 1);
  w.line("indented");
  EXPECT_EQ(w.take(), "  indented\n");
  // take() clears the buffer.
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.take(), "");
}

TEST(CodeWriter, AppendSplicesWithoutReindenting) {
  CodeWriter body("  ", 2);
  body.line("inner");
  CodeWriter w;
  w.open("outer {");
  w.append(std::move(body));
  w.close("}");
  EXPECT_EQ(w.str(), "outer {\n    inner\n}\n");
  EXPECT_TRUE(body.empty());  // NOLINT(bugprone-use-after-move): documented
}

TEST(CodeWriter, ChunkBoundaryCorrectnessOnMultiMegabyteOutput) {
  // Varied line lengths force pieces to straddle chunk boundaries at many
  // different offsets; the rope must agree byte for byte with a flat string.
  const std::string pad(97, 'x');
  CodeWriter w;
  std::string expected;
  w.indent();
  for (int i = 0; i < 40000; ++i) {
    std::string number = std::to_string(i);
    std::string_view tail = std::string_view(pad).substr(
        0, static_cast<std::size_t>(i) % pad.size());
    w.line("line ", number, " ", tail, ";");
    expected += "  line ";
    expected += number;
    expected += ' ';
    expected += tail;
    expected += ";\n";
  }
  ASSERT_GT(expected.size(), 3u * CodeWriter::kChunkBytes);
  EXPECT_EQ(w.bytes(), expected.size());
  EXPECT_GE(w.chunk_allocs(), expected.size() / CodeWriter::kChunkBytes);
  EXPECT_EQ(w.take(), expected);
}

TEST(CodeWriter, AllocationCountRegression) {
  // ~1 MiB of output written as view pieces must allocate on the order of
  // one chunk per 64 KiB — not one (or more) string per line. The bound is
  // loose (chunk vector growth, indent cache, gtest bookkeeping) but two
  // orders of magnitude below a per-line-temporary regression.
  const std::string pad(64, 'y');
  const std::string_view pad_view(pad);
  CodeWriter w;
  w.indent();
  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 20000; ++i) {
    w.line("entry ", pad_view.substr(0, static_cast<std::size_t>(i) % 60),
           ";");
  }
  const std::uint64_t during =
      g_allocation_count.load(std::memory_order_relaxed) - before;
  EXPECT_GT(w.bytes(), 2u * CodeWriter::kChunkBytes);
  EXPECT_LE(during, 200u) << "CodeWriter should allocate per chunk, not per "
                             "line (20000 lines written)";
  // The writer's own account matches: a handful of 64 KiB chunks (plus the
  // small ramp-up chunks at the front of the rope).
  EXPECT_LE(w.chunk_allocs(),
            w.bytes() / CodeWriter::kChunkBytes + 4);
  // The process-wide counter (read by bench_compile_perf) moved by exactly
  // the chunks this writer allocated plus any concurrent writer activity —
  // in this single-threaded test, at least the writer's own chunks.
  EXPECT_GE(CodeWriter::process_chunk_allocs(), w.chunk_allocs());
}

TEST(TextTable, AlignedRendering) {
  TextTable t;
  t.header({"a", "long header"});
  t.row({"wide cell", "x"});
  std::string out = t.render();
  // Header, rule, one row.
  auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("---"), std::string::npos);
  // Columns align: 'long header' starts at same offset as 'x'.
  EXPECT_EQ(lines[0].find("long header"), lines[2].find("x"));
}

TEST(TextHelpers, FormatAndSplit) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_TRUE(starts_with_trimmed("   impl foo", "impl"));
  EXPECT_FALSE(starts_with_trimmed("   impl foo", "streamlet"));
  auto lines = split_lines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(TextHelpers, SanitizeIdentifier) {
  EXPECT_EQ(sanitize_identifier("Hello World"), "hello_world");
  EXPECT_EQ(sanitize_identifier("a__b___c"), "a_b_c");
  EXPECT_EQ(sanitize_identifier("\"MED BAG\""), "med_bag");
  EXPECT_EQ(sanitize_identifier("123"), "x123");
  EXPECT_EQ(sanitize_identifier("___"), "x");
  EXPECT_EQ(sanitize_identifier("trailing_"), "trailing");
}

TEST(Status, UnavailableHasStableExitCode) {
  EXPECT_EQ(exit_code(StatusCode::kUnavailable), 12);
  EXPECT_EQ(to_string(StatusCode::kUnavailable), "unavailable");
  // Every exit code round-trips through the inverse mapping — the wire
  // protocol reconstructs remote classifications from exit codes alone.
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const auto code = static_cast<StatusCode>(c);
    EXPECT_EQ(status_code_for_exit(exit_code(code)), code)
        << to_string(code);
  }
  // Unknown exit codes classify as internal rather than crashing.
  EXPECT_EQ(status_code_for_exit(250), StatusCode::kInternal);
}

TEST(Retry, JitterIsDeterministicAndBounded) {
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    for (int attempt = 1; attempt <= 16; ++attempt) {
      const double j = retry_jitter(seed, attempt);
      EXPECT_GE(j, 0.5);
      EXPECT_LT(j, 1.0);
      EXPECT_EQ(j, retry_jitter(seed, attempt));  // replayable
    }
  }
  // Different seeds desynchronize (thundering-herd protection).
  EXPECT_NE(retry_jitter(1, 1), retry_jitter(2, 1));
}

TEST(Retry, BackoffGrowsCapsAndHonorsServerHint) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_ms = 100.0;
  policy.max_backoff_ms = 250.0;
  policy.multiplier = 2.0;
  policy.seed = 7;
  Retry retry(policy);
  EXPECT_EQ(retry.next_attempt(), 1);

  double d1 = 0.0;
  ASSERT_TRUE(retry.next_delay_ms(0.0, d1));
  EXPECT_EQ(retry.attempts(), 1);
  EXPECT_EQ(retry.next_attempt(), 2);
  EXPECT_GE(d1, 100.0 * 0.5);
  EXPECT_LT(d1, 100.0);

  double d2 = 0.0;
  ASSERT_TRUE(retry.next_delay_ms(0.0, d2));
  EXPECT_GE(d2, 200.0 * 0.5);
  EXPECT_LT(d2, 200.0);

  // Third backoff would be 400ms nominal but caps at 250; a server hint
  // above the computed backoff becomes the floor.
  double d3 = 0.0;
  ASSERT_TRUE(retry.next_delay_ms(600.0, d3));
  EXPECT_EQ(d3, 600.0);

  // Attempt budget exhausted (4 attempts = 3 sleeps).
  double d4 = 0.0;
  EXPECT_FALSE(retry.next_delay_ms(0.0, d4));
}

TEST(Retry, SingleAttemptPolicyNeverSleeps) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  Retry retry(policy);
  double delay = 0.0;
  EXPECT_FALSE(retry.next_delay_ms(1000.0, delay));
}

}  // namespace
}  // namespace tydi::support
