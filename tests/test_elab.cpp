// Elaborator tests: template monomorphisation, generative statements,
// constraint checking, arrays, and diagnostics (the "evaluation" and "code
// expansion" stages of Fig. 3).
#include <gtest/gtest.h>

#include "src/elab/elaborator.hpp"
#include "src/parser/parser.hpp"

namespace tydi::elab {
namespace {

struct ElabOutcome {
  Design design;
  std::string report;
  std::size_t errors;
};

ElabOutcome elaborate(std::string_view text, const std::string& top) {
  auto program = std::make_shared<Program>();
  support::DiagnosticEngine diags;
  program->files.push_back(std::make_shared<const lang::SourceFile>(
      lang::parse(text, support::FileId{1}, diags)));
  EXPECT_EQ(diags.error_count(), 0u) << "parse failed: " << diags.render();
  Elaborator elaborator(program, diags);
  Design design = top.empty() ? elaborator.run_all() : elaborator.run(top);
  return ElabOutcome{std::move(design), diags.render(), diags.error_count()};
}

constexpr std::string_view kDupTemplate = R"(
type t_byte = Stream(Bit(8), d=1, c=2);
type t_word = Stream(Bit(32), d=1, c=2);

streamlet dup_s<T: type, n: int> {
  a: T in,
  b: T out [n],
}
impl dup_i<T: type, n: int> of dup_s<type T, n> @ external { }
)";

TEST(Elab, SimpleNonTemplateImpl) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->connections.size(), 1u);
  EXPECT_EQ(outcome.design.top(), "top");
}

TEST(Elab, TemplateMonomorphisationAndCaching) {
  std::string source = std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out [2], c: t_byte in, d: t_byte out [2], }
impl top of top_s {
  instance d1(dup_i<type t_byte, 2>),
  instance d2(dup_i<type t_byte, 2>),
  a => d1.a,
  c => d2.a,
  d1.b[0] => b[0],
  d1.b[1] => b[1],
  d2.b[0] => d[0],
  d2.b[1] => d[1],
}
)";
  auto outcome = elaborate(source, "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  // Both instances share ONE monomorphised impl (same arguments).
  std::size_t dup_count = 0;
  for (const Impl& impl : outcome.design.impls()) {
    if (impl.template_name == "dup_i") ++dup_count;
  }
  EXPECT_EQ(dup_count, 1u);
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->instances.size(), 2u);
  EXPECT_EQ(top->instances[0].impl_name, top->instances[1].impl_name);
}

TEST(Elab, DifferentArgumentsDifferentInstantiations) {
  std::string source = std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out [2], c: t_word in, d: t_word out [2], }
impl top of top_s {
  instance d1(dup_i<type t_byte, 2>),
  instance d2(dup_i<type t_word, 2>),
  a => d1.a,
  c => d2.a,
  d1.b[0] => b[0],
  d1.b[1] => b[1],
  d2.b[0] => d[0],
  d2.b[1] => d[1],
}
)";
  auto outcome = elaborate(source, "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  EXPECT_NE(top->instances[0].impl_name, top->instances[1].impl_name);
}

TEST(Elab, PortArrayExpansion) {
  auto outcome = elaborate(std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out [3], }
impl top of top_s {
  instance d(dup_i<type t_byte, 3>),
  a => d.a,
  d.b[0] => b[0],
  d.b[1] => b[1],
  d.b[2] => b[2],
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  const Streamlet* s = outcome.design.streamlet_of(*top);
  ASSERT_NE(s, nullptr);
  // 1 scalar + 3 expanded array ports.
  EXPECT_EQ(s->ports.size(), 4u);
  EXPECT_NE(s->find_port("b_0"), nullptr);
  EXPECT_NE(s->find_port("b_2"), nullptr);
  EXPECT_EQ(s->find_port("b"), nullptr);
}

TEST(Elab, InstanceArrayExpansion) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet u_s { a: t in, b: t out, }
impl u_i of u_s @ external { }
streamlet top_s { a: t in [4], b: t out [4], }
impl top of top_s {
  instance stage(u_i) [4],
  for i in 0->4 {
    a[i] => stage[i].a,
    stage[i].b => b[i],
  }
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances.size(), 4u);
  EXPECT_NE(top->find_instance("stage_0"), nullptr);
  EXPECT_NE(top->find_instance("stage_3"), nullptr);
  EXPECT_EQ(top->connections.size(), 8u);
}

TEST(Elab, GenerativeIfSelectsBranch) {
  auto outcome = elaborate(R"(
const use_first = false;
type t = Stream(Bit(8), d=1, c=2);
streamlet u_s { a: t in, b: t out, }
impl u1 of u_s @ external { }
impl u2 of u_s @ external { }
streamlet top_s { a: t in, b: t out, }
impl top of top_s {
  if (use_first) {
    instance x(u1),
    a => x.a,
    x.b => b,
  } else {
    instance y(u2),
    a => y.a,
    y.b => b,
  }
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_EQ(top->instances.size(), 1u);
  EXPECT_EQ(top->instances[0].name, "y");
  EXPECT_EQ(outcome.design.find_impl("u1"), nullptr);  // never elaborated
}

TEST(Elab, ForOverStringArrayWithIndexedInstances) {
  // The Sec. IV-A pattern: four comparators from a string array.
  auto outcome = elaborate(R"(
type t = Stream(Bit(80), d=1, c=2);
type t_b = Stream(Bit(1), d=1, c=2);
streamlet cmp_s<T: type, v: string> { a: T in, q: t_b out, }
impl cmp_i<T: type, v: string> of cmp_s<type T, v> @ external { }
streamlet top_s { a: t in [4], q: t_b out [4], }
impl top of top_s {
  const values = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
  for i in 0->4 {
    instance cmp[i](cmp_i<type t, values[i]>),
    a[i] => cmp[i].a,
    cmp[i].q => q[i],
  }
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  ASSERT_EQ(top->instances.size(), 4u);
  // Four DIFFERENT template instances (different string arguments).
  std::set<std::string> impls;
  for (const Instance& inst : top->instances) impls.insert(inst.impl_name);
  EXPECT_EQ(impls.size(), 4u);
}

TEST(Elab, AssertHoldsAndFails) {
  auto ok = elaborate(R"(
const w = 32;
type t = Stream(Bit(w), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  assert(w % 8 == 0, "byte aligned");
  a => b,
}
)",
                      "top");
  EXPECT_EQ(ok.errors, 0u) << ok.report;

  auto fail = elaborate(R"(
const w = 33;
type t = Stream(Bit(w), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  assert(w % 8 == 0, "byte aligned");
  a => b,
}
)",
                        "top");
  EXPECT_GT(fail.errors, 0u);
  EXPECT_NE(fail.report.find("byte aligned"), std::string::npos);
}

TEST(Elab, ImplOfConstraintAcceptsMatchingFamily) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet pu_s<T: type> { a: T in, b: T out, }
impl worker of pu_s<type t> @ external { }
streamlet wrap_s { a: t in, b: t out, }
impl wrap<p: impl of pu_s> of wrap_s {
  instance u(p),
  a => u.a,
  u.b => b,
}
streamlet top_s { a: t in, b: t out, }
impl top of top_s {
  instance w(wrap<impl worker>),
  a => w.a,
  w.b => b,
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
}

TEST(Elab, ImplOfConstraintRejectsWrongFamily) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet pu_s<T: type> { a: T in, b: T out, }
streamlet other_s { a: t in, }
impl wrong of other_s @ external { }
streamlet wrap_s { a: t in, b: t out, }
impl wrap<p: impl of pu_s> of wrap_s {
  instance u(p),
  a => u.a,
  u.b => b,
}
streamlet top_s { a: t in, b: t out, }
impl top of top_s {
  instance w(wrap<impl wrong>),
  a => w.a,
  w.b => b,
}
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("requires an impl of"), std::string::npos);
}

TEST(Elab, WrongArgumentKindRejected) {
  auto outcome = elaborate(std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out [2], }
impl top of top_s {
  instance d(dup_i<3, 2>),
  a => d.a,
  d.b[0] => b[0],
  d.b[1] => b[1],
}
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("expects type"), std::string::npos);
}

TEST(Elab, WrongArgumentCountRejected) {
  auto outcome = elaborate(std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out, }
impl top of top_s {
  instance d(dup_i<type t_byte>),
  a => d.a,
  d.b_0 => b,
}
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("argument"), std::string::npos);
}

TEST(Elab, PortMustBeStreamType) {
  auto outcome = elaborate(R"(
streamlet s { a: Bit(8) in, }
impl top of s { }
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("Stream"), std::string::npos);
}

TEST(Elab, RecursiveTypeRejected) {
  auto outcome = elaborate(R"(
Group A { x: B, }
Group B { y: A, }
type t = Stream(A, d=1);
streamlet s { a: t in, }
impl top of s { }
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("recursive"), std::string::npos);
}

TEST(Elab, DuplicateDeclarationsRejected) {
  auto outcome = elaborate(R"(
const x = 1;
const x = 2;
type t = Stream(Bit(1), d=1);
streamlet s { a: t in, }
impl top of s { }
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("duplicate"), std::string::npos);
}

TEST(Elab, LocalConstImmutability) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  const n = 1;
  const n = 2;
  a => b,
}
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("immutable"), std::string::npos);
}

TEST(Elab, ForLoopVariableShadowingAllowedPerIteration) {
  // A const inside the for body re-binds each iteration without error.
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet u_s { a: t in, b: t out, }
impl u_i of u_s @ external { }
streamlet s { a: t in [2], b: t out [2], }
impl top of s {
  for i in 0->2 {
    const doubled = i * 2;
    instance u[doubled](u_i),
    a[i] => u[doubled].a,
    u[doubled].b => b[i],
  }
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  EXPECT_NE(top->find_instance("u_0"), nullptr);
  EXPECT_NE(top->find_instance("u_2"), nullptr);
}

TEST(Elab, UnknownTopReported) {
  auto outcome = elaborate("const x = 1;", "missing");
  EXPECT_GT(outcome.errors, 0u);
}

TEST(Elab, TemplateTopRejected) {
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s<T: type> { a: T in, }
impl top<T: type> of s<type T> @ external { }
)",
                           "top");
  EXPECT_GT(outcome.errors, 0u);
  EXPECT_NE(outcome.report.find("template"), std::string::npos);
}

TEST(Elab, ClockDomainAnnotationsResolve) {
  auto outcome = elaborate(R"(
const fast = clockdomain("fast_200", 200);
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ fast, b: t out @ fast, c: t in @ bare_label, }
impl top of s {
  a => b,
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  const Streamlet* s = outcome.design.find_streamlet("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find_port("a")->clock_domain, "fast_200");
  EXPECT_EQ(s->find_port("c")->clock_domain, "bare_label");
}

TEST(Elab, TemplateArgsPassedThroughToStreamlet) {
  // The paper's "impl void_i<type_in: type> of void_s<type type_in>"
  // pattern: forwarding a template parameter.
  auto outcome = elaborate(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet void_s<T: type> { a: T in, }
impl void_i<T: type> of void_s<type T> @ external { }
streamlet top_s { a: t in, }
impl top of top_s {
  instance v(void_i<type t>),
  a => v.a,
}
)",
                           "top");
  EXPECT_EQ(outcome.errors, 0u) << outcome.report;
  // The monomorphised void_i's streamlet port has the argument type.
  for (const Impl& impl : outcome.design.impls()) {
    if (impl.template_name == "void_i") {
      const Streamlet* s = outcome.design.streamlet_of(impl);
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->find_port("a")->type->origin(), "t");
    }
  }
}

TEST(Elab, TemplateArgValueDisplayAndMangling) {
  auto outcome = elaborate(std::string(kDupTemplate) + R"(
streamlet top_s { a: t_byte in, b: t_byte out [2], }
impl top of top_s {
  instance d(dup_i<type t_byte, 2>),
  a => d.a,
  d.b[0] => b[0],
  d.b[1] => b[1],
}
)",
                           "top");
  ASSERT_EQ(outcome.errors, 0u) << outcome.report;
  const Impl* top = outcome.design.find_impl("top");
  const Impl* dup = outcome.design.find_impl(top->instances[0].impl_name);
  ASSERT_NE(dup, nullptr);
  ASSERT_EQ(dup->template_args.size(), 2u);
  EXPECT_EQ(dup->template_args[0].display(), "t_byte");
  EXPECT_EQ(dup->template_args[1].display(), "2");
  EXPECT_NE(dup->name.find("dup_i__"), std::string::npos);
  EXPECT_EQ(dup->display_name, "dup_i<t_byte, 2>");
}

}  // namespace
}  // namespace tydi::elab
