// Integration tests: the TPC-H workload of Sec. VI compiles end-to-end
// (parse -> elaborate -> sugar -> DRC -> IR -> VHDL) and the Table IV
// quantities are measurable and shaped like the paper's.
#include <gtest/gtest.h>

#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

TEST(TpchSchemas, AllSevenTablesPresent) {
  const auto& schemas = tpch::schemas();
  ASSERT_EQ(schemas.size(), 7u);
  EXPECT_EQ(schemas[0].name, "lineitem");
  EXPECT_EQ(schemas[0].columns.size(), 16u);
  EXPECT_TRUE(schemas[0].is_primary_key("l_orderkey"));
  EXPECT_FALSE(schemas[0].is_primary_key("l_quantity"));
}

TEST(TpchSchemas, DecimalBitWidthMatchesPaperFormula) {
  // Bit(ceil(log2(10^15 - 1))) = 50 for decimal(15,2).
  const fletcher::Column* c = tpch::schemas()[0].find_column("l_quantity");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->bit_width(), 50);
}

TEST(TpchFletcher, InterfaceGeneratesAndCounts) {
  const std::string& src = tpch::fletcher_source();
  EXPECT_NE(src.find("streamlet lineitem_reader_s"), std::string::npos);
  EXPECT_NE(src.find("impl lineitem_reader_i of lineitem_reader_s"),
            std::string::npos);
  // The Fletcher part LoC should be in the vicinity of the paper's 166.
  EXPECT_GT(tpch::fletcher_loc(), 80u);
  EXPECT_LT(tpch::fletcher_loc(), 320u);
}

TEST(TpchStdlib, LocNearPaper) {
  // Paper Table IV: LoCs = 151.
  EXPECT_GT(stdlib::stdlib_loc(), 60u);
  EXPECT_LT(stdlib::stdlib_loc(), 300u);
}

class TpchQueryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TpchQueryTest, CompilesCleanThroughFullPipeline) {
  const tpch::QueryCase& q = tpch::queries()[GetParam()];
  driver::CompileResult result = tpch::compile_query(q);
  EXPECT_TRUE(result.success()) << q.id << " " << q.note << "\n"
                                << result.report();
  if (q.sugaring) {
    EXPECT_TRUE(result.drc_report.clean())
        << q.id << "\n" << result.drc_report.render();
  }
  EXPECT_FALSE(result.vhdl_text.empty());
  EXPECT_FALSE(result.ir_text.empty());
  // Generated VHDL must be substantial (thousands of lines per Table IV).
  EXPECT_GT(support::count_vhdl_loc(result.vhdl_text), 500u) << q.id;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, TpchQueryTest,
    ::testing::Range<std::size_t>(0, tpch::queries().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      const tpch::QueryCase& q = tpch::queries()[info.param];
      std::string name = q.id + (q.note.empty() ? "" : "_nosugar");
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TpchPipeline, CompilationIsDeterministic) {
  // Property: identical inputs produce byte-identical IR and VHDL — the
  // LoC measurements of Table IV are reproducible.
  for (const tpch::QueryCase& q : tpch::queries()) {
    driver::CompileResult a = tpch::compile_query(q);
    driver::CompileResult b = tpch::compile_query(q);
    EXPECT_EQ(a.ir_text, b.ir_text) << q.id;
    EXPECT_EQ(a.vhdl_text, b.vhdl_text) << q.id;
  }
}

TEST(TpchPipeline, StdlibPrettyPrintRoundTripElaborates) {
  // Property: parse(stdlib) -> print -> reparse yields a library that still
  // compiles every query (the printer emits valid Tydi-lang).
  support::DiagnosticEngine diags;
  support::SourceManager sm;
  auto id = sm.add("std.td", std::string(stdlib::stdlib_source()));
  lang::SourceFile parsed = lang::parse(sm.text(id), id, diags);
  ASSERT_EQ(diags.error_count(), 0u) << diags.render();
  std::string printed = lang::to_source(parsed);

  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  driver::CompileOptions options;
  options.top = q6->top_impl;
  options.include_stdlib = false;  // substitute the reprinted library
  std::vector<driver::NamedSource> sources = {
      {"std_reprinted.td", printed},
      {"fletcher.td", tpch::fletcher_source()},
      {"q6.td", std::string(q6->source)}};
  driver::CompileResult result = driver::compile(sources, options);
  EXPECT_TRUE(result.success()) << result.report();
}

TEST(TpchTable4, RatiosHaveThePaperShape) {
  auto rows = tpch::measure_table4();
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_TRUE(row.compiled_ok) << row.query;
    // Rq must be >> 1: Tydi-lang is far more compact than the VHDL it
    // generates (paper band: 18.8 - 42.5).
    EXPECT_GT(row.ratio_query, 5.0) << row.query;
    EXPECT_GT(row.ratio_total, 1.0) << row.query;
    EXPECT_GT(row.ratio_query, row.ratio_total) << row.query;
  }
}

}  // namespace
}  // namespace tydi
