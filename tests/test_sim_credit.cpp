// Credit-based ack batching + columnar trace tests.
//
//  - Credit mode (SimOptions::ack_mode = AckMode::kCredit) must be
//    *functionally* equivalent to the exact engine across shard counts and
//    credit windows on saturated-pipeline, parallelize and TPC-H designs:
//    same delivered packets per channel, same per-channel payload orders,
//    same top outputs and state-transition sequences — timestamps may shift
//    by up to one credit window.
//  - The columnar TraceBuffer must reproduce the old struct trace field for
//    field (canonical order, per-channel boundary info) and survive a
//    binary round-trip.
//  - Profile-weighted partitioning must honour measured activity weights.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/shard/partition.hpp"
#include "src/sim/trace.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

/// A deep linear pipeline driven faster than its stages can serve: every
/// channel — including whichever ones a partition cuts — runs saturated,
/// which is exactly the regime where the exact protocol degrades to
/// per-timestamp ack-fixpoint rounds.
constexpr std::string_view kSaturatedPipelineSource = R"tydi(
package satpipe;
type t_word = Stream(Bit(32), d=1, c=2);
streamlet stage_s<T: type> { in_: T in, out: T out, }
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}
impl slow_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(6);
      send(out);
      ack(in_);
    }
  }
}
streamlet sat_s { feed: t_word in, drained: t_word out, }
impl sat_top of sat_s {
  instance pipe(pipeline_i<type t_word, impl slow_stage, 12>),
  feed => pipe.in_,
  pipe.out => drained,
}
)tydi";

constexpr std::string_view kParallelizeSource = R"tydi(
package partest;
type t_data = Stream(Bit(64), d=1, c=2);
impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}
streamlet partest_top_s { feed: t_data in, result: t_data out, }
impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, 8>),
  feed => par.in_,
  par.out => result,
}
)tydi";

constexpr std::string_view kDeadlockSource = R"tydi(
package deadtest;
type t_data = Stream(Bit(8), d=1, c=2);
streamlet join_s { a: t_data in, b: t_data in, out: t_data out, }
impl join_i of join_s @ external {
  sim {
    on a.receive && b.receive { send(out); ack(a); ack(b); }
  }
}
streamlet loop_s { in_: t_data in, out: t_data out, }
impl echo_i of loop_s @ external {
  sim {
    on in_.receive { send(out); ack(in_); }
  }
}
streamlet deadtop_s { feed: t_data in, result: t_data out, }
impl deadtop of deadtop_s {
  instance join(join_i),
  instance echo(echo_i),
  instance dup(duplicator_i<type t_data, 2>),
  feed => join.a,
  echo.out => join.b,
  join.out => dup.in_,
  dup.out_[0] => echo.in_,
  dup.out_[1] => result,
}
)tydi";

driver::CompileResult compile(std::string_view source, const std::string& top) {
  driver::CompileOptions options;
  options.top = top;
  options.emit_vhdl = false;
  driver::CompileResult compiled =
      driver::compile_source(std::string(source), options);
  EXPECT_TRUE(compiled.success()) << compiled.report();
  return compiled;
}

sim::SimOptions base_options(const elab::Design& design, int packets,
                             double interval_ns) {
  sim::SimOptions options;
  options.max_time_ns = 1.0e7;
  options.stimuli = sim::generic_stimuli(design, packets, interval_ns);
  return options;
}

void expect_credit_equivalent(const driver::CompileResult& compiled,
                              int packets, double interval_ns,
                              const char* what) {
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions exact =
      base_options(compiled.design, packets, interval_ns);
  sim::SimResult reference = engine.run(exact);
  EXPECT_GT(reference.events_processed, 0u) << what;
  for (int shards : {1, 2, 4, 7}) {
    for (bool auto_partition : {true, false}) {
      for (int window : {1, 4, 16}) {
        sim::SimOptions credit =
            base_options(compiled.design, packets, interval_ns);
        credit.shards = shards;
        credit.auto_partition = auto_partition;
        credit.ack_mode = sim::AckMode::kCredit;
        credit.credit_window = window;
        sim::SimResult result = engine.run(credit);
        std::string why;
        EXPECT_TRUE(
            sim::results_functionally_equivalent(reference, result, &why))
            << what << " with " << shards << " shard(s), window " << window
            << " (auto_partition=" << auto_partition << "): " << why;
      }
    }
  }
}

TEST(SimCredit, SaturatedPipelineFunctionallyEquivalent) {
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  // Interval 1 ns against a 6 ns service time: deep saturation.
  expect_credit_equivalent(compiled, 64, 1.0, "saturated_pipeline");
}

TEST(SimCredit, ParallelizeFunctionallyEquivalent) {
  driver::CompileResult compiled = compile(kParallelizeSource, "partest_top");
  expect_credit_equivalent(compiled, 96, 10.0, "parallelize");
}

TEST(SimCredit, TpchQueryFunctionallyEquivalent) {
  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  driver::CompileResult compiled = tpch::compile_query(*q6);
  ASSERT_TRUE(compiled.success()) << compiled.report();
  expect_credit_equivalent(compiled, 32, 10.0, "tpch_q6");
}

TEST(SimCredit, SingleShardCreditIsExact) {
  // No cut channels at one shard: credit mode must be byte-identical, not
  // merely equivalent.
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult exact =
      engine.run(base_options(compiled.design, 48, 1.0));
  sim::SimOptions credit_options = base_options(compiled.design, 48, 1.0);
  credit_options.ack_mode = sim::AckMode::kCredit;
  sim::SimResult credit = engine.run(credit_options);
  std::string why;
  EXPECT_TRUE(sim::results_identical(exact, credit, &why)) << why;
}

TEST(SimCredit, DeadlockStillDetected) {
  driver::CompileResult compiled = compile(kDeadlockSource, "deadtop");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions exact = base_options(compiled.design, 1, 10.0);
  sim::SimResult reference = engine.run(exact);
  EXPECT_TRUE(reference.deadlock);
  for (int shards : {2, 4}) {
    sim::SimOptions credit = base_options(compiled.design, 1, 10.0);
    credit.shards = shards;
    credit.auto_partition = false;  // force cuts on the tiny graph
    credit.ack_mode = sim::AckMode::kCredit;
    sim::SimResult result = engine.run(credit);
    EXPECT_TRUE(result.deadlock) << shards << " shards";
  }
}

TEST(SimCredit, DeadlockCycleIdenticalAcrossShards) {
  // The wait-for cycle diagnosis must name the same components in the same
  // order no matter how the graph was sharded: detection runs over the
  // merged quiesced graph, and credit-mode timestamp shifts must not
  // perturb it.
  driver::CompileResult compiled = compile(kDeadlockSource, "deadtop");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult reference = engine.run(base_options(compiled.design, 1, 10.0));
  ASSERT_TRUE(reference.deadlock);
  ASSERT_FALSE(reference.deadlock_cycle.empty());
  for (int shards : {1, 2, 4}) {
    sim::SimOptions credit = base_options(compiled.design, 1, 10.0);
    credit.shards = shards;
    credit.auto_partition = false;
    credit.ack_mode = sim::AckMode::kCredit;
    sim::SimResult result = engine.run(credit);
    EXPECT_TRUE(result.deadlock) << shards << " shards";
    EXPECT_EQ(result.deadlock_cycle, reference.deadlock_cycle)
        << shards << " shards";
    EXPECT_EQ(result.status().code(), support::StatusCode::kDeadlock)
        << shards << " shards";
    EXPECT_EQ(result.status().exit_code(), 9) << shards << " shards";
  }
}

TEST(SimCredit, RepeatedCreditRunsIdentical) {
  // Credit mode relaxes exactness versus the *exact engine*, not
  // reproducibility: the same configuration must be deterministic.
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options = base_options(compiled.design, 48, 1.0);
  options.shards = 4;
  options.ack_mode = sim::AckMode::kCredit;
  options.credit_window = 4;
  sim::SimResult first = engine.run(options);
  sim::SimResult second = engine.run(options);
  std::string why;
  EXPECT_TRUE(sim::results_identical(first, second, &why)) << why;
}

// ---------------------------------------------------------------------------
// Columnar trace
// ---------------------------------------------------------------------------

TEST(SimTrace, ColumnarTraceMatchesStructView) {
  // The materialized TraceEvent view must carry exactly what the old
  // per-event structs did: canonical (time, channel) order, per-event
  // payloads, and boundary/port info resolved through the channel table.
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 32, 1.0));
  ASSERT_GT(result.trace.size(), 0u);
  EXPECT_TRUE(result.trace.canonically_sorted());

  std::size_t top_inputs = 0;
  std::size_t top_outputs = 0;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    sim::TraceEvent ev = result.trace_event(i);
    ASSERT_GE(ev.channel_index, 0);
    ASSERT_LT(static_cast<std::size_t>(ev.channel_index),
              result.channels.size());
    const sim::ChannelStats& ch = result.channels[ev.channel_index];
    EXPECT_EQ(ev.channel, ch.name);
    EXPECT_EQ(ev.is_top_input, ch.top_input);
    EXPECT_EQ(ev.is_top_output, ch.top_output);
    EXPECT_EQ(ev.top_port, ch.top_port);
    EXPECT_EQ(ev.time_ns, result.trace.time_ns(i));
    EXPECT_EQ(ev.packet.value, result.trace.value(i));
    EXPECT_EQ(ev.packet.last, result.trace.last(i));
    top_inputs += ev.is_top_input ? 1 : 0;
    top_outputs += ev.is_top_output ? 1 : 0;
  }
  // Boundary events must reproduce the stimuli / recorded outputs.
  EXPECT_EQ(top_inputs, 32u);
  EXPECT_EQ(top_outputs, result.top_outputs.at("drained").size());
}

TEST(SimTrace, PerChannelPacketCountsMatchStats) {
  driver::CompileResult compiled = compile(kParallelizeSource, "partest_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 24, 10.0));
  std::vector<std::size_t> per_channel(result.channels.size(), 0);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    per_channel[result.trace.channel(i)] += 1;
  }
  for (std::size_t ch = 0; ch < result.channels.size(); ++ch) {
    EXPECT_EQ(per_channel[ch], result.channels[ch].packets)
        << result.channels[ch].name;
  }
}

TEST(SimTrace, BinaryRoundTrip) {
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 16, 1.0));
  ASSERT_GT(result.trace.size(), 0u);

  std::stringstream stream;
  ASSERT_TRUE(sim::write_binary_trace(result, stream));
  sim::BinaryTrace loaded;
  support::Status read = sim::read_binary_trace(stream, loaded);
  ASSERT_TRUE(read.is_ok()) << read.render();

  ASSERT_EQ(loaded.channels.size(), result.channels.size());
  for (std::size_t i = 0; i < loaded.channels.size(); ++i) {
    EXPECT_EQ(loaded.channels[i], result.channels[i].name);
  }
  ASSERT_EQ(loaded.trace.size(), result.trace.size());
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(loaded.trace.time_ns(i), result.trace.time_ns(i));
    EXPECT_EQ(loaded.trace.channel(i), result.trace.channel(i));
    EXPECT_EQ(loaded.trace.value(i), result.trace.value(i));
    EXPECT_EQ(loaded.trace.last(i), result.trace.last(i));
  }
}

TEST(SimTrace, RejectsGarbage) {
  std::stringstream stream("definitely not a trace");
  sim::BinaryTrace loaded;
  support::Status read = sim::read_binary_trace(stream, loaded);
  EXPECT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), support::StatusCode::kCorruptData);
  EXPECT_FALSE(read.message().empty());
}

TEST(SimTrace, RejectsOutOfRangeChannelIndex) {
  // A bit-flipped channel column entry must be rejected up front — an
  // out-of-range index would otherwise reach every consumer that uses it
  // to address the channel-name table.
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 8, 1.0));
  ASSERT_GT(result.trace.size(), 0u);
  std::stringstream stream;
  ASSERT_TRUE(sim::write_binary_trace(result, stream));
  std::string bytes = stream.str();

  // TYTR v1: magic(4) version(4) events(8) channels(4), then the name
  // table (u32 length + bytes each), then times (8 per event), then the
  // channel column (4 per event) — patch its first entry out of range.
  std::size_t offset = 4 + 4 + 8 + 4;
  for (const sim::ChannelStats& c : result.channels) {
    offset += 4 + c.name.size();
  }
  offset += result.trace.size() * sizeof(double);
  ASSERT_LE(offset + sizeof(std::int32_t), bytes.size());
  std::int32_t bogus = static_cast<std::int32_t>(result.channels.size()) + 7;
  std::memcpy(bytes.data() + offset, &bogus, sizeof(bogus));

  std::stringstream corrupted(bytes);
  sim::BinaryTrace loaded;
  support::Status read = sim::read_binary_trace(corrupted, loaded);
  EXPECT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), support::StatusCode::kCorruptData);
  EXPECT_NE(read.message().find("out of range"), std::string::npos)
      << read.render();
}

TEST(SimTrace, RejectsTruncatedFile) {
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 8, 1.0));
  std::stringstream stream;
  ASSERT_TRUE(sim::write_binary_trace(result, stream));
  std::string bytes = stream.str();
  // Chop the file at several depths; every truncation must produce a
  // corrupt-data Status, never UB or a partial success.
  for (std::size_t keep : {std::size_t{6}, std::size_t{18},
                           bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, keep));
    sim::BinaryTrace loaded;
    support::Status read = sim::read_binary_trace(truncated, loaded);
    EXPECT_FALSE(read.is_ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(read.code(), support::StatusCode::kCorruptData)
        << "kept " << keep << " bytes";
  }
}

TEST(SimTrace, UnreadablePathIsIoError) {
  sim::BinaryTrace loaded;
  support::Status read =
      sim::read_binary_trace("/nonexistent/dir/trace.tytr", loaded);
  EXPECT_FALSE(read.is_ok());
  EXPECT_EQ(read.code(), support::StatusCode::kIoError);
  EXPECT_EQ(read.exit_code(), 3);
}

TEST(SimTrace, SlabGrowthIsChunked) {
  std::uint64_t before = sim::TraceBuffer::slabs_allocated();
  sim::TraceBuffer buffer;
  constexpr std::size_t kEvents = 100000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    buffer.append(static_cast<double>(i), static_cast<std::int32_t>(i % 7),
                  static_cast<std::int64_t>(i), (i % 13) == 0);
  }
  ASSERT_EQ(buffer.size(), kEvents);
  std::size_t expected_slabs =
      (kEvents + sim::TraceBuffer::kSlabEvents - 1) /
      sim::TraceBuffer::kSlabEvents;
  EXPECT_EQ(buffer.slab_count(), expected_slabs);
  EXPECT_EQ(sim::TraceBuffer::slabs_allocated() - before, expected_slabs);
  for (std::size_t i : {std::size_t{0}, std::size_t{4095}, std::size_t{4096},
                        kEvents - 1}) {
    EXPECT_EQ(buffer.time_ns(i), static_cast<double>(i));
    EXPECT_EQ(buffer.value(i), static_cast<std::int64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Profile-weighted partitioning
// ---------------------------------------------------------------------------

TEST(SimProfilePartition, WeightsSteerTheSplit) {
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::SimGraph graph;
  sim::SimOptions options = base_options(compiled.design, 1, 10.0);
  ASSERT_TRUE(sim::build_sim_graph(compiled.design, options, diags, graph));
  ASSERT_GE(graph.components.size(), 12u);

  // Degree-only: a 12-stage chain splits 6/6 at two shards.
  sim::shard::PartitionStats even =
      sim::shard::partition_graph(graph, 2, /*auto_partition=*/true);
  EXPECT_FALSE(even.profile_weighted);
  ASSERT_EQ(even.components_per_shard.size(), 2u);
  EXPECT_EQ(even.components_per_shard[0], even.components_per_shard[1]);

  // All measured activity on one component: the first block closes almost
  // immediately and the rest lands in the second shard.
  std::vector<double> weights(graph.components.size(), 1.0);
  weights[0] = 1000.0;
  sim::shard::PartitionStats skewed = sim::shard::partition_graph(
      graph, 2, /*auto_partition=*/true, &weights);
  EXPECT_TRUE(skewed.profile_weighted);
  ASSERT_EQ(skewed.components_per_shard.size(), 2u);
  EXPECT_LT(skewed.components_per_shard[0], even.components_per_shard[0]);
  std::vector<std::string> errors;
  EXPECT_TRUE(sim::shard::validate_partition(graph, skewed, errors))
      << (errors.empty() ? "" : errors.front());
}

TEST(SimProfilePartition, ComponentEventsRecorded) {
  driver::CompileResult compiled = compile(kSaturatedPipelineSource,
                                           "sat_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 16, 1.0));
  ASSERT_FALSE(result.component_events.empty());
  std::uint64_t total = 0;
  for (std::uint64_t events : result.component_events) total += events;
  EXPECT_GT(total, 0u);

  // The weights round-trip into a sharded run and stay exact-identical
  // (profiling only changes the partition, never the results).
  sim::SimOptions weighted = base_options(compiled.design, 16, 1.0);
  weighted.shards = 4;
  weighted.component_weights.assign(result.component_events.begin(),
                                    result.component_events.end());
  sim::SimResult sharded = engine.run(weighted);
  std::string why;
  EXPECT_TRUE(sim::results_identical(result, sharded, &why)) << why;
}

}  // namespace
}  // namespace tydi
