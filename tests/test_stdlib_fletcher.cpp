// Standard library and Fletcher substrate tests: the stdlib parses and
// elaborates standalone, every RTL family has a simulator model, and the
// Fletcher generator produces the interface contract the queries rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/fletcher/schema.hpp"
#include "src/sim/behavior.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"
#include "src/vhdl/rtl_lib.hpp"

namespace tydi {
namespace {

TEST(Stdlib, ParsesStandalone) {
  driver::CompileOptions options;
  // No top: elaborate all concrete impls (templates stay dormant).
  options.include_stdlib = true;
  options.emit_vhdl = false;
  auto result = driver::compile({}, options);
  EXPECT_TRUE(result.success()) << result.report();
}

TEST(Stdlib, DefinesTheDocumentedTemplates) {
  std::string_view src = stdlib::stdlib_source();
  for (std::string_view name :
       {"duplicator_s", "duplicator_i", "voider_s", "voider_i", "source_i",
        "sink_i", "unary_op_s", "adder_i", "subtractor_i", "multiplier_i",
        "comparator_i", "const_compare_i", "const_compare_int_i",
        "binary_op_s", "add2_i", "sub2_i", "mul2_i", "cmp2_i", "filter_s",
        "filter_i", "logic_reduce_s", "logic_and_i", "logic_or_i", "demux_s",
        "demux_i", "mux_s", "mux_i", "accumulator_i", "const_generator_i",
        "process_unit_s", "parallelize_s", "parallelize_i", "std_bool"}) {
    EXPECT_NE(src.find(name), std::string_view::npos) << name;
  }
}

TEST(Stdlib, EveryRtlFamilyHasASimulatorModel) {
  // The hard-coded RTL generator (Sec. IV-C) and the simulator models
  // (Sec. V) must cover the same template families, so a design that can be
  // generated can also be simulated.
  const auto& rtl = vhdl::stdlib_rtl_families();
  const auto& sim = sim::builtin_behavior_families();
  for (const std::string& family : rtl) {
    EXPECT_NE(std::find(sim.begin(), sim.end(), family), sim.end())
        << "RTL family '" << family << "' has no simulator model";
  }
}

TEST(Stdlib, LocMatchesCounter) {
  EXPECT_EQ(stdlib::stdlib_loc(),
            support::count_tydi_loc(stdlib::stdlib_source()));
  EXPECT_EQ(stdlib::stdlib_file_name(), "std.td");
}

// --- Fletcher ---------------------------------------------------------------

fletcher::Schema demo_schema() {
  fletcher::Schema s;
  s.name = "demo";
  s.primary_keys = {"id"};
  fletcher::Column id;
  id.name = "id";
  id.type = fletcher::ColumnType::kInt64;
  fletcher::Column price;
  price.name = "price";
  price.type = fletcher::ColumnType::kDecimal;
  price.precision = 15;
  price.scale = 2;
  fletcher::Column tag;
  tag.name = "tag";
  tag.type = fletcher::ColumnType::kFixedUtf8;
  tag.fixed_length = 10;
  fletcher::Column day;
  day.name = "day";
  day.type = fletcher::ColumnType::kDate;
  s.columns = {id, price, tag, day};
  return s;
}

TEST(Fletcher, ColumnBitWidths) {
  auto s = demo_schema();
  EXPECT_EQ(s.find_column("id")->bit_width(), 64);
  EXPECT_EQ(s.find_column("price")->bit_width(), 50);  // ceil(log2(10^15-1))
  EXPECT_EQ(s.find_column("tag")->bit_width(), 80);
  EXPECT_EQ(s.find_column("day")->bit_width(), 32);
  EXPECT_EQ(s.find_column("nope"), nullptr);
}

TEST(Fletcher, Int32Width) {
  fletcher::Column c;
  c.type = fletcher::ColumnType::kInt32;
  EXPECT_EQ(c.bit_width(), 32);
}

TEST(Fletcher, InterfaceTextContract) {
  auto s = demo_schema();
  std::string text =
      fletcher::generate_interface(s, fletcher::FletchgenOptions{});
  // One named type alias per column.
  EXPECT_NE(text.find("type t_demo_id = Stream(Bit(64), d=1, c=2);"),
            std::string::npos);
  EXPECT_NE(text.find("type t_demo_price = Stream(Bit(50), d=1, c=2);"),
            std::string::npos);
  // Primary keys are input ports, other columns outputs.
  EXPECT_NE(text.find("id: t_demo_id in,"), std::string::npos);
  EXPECT_NE(text.find("price: t_demo_price out,"), std::string::npos);
  // External reader impl.
  EXPECT_NE(text.find("impl demo_reader_i of demo_reader_s @ external"),
            std::string::npos);
}

TEST(Fletcher, GeneratedInterfaceCompilesAndConnects) {
  auto s = demo_schema();
  std::string interface =
      fletcher::generate_interfaces({s}, fletcher::FletchgenOptions{});
  std::string query = R"(
streamlet top_s {
  req: t_demo_id in,
  total: t_demo_price out,
}
impl top of top_s {
  instance reader(demo_reader_i),
  req => reader.id,
  reader.price => total,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile(
      {{"fletcher.td", interface}, {"q.td", query}}, options);
  ASSERT_TRUE(result.success()) << result.report();
  // Unused columns (tag, day) were voided by sugaring.
  EXPECT_EQ(result.sugar_stats.voiders_inserted, 2u);
  EXPECT_TRUE(result.drc_report.clean()) << result.drc_report.render();
}

TEST(Fletcher, OptionsControlStreamParameters) {
  fletcher::FletchgenOptions options;
  options.dimension = 2;
  options.complexity = 4;
  std::string text = fletcher::generate_interface(demo_schema(), options);
  EXPECT_NE(text.find("d=2, c=4"), std::string::npos);
}

TEST(Fletcher, ColumnTypeNames) {
  auto s = demo_schema();
  EXPECT_EQ(fletcher::column_type_name(s, s.columns[0]), "t_demo_id");
  EXPECT_EQ(std::string(fletcher::to_string(fletcher::ColumnType::kDecimal)),
            "decimal");
}

}  // namespace
}  // namespace tydi
