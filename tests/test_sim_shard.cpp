// Sharded simulation engine tests: the determinism contract (SimResult
// byte-identical across shard counts, including shard=1 == the legacy
// single-queue engine) on the example + TPC-H designs, plus partitioner
// invariants (every component in exactly one shard, consistent cross-shard
// channel accounting, boundary channels never cut).
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/shard/partition.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

constexpr std::string_view kParallelizeSource = R"tydi(
package partest;
type t_data = Stream(Bit(64), d=1, c=2);
impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}
streamlet partest_top_s { feed: t_data in, result: t_data out, }
impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, 8>),
  feed => par.in_,
  par.out => result,
}
)tydi";

constexpr std::string_view kPipelineSource = R"tydi(
package pipedemo;
type t_word = Stream(Bit(32), d=1, c=2);
streamlet stage_s<T: type> { in_: T in, out: T out, }
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}
impl reg_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(2);
      send(out);
      ack(in_);
    }
  }
}
streamlet demo_s { feed: t_word in, drained: t_word out, }
impl demo_top of demo_s {
  instance pipe(pipeline_i<type t_word, impl reg_stage, 8>),
  feed => pipe.in_,
  pipe.out => drained,
}
)tydi";

constexpr std::string_view kSqlFilterSource = R"tydi(
package sqlfilter;
type t_container = Stream(Bit(80), d=1, c=2);
streamlet in_list_s {
  container: t_container in,
  matched: std_bool out,
}
impl in_list of in_list_s {
  const values = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
  instance any_of(logic_or_i<type std_bool, 4>),
  for i in 0->4 {
    instance cmp[i](const_compare_i<type t_container, type std_bool, values[i], "==">),
    container => cmp[i].in_,
    cmp[i].out => any_of.in_[i],
  }
  any_of.out => matched,
}
)tydi";

constexpr std::string_view kDeadlockSource = R"tydi(
package deadtest;
type t_data = Stream(Bit(8), d=1, c=2);
streamlet join_s { a: t_data in, b: t_data in, out: t_data out, }
impl join_i of join_s @ external {
  sim {
    on a.receive && b.receive { send(out); ack(a); ack(b); }
  }
}
streamlet loop_s { in_: t_data in, out: t_data out, }
impl echo_i of loop_s @ external {
  sim {
    on in_.receive { send(out); ack(in_); }
  }
}
streamlet deadtop_s { feed: t_data in, result: t_data out, }
impl deadtop of deadtop_s {
  instance join(join_i),
  instance echo(echo_i),
  instance dup(duplicator_i<type t_data, 2>),
  feed => join.a,
  echo.out => join.b,
  join.out => dup.in_,
  dup.out_[0] => echo.in_,
  dup.out_[1] => result,
}
)tydi";

driver::CompileResult compile(std::string_view source, const std::string& top) {
  driver::CompileOptions options;
  options.top = top;
  options.emit_vhdl = false;
  driver::CompileResult compiled =
      driver::compile_source(std::string(source), options);
  EXPECT_TRUE(compiled.success()) << compiled.report();
  return compiled;
}

/// Stimuli for every top-level input port: `packets` packets at one-cycle
/// intervals, values 0..packets-1, `last` on the final one.
sim::SimOptions generic_options(const elab::Design& design, int packets,
                                int shards, bool auto_partition) {
  sim::SimOptions options;
  options.max_time_ns = 1.0e7;
  options.shards = shards;
  options.auto_partition = auto_partition;
  options.stimuli = sim::generic_stimuli(design, packets);
  return options;
}

void expect_identical_across_shards(const driver::CompileResult& compiled,
                                    int packets, bool auto_partition,
                                    const char* what) {
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions base =
      generic_options(compiled.design, packets, 1, auto_partition);
  sim::SimResult reference = engine.run(base);
  EXPECT_GT(reference.events_processed, 0u) << what;
  for (int shards : {2, 4, 7}) {
    sim::SimOptions options =
        generic_options(compiled.design, packets, shards, auto_partition);
    sim::SimResult sharded = engine.run(options);
    std::string why;
    EXPECT_TRUE(sim::results_identical(reference, sharded, &why))
        << what << " with " << shards << " shards (auto_partition="
        << auto_partition << "): " << why;
  }
}

TEST(SimShardDeterminism, ParallelizeIdenticalAcrossShardCounts) {
  driver::CompileResult compiled = compile(kParallelizeSource, "partest_top");
  expect_identical_across_shards(compiled, 96, true, "parallelize");
  expect_identical_across_shards(compiled, 96, false, "parallelize");
}

TEST(SimShardDeterminism, PipelineChainIdenticalAcrossShardCounts) {
  driver::CompileResult compiled = compile(kPipelineSource, "demo_top");
  expect_identical_across_shards(compiled, 64, true, "pipeline_chain");
  expect_identical_across_shards(compiled, 64, false, "pipeline_chain");
}

TEST(SimShardDeterminism, SqlFilterIdenticalAcrossShardCounts) {
  driver::CompileResult compiled = compile(kSqlFilterSource, "in_list");
  expect_identical_across_shards(compiled, 64, true, "sql_filter");
  expect_identical_across_shards(compiled, 64, false, "sql_filter");
}

TEST(SimShardDeterminism, TpchQueryIdenticalAcrossShardCounts) {
  const tpch::QueryCase* q6 = tpch::find_query("TPC-H 6");
  ASSERT_NE(q6, nullptr);
  driver::CompileResult compiled = tpch::compile_query(*q6);
  ASSERT_TRUE(compiled.success()) << compiled.report();
  expect_identical_across_shards(compiled, 32, true, "tpch_q6");
}

TEST(SimShardDeterminism, DeadlockReportIdenticalAcrossShardCounts) {
  // The wait-for cycle and blocked report must be stable under sharding:
  // deadlock analysis runs over the quiesced global graph.
  driver::CompileResult compiled = compile(kDeadlockSource, "deadtop");
  expect_identical_across_shards(compiled, 1, true, "deadlock");
}

TEST(SimShardDeterminism, RepeatedShardedRunsIdentical) {
  driver::CompileResult compiled = compile(kParallelizeSource, "partest_top");
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options = generic_options(compiled.design, 48, 4, true);
  sim::SimResult first = engine.run(options);
  sim::SimResult second = engine.run(options);
  std::string why;
  EXPECT_TRUE(sim::results_identical(first, second, &why)) << why;
}

// ---------------------------------------------------------------------------
// Partitioner invariants
// ---------------------------------------------------------------------------

TEST(SimShardPartition, EveryComponentInExactlyOneShard) {
  driver::CompileResult compiled = compile(kParallelizeSource, "partest_top");
  support::DiagnosticEngine diags;
  sim::SimGraph graph;
  sim::SimOptions options = generic_options(compiled.design, 1, 1, true);
  ASSERT_TRUE(sim::build_sim_graph(compiled.design, options, diags, graph));
  ASSERT_GT(graph.components.size(), 4u);

  for (bool auto_partition : {true, false}) {
    sim::shard::PartitionStats stats =
        sim::shard::partition_graph(graph, 4, auto_partition);
    EXPECT_EQ(stats.shard_count, 4);
    ASSERT_EQ(graph.component_shard.size(), graph.components.size());
    std::vector<std::size_t> per_shard(stats.shard_count, 0);
    for (std::int32_t shard : graph.component_shard) {
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, stats.shard_count);
      per_shard[shard] += 1;
    }
    std::size_t total = 0;
    for (int s = 0; s < stats.shard_count; ++s) {
      EXPECT_GT(per_shard[s], 0u) << "shard " << s << " is empty";
      EXPECT_EQ(per_shard[s], stats.components_per_shard[s]);
      total += per_shard[s];
    }
    EXPECT_EQ(total, graph.components.size());

    std::vector<std::string> errors;
    EXPECT_TRUE(sim::shard::validate_partition(graph, stats, errors))
        << (errors.empty() ? "" : errors.front());
  }
}

TEST(SimShardPartition, CrossChannelAccountingIsConsistent) {
  driver::CompileResult compiled = compile(kPipelineSource, "demo_top");
  support::DiagnosticEngine diags;
  sim::SimGraph graph;
  sim::SimOptions options = generic_options(compiled.design, 1, 1, true);
  ASSERT_TRUE(sim::build_sim_graph(compiled.design, options, diags, graph));

  sim::shard::PartitionStats stats =
      sim::shard::partition_graph(graph, 4, true);
  std::size_t cross = 0;
  double min_latency = sim::kInfiniteTime;
  for (const sim::Channel& c : graph.channels) {
    // Boundary channels must never be cut.
    if (c.src.component < 0 || c.dst.component < 0) {
      EXPECT_FALSE(c.cross_shard())
          << graph.channel_display_name(c);
    }
    if (c.src.component >= 0) {
      EXPECT_EQ(c.src_shard, graph.component_shard[c.src.component]);
    }
    if (c.dst.component >= 0) {
      EXPECT_EQ(c.dst_shard, graph.component_shard[c.dst.component]);
    }
    if (c.cross_shard()) {
      cross += 1;
      min_latency = std::min(min_latency, c.latency_ns);
    }
  }
  EXPECT_EQ(cross, stats.cross_channels);
  // An 8-deep pipeline over 4 shards must cut something, and the lookahead
  // is the minimum cut latency.
  EXPECT_GT(cross, 0u);
  EXPECT_EQ(stats.min_cross_latency_ns, min_latency);
}

TEST(SimShardPartition, ShardCountClampsToComponentCount) {
  driver::CompileResult compiled = compile(kDeadlockSource, "deadtop");
  support::DiagnosticEngine diags;
  sim::SimGraph graph;
  sim::SimOptions options = generic_options(compiled.design, 1, 1, true);
  ASSERT_TRUE(sim::build_sim_graph(compiled.design, options, diags, graph));
  sim::shard::PartitionStats stats =
      sim::shard::partition_graph(graph, 64, true);
  EXPECT_LE(static_cast<std::size_t>(stats.shard_count),
            graph.components.size());
  EXPECT_EQ(stats.shard_count, graph.shard_count);
  std::vector<std::string> errors;
  EXPECT_TRUE(sim::shard::validate_partition(graph, stats, errors))
      << (errors.empty() ? "" : errors.front());
}

}  // namespace
}  // namespace tydi
