// Union-type end-to-end tests (Table I: union width = max child width) and
// name-mangling collision resistance for template instances.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"

namespace tydi {
namespace {

TEST(UnionEndToEnd, UnionStreamsCompileToMaxWidthPorts) {
  constexpr std::string_view source = R"(
// A token is either a 24-bit pixel or a 4-bit control code: the hardware
// channel carries max(24, 4) = 24 bits (Table I).
Union Token {
  pixel: Bit(24),
  control: Bit(4),
}
type t_tokens = Stream(Token, d=1, c=2);

streamlet codec_s { raw: t_tokens in, cooked: t_tokens out, }
impl codec of codec_s @ external { }

streamlet top_s { a: t_tokens in, b: t_tokens out, }
impl top of top_s {
  instance c(codec),
  a => c.raw,
  c.cooked => b,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_TRUE(result.drc_report.clean());
  // Entity data port is 24 bits wide: std_logic_vector(23 downto 0).
  EXPECT_NE(result.vhdl_text.find("a_data : in std_logic_vector(23 downto 0)"),
            std::string::npos)
      << result.vhdl_text.substr(0, 2000);
}

TEST(UnionEndToEnd, UnionInsideGroupSums) {
  constexpr std::string_view source = R"(
Union Payload {
  word: Bit(32),
  byte: Bit(8),
}
Group Framed {
  header: Bit(16),
  payload: Payload,
}
type t_frames = Stream(Framed, d=1, c=2);
streamlet s { a: t_frames in, b: t_frames out, }
impl top of s {
  a => b,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(result.success()) << result.report();
  // 16 (header) + max(32, 8) = 48 bits.
  EXPECT_NE(
      result.vhdl_text.find("a_data : in std_logic_vector(47 downto 0)"),
      std::string::npos);
}

TEST(Mangling, SanitizationCollisionsDisambiguatedByHash) {
  // "MED BAG" and "MED_BAG" sanitize to the same identifier fragment; the
  // mangled impl names must still differ (hash suffix) so both
  // instantiations coexist.
  constexpr std::string_view source = R"(
type t = Stream(Bit(80), d=1, c=2);
streamlet top_s { a: t in, b: std_bool out, c: t in, d: std_bool out, }
impl top of top_s {
  instance p1(const_compare_i<type t, type std_bool, "MED BAG", "==">),
  instance p2(const_compare_i<type t, type std_bool, "MED_BAG", "==">),
  a => p1.in_,
  c => p2.in_,
  p1.out => b,
  p2.out => d,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(result.success()) << result.report();
  const elab::Impl* top = result.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->instances.size(), 2u);
  EXPECT_NE(top->instances[0].impl_name, top->instances[1].impl_name);
}

TEST(Mangling, IdenticalArgumentsShareOneInstantiation) {
  constexpr std::string_view source = R"(
type t = Stream(Bit(80), d=1, c=2);
streamlet top_s { a: t in, b: std_bool out, c: t in, d: std_bool out, }
impl top of top_s {
  instance p1(const_compare_i<type t, type std_bool, "SAME", "==">),
  instance p2(const_compare_i<type t, type std_bool, "SAME", "==">),
  a => p1.in_,
  c => p2.in_,
  p1.out => b,
  p2.out => d,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(result.success()) << result.report();
  const elab::Impl* top = result.design.find_impl("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances[0].impl_name, top->instances[1].impl_name);
}

}  // namespace
}  // namespace tydi
