// AST tests: deep cloning, pretty-printing of every node kind, and parser
// robustness against malformed input (must diagnose, never crash or hang).
#include <gtest/gtest.h>

#include "src/ast/ast.hpp"
#include "src/parser/parser.hpp"

namespace tydi::lang {
namespace {

ExprPtr parse_expr_text(const std::string& text) {
  support::DiagnosticEngine diags;
  SourceFile file =
      parse("const x = " + text + ";", support::FileId{1}, diags);
  EXPECT_EQ(diags.error_count(), 0u) << diags.render();
  auto& decl = std::get<ConstDecl>(file.decls.at(0).node);
  return std::move(decl.init);
}

TEST(AstClone, ExpressionsCloneDeeply) {
  ExprPtr original = parse_expr_text("[1 + 2, foo(bar, 3 ** 4), [5, 6][0]]");
  ExprPtr copy = clone(*original);
  // Same rendering, different object graph.
  EXPECT_EQ(to_source(*original), to_source(*copy));
  EXPECT_NE(original.get(), copy.get());
  // Mutating the copy leaves the original untouched.
  auto& arr = std::get<ArrayLit>(copy->node);
  arr.elems.clear();
  EXPECT_NE(to_source(*original), to_source(*copy));
}

TEST(AstClone, TypeExpressionsCloneDeeply) {
  support::DiagnosticEngine diags;
  SourceFile file = parse(
      "type T = Stream(Bit(8), t=2.0, d=1, c=7, s=Desync, r=Reverse, "
      "u=Bit(2));",
      support::FileId{1}, diags);
  ASSERT_EQ(diags.error_count(), 0u);
  auto& alias = std::get<TypeAliasDecl>(file.decls.at(0).node);
  TypeExprPtr copy = clone(*alias.type);
  EXPECT_EQ(to_source(*alias.type), to_source(*copy));
  EXPECT_NE(alias.type.get(), copy.get());
}

TEST(AstClone, TemplateArgCopySemantics) {
  support::DiagnosticEngine diags;
  SourceFile file = parse(R"(
streamlet s { a: Stream(Bit(1), d=1) in, }
impl i of s {
  instance x(foo<type Bit(8), impl bar, 1 + 2>),
}
)",
                          support::FileId{1}, diags);
  ASSERT_EQ(diags.error_count(), 0u) << diags.render();
  const auto& impl = std::get<ImplDecl>(file.decls.at(1).node);
  const auto& inst = std::get<InstanceStmt>(impl.body.at(0).node);
  // Copy-construct and copy-assign; both must deep-copy owned pointers.
  TemplateArg copy(inst.args[0]);
  EXPECT_EQ(to_source(copy), to_source(inst.args[0]));
  TemplateArg assigned;
  assigned = inst.args[2];
  EXPECT_EQ(to_source(assigned), to_source(inst.args[2]));
  EXPECT_EQ(to_source(assigned), "(1 + 2)");
  // Self-assignment is safe.
  assigned = assigned;
  EXPECT_EQ(to_source(assigned), "(1 + 2)");
}

TEST(AstPrint, OperatorSpellings) {
  EXPECT_EQ(to_string(BinaryOp::kPow), "**");
  EXPECT_EQ(to_string(BinaryOp::kRange), "->");
  EXPECT_EQ(to_string(BinaryOp::kAnd), "&&");
  EXPECT_EQ(to_string(UnaryOp::kNot), "!");
  EXPECT_EQ(to_string(Synchronicity::kFlatDesync), "FlatDesync");
  EXPECT_EQ(to_string(StreamDir::kReverse), "Reverse");
  EXPECT_EQ(to_string(ParamKind::kClockdomain), "clockdomain");
  EXPECT_EQ(to_string(PortDir::kOut), "out");
}

TEST(AstPrint, StringEscaping) {
  ExprPtr e = parse_expr_text(R"("quote \" and backslash \\")");
  EXPECT_EQ(to_source(*e), R"("quote \" and backslash \\")");
}

TEST(AstPrint, FullFileIncludesSimBlocks) {
  support::DiagnosticEngine diags;
  const char* text = R"(
package demo;
streamlet s { a: Stream(Bit(1), d=1) in, b: Stream(Bit(1), d=1) out, }
impl e of s @ external {
  sim {
    state m = "idle";
    on a.receive {
      if (m == "idle") {
        delay(2);
        send(b, payload + 1);
      }
      ack(a);
      set m = "busy";
    }
  }
}
)";
  SourceFile file = parse(text, support::FileId{1}, diags);
  ASSERT_EQ(diags.error_count(), 0u) << diags.render();
  std::string printed = to_source(file);
  EXPECT_NE(printed.find("package demo;"), std::string::npos);
  EXPECT_NE(printed.find("sim {"), std::string::npos);
  EXPECT_NE(printed.find("state m = \"idle\";"), std::string::npos);
  EXPECT_NE(printed.find("on a.receive {"), std::string::npos);
  EXPECT_NE(printed.find("delay(2);"), std::string::npos);
  EXPECT_NE(printed.find("set m ="), std::string::npos);
  // And it reparses.
  support::DiagnosticEngine diags2;
  (void)parse(printed, support::FileId{1}, diags2);
  EXPECT_EQ(diags2.error_count(), 0u) << printed << diags2.render();
}

// --- Robustness: the parser must terminate with diagnostics, never crash --

class ParserRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRobustness, MalformedInputDiagnosedNotCrashed) {
  support::DiagnosticEngine diags;
  SourceFile file = parse(GetParam(), support::FileId{1}, diags);
  (void)file;
  EXPECT_GT(diags.error_count(), 0u) << "expected at least one diagnostic";
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, ParserRobustness,
    ::testing::Values(
        "}}}}{{{{",
        "impl",
        "impl of of of",
        "streamlet s < > { }",
        "streamlet s<T:> { }",
        "const x = (((((1;",
        "const x = [1, 2",
        "type T = Stream(",
        "type T = Stream(Bit(8), d=);",
        "impl i of s { instance }",
        "impl i of s { a => }",
        "impl i of s { => b, }",
        "impl i of s { for { } }",
        "impl i of s { if ( { } }",
        "impl i of s @ { }",
        "impl i of s { sim { on { } } }",
        "impl i of s { sim { state 5; } }",
        "impl i of s { sim { on a.recv { } } }",
        "Group G { : Bit(8), }",
        "Union U { a Bit(8), }",
        "\"unterminated",
        "const x = 0x;",
        "const x = 1 & 2;",
        "const x = $;",
        "package ; const x = 1"));

// Structured-but-wrong inputs: valid tokens, invalid structure deeper in.
TEST(ParserRobustness, DeeplyNestedInputTerminates) {
  std::string nested = "const x = ";
  for (int i = 0; i < 200; ++i) nested += "(1 + ";
  nested += "1";
  for (int i = 0; i < 200; ++i) nested += ")";
  nested += ";";
  support::DiagnosticEngine diags;
  SourceFile file = parse(nested, support::FileId{1}, diags);
  EXPECT_EQ(diags.error_count(), 0u);
  ASSERT_EQ(file.decls.size(), 1u);
}

TEST(ParserRobustness, LongRunOfStatementsParses) {
  std::string source = "streamlet s { a: Stream(Bit(1), d=1) in, }\n"
                       "impl top of s {\n";
  for (int i = 0; i < 500; ++i) {
    source += "  x" + std::to_string(i) + ".p => y" + std::to_string(i) +
              ".q,\n";
  }
  source += "}\n";
  support::DiagnosticEngine diags;
  SourceFile file = parse(source, support::FileId{1}, diags);
  EXPECT_EQ(diags.error_count(), 0u);
  const auto& impl = std::get<ImplDecl>(file.decls.at(1).node);
  EXPECT_EQ(impl.body.size(), 500u);
}

}  // namespace
}  // namespace tydi::lang
