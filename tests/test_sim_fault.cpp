// Guard-rail tests: deterministic fault injection, the no-progress
// watchdog, and the run budgets (src/sim/fault.hpp, src/sim/guard.hpp).
//
//  - Seed-derived fault plans perturb thread timing (delayed mailbox posts,
//    barrier jitter, shard stalls) and, in credit mode, defer ack flushes.
//    The exact protocol must stay byte-identical and credit mode
//    functionally equivalent to a fault-free run — every control decision
//    derives from barrier-reduced values, never from arrival order.
//  - The withheld-ack hang fault livelocks the credit loop on purpose; the
//    watchdog must convert it into SimResult::aborted with per-shard
//    forensics instead of hanging the process.
//  - The max-events / wall-clock budgets must terminate gracefully with
//    partial results and a named abort reason.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/guard.hpp"
#include "src/sim/metrics.hpp"

namespace tydi {
namespace {

/// Saturated 12-stage pipeline: cut channels stay occupied, so every
/// injection site (mailbox posts, barrier rounds, credit flushes) is hot.
constexpr std::string_view kPipelineSource = R"tydi(
package faulttest;
type t_word = Stream(Bit(32), d=1, c=2);
streamlet stage_s<T: type> { in_: T in, out: T out, }
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}
impl slow_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(6);
      send(out);
      ack(in_);
    }
  }
}
streamlet sat_s { feed: t_word in, drained: t_word out, }
impl sat_top of sat_s {
  instance pipe(pipeline_i<type t_word, impl slow_stage, 12>),
  feed => pipe.in_,
  pipe.out => drained,
}
)tydi";

driver::CompileResult compile_pipeline() {
  driver::CompileOptions options;
  options.top = "sat_top";
  options.emit_vhdl = false;
  driver::CompileResult compiled =
      driver::compile_source(std::string(kPipelineSource), options);
  EXPECT_TRUE(compiled.success()) << compiled.report();
  return compiled;
}

sim::SimOptions base_options(const elab::Design& design, int packets,
                             int shards) {
  sim::SimOptions options;
  options.max_time_ns = 1.0e7;
  options.shards = shards;
  options.stimuli = sim::generic_stimuli(design, packets, 1.0);
  return options;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, SeedZeroDisablesEverySite) {
  sim::FaultPlan plan = sim::FaultPlan::from_seed(0);
  EXPECT_FALSE(plan.enabled());
  sim::FaultInjector injector(plan, /*shard=*/0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.fires(sim::FaultInjector::Site::kMailboxPost));
    EXPECT_FALSE(injector.fires(sim::FaultInjector::Site::kBarrierArrive));
  }
}

TEST(FaultPlan, FromSeedActivatesEverySite) {
  sim::FaultPlan plan = sim::FaultPlan::from_seed(42);
  EXPECT_TRUE(plan.enabled());
  for (double p : {plan.delay_delivery_p, plan.barrier_jitter_p, plan.stall_p,
                   plan.withhold_credit_p}) {
    EXPECT_GE(p, 0.05);
    EXPECT_LE(p, 0.5);
  }
}

TEST(FaultPlan, ScheduleIsStatelessAndDeterministic) {
  // Two injectors for the same (plan, shard) must produce the identical
  // fire sequence — the schedule is a pure function of (seed, shard, site,
  // step), not of thread interleaving.
  sim::FaultPlan plan = sim::FaultPlan::from_seed(7);
  sim::FaultInjector a(plan, 1);
  sim::FaultInjector b(plan, 1);
  sim::FaultInjector other_shard(plan, 2);
  int diverging = 0;
  for (int i = 0; i < 256; ++i) {
    bool fa = a.fires(sim::FaultInjector::Site::kMailboxPost);
    bool fb = b.fires(sim::FaultInjector::Site::kMailboxPost);
    EXPECT_EQ(fa, fb) << "step " << i;
    if (fa != other_shard.fires(sim::FaultInjector::Site::kMailboxPost)) {
      ++diverging;
    }
  }
  // Different shards see decorrelated schedules.
  EXPECT_GT(diverging, 0);
}

TEST(FaultPlan, ParseRoundTrip) {
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse(
      "seed=9,delay=0.25,jitter=0.1,stall=0.05,withhold=0.3,spin=500,hang=1",
      plan, error))
      << error;
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.delay_delivery_p, 0.25);
  EXPECT_DOUBLE_EQ(plan.barrier_jitter_p, 0.1);
  EXPECT_DOUBLE_EQ(plan.stall_p, 0.05);
  EXPECT_DOUBLE_EQ(plan.withhold_credit_p, 0.3);
  EXPECT_EQ(plan.delay_spin_iters, 500u);
  EXPECT_TRUE(plan.withhold_acks_forever);

  // render() -> parse() reproduces the plan.
  sim::FaultPlan reparsed;
  ASSERT_TRUE(sim::FaultPlan::parse(plan.render(), reparsed, error)) << error;
  EXPECT_EQ(reparsed.render(), plan.render());
}

TEST(FaultPlan, ParseRejectsBadInput) {
  sim::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(sim::FaultPlan::parse("delay", plan, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(sim::FaultPlan::parse("bogus=1", plan, error));
  EXPECT_NE(error.find("unknown"), std::string::npos);
  error.clear();
  EXPECT_FALSE(sim::FaultPlan::parse("delay=abc", plan, error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, ExplicitPlanIsAlwaysActive) {
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("delay=0.5", plan, error)) << error;
  EXPECT_TRUE(plan.enabled());  // seed forced nonzero
}

// ---------------------------------------------------------------------------
// Fault-injected runs keep the protocol contracts
// ---------------------------------------------------------------------------

TEST(SimFault, ExactModeByteIdenticalUnderFaults) {
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult reference =
      engine.run(base_options(compiled.design, 48, 1));
  ASSERT_FALSE(reference.aborted);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int shards : {2, 4}) {
      sim::SimOptions options = base_options(compiled.design, 48, shards);
      options.fault = sim::FaultPlan::from_seed(seed);
      options.fault.delay_spin_iters = 100;
      sim::SimResult faulted = engine.run(options);
      std::string why;
      EXPECT_TRUE(sim::results_identical(reference, faulted, &why))
          << "seed " << seed << ", " << shards << " shards: " << why;
    }
  }
}

TEST(SimFault, CreditModeFunctionallyEquivalentUnderFaults) {
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult reference =
      engine.run(base_options(compiled.design, 48, 1));
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int shards : {2, 4}) {
      sim::SimOptions options = base_options(compiled.design, 48, shards);
      options.ack_mode = sim::AckMode::kCredit;
      options.fault = sim::FaultPlan::from_seed(seed);
      options.fault.delay_spin_iters = 100;
      sim::SimResult faulted = engine.run(options);
      std::string why;
      EXPECT_TRUE(
          sim::results_functionally_equivalent(reference, faulted, &why))
          << "seed " << seed << ", " << shards << " shards: " << why;
    }
  }
}

TEST(SimFault, SameFaultPlanIsReproducible) {
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options = base_options(compiled.design, 48, 4);
  options.ack_mode = sim::AckMode::kCredit;
  options.fault = sim::FaultPlan::from_seed(11);
  options.fault.delay_spin_iters = 100;
  sim::SimResult first = engine.run(options);
  sim::SimResult second = engine.run(options);
  std::string why;
  EXPECT_TRUE(sim::results_identical(first, second, &why)) << why;
}

// ---------------------------------------------------------------------------
// Watchdog + budgets
// ---------------------------------------------------------------------------

TEST(SimGuard, WatchdogConvertsWithheldAckHangIntoAbort) {
  // The hang fault swallows every credit ack flush: sources run out of
  // credits, queues drain, the quiescence check keeps seeing pending ack
  // batches and the round loop livelocks at zero events. Without the
  // watchdog this test would never return.
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options = base_options(compiled.design, 32, 2);
  options.ack_mode = sim::AckMode::kCredit;
  options.fault.seed = 1;
  options.fault.withhold_acks_forever = true;
  options.watchdog_timeout_ms = 150.0;
  sim::SimResult result = engine.run(options);

  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason,
            sim::to_string(sim::StopCause::kWatchdogNoProgress));
  EXPECT_FALSE(result.deadlock);  // aborted runs skip deadlock analysis
  ASSERT_EQ(result.shard_forensics.size(), 2u);
  std::int64_t pending = 0;
  for (const sim::ShardForensics& f : result.shard_forensics) {
    EXPECT_FALSE(f.summary().empty());
    pending += f.pending_ack_batches;
  }
  // The forensics name the hang: acks were consumed but never flushed.
  EXPECT_GT(pending, 0);
  // Classification for the CLI: kAborted, exit code 10.
  EXPECT_EQ(result.status().code(), support::StatusCode::kAborted);
  EXPECT_EQ(result.status().exit_code(), 10);
  EXPECT_NE(result.summary().find("ABORTED"), std::string::npos);
}

TEST(SimGuard, MaxEventsBudgetAbortsWithPartialResults) {
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult full = engine.run(base_options(compiled.design, 64, 1));
  ASSERT_FALSE(full.aborted);
  ASSERT_GT(full.events_processed, 600u);

  for (int shards : {1, 2}) {
    sim::SimOptions options = base_options(compiled.design, 64, shards);
    options.max_events = 500;
    sim::SimResult capped = engine.run(options);
    EXPECT_TRUE(capped.aborted) << shards << " shards";
    EXPECT_EQ(capped.abort_reason,
              sim::to_string(sim::StopCause::kMaxEvents))
        << shards << " shards";
    // Partial results: some work done, less than the full run (the guard
    // syncs every 256 events, so allow one stride of overshoot).
    EXPECT_GT(capped.events_processed, 0u);
    EXPECT_LT(capped.events_processed, full.events_processed);
    EXPECT_FALSE(capped.shard_forensics.empty());
  }
}

TEST(SimGuard, WallClockBudgetAbortsAHungRun) {
  // Same livelock as the watchdog test, but the watchdog is disabled and
  // the wall-clock budget must fire instead.
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options = base_options(compiled.design, 32, 2);
  options.ack_mode = sim::AckMode::kCredit;
  options.fault.seed = 1;
  options.fault.withhold_acks_forever = true;
  options.watchdog_timeout_ms = 0.0;  // disabled
  options.wall_clock_budget_ms = 200.0;
  sim::SimResult result = engine.run(options);
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason,
            sim::to_string(sim::StopCause::kWallClock));
}

TEST(SimGuard, BudgetsOffByDefault) {
  driver::CompileResult compiled = compile_pipeline();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimResult result = engine.run(base_options(compiled.design, 32, 2));
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.abort_reason.empty());
  EXPECT_TRUE(result.status().is_ok());
  // Forensics are collected on healthy runs too (one snapshot per shard);
  // a finished run has drained its queues and mailboxes.
  ASSERT_EQ(result.shard_forensics.size(), 2u);
  std::uint64_t events = 0;
  for (const sim::ShardForensics& f : result.shard_forensics) {
    EXPECT_EQ(f.queue_depth, 0u);
    EXPECT_EQ(f.mailbox_depth, 0u);
    events += f.events_processed;
  }
  EXPECT_EQ(events, result.events_processed);
}

}  // namespace
}  // namespace tydi
