// Compile-service tests: the wire protocol (header/payload framing, verb
// parsing, status-code mapping) unit-tested against CompileService, plus
// the AF_UNIX server end-to-end — a daemon thread serving parallel client
// requests that must be byte-identical to in-process compiles.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/service/server.hpp"
#include "src/service/service.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

TEST(ServiceProtocol, PingPong) {
  service::CompileService svc;
  service::Response r = svc.handle_line("PING");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.payload, "pong");
  EXPECT_FALSE(r.shutdown);
  EXPECT_EQ(r.header(), "OK 0 4");
}

TEST(ServiceProtocol, ShutdownFlagsTransport) {
  service::CompileService svc;
  service::Response r = svc.handle_line("SHUTDOWN");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.shutdown);
}

TEST(ServiceProtocol, MalformedRequestsAreInvalidArgument) {
  service::CompileService svc;
  for (const char* line :
       {"", "   ", "FROBNICATE", "TPCH", "TPCH 6", "TPCH 6 vhdl nonsense",
        "TPCH 99 vhdl", "TPCH 6 pdf", "FILE only_two args"}) {
    service::Response r = svc.handle_line(line);
    EXPECT_FALSE(r.ok()) << "line: '" << line << "'";
    EXPECT_EQ(r.status.code(), support::StatusCode::kInvalidArgument)
        << "line: '" << line << "'";
  }
  EXPECT_EQ(svc.requests_failed(), 9u);
}

TEST(ServiceProtocol, MissingFileIsIoError) {
  service::CompileService svc;
  service::Response r =
      svc.handle_line("FILE /nonexistent/nope.td top vhdl");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), support::StatusCode::kIoError);
}

TEST(ServiceProtocol, ParseErrorMapsToWireCode) {
  service::CompileService svc;
  const std::string path = "/tmp/tydi_service_bad.td";
  {
    std::ofstream out(path);
    out << "this is not tydi-lang\n";
  }
  service::Response r = svc.handle_line("FILE " + path + " top vhdl");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), support::StatusCode::kParseError);
  // The payload carries the rendered diagnostics.
  EXPECT_NE(r.payload.find("error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ServiceProtocol, TpchCompileMatchesInProcessCompile) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileResult golden = tpch::compile_query(*q);
  ASSERT_TRUE(golden.success()) << golden.report();

  service::CompileService svc;
  service::Response vhdl = svc.handle_line("TPCH 6 vhdl");
  ASSERT_TRUE(vhdl.ok()) << vhdl.payload;
  EXPECT_EQ(vhdl.payload, golden.vhdl_text);

  service::Response ir = svc.handle_line("TPCH 6 ir");
  ASSERT_TRUE(ir.ok()) << ir.payload;
  EXPECT_EQ(ir.payload, golden.ir_text);
}

TEST(ServiceProtocol, StatsReportsSessionCounters) {
  service::CompileService svc;
  ASSERT_TRUE(svc.handle_line("TPCH 6 vhdl").ok());
  service::Response stats = svc.handle_line("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.payload.find("requests 2"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("memo_impls"), std::string::npos);
  service::Response inval = svc.handle_line("INVALIDATE");
  ASSERT_TRUE(inval.ok());
  service::Response stats2 = svc.handle_line("STATS");
  EXPECT_NE(stats2.payload.find("memo_impls 0"), std::string::npos)
      << stats2.payload;
  EXPECT_NE(stats2.payload.find("parse_cache 0"), std::string::npos);
}

TEST(ServiceProtocol, ResponseSerializeParseRoundTrip) {
  service::Response in;
  in.status = support::Status::error(support::StatusCode::kParseError,
                                     "parser", "boom");
  in.payload = "line one\nline two\n";
  const std::string wire = in.serialize();
  EXPECT_EQ(wire.substr(0, wire.find('\n')),
            "ERR " + std::to_string(in.status.exit_code()) + " " +
                std::to_string(in.payload.size()));

  service::Response out;
  ASSERT_TRUE(service::parse_response(wire, out));
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.status.exit_code(), in.status.exit_code());
  EXPECT_EQ(out.status.code(), support::StatusCode::kParseError);

  service::Response ok;
  ok.payload = "pong";
  service::Response ok_out;
  ASSERT_TRUE(service::parse_response(ok.serialize(), ok_out));
  EXPECT_TRUE(ok_out.ok());
  EXPECT_EQ(ok_out.payload, "pong");
}

TEST(ServiceProtocol, ParseResponseRejectsTruncatedFrames) {
  service::Response out;
  EXPECT_FALSE(service::parse_response("", out));
  EXPECT_FALSE(service::parse_response("OK 0", out));          // no newline
  EXPECT_FALSE(service::parse_response("OK 0 10\nshort", out));  // payload cut
  EXPECT_FALSE(service::parse_response("WAT 0 0\n", out));
  EXPECT_TRUE(service::parse_response("OK 0 0\n\n", out));
  EXPECT_TRUE(out.payload.empty());
}

// End-to-end: a real daemon on a real socket, eight parallel clients, every
// response byte-identical to the in-process compile of the same query.
TEST(ServiceServer, ParallelClientsByteIdentical) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileResult golden = tpch::compile_query(*q);
  ASSERT_TRUE(golden.success()) << golden.report();

  const std::string socket_path =
      "/tmp/tydid_test_" + std::to_string(::getpid()) + ".sock";
  service::CompileService svc;
  service::ServerConfig config;
  config.socket_path = socket_path;
  support::Status serve_status;
  std::thread daemon([&]() { serve_status = service::serve(svc, config); });

  // Wait for the socket to appear (bind is fast; PING confirms liveness).
  service::Response ping;
  support::Status up;
  for (int attempt = 0; attempt < 200; ++attempt) {
    up = service::request(socket_path, "PING", ping);
    if (up.is_ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(up.is_ok()) << up.render();

  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::string> errors(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        service::Response r;
        support::Status s = service::request(socket_path, "TPCH 6 vhdl", r);
        if (!s.is_ok()) {
          errors[c] = s.render();
        } else if (!r.ok()) {
          errors[c] = r.payload;
        } else {
          payloads[c] = std::move(r.payload);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    EXPECT_EQ(payloads[c], golden.vhdl_text) << "client " << c;
  }

  service::Response bye;
  ASSERT_TRUE(service::request(socket_path, "SHUTDOWN", bye).is_ok());
  EXPECT_TRUE(bye.shutdown || bye.payload == "bye");
  daemon.join();
  EXPECT_TRUE(serve_status.is_ok()) << serve_status.render();
  // Clean shutdown removes the socket file.
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
}

// One connection pipelining several requests gets ordered responses.
TEST(ServiceServer, BudgetedRequestStillSucceeds) {
  service::ServiceConfig config;
  config.default_budget_ms = 60000.0;  // generous; exercises the watchdog path
  service::CompileService svc(config);
  service::Response r = svc.handle_line("TPCH 6 vhdl");
  EXPECT_TRUE(r.ok()) << r.payload;
  service::Response budgeted = svc.handle_line("TPCH 6 vhdl 60000");
  EXPECT_TRUE(budgeted.ok()) << budgeted.payload;
  EXPECT_EQ(budgeted.payload, r.payload);
}

TEST(ServiceProtocol, MetricsAndHealthReturnValidJson) {
  service::CompileService svc;
  ASSERT_TRUE(svc.handle_line("TPCH 6 vhdl").ok());

  service::Response metrics = svc.handle_line("METRICS");
  ASSERT_TRUE(metrics.ok()) << metrics.payload;
  EXPECT_TRUE(obs::json_valid(metrics.payload)) << metrics.payload;
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"",
        "tydi.service.requests", "tydi.compile.total", "tydi.memo."}) {
    EXPECT_NE(metrics.payload.find(key), std::string::npos)
        << "missing " << key;
  }

  service::Response health = svc.handle_line("HEALTH");
  ASSERT_TRUE(health.ok()) << health.payload;
  EXPECT_TRUE(obs::json_valid(health.payload)) << health.payload;
  for (const char* key :
       {"\"status\":\"ok\"", "\"uptime_ms\"", "\"in_flight\"", "\"requests\"",
        "\"failures\"", "\"memo_hit_rate\"", "\"last_abort\""}) {
    EXPECT_NE(health.payload.find(key), std::string::npos)
        << "missing " << key << " in " << health.payload;
  }
  // Three requests so far (TPCH, METRICS, HEALTH happened before the
  // HEALTH snapshot was taken — the snapshot counts the first two).
  EXPECT_NE(health.payload.find("\"requests\":"), std::string::npos);
}

// Acceptance gate: the daemon answers METRICS/HEALTH with parseable JSON
// while FILE compile requests are in flight on other connections.
TEST(ServiceServer, MetricsAndHealthDuringConcurrentFileRequests) {
  // Materialise the TPC-H Q6 sources as real files for the FILE verb.
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  const std::string base = "/tmp/tydid_obs_" + std::to_string(::getpid());
  const std::string fletcher_path = base + "_fletcher.td";
  const std::string query_path = base + "_q6.td";
  {
    std::ofstream f(fletcher_path);
    f << tpch::fletcher_source();
    std::ofstream g(query_path);
    g << q->source;
  }
  const std::string file_line = "FILE " + fletcher_path + "," + query_path +
                                " " + q->top_impl + " vhdl";

  const std::string socket_path = base + ".sock";
  service::CompileService svc;
  service::ServerConfig config;
  config.socket_path = socket_path;
  support::Status serve_status;
  std::thread daemon([&]() { serve_status = service::serve(svc, config); });

  service::Response ping;
  support::Status up;
  for (int attempt = 0; attempt < 200; ++attempt) {
    up = service::request(socket_path, "PING", ping);
    if (up.is_ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(up.is_ok()) << up.render();

  constexpr int kCompilers = 4;
  constexpr int kCompilesEach = 3;
  constexpr int kPollers = 2;
  std::atomic<bool> compiling{true};
  std::vector<std::string> errors(kCompilers + kPollers);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kCompilers; ++c) {
      threads.emplace_back([&, c]() {
        for (int i = 0; i < kCompilesEach; ++i) {
          service::Response r;
          support::Status s = service::request(socket_path, file_line, r);
          if (!s.is_ok()) {
            errors[c] = s.render();
            return;
          }
          if (!r.ok()) {
            errors[c] = r.payload;
            return;
          }
        }
      });
    }
    for (int p = 0; p < kPollers; ++p) {
      threads.emplace_back([&, p]() {
        const std::string verb = (p % 2 == 0) ? "METRICS" : "HEALTH";
        while (compiling.load(std::memory_order_relaxed)) {
          service::Response r;
          support::Status s = service::request(socket_path, verb, r);
          if (!s.is_ok()) {
            errors[kCompilers + p] = s.render();
            return;
          }
          if (!r.ok() || !obs::json_valid(r.payload)) {
            errors[kCompilers + p] = verb + " bad payload: " + r.payload;
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    // Compiler threads are the first kCompilers entries; join them, then
    // release the pollers.
    for (int c = 0; c < kCompilers; ++c) threads[c].join();
    compiling.store(false, std::memory_order_relaxed);
    for (int p = 0; p < kPollers; ++p) threads[kCompilers + p].join();
  }
  for (std::size_t i = 0; i < errors.size(); ++i) {
    EXPECT_TRUE(errors[i].empty()) << "thread " << i << ": " << errors[i];
  }

  // Post-run introspection reflects the work just served.
  service::Response health;
  ASSERT_TRUE(service::request(socket_path, "HEALTH", health).is_ok());
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(obs::json_valid(health.payload)) << health.payload;
  EXPECT_NE(health.payload.find("\"in_flight\":"), std::string::npos);
  EXPECT_NE(health.payload.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(health.payload.find("\"shed_total\":"), std::string::npos);
  EXPECT_NE(health.payload.find("\"workers\":"), std::string::npos);
  // Nothing shed or draining in this test: a healthy daemon reports so.
  EXPECT_NE(health.payload.find("\"draining\":false"), std::string::npos);
  EXPECT_NE(health.payload.find("\"status\":\"ok\""), std::string::npos);

  service::Response bye;
  ASSERT_TRUE(service::request(socket_path, "SHUTDOWN", bye).is_ok());
  daemon.join();
  EXPECT_TRUE(serve_status.is_ok()) << serve_status.render();
  std::remove(fletcher_path.c_str());
  std::remove(query_path.c_str());
}

}  // namespace
}  // namespace tydi
