// Parser unit tests: declarations, expressions, generative statements,
// templates, simulation blocks, error recovery, and the pretty-printer
// round-trip property.
#include <gtest/gtest.h>

#include "src/parser/parser.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::lang {
namespace {

struct ParseOutcome {
  SourceFile file;
  std::size_t errors;
};

ParseOutcome parse_text(std::string_view text) {
  support::DiagnosticEngine diags;
  SourceFile file = parse(text, support::FileId{1}, diags);
  return ParseOutcome{std::move(file), diags.error_count()};
}

const ImplDecl& only_impl(const SourceFile& file) {
  for (const Decl& d : file.decls) {
    if (const auto* impl = std::get_if<ImplDecl>(&d.node)) return *impl;
  }
  ADD_FAILURE() << "no impl in file";
  static ImplDecl empty;
  return empty;
}

TEST(Parser, PackageDeclaration) {
  auto [file, errors] = parse_text("package mylib;");
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(file.package, "mylib");
}

TEST(Parser, ConstDeclarations) {
  auto [file, errors] =
      parse_text("const a = 1; const b: float = 2.5; const c: string = \"x\";");
  EXPECT_EQ(errors, 0u);
  ASSERT_EQ(file.decls.size(), 3u);
  const auto& b = std::get<ConstDecl>(file.decls[1].node);
  EXPECT_EQ(b.name, "b");
  ASSERT_TRUE(b.declared_kind.has_value());
  EXPECT_EQ(*b.declared_kind, ParamKind::kFloat);
}

TEST(Parser, GroupAndUnion) {
  auto [file, errors] = parse_text(R"(
Group AdderInput {
  data0: Bit(32),
  data1: Bit(32),
}
Union Either {
  small: Bit(8),
  big: Bit(64),
}
)");
  EXPECT_EQ(errors, 0u);
  ASSERT_EQ(file.decls.size(), 2u);
  const auto& g = std::get<GroupDecl>(file.decls[0].node);
  EXPECT_FALSE(g.is_union);
  ASSERT_EQ(g.fields.size(), 2u);
  EXPECT_EQ(g.fields[0].name, "data0");
  const auto& u = std::get<GroupDecl>(file.decls[1].node);
  EXPECT_TRUE(u.is_union);
}

TEST(Parser, StreamTypeWithAllOptions) {
  auto [file, errors] = parse_text(
      "type T = Stream(Bit(8), t=2.5, d=2, c=7, s=FlatDesync, r=Reverse, "
      "u=Bit(3));");
  EXPECT_EQ(errors, 0u);
  const auto& alias = std::get<TypeAliasDecl>(file.decls[0].node);
  const auto& s = std::get<StreamTypeExpr>(alias.type->node);
  EXPECT_NE(s.throughput, nullptr);
  EXPECT_NE(s.dimension, nullptr);
  EXPECT_NE(s.complexity, nullptr);
  EXPECT_EQ(*s.synchronicity, Synchronicity::kFlatDesync);
  EXPECT_EQ(*s.direction, StreamDir::kReverse);
  EXPECT_NE(s.user, nullptr);
}

TEST(Parser, StreamLongFormOptionKeys) {
  auto [file, errors] = parse_text(
      "type T = Stream(Bit(8), throughput=2.0, dimension=1, complexity=4);");
  EXPECT_EQ(errors, 0u);
}

TEST(Parser, UnknownStreamOptionIsError) {
  auto [file, errors] = parse_text("type T = Stream(Bit(8), z=3);");
  EXPECT_GT(errors, 0u);
}

TEST(Parser, StreamletWithPortArrayAndClock) {
  auto [file, errors] = parse_text(R"(
streamlet s {
  a: Stream(Bit(8), d=1) in,
  b: Stream(Bit(8), d=1) out [4],
  c: Stream(Bit(8), d=1) in @ fast_clk,
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& s = std::get<StreamletDecl>(file.decls[0].node);
  ASSERT_EQ(s.ports.size(), 3u);
  EXPECT_EQ(s.ports[0].dir, PortDir::kIn);
  EXPECT_EQ(s.ports[1].dir, PortDir::kOut);
  EXPECT_NE(s.ports[1].array_size, nullptr);
  ASSERT_TRUE(s.ports[2].clock_domain.has_value());
  EXPECT_EQ(*s.ports[2].clock_domain, "fast_clk");
}

TEST(Parser, TemplateParameters) {
  auto [file, errors] = parse_text(R"(
streamlet s<T: type, n: int, name: string, ok: bool, f: float, clk: clockdomain> {
  a: T in,
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& s = std::get<StreamletDecl>(file.decls[0].node);
  ASSERT_EQ(s.params.size(), 6u);
  EXPECT_EQ(s.params[0].kind, ParamKind::kType);
  EXPECT_EQ(s.params[1].kind, ParamKind::kInt);
  EXPECT_EQ(s.params[2].kind, ParamKind::kString);
  EXPECT_EQ(s.params[3].kind, ParamKind::kBool);
  EXPECT_EQ(s.params[4].kind, ParamKind::kFloat);
  EXPECT_EQ(s.params[5].kind, ParamKind::kClockdomain);
}

TEST(Parser, ImplOfStreamletParameter) {
  auto [file, errors] = parse_text(R"(
streamlet pu_s<T: type> { a: T in, }
impl wrap<p: impl of pu_s, T: type> of pu_s<type T> {
  instance u(p),
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& impl = only_impl(file);
  ASSERT_EQ(impl.params.size(), 2u);
  EXPECT_EQ(impl.params[0].kind, ParamKind::kImpl);
  EXPECT_EQ(impl.params[0].impl_of_streamlet, "pu_s");
}

TEST(Parser, ExternalImplWithAtSyntax) {
  auto [file, errors] = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in, }
impl e of s @ external { }
)");
  EXPECT_EQ(errors, 0u);
  EXPECT_TRUE(only_impl(file).external);
}

TEST(Parser, TemplateArgumentsMixedKinds) {
  auto [file, errors] = parse_text(R"(
streamlet pu_s { a: Stream(Bit(1)) in, }
streamlet s { a: Stream(Bit(1)) in, }
impl target of pu_s @ external { }
impl user of s {
  instance x(tmpl<type Bit(8), impl target, 3 + 4, "hello", true>),
}
)");
  EXPECT_EQ(errors, 0u);
  const ImplDecl* user = nullptr;
  for (const Decl& d : file.decls) {
    if (const auto* i = std::get_if<ImplDecl>(&d.node)) {
      if (i->name == "user") user = i;
    }
  }
  ASSERT_NE(user, nullptr);
  const auto& inst = std::get<InstanceStmt>(user->body[0].node);
  ASSERT_EQ(inst.args.size(), 5u);
  EXPECT_EQ(inst.args[0].kind, TemplateArg::Kind::kType);
  EXPECT_EQ(inst.args[1].kind, TemplateArg::Kind::kImpl);
  EXPECT_EQ(inst.args[2].kind, TemplateArg::Kind::kExpr);
}

TEST(Parser, ConnectionsWithIndicesAndStructural) {
  auto [file, errors] = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in [2], b: Stream(Bit(1)) out, }
impl i of s {
  x[0].p => y.q[1],
  a[1] => b @structural,
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& impl = only_impl(file);
  const auto& c0 = std::get<ConnectStmt>(impl.body[0].node);
  ASSERT_TRUE(c0.src.instance.has_value());
  EXPECT_NE(c0.src.instance_index, nullptr);
  EXPECT_NE(c0.dst.port_index, nullptr);
  const auto& c1 = std::get<ConnectStmt>(impl.body[1].node);
  EXPECT_TRUE(c1.structural);
}

TEST(Parser, GenerativeForIfAssert) {
  auto [file, errors] = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in, }
impl i of s {
  for k in 0->4 {
    if (k % 2 == 0) {
      x[k].p => y.q[k],
    } else {
      assert(k > 0, "odd");
    }
  }
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& impl = only_impl(file);
  const auto& f = std::get<ForStmt>(impl.body[0].node);
  EXPECT_EQ(f.var, "k");
  const auto& cond = std::get<IfStmt>(f.body[0].node);
  EXPECT_EQ(cond.then_body.size(), 1u);
  EXPECT_EQ(cond.else_body.size(), 1u);
}

TEST(Parser, InstanceWithExplicitIndexAndArray) {
  auto [file, errors] = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in, }
impl i of s {
  instance named[3](foo),
  instance arr(bar) [8],
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& impl = only_impl(file);
  const auto& a = std::get<InstanceStmt>(impl.body[0].node);
  EXPECT_NE(a.name_index, nullptr);
  const auto& b = std::get<InstanceStmt>(impl.body[1].node);
  EXPECT_NE(b.array_size, nullptr);
}

TEST(Parser, SimBlockFullSyntax) {
  auto [file, errors] = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in, b: Stream(Bit(1)) out, }
impl i of s @ external {
  sim {
    state mode = "idle";
    on start {
      send(b, 1);
    }
    on a.receive && b.receive {
      if (mode == "idle") {
        delay(8);
        send(b, payload * 2);
        set mode = "busy";
      } else {
        set mode = "idle";
      }
      ack(a);
    }
  }
}
)");
  EXPECT_EQ(errors, 0u);
  const auto& impl = only_impl(file);
  ASSERT_TRUE(impl.sim.has_value());
  EXPECT_EQ(impl.sim->states.size(), 1u);
  ASSERT_EQ(impl.sim->handlers.size(), 2u);
  EXPECT_TRUE(impl.sim->handlers[0].wait_ports.empty());  // on start
  EXPECT_EQ(impl.sim->handlers[1].wait_ports.size(), 2u);
}

TEST(Parser, ImportIsAcceptedAndIgnored) {
  auto [file, errors] = parse_text("import std; const x = 1;");
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(file.decls.size(), 1u);
}

TEST(Parser, ErrorRecoveryReportsMultipleErrors) {
  auto [file, errors] = parse_text(R"(
const = 5;
type T = Stream(Bit(8), d=1);
const ok = 2;
streamlet { }
const also_ok = 3;
)");
  EXPECT_GE(errors, 2u);
  // Recovery must still capture the valid declarations.
  std::size_t const_count = 0;
  for (const Decl& d : file.decls) {
    if (std::holds_alternative<ConstDecl>(d.node)) ++const_count;
  }
  EXPECT_GE(const_count, 2u);
}

TEST(Parser, MissingSemicolonReported) {
  auto outcome = parse_text("const a = 5 const b = 6;");
  EXPECT_GT(outcome.errors, 0u);
}

TEST(Parser, PanicModeRecoversAtLeastThreeErrorsFromOneSource) {
  // Panic-mode recovery: each broken construct reports exactly one primary
  // error, the parser re-syncs on `;` / `}`, and the next broken construct
  // reports again — so one pass over a thrice-broken file yields >= 3
  // diagnostics instead of stopping at the first or cascading dozens.
  auto [file, errors] = parse_text(R"(
const = 1;
const good_one = 2;
type = Stream(Bit(8), d=1);
const good_two = 3;
streamlet { }
const good_three = 4;
)");
  EXPECT_GE(errors, 3u);
  // Panic mode suppresses cascades: nowhere near one error per token.
  EXPECT_LE(errors, 8u);
  // Every well-formed declaration between the broken ones was recovered.
  std::size_t const_count = 0;
  for (const Decl& d : file.decls) {
    if (std::holds_alternative<ConstDecl>(d.node)) ++const_count;
  }
  EXPECT_GE(const_count, 3u);
}

TEST(Parser, TemplateAngleVsComparisonInArgs) {
  // Comparisons inside template args must be parenthesized; plain
  // arithmetic must work unparenthesized.
  auto ok = parse_text(R"(
streamlet s { a: Stream(Bit(1)) in, }
impl i of s {
  instance x(foo<3 + 4 * 2, (1 < 2)>),
}
)");
  EXPECT_EQ(ok.errors, 0u);
}

// --- Round-trip property: parse(print(parse(text))) == parse once --------

class ParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, PrettyPrintedSourceReparsesIdentically) {
  support::DiagnosticEngine diags1;
  SourceFile first = parse(GetParam(), support::FileId{1}, diags1);
  ASSERT_EQ(diags1.error_count(), 0u) << diags1.render();

  std::string printed = to_source(first);
  support::DiagnosticEngine diags2;
  SourceFile second = parse(printed, support::FileId{1}, diags2);
  ASSERT_EQ(diags2.error_count(), 0u)
      << "printed source failed to reparse:\n" << printed << diags2.render();

  // Printing the reparsed tree must be a fixed point.
  EXPECT_EQ(printed, to_source(second));
}

INSTANTIATE_TEST_SUITE_P(
    Sources, ParserRoundTrip,
    ::testing::Values(
        "const x = 1 + 2 * 3;",
        "const arr = [1, 2, 3]; const y = arr[1] + len(arr);",
        "const w = ceil(log2(10 ** 15 - 1));",
        "type T = Stream(Bit(8), t=2.000000, d=2, c=7);",
        "Group G { a: Bit(1), b: Bit(2), }",
        "Union U { a: Bit(1), b: Bit(2), }",
        R"(streamlet s<T: type, n: int> {
  p: T in [4],
  q: T out,
})",
        R"(streamlet s { a: Stream(Bit(1), d=1) in, }
impl i of s @ external {
})",
        R"(streamlet s { a: Stream(Bit(1), d=1) in [2], b: Stream(Bit(1), d=1) out [2], }
impl i of s {
  for k in (0 -> 2) {
    a[k] => b[k],
  }
})"));

}  // namespace
}  // namespace tydi::lang
