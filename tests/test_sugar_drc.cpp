// Sugaring (Fig. 4) and DRC (Sec. III) tests: automatic duplicator/voider
// insertion, the port-use-exactly-once discipline, type equality, clock
// domains, directions, and the sugaring-idempotence property.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/drc/drc.hpp"
#include "src/sugar/sugar.hpp"

namespace tydi {
namespace {

driver::CompileResult compile(std::string_view source, const std::string& top,
                              bool sugaring = true,
                              bool port_use_error = true) {
  driver::CompileOptions options;
  options.top = top;
  options.sugaring = sugaring;
  options.drc.port_use_count_is_error = port_use_error;
  options.emit_vhdl = false;
  return driver::compile_source(std::string(source), options);
}

constexpr std::string_view kFanoutSource = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet sink_like_s { a: t in, }
impl eat of sink_like_s @ external { }
streamlet top_s { src: t in, }
impl top of top_s {
  instance e1(eat),
  instance e2(eat),
  instance e3(eat),
  src => e1.a,
  src => e2.a,
  src => e3.a,
}
)";

TEST(Sugar, FanOutGetsDuplicator) {
  auto result = compile(kFanoutSource, "top");
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_EQ(result.sugar_stats.duplicators_inserted, 1u);
  EXPECT_EQ(result.sugar_stats.duplicated_channels, 3u);
  EXPECT_TRUE(result.drc_report.clean()) << result.drc_report.render();
  // The duplicator impl was materialized as an external stdlib instance.
  bool found = false;
  for (const auto& impl : result.design.impls()) {
    if (impl.template_name == "duplicator_i") {
      found = true;
      EXPECT_TRUE(impl.external);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sugar, WithoutSugaringFanOutViolatesDrc) {
  auto result = compile(kFanoutSource, "top", /*sugaring=*/false,
                        /*port_use_error=*/false);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_GT(result.drc_report.count(drc::Rule::kPortUseCount), 0u);
}

constexpr std::string_view kUnusedSource = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet producer_s { q: t out, r: t out, }
impl make of producer_s @ external { }
streamlet top_s { out1: t out, }
impl top of top_s {
  instance m(make),
  m.q => out1,
}
)";

TEST(Sugar, UnusedOutputGetsVoider) {
  auto result = compile(kUnusedSource, "top");
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_EQ(result.sugar_stats.voiders_inserted, 1u);
  EXPECT_TRUE(result.drc_report.clean()) << result.drc_report.render();
}

TEST(Sugar, IdempotenceProperty) {
  // After one sugaring pass every source feeds exactly one sink, so a
  // second pass must insert nothing.
  auto result = compile(kFanoutSource, "top");
  ASSERT_TRUE(result.success());
  support::DiagnosticEngine diags;
  sugar::SugarStats second =
      sugar::apply_sugaring(result.design, sugar::SugarOptions{}, diags);
  EXPECT_EQ(second.duplicators_inserted, 0u);
  EXPECT_EQ(second.voiders_inserted, 0u);
}

TEST(Sugar, OptionsDisableInsertions) {
  driver::CompileOptions options;
  options.top = "top";
  options.sugar.insert_duplicators = false;
  options.drc.port_use_count_is_error = false;
  options.emit_vhdl = false;
  auto result =
      driver::compile_source(std::string(kFanoutSource), options);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(result.sugar_stats.duplicators_inserted, 0u);
}

TEST(Sugar, TypeTokenStableAndSanitized) {
  types::TypeRef named = types::make_stream(types::make_bit(8), {}, "t_x");
  types::TypeRef anon = types::make_stream(types::make_bit(8));
  EXPECT_EQ(sugar::type_token(named), sugar::type_token(named));
  EXPECT_NE(sugar::type_token(named), sugar::type_token(anon));
  EXPECT_EQ(sugar::type_token(named).find(' '), std::string::npos);
}

// --- DRC rules -------------------------------------------------------------

TEST(Drc, CleanDesignPasses) {
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)",
                        "top");
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_TRUE(result.drc_report.clean());
}

TEST(Drc, StrictTypeMismatchRejected) {
  auto result = compile(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(8), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b,
}
)",
                        "top");
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.drc_report.count(drc::Rule::kTypeEquality), 0u);
}

TEST(Drc, StructuralAttributeRelaxesEquality) {
  auto result = compile(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(8), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b @structural,
}
)",
                        "top");
  EXPECT_TRUE(result.success()) << result.report();
  EXPECT_TRUE(result.drc_report.clean());
}

TEST(Drc, ComplexityDowngradeRejected) {
  auto result = compile(R"(
type hi = Stream(Bit(8), d=1, c=7);
type lo = Stream(Bit(8), d=1, c=2);
streamlet s { a: hi in, b: lo out, }
impl top of s {
  a => b @structural,
}
)",
                        "top");
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.drc_report.count(drc::Rule::kTypeEquality), 0u);
}

TEST(Drc, ClockDomainCrossingRejected) {
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ clk_a, b: t out @ clk_b, }
impl top of s {
  a => b,
}
)",
                        "top");
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.drc_report.count(drc::Rule::kClockDomain), 0u);
}

TEST(Drc, DirectionViolationRejected) {
  // Connecting two self input ports: the right side is not a sink.
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet eat_s { x: t in, }
impl eat of eat_s @ external { }
streamlet s { a: t in, b: t in, }
impl top of s {
  instance e1(eat),
  instance e2(eat),
  a => b,
  a => e1.x,
  b => e2.x,
}
)",
                        "top", /*sugaring=*/true, /*port_use_error=*/false);
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.drc_report.count(drc::Rule::kDirection), 0u);
}

TEST(Drc, UnknownEndpointsReported) {
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => nosuch.port,
  ghost => b,
}
)",
                        "top", /*sugaring=*/true, /*port_use_error=*/false);
  EXPECT_FALSE(result.success());
  EXPECT_GE(result.drc_report.count(drc::Rule::kResolution), 2u);
}

TEST(Drc, UndrivenSinkReported) {
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, c: t out, }
impl top of s {
  a => b,
}
)",
                        "top", /*sugaring=*/true, /*port_use_error=*/false);
  // Sugaring cannot fix an undriven sink (only unused sources).
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_GT(result.drc_report.count(drc::Rule::kPortUseCount), 0u);
}

TEST(Drc, DoublyDrivenSinkReported) {
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t in, c: t out, }
impl top of s {
  a => c,
  b => c,
}
)",
                        "top", /*sugaring=*/false, /*port_use_error=*/false);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_GT(result.drc_report.count(drc::Rule::kPortUseCount), 0u);
}

TEST(Drc, ReportRendersRuleNames) {
  auto result = compile(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(16), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b,
}
)",
                        "top");
  EXPECT_FALSE(result.success());
  std::string rendered = result.drc_report.render();
  EXPECT_NE(rendered.find("type-equality"), std::string::npos);
  EXPECT_NE(rendered.find("violation"), std::string::npos);
}

TEST(Drc, ExternalImplsAreNotChecked) {
  // External impls carry no netlist; DRC must skip them entirely.
  auto result = compile(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl ext of s @ external { }
streamlet top_s { a: t in, b: t out, }
impl top of top_s {
  instance e(ext),
  a => e.a,
  e.b => b,
}
)",
                        "top");
  EXPECT_TRUE(result.success()) << result.report();
}

}  // namespace
}  // namespace tydi
