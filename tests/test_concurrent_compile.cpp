// Concurrency tests of the shared compile session: many threads compiling
// through one CompileSession must produce byte-identical output to serial
// standalone compiles — hit or miss, with or without a racing
// invalidation — and the parallel compile_batch must be schedule-
// independent. These tests run under TSan in CI (the sim-shard-tsan job),
// which is where the locking discipline of the memo / parse / lowering /
// emission caches is actually enforced.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/compiler.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

// Serial standalone compile of a query — the golden bytes every concurrent
// compile is compared against.
std::string golden_vhdl(const tpch::QueryCase& q) {
  driver::CompileResult r = tpch::compile_query(q);
  EXPECT_TRUE(r.success()) << r.report();
  return r.vhdl_text;
}

TEST(ConcurrentCompile, SameQueryManyThreadsByteIdentical) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  const std::string golden = golden_vhdl(*q);

  driver::CompileSession session;
  constexpr int kThreads = 8;
  std::vector<std::string> vhdl(kThreads);
  std::vector<std::string> reports(kThreads);
  {
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t]() {
        driver::CompileResult r = tpch::compile_query(*q, session);
        vhdl[t] = r.success() ? r.vhdl_text : "";
        reports[t] = r.report();
      });
    }
    for (std::thread& th : pool) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(vhdl[t], golden) << "thread " << t << ": " << reports[t];
  }
}

TEST(ConcurrentCompile, DifferentQueriesManyThreadsByteIdentical) {
  const std::vector<tpch::QueryCase>& queries = tpch::queries();
  std::vector<std::string> goldens(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    goldens[i] = golden_vhdl(queries[i]);
  }

  driver::CompileSession session;
  std::vector<std::string> vhdl(queries.size());
  {
    std::vector<std::thread> pool;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      pool.emplace_back([&, i]() {
        driver::CompileResult r = tpch::compile_query(queries[i], session);
        vhdl[i] = r.success() ? r.vhdl_text : r.report();
      });
    }
    for (std::thread& th : pool) th.join();
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(vhdl[i], goldens[i]) << queries[i].id << queries[i].note;
  }
}

TEST(ConcurrentCompile, WarmConcurrentCompilesHitRateOne) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileSession session;
  // Warm the session serially; every concurrent compile afterwards must be
  // a pure replay (per-compile hit rate 1.0).
  {
    driver::CompileResult warm = tpch::compile_query(*q, session);
    ASSERT_TRUE(warm.success()) << warm.report();
  }
  constexpr int kThreads = 8;
  std::vector<double> hit_rates(kThreads, 0.0);
  {
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t]() {
        driver::CompileResult r = tpch::compile_query(*q, session);
        hit_rates[t] = r.success() ? r.template_cache.hit_rate() : -1.0;
      });
    }
    for (std::thread& th : pool) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(hit_rates[t], 1.0) << "thread " << t;
  }
}

TEST(ConcurrentCompile, InvalidationRacingCompilesIsSafe) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 3");
  ASSERT_NE(q, nullptr);
  const std::string golden = golden_vhdl(*q);

  driver::CompileSession session;
  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  std::atomic<bool> done{false};
  std::vector<std::string> failures(kThreads);

  std::thread invalidator([&]() {
    // Hammer invalidate() while compiles are in flight: in-flight compiles
    // keep the shared payloads they captured and re-elaborate on their
    // next lookup; outputs must not change.
    while (!done.load(std::memory_order_acquire)) {
      session.invalidate();
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t]() {
        for (int round = 0; round < kRounds; ++round) {
          driver::CompileResult r = tpch::compile_query(*q, session);
          if (!r.success()) {
            failures[t] = r.report();
            return;
          }
          if (r.vhdl_text != golden) {
            failures[t] = "round " + std::to_string(round) +
                          ": VHDL differs from serial golden";
            return;
          }
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }
  done.store(true, std::memory_order_release);
  invalidator.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
}

// The whole TPC-H batch at --jobs {2,4,8} must reproduce the --jobs 1 run
// byte for byte: same entries in the same order, same emitted texts, and a
// fully warm second round at every worker count.
TEST(ConcurrentCompile, ParallelBatchByteIdenticalAcrossWorkerCounts) {
  std::vector<driver::BatchJob> jobs = tpch::batch_jobs();
  driver::BatchOptions serial_options;
  serial_options.jobs = 1;
  serial_options.keep_texts = true;

  driver::CompileSession serial_session;
  driver::BatchResult serial =
      driver::compile_batch(serial_session, jobs, serial_options);
  ASSERT_TRUE(serial.success()) << serial.render();

  for (int workers : {2, 4, 8}) {
    driver::BatchOptions options;
    options.jobs = workers;
    options.keep_texts = true;
    driver::CompileSession session;
    driver::BatchResult cold = driver::compile_batch(session, jobs, options);
    ASSERT_TRUE(cold.success()) << "jobs=" << workers << "\n" << cold.render();
    ASSERT_EQ(cold.entries.size(), serial.entries.size());
    for (std::size_t i = 0; i < serial.entries.size(); ++i) {
      EXPECT_EQ(cold.entries[i].name, serial.entries[i].name);
      EXPECT_EQ(cold.entries[i].vhdl_text, serial.entries[i].vhdl_text)
          << "jobs=" << workers << " entry " << serial.entries[i].name;
      EXPECT_EQ(cold.entries[i].ir_text, serial.entries[i].ir_text)
          << "jobs=" << workers << " entry " << serial.entries[i].name;
    }
    EXPECT_EQ(cold.bytes_emitted, serial.bytes_emitted) << "jobs=" << workers;

    // Warm round through the same session: every job replays from the memo.
    driver::BatchResult warm = driver::compile_batch(session, jobs, options);
    ASSERT_TRUE(warm.success()) << warm.render();
    EXPECT_EQ(warm.template_cache.hit_rate(), 1.0) << "jobs=" << workers;
    EXPECT_EQ(warm.bytes_emitted, serial.bytes_emitted) << "jobs=" << workers;
  }
}

TEST(ConcurrentCompile, CancellationClassifiesAsAborted) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileSession session;
  driver::CompileOptions options = tpch::query_options(*q);
  options.cancelled = []() { return true; };
  driver::CompileResult r =
      session.compile(tpch::query_sources(*q), options);
  EXPECT_FALSE(r.success());
  support::Status status = r.status();
  EXPECT_EQ(status.code(), support::StatusCode::kAborted);
  EXPECT_EQ(status.phase(), "watchdog");
}

TEST(ConcurrentCompile, ExhaustedBudgetClassifiesAsAborted) {
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileSession session;
  driver::CompileOptions options = tpch::query_options(*q);
  // A sub-microsecond budget is always exceeded by the first phase-boundary
  // check (the parse phase itself takes longer), so this is deterministic.
  options.budget_ms = 1e-6;
  driver::CompileResult r =
      session.compile(tpch::query_sources(*q), options);
  EXPECT_FALSE(r.success());
  EXPECT_EQ(r.status().code(), support::StatusCode::kAborted);
}

}  // namespace
}  // namespace tydi
