// Durability tests: CRC32C framing, torn-tail-tolerant recovery driven as
// a fuzz-style corpus (truncation at every byte, a bit flip at every
// byte, seeded I/O fault sweeps), atomic snapshot crash safety, the
// compile-journal key set, the replay loop, and an in-process
// warm-restart of the whole CompileService. The invariant under test is
// the journal's one promise: whatever bytes survive a crash, boot always
// succeeds with the longest valid prefix — never UB, never a refusal to
// serve.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/elab/memo.hpp"
#include "src/service/service.hpp"
#include "src/service/warmup.hpp"
#include "src/support/journal.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

using service::warmup::CompileJournal;
using service::warmup::JournalEntry;
using service::warmup::ReplayOptions;
using service::warmup::ReplayStats;
using service::warmup::SourceStampRecord;
using support::IoFaultPlan;
using support::RecoveredJournal;
using support::Status;
using support::StatusCode;

std::string temp_path(const std::string& tag) {
  return "/tmp/tydi_journal_" + std::to_string(::getpid()) + "_" + tag;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A journal at `path` holding exactly `payloads`, written fault-free.
void build_journal(const std::string& path,
                   const std::vector<std::string>& payloads) {
  ::unlink(path.c_str());
  support::JournalWriter writer;
  ASSERT_TRUE(writer.open(path).is_ok());
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(writer.append(payload).is_ok());
  }
}

TEST(Crc32c, KnownAnswerAndBasics) {
  // The standard CRC32C check value.
  EXPECT_EQ(support::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(support::crc32c(""), 0u);
  EXPECT_NE(support::crc32c("abc"), support::crc32c("abd"));
  // Binary-safe: embedded NUL bytes count.
  EXPECT_NE(support::crc32c(std::string_view("a\0b", 3)),
            support::crc32c(std::string_view("ab", 2)));
}

TEST(JournalFraming, AppendRecoverRoundTrip) {
  const std::string path = temp_path("roundtrip.jnl");
  const std::vector<std::string> payloads = {
      "TPCH 6 vhdl\n", "", std::string("bin\0\n\xff", 6),
      std::string(2000, 'x')};
  build_journal(path, payloads);

  RecoveredJournal recovered;
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  EXPECT_EQ(recovered.records, payloads);
  EXPECT_FALSE(recovered.dropped_tail());
  EXPECT_EQ(recovered.valid_bytes, recovered.total_bytes);
  ::unlink(path.c_str());
}

TEST(JournalFraming, MissingFileIsFirstBoot) {
  RecoveredJournal recovered;
  ASSERT_TRUE(
      support::recover_journal(temp_path("nonexistent.jnl"), recovered)
          .is_ok());
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_EQ(recovered.total_bytes, 0u);
  EXPECT_FALSE(recovered.dropped_tail());
}

TEST(JournalFraming, NotAJournalRecoversColdAndRepairs) {
  const std::string path = temp_path("garbage.jnl");
  write_file(path, "this is not a journal at all");
  RecoveredJournal recovered;
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_EQ(recovered.valid_bytes, 0u);
  EXPECT_TRUE(recovered.dropped_tail());
  // The repair path rewrites a fresh header-only journal.
  ASSERT_TRUE(support::truncate_journal(path, recovered.valid_bytes).is_ok());
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  EXPECT_TRUE(recovered.records.empty());
  EXPECT_FALSE(recovered.dropped_tail());
  EXPECT_EQ(recovered.total_bytes, support::kJournalHeaderBytes);
  ::unlink(path.c_str());
}

// Fuzz-style corpus #1: truncate the journal at EVERY byte offset
// (covering all record boundaries and boundaries +/- 1). Recovery must
// always succeed with exactly the records that fit completely.
TEST(JournalRecoveryFuzz, TruncationAtEveryByte) {
  const std::string path = temp_path("trunc.jnl");
  const std::vector<std::string> payloads = {"alpha", "bee", "", "delta!"};
  build_journal(path, payloads);
  const std::string image = read_file(path);

  // Record end offsets in the intact image.
  std::vector<std::size_t> ends;
  std::size_t offset = support::kJournalHeaderBytes;
  for (const std::string& p : payloads) {
    offset += support::kRecordHeaderBytes + p.size();
    ends.push_back(offset);
  }
  ASSERT_EQ(offset, image.size());

  const std::string cut_path = temp_path("trunc_cut.jnl");
  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    write_file(cut_path, image.substr(0, cut));
    RecoveredJournal recovered;
    ASSERT_TRUE(support::recover_journal(cut_path, recovered).is_ok())
        << "cut at " << cut;
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    if (cut < support::kJournalHeaderBytes) {
      EXPECT_EQ(recovered.valid_bytes, 0u) << "cut at " << cut;
      expect = 0;
    }
    ASSERT_EQ(recovered.records.size(), expect) << "cut at " << cut;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(recovered.records[i], payloads[i]) << "cut at " << cut;
    }
    EXPECT_EQ(recovered.dropped_tail(),
              cut != 0 && (cut < support::kJournalHeaderBytes ||
                           recovered.valid_bytes < cut))
        << "cut at " << cut;
  }
  ::unlink(path.c_str());
  ::unlink(cut_path.c_str());
}

// Fuzz-style corpus #2: flip one bit in EVERY byte of the image. Recovery
// must keep exactly the records before the damaged one and never crash
// (the ASan/UBSan CI job runs this test too).
TEST(JournalRecoveryFuzz, BitFlipAtEveryByte) {
  const std::string path = temp_path("flip.jnl");
  const std::vector<std::string> payloads = {"alpha", "bee", "", "delta!"};
  build_journal(path, payloads);
  const std::string image = read_file(path);

  std::vector<std::size_t> starts;
  std::size_t offset = support::kJournalHeaderBytes;
  for (const std::string& p : payloads) {
    starts.push_back(offset);
    offset += support::kRecordHeaderBytes + p.size();
  }

  const std::string flip_path = temp_path("flip_cut.jnl");
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    std::string damaged = image;
    damaged[byte] = static_cast<char>(
        static_cast<unsigned char>(damaged[byte]) ^ (1u << (byte % 8)));
    write_file(flip_path, damaged);
    RecoveredJournal recovered;
    ASSERT_TRUE(support::recover_journal(flip_path, recovered).is_ok())
        << "flip at " << byte;
    // Record containing the flipped byte (== starts.size() when the flip
    // is in the header).
    std::size_t damaged_record = 0;
    if (byte < support::kJournalHeaderBytes) {
      damaged_record = 0;  // header flip: nothing survives
      EXPECT_EQ(recovered.valid_bytes, 0u) << "flip at " << byte;
    } else {
      while (damaged_record + 1 < starts.size() &&
             starts[damaged_record + 1] <= byte) {
        ++damaged_record;
      }
    }
    EXPECT_TRUE(recovered.dropped_tail()) << "flip at " << byte;
    ASSERT_EQ(recovered.records.size(), damaged_record)
        << "flip at " << byte;
    for (std::size_t i = 0; i < damaged_record; ++i) {
      EXPECT_EQ(recovered.records[i], payloads[i]) << "flip at " << byte;
    }
  }
  ::unlink(path.c_str());
  ::unlink(flip_path.c_str());
}

TEST(JournalFaults, EnospcMidAppendKeepsWriterUsable) {
  const std::string path = temp_path("enospc.jnl");
  ::unlink(path.c_str());
  support::JournalWriter writer;
  ASSERT_TRUE(writer.open(path).is_ok());

  IoFaultPlan plan;
  plan.seed = 7;
  plan.enospc_p = 1.0;  // every append hits ENOSPC after a partial write
  writer.set_fault_plan(plan);
  const Status full = writer.append("doomed payload");
  EXPECT_EQ(full.code(), StatusCode::kIoError);

  // The tear was repaired in place: the journal is still valid and the
  // writer still works once space frees up.
  writer.set_fault_plan(IoFaultPlan{});
  ASSERT_TRUE(writer.append("survivor").is_ok());
  writer.close();

  RecoveredJournal recovered;
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0], "survivor");
  EXPECT_FALSE(recovered.dropped_tail());
  ::unlink(path.c_str());
}

TEST(JournalFaults, TornAppendIsACrashRecoveryTruncates) {
  const std::string path = temp_path("torn.jnl");
  build_journal(path, {"first"});

  support::JournalWriter writer;
  ASSERT_TRUE(writer.open(path).is_ok());
  IoFaultPlan plan;
  plan.seed = 11;
  plan.torn_append_p = 1.0;
  writer.set_fault_plan(plan);
  EXPECT_EQ(writer.append("torn away").code(), StatusCode::kIoError);
  // Simulated process death: every later call fails without touching disk.
  EXPECT_EQ(writer.append("after death").code(), StatusCode::kIoError);
  writer.close();

  // Next boot: recover, truncate the tear, continue appending.
  RecoveredJournal recovered;
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0], "first");
  ASSERT_TRUE(
      support::truncate_journal(path, recovered.valid_bytes).is_ok());
  support::JournalWriter writer2;
  ASSERT_TRUE(writer2.open(path).is_ok());
  ASSERT_TRUE(writer2.append("second life").is_ok());
  writer2.close();
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  EXPECT_EQ(recovered.records,
            (std::vector<std::string>{"first", "second life"}));
  ::unlink(path.c_str());
}

// Seeded sweep: many mixed fault schedules (torn appends, silent bit
// flips, ENOSPC), each fully deterministic from its seed. Whatever the
// schedule does, recovery must yield an in-order subset of the appended
// payloads, and the repaired journal must accept new appends.
TEST(JournalFaults, SeededFaultScheduleSweep) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::string path =
        temp_path("sweep_" + std::to_string(seed) + ".jnl");
    ::unlink(path.c_str());
    {
      support::JournalWriter writer;
      ASSERT_TRUE(writer.open(path).is_ok()) << "seed " << seed;
      writer.set_fault_plan(IoFaultPlan::from_seed(seed));
      for (int i = 0; i < 30; ++i) {
        (void)writer.append("entry " + std::to_string(i));
      }
    }
    RecoveredJournal recovered;
    ASSERT_TRUE(support::recover_journal(path, recovered).is_ok())
        << "seed " << seed;
    // In-order subset: indices strictly increase.
    int last = -1;
    for (const std::string& record : recovered.records) {
      ASSERT_EQ(record.rfind("entry ", 0), 0u) << "seed " << seed;
      const int index = std::stoi(record.substr(6));
      EXPECT_GT(index, last) << "seed " << seed;
      last = index;
    }
    // Repair + continue: the journal always comes back writable.
    ASSERT_TRUE(
        support::truncate_journal(path, recovered.valid_bytes).is_ok())
        << "seed " << seed;
    support::JournalWriter writer;
    ASSERT_TRUE(writer.open(path).is_ok()) << "seed " << seed;
    ASSERT_TRUE(writer.append("tail").is_ok()) << "seed " << seed;
    writer.close();
    RecoveredJournal after;
    ASSERT_TRUE(support::recover_journal(path, after).is_ok());
    ASSERT_EQ(after.records.size(), recovered.records.size() + 1)
        << "seed " << seed;
    EXPECT_EQ(after.records.back(), "tail") << "seed " << seed;
    ::unlink(path.c_str());
  }
}

TEST(JournalSnapshot, CrashAtEitherPointLeavesOldJournalIntact) {
  const std::string path = temp_path("snap.jnl");
  const std::vector<std::string> original = {"one", "two", "three"};
  build_journal(path, original);

  for (const bool before_rename : {false, true}) {
    IoFaultPlan plan;
    plan.crash_mid_snapshot = !before_rename;
    plan.crash_before_rename = before_rename;
    support::IoFaultInjector injector(plan);
    const Status status =
        support::write_snapshot_atomic(path, {"replacement"}, &injector);
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    RecoveredJournal recovered;
    ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
    EXPECT_EQ(recovered.records, original)
        << "crash_before_rename=" << before_rename;
    EXPECT_FALSE(recovered.dropped_tail());
  }

  // And the fault-free snapshot replaces the journal atomically.
  ASSERT_TRUE(
      support::write_snapshot_atomic(path, {"compacted"}, nullptr).is_ok());
  RecoveredJournal recovered;
  ASSERT_TRUE(support::recover_journal(path, recovered).is_ok());
  EXPECT_EQ(recovered.records, std::vector<std::string>{"compacted"});
  EXPECT_EQ(::access((path + ".tmp").c_str(), F_OK), -1);
  ::unlink(path.c_str());
}

TEST(JournalEntryFormat, SerializeParseRoundTrip) {
  JournalEntry entry;
  entry.request = "FILE /tmp/a.td,/tmp/b.td top_i vhdl";
  entry.stamps = {SourceStampRecord{"/tmp/a.td", 0xDEADBEEFCAFEull},
                  SourceStampRecord{"/tmp/path with spaces.td", 42}};
  JournalEntry parsed;
  ASSERT_TRUE(JournalEntry::parse(entry.serialize(), parsed));
  EXPECT_EQ(parsed, entry);

  JournalEntry no_stamps;
  no_stamps.request = "TPCH 6 vhdl";
  ASSERT_TRUE(JournalEntry::parse(no_stamps.serialize(), parsed));
  EXPECT_EQ(parsed, no_stamps);

  for (const char* bad : {"", "\n", "req\nnot-a-number path",
                          "req\n123", "req\n123 "}) {
    EXPECT_FALSE(JournalEntry::parse(bad, parsed)) << "payload: " << bad;
  }
}

TEST(CompileJournalTest, DedupCompactReopen) {
  const std::string path = temp_path("compile.jnl");
  ::unlink(path.c_str());

  JournalEntry q6{"TPCH 6 vhdl", {}};
  JournalEntry q3{"TPCH 3 ir", {}};
  {
    CompileJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    EXPECT_EQ(journal.live_keys(), 0u);
    journal.record(q6);
    journal.record(q3);
    const std::uint64_t bytes_after_two = journal.journal_bytes();
    journal.record(q6);  // duplicate key, identical stamps: no append
    EXPECT_EQ(journal.journal_bytes(), bytes_after_two);
    EXPECT_EQ(journal.live_keys(), 2u);
    EXPECT_EQ(journal.stats().appends.get(), 2u);

    // Re-record with changed stamps: the key is re-journaled.
    JournalEntry q6_edited = q6;
    q6_edited.stamps.push_back(SourceStampRecord{"/tmp/x.td", 99});
    journal.record(q6_edited);
    EXPECT_GT(journal.journal_bytes(), bytes_after_two);
    EXPECT_EQ(journal.live_keys(), 2u);

    ASSERT_TRUE(journal.compact().is_ok());
    EXPECT_GE(journal.last_compaction_ms(), 0.0);
    EXPECT_EQ(journal.stats().compactions.get(), 1u);
  }
  {
    // Reopen: the compacted live set comes back, later-record-wins.
    CompileJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    EXPECT_FALSE(journal.recovered_corrupt());
    ASSERT_EQ(journal.recovered_records(), 2u);
    const std::vector<JournalEntry> entries = journal.recovered_entries();
    EXPECT_EQ(entries[0].request, "TPCH 6 vhdl");
    EXPECT_EQ(entries[0].stamps.size(), 1u);  // the edited stamps won
    EXPECT_EQ(entries[1].request, "TPCH 3 ir");
  }
  ::unlink(path.c_str());
}

TEST(CompileJournalTest, CorruptTailBootsColdPastThePrefix) {
  const std::string path = temp_path("corrupt.jnl");
  ::unlink(path.c_str());
  {
    CompileJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    journal.record(JournalEntry{"TPCH 6 vhdl", {}});
    journal.record(JournalEntry{"TPCH 3 ir", {}});
  }
  // Torn tail: half a frame of garbage after the valid records.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x55\x55\x55";
  }
  CompileJournal journal;
  ASSERT_TRUE(journal.open(path).is_ok());
  EXPECT_TRUE(journal.recovered_corrupt());
  EXPECT_EQ(journal.recovery_dropped_bytes(), 3u);
  EXPECT_EQ(journal.recovered_records(), 2u);
  // The tear was truncated: appends land on a valid journal again.
  journal.record(JournalEntry{"TPCH 1 vhdl", {}});
  EXPECT_EQ(journal.live_keys(), 3u);
  ::unlink(path.c_str());
}

TEST(ReplayEntries, ClassifiesAndSkipsStale) {
  const std::string fresh_path = temp_path("fresh.td");
  write_file(fresh_path, "streamlet s {}");
  const std::uint64_t fresh_hash = elab::source_hash("streamlet s {}");

  std::vector<JournalEntry> entries;
  entries.push_back(JournalEntry{"OK_NO_STAMPS", {}});
  entries.push_back(JournalEntry{
      "OK_FRESH", {SourceStampRecord{fresh_path, fresh_hash}}});
  entries.push_back(JournalEntry{
      "STALE_HASH", {SourceStampRecord{fresh_path, fresh_hash ^ 1}}});
  entries.push_back(JournalEntry{
      "STALE_MISSING",
      {SourceStampRecord{temp_path("never_written.td"), 1}}});
  entries.push_back(JournalEntry{"SHED_ME", {}});
  entries.push_back(JournalEntry{"FAIL_ME", {}});

  ReplayStats stats;
  std::vector<std::string> submitted;
  (void)service::warmup::replay_entries(
      entries, ReplayOptions{},
      [&](const std::string& request) {
        submitted.push_back(request);
        if (request == "SHED_ME") {
          return Status::error(StatusCode::kUnavailable, "svc", "shed");
        }
        if (request == "FAIL_ME") {
          return Status::error(StatusCode::kInternal, "svc", "boom");
        }
        return Status::ok();
      },
      stats);
  EXPECT_EQ(submitted,
            (std::vector<std::string>{"OK_NO_STAMPS", "OK_FRESH", "SHED_ME",
                                      "FAIL_ME"}));
  EXPECT_EQ(stats.replayed.get(), 2u);
  EXPECT_EQ(stats.skipped_stale.get(), 2u);
  EXPECT_EQ(stats.shed.get(), 1u);
  EXPECT_EQ(stats.failed.get(), 1u);
  EXPECT_EQ(stats.budget_expired.get(), 0u);
  ::unlink(fresh_path.c_str());
}

TEST(ReplayEntries, BudgetBoundsTheLoop) {
  std::vector<JournalEntry> entries(3, JournalEntry{"SLOW", {}});
  ReplayStats stats;
  ReplayOptions options;
  options.budget_ms = 5.0;
  const double elapsed = service::warmup::replay_entries(
      entries, options,
      [](const std::string&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Status::ok();
      },
      stats);
  EXPECT_GE(elapsed, 5.0);
  EXPECT_EQ(stats.replayed.get(), 1u);  // budget noticed after entry #1
  EXPECT_EQ(stats.budget_expired.get(), 2u);
}

TEST(ReplayEntries, StopAbortsPromptly) {
  std::vector<JournalEntry> entries(5, JournalEntry{"NEVER", {}});
  ReplayStats stats;
  (void)service::warmup::replay_entries(
      entries, ReplayOptions{},
      [](const std::string&) { return Status::ok(); }, stats,
      [] { return true; });
  EXPECT_EQ(stats.replayed.get(), 0u);
  EXPECT_EQ(stats.budget_expired.get(), 5u);
}

// The tentpole end to end, in process: compile through a journaled
// service, drain (compacts), boot a second service on the same journal,
// replay, and require byte-identical outputs plus a warm memo.
TEST(ServiceWarmRestart, ReplayRewarmsByteIdentically) {
  const std::string journal_path = temp_path("svc.jnl");
  ::unlink(journal_path.c_str());

  service::ServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_path;

  std::string q6_vhdl;
  std::string q3_ir;
  {
    service::CompileService svc(config);
    ASSERT_NE(svc.journal(), nullptr);
    service::Response r6 = svc.handle_line("TPCH 6 vhdl");
    ASSERT_TRUE(r6.ok()) << r6.payload;
    q6_vhdl = r6.payload;
    service::Response r3 = svc.handle_line("TPCH 3 ir");
    ASSERT_TRUE(r3.ok()) << r3.payload;
    q3_ir = r3.payload;

    // SNAPSHOT verb compacts on demand.
    service::Response snap = svc.handle_line("SNAPSHOT");
    ASSERT_TRUE(snap.ok()) << snap.payload;
    EXPECT_EQ(snap.payload.rfind("compacted 2 key(s)", 0), 0u)
        << snap.payload;
    svc.drain();
  }

  {
    service::CompileService svc(config);
    ASSERT_NE(svc.journal(), nullptr);
    EXPECT_EQ(svc.journal()->recovered_records(), 2u);
    EXPECT_FALSE(svc.journal()->recovered_corrupt());

    svc.start_replay();
    svc.wait_replay();
    EXPECT_TRUE(svc.replay_done());
    EXPECT_EQ(svc.replay_stats().replayed.get(), 2u);
    EXPECT_EQ(svc.replay_stats().failed.get(), 0u);

    // Byte-identical to the first daemon's outputs.
    service::Response r6 = svc.handle_line("TPCH 6 vhdl");
    ASSERT_TRUE(r6.ok());
    EXPECT_EQ(r6.payload, q6_vhdl);
    service::Response r3 = svc.handle_line("TPCH 3 ir");
    ASSERT_TRUE(r3.ok());
    EXPECT_EQ(r3.payload, q3_ir);

    // The post-replay requests were warm: the memo served hits.
    const elab::MemoStats& memo = svc.session().memo().stats();
    const std::uint64_t hits = memo.streamlet_hits + memo.impl_hits;
    EXPECT_GT(hits, 0u);

    // HEALTH reports the journal + replay fields.
    const std::string health = svc.handle_line("HEALTH").payload;
    EXPECT_NE(health.find("\"journal_enabled\":true"), std::string::npos);
    EXPECT_NE(health.find("\"replay_done\":true"), std::string::npos);
    EXPECT_NE(health.find("\"replayed\":2"), std::string::npos);
    EXPECT_NE(health.find("\"journal_error\":\"\""), std::string::npos);
    const std::string stats = svc.handle_line("STATS").payload;
    EXPECT_NE(stats.find("journal_enabled 1"), std::string::npos);
    EXPECT_NE(stats.find("replayed 2"), std::string::npos);
    svc.drain();
  }
  ::unlink(journal_path.c_str());
}

TEST(ServiceWarmRestart, CorruptJournalIsALoggedColdStart) {
  const std::string journal_path = temp_path("svc_corrupt.jnl");
  write_file(journal_path, "TYDJRNL1 then pure garbage follows here");

  service::ServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_path;
  service::CompileService svc(config);
  // Boot succeeded; the corruption is reported, not fatal.
  ASSERT_NE(svc.journal(), nullptr);
  EXPECT_TRUE(svc.journal()->recovered_corrupt());
  const std::string health = svc.handle_line("HEALTH").payload;
  EXPECT_NE(health.find("corrupt-data"), std::string::npos) << health;
  // And the daemon still serves compiles + journals new keys.
  service::Response r = svc.handle_line("TPCH 6 vhdl");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(svc.journal()->live_keys(), 1u);
  svc.drain();
  ::unlink(journal_path.c_str());
}

TEST(ServiceWarmRestart, StaleFileStampsAreSkippedOnReplay) {
  const std::string journal_path = temp_path("svc_stale.jnl");
  ::unlink(journal_path.c_str());
  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  const std::string fletcher_path = temp_path("fletcher.td");
  const std::string query_path = temp_path("q6.td");
  write_file(fletcher_path, std::string(tpch::fletcher_source()));
  write_file(query_path, std::string(q->source));
  const std::string file_line = "FILE " + fletcher_path + "," + query_path +
                                " " + q->top_impl + " vhdl";

  service::ServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_path;
  {
    service::CompileService svc(config);
    service::Response r = svc.handle_line(file_line);
    ASSERT_TRUE(r.ok()) << r.payload;
    svc.drain();
  }
  // Edit one stamped source: the journaled key must not replay.
  write_file(query_path, "// edited\n" + std::string(q->source));
  {
    service::CompileService svc(config);
    ASSERT_NE(svc.journal(), nullptr);
    EXPECT_EQ(svc.journal()->recovered_records(), 1u);
    svc.start_replay();
    svc.wait_replay();
    EXPECT_EQ(svc.replay_stats().replayed.get(), 0u);
    EXPECT_EQ(svc.replay_stats().skipped_stale.get(), 1u);
    svc.drain();
  }
  ::unlink(journal_path.c_str());
  ::unlink(fletcher_path.c_str());
  ::unlink(query_path.c_str());
}

TEST(ServiceWarmRestart, ServiceLevelFaultInjectionSurvivesCompactionCrash) {
  const std::string journal_path = temp_path("svc_faults.jnl");
  ::unlink(journal_path.c_str());
  service::ServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_path;
  {
    service::CompileService svc(config);
    ASSERT_TRUE(svc.handle_line("TPCH 6 vhdl").ok());
    svc.drain();  // compacts: journal holds the one live key
  }
  // Boot with a crash-mid-snapshot plan: SNAPSHOT fails, the journal file
  // survives, and the daemon keeps serving.
  config.journal_faults.crash_mid_snapshot = true;
  {
    service::CompileService svc(config);
    ASSERT_NE(svc.journal(), nullptr);
    EXPECT_EQ(svc.journal()->recovered_records(), 1u);
    service::Response snap = svc.handle_line("SNAPSHOT");
    EXPECT_FALSE(snap.ok());
    EXPECT_EQ(snap.status.code(), StatusCode::kIoError);
    EXPECT_TRUE(svc.handle_line("TPCH 6 ir").ok());
  }
  // The journal on disk still recovers the pre-crash records.
  config.journal_faults = IoFaultPlan{};
  service::CompileService svc(config);
  ASSERT_NE(svc.journal(), nullptr);
  EXPECT_GE(svc.journal()->recovered_records(), 1u);
  EXPECT_FALSE(svc.journal()->recovered_corrupt());
  svc.drain();
  ::unlink(journal_path.c_str());
}

}  // namespace
}  // namespace tydi
