// Tydi-IR and VHDL backend tests: lowering, deterministic emission, entity
// and architecture structure, physical signal expansion, stdlib RTL bodies,
// and black boxes.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/ir/ir.hpp"
#include "src/support/text.hpp"
#include "src/vhdl/rtl_lib.hpp"
#include "src/vhdl/vhdl.hpp"

namespace tydi {
namespace {

driver::CompileResult compile(std::string_view source, const std::string& top) {
  driver::CompileOptions options;
  options.top = top;
  return driver::compile_source(std::string(source), options);
}

constexpr std::string_view kSmallDesign = R"(
type t_byte = Stream(Bit(8), d=1, c=2);
streamlet stage_s { a: t_byte in, b: t_byte out, }
impl stage of stage_s @ external { }
streamlet top_s { x: t_byte in, y: t_byte out, }
impl top of top_s {
  instance s1(stage),
  instance s2(stage),
  x => s1.a,
  s1.b => s2.a,
  s2.b => y,
}
)";

TEST(Ir, LowerCapturesEverything) {
  auto result = compile(kSmallDesign, "top");
  ASSERT_TRUE(result.success()) << result.report();
  ir::Module module = ir::lower(result.design);
  EXPECT_EQ(module.top_name, "top");
  ASSERT_NE(module.top, ir::kNoIndex);
  EXPECT_EQ(module.impls[module.top].name, "top");
  EXPECT_GE(module.streamlets.size(), 2u);
  bool found_top = false;
  for (const ir::IrImpl& impl : module.impls) {
    if (impl.name == "top") {
      found_top = true;
      EXPECT_FALSE(impl.external);
      EXPECT_EQ(impl.instances.size(), 2u);
      EXPECT_EQ(impl.connections.size(), 3u);
    }
    if (impl.name == "stage") {
      EXPECT_TRUE(impl.external);
    }
  }
  EXPECT_TRUE(found_top);
}

TEST(Ir, SymbolIndexesAndResolvedEndpoints) {
  auto result = compile(kSmallDesign, "top");
  ASSERT_TRUE(result.success()) << result.report();
  const ir::Module& module = result.ir;

  // Symbol-keyed flat lookup finds the top impl and its streamlet.
  const ir::IrImpl* top = module.find_impl(support::intern("top"));
  ASSERT_NE(top, nullptr);
  const ir::IrStreamlet* top_s = module.streamlet_of(*top);
  ASSERT_NE(top_s, nullptr);
  EXPECT_EQ(top_s->name, "top_s");
  EXPECT_EQ(top_s->port_index(support::intern("x")), 0u);
  EXPECT_EQ(top_s->port_index(support::intern("nope")), ir::kNoIndex);

  // Instances reference their impls by dense index.
  ASSERT_EQ(top->instances.size(), 2u);
  for (const ir::IrInstance& inst : top->instances) {
    ASSERT_NE(inst.impl, ir::kNoIndex);
    EXPECT_EQ(module.impls[inst.impl].name, "stage");
  }

  // Every connection endpoint was resolved at lowering time.
  for (const ir::IrConnection& c : top->connections) {
    EXPECT_TRUE(c.src.ok()) << c.src.display();
    EXPECT_TRUE(c.dst.ok()) << c.dst.display();
    EXPECT_NE(module.resolve(*top, c.src), nullptr);
    EXPECT_NE(module.resolve(*top, c.dst), nullptr);
  }
}

TEST(Ir, PortsCarryCachedPhysicalLayouts) {
  auto result = compile(kSmallDesign, "top");
  ASSERT_TRUE(result.success()) << result.report();
  const ir::IrImpl* top = result.ir.find_impl(support::intern("top"));
  ASSERT_NE(top, nullptr);
  const ir::IrStreamlet* s = result.ir.streamlet_of(*top);
  ASSERT_NE(s, nullptr);
  for (const ir::IrPort& p : s->ports) {
    ASSERT_FALSE(p.layouts.empty()) << p.name;
    const ir::StreamLayout& primary = p.layouts.front();
    EXPECT_EQ(primary.suffix, "");  // primary stream, relative naming
    EXPECT_EQ(primary.stream.data_bits, 8);
    EXPECT_FALSE(primary.signals.empty());
    EXPECT_EQ(primary.signals[0].name, "valid");
  }
}

TEST(Ir, EmissionIsDeterministic) {
  auto a = compile(kSmallDesign, "top");
  auto b = compile(kSmallDesign, "top");
  EXPECT_EQ(a.ir_text, b.ir_text);
  EXPECT_EQ(a.vhdl_text, b.vhdl_text);
}

TEST(Ir, TextContainsExpectedConstructs) {
  auto result = compile(kSmallDesign, "top");
  const std::string& text = result.ir_text;
  EXPECT_NE(text.find("streamlet top_s {"), std::string::npos);
  EXPECT_NE(text.find("port x: in Stream(Bit(8), d=1, c=2)"),
            std::string::npos);
  EXPECT_NE(text.find("impl top of top_s {"), std::string::npos);
  EXPECT_NE(text.find("instance s1: stage;"), std::string::npos);
  EXPECT_NE(text.find("connect s1.b -> s2.a;"), std::string::npos);
  EXPECT_NE(text.find("external impl stage"), std::string::npos);
}

TEST(Ir, StructuralConnectionAnnotated) {
  auto result = compile(R"(
type t1 = Stream(Bit(8), d=1, c=2);
type t2 = Stream(Bit(8), d=1, c=2);
streamlet s { a: t1 in, b: t2 out, }
impl top of s {
  a => b @structural,
}
)",
                        "top");
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_NE(result.ir_text.find("@structural"), std::string::npos);
}

TEST(Vhdl, EntityHasClockResetAndExpandedSignals) {
  auto result = compile(kSmallDesign, "top");
  const std::string& vhdl = result.vhdl_text;
  EXPECT_NE(vhdl.find("entity top is"), std::string::npos);
  EXPECT_NE(vhdl.find("clk : in std_logic;"), std::string::npos);
  EXPECT_NE(vhdl.find("rst : in std_logic;"), std::string::npos);
  // Physical expansion of port x (in): valid in, ready out, data in.
  EXPECT_NE(vhdl.find("x_valid : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("x_ready : out std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("x_data : in std_logic_vector(7 downto 0)"),
            std::string::npos);
  // Output port direction flips.
  EXPECT_NE(vhdl.find("y_valid : out std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("y_ready : in std_logic"), std::string::npos);
}

TEST(Vhdl, DimensionAddsLastAndStrb) {
  auto result = compile(kSmallDesign, "top");
  // d=1 streams carry last (1 bit) and strb (1 bit per lane).
  EXPECT_NE(result.vhdl_text.find("x_last : in std_logic_vector(0 downto 0)"),
            std::string::npos);
  EXPECT_NE(result.vhdl_text.find("x_strb : in std_logic_vector(0 downto 0)"),
            std::string::npos);
}

TEST(Vhdl, StructuralArchitectureWiresConnections) {
  auto result = compile(kSmallDesign, "top");
  const std::string& vhdl = result.vhdl_text;
  EXPECT_NE(vhdl.find("architecture structural of top is"),
            std::string::npos);
  EXPECT_NE(vhdl.find("component stage is"), std::string::npos);
  EXPECT_NE(vhdl.find("u_s1 : stage"), std::string::npos);
  EXPECT_NE(vhdl.find("port map ("), std::string::npos);
  // Internal bundle wiring: s1.b -> s2.a forward data and backward ready.
  EXPECT_NE(vhdl.find("sig_s2_a_data <= sig_s1_b_data;"), std::string::npos);
  EXPECT_NE(vhdl.find("sig_s1_b_ready <= sig_s2_a_ready;"),
            std::string::npos);
}

TEST(Vhdl, UnknownExternalIsBlackBox) {
  auto result = compile(kSmallDesign, "top");
  EXPECT_NE(result.vhdl_text.find("architecture blackbox of stage"),
            std::string::npos);
}

TEST(Vhdl, NameSanitization) {
  EXPECT_EQ(vhdl::vhdl_name("dup_i__t_byte_2_abc12345"),
            "dup_i_t_byte_2_abc12345");
  EXPECT_EQ(vhdl::vhdl_name("Weird  Name!"), "weird_name");
  EXPECT_EQ(vhdl::vhdl_name("_leading"), "leading");
  EXPECT_EQ(vhdl::vhdl_name("9starts_with_digit"), "x9starts_with_digit");
  EXPECT_EQ(vhdl::vhdl_name(""), "x");
}

// Every stdlib family with an RTL generator must produce a behavioural
// architecture (not a black box) when instantiated.
class StdlibRtl : public ::testing::TestWithParam<const char*> {};

TEST_P(StdlibRtl, FamilyGeneratesBehaviouralBody) {
  const std::string family = GetParam();
  std::string source = R"(
type t_a = Stream(Bit(16), d=1, c=2);
type t_o = Stream(Bit(32), d=1, c=2);
streamlet top_s { x: t_a in, y: t_o out, x2: t_a in, b: std_bool out, }
impl top of top_s {
)";
  // Instantiate the family with suitable arguments and wire it plausibly;
  // sugaring cleans up the leftovers.
  if (family == "duplicator_i") {
    source += R"(
  instance u(duplicator_i<type t_a, 3>),
  x => u.in_,
)";
  } else if (family == "voider_i") {
    source += R"(
  instance u(voider_i<type t_a>),
  x => u.in_,
)";
  } else if (family == "adder_i" || family == "subtractor_i" ||
             family == "multiplier_i") {
    source += "  instance u(" + family + "<type t_a, type t_o>),\n"
              "  x => u.in_,\n  u.out => y,\n";
  } else if (family == "comparator_i") {
    source += R"(
  instance u(comparator_i<type t_a, type std_bool, "<=">),
  x => u.in_,
  u.out => b,
)";
  } else if (family == "const_compare_i") {
    source += R"(
  instance u(const_compare_i<type t_a, type std_bool, "AIR", "==">),
  x => u.in_,
  u.out => b,
)";
  } else if (family == "const_compare_int_i") {
    source += R"(
  instance u(const_compare_int_i<type t_a, type std_bool, 24, "<">),
  x => u.in_,
  u.out => b,
)";
  } else if (family == "filter_i") {
    source += R"(
  instance p(const_compare_int_i<type t_a, type std_bool, 1, ">=">),
  instance u(filter_i<type t_a, type std_bool>),
  x => u.in_,
  x2 => p.in_,
  p.out => u.keep,
)";
  } else if (family == "logic_and_i" || family == "logic_or_i") {
    source += "  instance p1(const_compare_int_i<type t_a, type std_bool, 1, "
              "\">=\">),\n"
              "  instance p2(const_compare_int_i<type t_a, type std_bool, 9, "
              "\"<\">),\n"
              "  instance u(" + family + "<type std_bool, 2>),\n"
              "  x => p1.in_,\n  x2 => p2.in_,\n"
              "  p1.out => u.in_[0],\n  p2.out => u.in_[1],\n"
              "  u.out => b,\n";
  } else if (family == "demux_i") {
    source += R"(
  instance u(demux_i<type t_a, 2>),
  x => u.in_,
)";
  } else if (family == "mux_i") {
    source += R"(
  instance u(mux_i<type t_a, 2>),
  x => u.in_[0],
  x2 => u.in_[1],
)";
  } else if (family == "accumulator_i") {
    source += R"(
  instance u(accumulator_i<type t_a, type t_o>),
  x => u.in_,
  u.out => y,
)";
  } else if (family == "const_generator_i") {
    source += R"(
  instance u(const_generator_i<type t_a, 42>),
)";
  } else if (family == "source_i") {
    source += R"(
  instance u(source_i<type t_a>),
)";
  } else if (family == "sink_i") {
    source += R"(
  instance u(sink_i<type t_a>),
  x => u.in_,
)";
  } else if (family == "add2_i" || family == "sub2_i" ||
             family == "mul2_i") {
    source += "  instance u(" + family +
              "<type t_a, type t_a, type t_o>),\n"
              "  x => u.lhs,\n  x2 => u.rhs,\n  u.out => y,\n";
  } else if (family == "cmp2_i") {
    source += R"(
  instance u(cmp2_i<type t_a, type t_a, type std_bool, "<=">),
  x => u.lhs,
  x2 => u.rhs,
  u.out => b,
)";
  }
  source += "}\n";

  driver::CompileOptions options;
  options.top = "top";
  options.drc.port_use_count_is_error = false;  // probes leave loose ends
  auto result = driver::compile_source(source, options);
  ASSERT_TRUE(result.success()) << family << "\n" << result.report();
  EXPECT_NE(result.vhdl_text.find("architecture behavioural of"),
            std::string::npos)
      << family << " fell back to a black box";
}

INSTANTIATE_TEST_SUITE_P(
    Families, StdlibRtl,
    ::testing::Values("duplicator_i", "voider_i", "adder_i", "subtractor_i",
                      "multiplier_i", "comparator_i", "const_compare_i",
                      "const_compare_int_i", "filter_i", "logic_and_i",
                      "logic_or_i", "demux_i", "mux_i", "accumulator_i",
                      "const_generator_i", "source_i", "sink_i", "add2_i",
                      "sub2_i", "mul2_i", "cmp2_i"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(Vhdl, RtlFamilyListExposed) {
  const auto& families = vhdl::stdlib_rtl_families();
  EXPECT_GE(families.size(), 15u);
}

TEST(Vhdl, GeneratedTextIsMostlyWellFormed) {
  // Cheap well-formedness: balanced entity/end entity and architecture/end
  // architecture counts on a full TPC-H compile.
  auto result = compile(kSmallDesign, "top");
  const std::string& vhdl = result.vhdl_text;
  auto count = [&vhdl](std::string_view needle) {
    std::size_t n = 0;
    for (std::size_t pos = vhdl.find(needle); pos != std::string::npos;
         pos = vhdl.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  // Each impl contributes "entity x is" + "end entity x;" (the needle
  // matches inside "end entity " too), and likewise for architectures.
  EXPECT_EQ(count("entity "), 2 * count("end entity "));
  EXPECT_EQ(count("architecture "), 2 * count("end architecture "));
}

}  // namespace
}  // namespace tydi
