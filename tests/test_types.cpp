// Logical-type system tests: the Table I bit-width algebra, strict vs
// structural equality (Sec. IV-B), the physical stream signal rules
// (Tydi-spec), and connection compatibility — including parameterized
// property sweeps over the (complexity x dimension x lanes) grid.
#include <gtest/gtest.h>

#include <cmath>

#include "src/types/compat.hpp"
#include "src/types/logical_type.hpp"
#include "src/types/physical.hpp"

namespace tydi::types {
namespace {

TypeRef byte_type() { return make_bit(8); }

TEST(BitWidth, TableIRules) {
  // Null -> 0
  EXPECT_EQ(make_null()->bit_width(), 0);
  // Bit(x) -> x
  EXPECT_EQ(make_bit(13)->bit_width(), 13);
  // Group -> sum of children
  TypeRef g = make_group({{"a", make_bit(8)}, {"b", make_bit(24)}});
  EXPECT_EQ(g->bit_width(), 32);
  // Union -> max of children (the paper's rule)
  TypeRef u = make_union({{"a", make_bit(8)}, {"b", make_bit(24)}});
  EXPECT_EQ(u->bit_width(), 24);
  // Nested group
  TypeRef nested = make_group({{"x", g}, {"y", u}});
  EXPECT_EQ(nested->bit_width(), 56);
  // Stream contributes 0 bits to an enclosing element
  TypeRef with_stream =
      make_group({{"a", make_bit(4)}, {"s", make_stream(make_bit(8))}});
  EXPECT_EQ(with_stream->bit_width(), 4);
}

TEST(BitWidth, EmptyGroupAndUnion) {
  EXPECT_EQ(make_group({})->bit_width(), 0);
  EXPECT_EQ(make_union({})->bit_width(), 0);
}

TEST(BitWidth, UnionTagBits) {
  EXPECT_EQ(union_tag_bits(0), 0);
  EXPECT_EQ(union_tag_bits(1), 0);
  EXPECT_EQ(union_tag_bits(2), 1);
  EXPECT_EQ(union_tag_bits(3), 2);
  EXPECT_EQ(union_tag_bits(4), 2);
  EXPECT_EQ(union_tag_bits(5), 3);
  EXPECT_EQ(union_tag_bits(256), 8);
}

TEST(Equality, StructuralIgnoresOrigin) {
  TypeRef a = make_bit(8, "TypeA");
  TypeRef b = make_bit(8, "TypeB");
  EXPECT_TRUE(structural_equal(*a, *b));
  EXPECT_FALSE(strict_equal(*a, *b));
  EXPECT_TRUE(strict_equal(*a, *make_bit(8, "TypeA")));
}

TEST(Equality, StrictRequiresSameOriginForNamedTypes) {
  // Sec. IV-B: "two ports must be defined with the same logical type
  // variable".
  TypeRef named = make_stream(byte_type(), {}, "t_col");
  TypeRef same = make_stream(byte_type(), {}, "t_col");
  TypeRef other_name = make_stream(byte_type(), {}, "t_other");
  TypeRef anonymous = make_stream(byte_type());
  EXPECT_TRUE(strict_equal(*named, *same));
  EXPECT_FALSE(strict_equal(*named, *other_name));
  // Named vs anonymous are never strictly equal.
  EXPECT_FALSE(strict_equal(*named, *anonymous));
  // Two anonymous types fall back to structure.
  EXPECT_TRUE(strict_equal(*anonymous, *make_stream(byte_type())));
}

TEST(Equality, GroupFieldNamesMatter) {
  TypeRef a = make_group({{"x", make_bit(8)}});
  TypeRef b = make_group({{"y", make_bit(8)}});
  EXPECT_FALSE(structural_equal(*a, *b));
}

TEST(Equality, StreamParamsMatter) {
  StreamParams p1;
  StreamParams p2;
  p2.dimension = 1;
  EXPECT_FALSE(structural_equal(*make_stream(byte_type(), p1),
                                *make_stream(byte_type(), p2)));
  StreamParams p3;
  p3.complexity = 7;
  EXPECT_FALSE(structural_equal(*make_stream(byte_type(), p1),
                                *make_stream(byte_type(), p3)));
}

TEST(Display, RendersReadableForms) {
  TypeRef g = make_group({{"r", make_bit(8)}, {"g", make_bit(8)}});
  EXPECT_EQ(g->to_display(), "Group{r: Bit(8), g: Bit(8)}");
  StreamParams p;
  p.throughput = 2.0;
  p.dimension = 1;
  p.complexity = 7;
  EXPECT_EQ(make_stream(make_bit(8), p)->to_display(),
            "Stream(Bit(8), t=2, d=1, c=7)");
}

TEST(Physical, LanesForThroughput) {
  EXPECT_EQ(lanes_for_throughput(0.5), 1);
  EXPECT_EQ(lanes_for_throughput(1.0), 1);
  EXPECT_EQ(lanes_for_throughput(1.5), 2);
  EXPECT_EQ(lanes_for_throughput(4.0), 4);
  EXPECT_EQ(lanes_for_throughput(4.01), 5);
}

TEST(Physical, NonStreamPortRejected) {
  EXPECT_THROW((void)physical_streams(make_bit(8), "p"),
               std::invalid_argument);
}

TEST(Physical, NestedStreamsSplitIntoSecondaryStreams) {
  // A Stream of a Group containing a nested Stream yields two physical
  // streams: parent and parent__field.
  TypeRef element = make_group(
      {{"len", make_bit(16)}, {"chars", make_stream(make_bit(8))}});
  auto streams = physical_streams(make_stream(element), "name");
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].name, "name");
  EXPECT_EQ(streams[0].data_bits, 16);  // nested stream excluded
  EXPECT_EQ(streams[1].name, "name__chars");
  EXPECT_EQ(streams[1].data_bits, 8);
}

TEST(Physical, SignalsOmitZeroWidth) {
  auto streams = physical_streams(make_stream(make_bit(8)), "p");
  ASSERT_EQ(streams.size(), 1u);
  auto signals = streams[0].signals();
  // C1, D0, N1: only valid/ready/data.
  ASSERT_EQ(signals.size(), 3u);
  EXPECT_EQ(signals[0].name, "valid");
  EXPECT_EQ(signals[1].name, "ready");
  EXPECT_TRUE(signals[1].reverse);
  EXPECT_EQ(signals[2].name, "data");
  EXPECT_EQ(signals[2].width, 8);
}

// --- Property sweep: signal rules over the (C, D, N) grid -----------------

struct Grid {
  int complexity;
  int dimension;
  int lanes;
};

class PhysicalRules : public ::testing::TestWithParam<Grid> {};

TEST_P(PhysicalRules, SignalWidthsFollowTheSpec) {
  const Grid grid = GetParam();
  StreamParams params;
  params.complexity = grid.complexity;
  params.dimension = grid.dimension;
  params.throughput = static_cast<double>(grid.lanes);
  auto streams = physical_streams(make_stream(make_bit(8), params), "p");
  ASSERT_EQ(streams.size(), 1u);
  const PhysicalStream& ps = streams[0];

  const int c = grid.complexity;
  const int d = grid.dimension;
  const int n = grid.lanes;
  const std::int64_t index_bits =
      n > 1 ? static_cast<std::int64_t>(std::ceil(std::log2(n))) : 0;

  EXPECT_EQ(ps.lanes, n);
  EXPECT_EQ(ps.data_bits, 8 * n);
  EXPECT_EQ(ps.last_bits, c >= 8 ? static_cast<std::int64_t>(n) * d : d);
  EXPECT_EQ(ps.stai_bits, (c >= 6 && n > 1) ? index_bits : 0);
  EXPECT_EQ(ps.endi_bits, ((c >= 5 || d >= 1) && n > 1) ? index_bits : 0);
  EXPECT_EQ(ps.strb_bits, (c >= 7 || d >= 1) ? n : 0);
  EXPECT_EQ(ps.payload_bits(), ps.data_bits + ps.last_bits + ps.stai_bits +
                                 ps.endi_bits + ps.strb_bits + ps.user_bits);

  // valid/ready are always present and first.
  auto signals = ps.signals();
  ASSERT_GE(signals.size(), 2u);
  EXPECT_EQ(signals[0].name, "valid");
  EXPECT_EQ(signals[1].name, "ready");
  // No zero-width signal escapes.
  for (const PhysicalSignal& s : signals) {
    EXPECT_GT(s.width, 0) << s.name;
  }
}

std::vector<Grid> grid_points() {
  std::vector<Grid> points;
  for (int c = 1; c <= 8; ++c) {
    for (int d : {0, 1, 2}) {
      for (int n : {1, 2, 4, 7}) {
        points.push_back(Grid{c, d, n});
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PhysicalRules,
                         ::testing::ValuesIn(grid_points()),
                         [](const ::testing::TestParamInfo<Grid>& info) {
                           return "C" + std::to_string(info.param.complexity) +
                                  "_D" + std::to_string(info.param.dimension) +
                                  "_N" + std::to_string(info.param.lanes);
                         });

TEST(Physical, UserSignalWidth) {
  StreamParams params;
  params.user = make_bit(5);
  auto streams = physical_streams(make_stream(make_bit(8), params), "p");
  EXPECT_EQ(streams[0].user_bits, 5);
}

// --- Connection compatibility ---------------------------------------------

TypeRef stream_of(std::int64_t bits, int complexity = 1, int dimension = 0,
                  std::string origin = {}) {
  StreamParams params;
  params.complexity = complexity;
  params.dimension = dimension;
  return make_stream(make_bit(bits), params, std::move(origin));
}

TEST(Compat, IdenticalStreamsConnect) {
  EXPECT_TRUE(check_connection(*stream_of(8), *stream_of(8), true).ok);
}

TEST(Compat, NonStreamRejected) {
  EXPECT_FALSE(check_connection(*make_bit(8), *stream_of(8), true).ok);
  EXPECT_FALSE(check_connection(*stream_of(8), *make_bit(8), true).ok);
}

TEST(Compat, ElementWidthMismatchRejected) {
  auto result = check_connection(*stream_of(8), *stream_of(16), true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("element"), std::string::npos);
}

TEST(Compat, DimensionMismatchRejected) {
  EXPECT_FALSE(
      check_connection(*stream_of(8, 1, 0), *stream_of(8, 1, 1), true).ok);
}

TEST(Compat, ComplexityIsDirectional) {
  // A simple source may feed a more tolerant sink, not vice versa.
  EXPECT_TRUE(check_connection(*stream_of(8, 2), *stream_of(8, 7), true).ok);
  auto reversed = check_connection(*stream_of(8, 7), *stream_of(8, 2), true);
  EXPECT_FALSE(reversed.ok);
  EXPECT_NE(reversed.reason.find("complexity"), std::string::npos);
}

TEST(Compat, StrictVsStructuralNamedElements) {
  // Same structure, differently-named element origins.
  TypeRef a = make_stream(make_bit(64, "t_lineitem_l_partkey"));
  TypeRef b = make_stream(make_bit(64, "t_part_p_partkey"));
  EXPECT_FALSE(check_connection(*a, *b, true).ok);
  EXPECT_TRUE(check_connection(*a, *b, false).ok);  // @structural
  // The strict error message suggests the escape hatch.
  EXPECT_NE(check_connection(*a, *b, true).reason.find("@structural"),
            std::string::npos);
}

TEST(Compat, LaneCountMismatchRejected) {
  StreamParams one;
  StreamParams two;
  two.throughput = 2.0;
  EXPECT_FALSE(check_connection(*make_stream(make_bit(8), one),
                                *make_stream(make_bit(8), two), true)
                   .ok);
}

TEST(Compat, SynchronicityAndDirectionMismatchRejected) {
  StreamParams sync;
  StreamParams desync;
  desync.synchronicity = Synchronicity::kDesync;
  EXPECT_FALSE(check_connection(*make_stream(make_bit(8), sync),
                                *make_stream(make_bit(8), desync), true)
                   .ok);
  StreamParams reverse;
  reverse.direction = StreamDir::kReverse;
  EXPECT_FALSE(check_connection(*make_stream(make_bit(8), sync),
                                *make_stream(make_bit(8), reverse), true)
                   .ok);
}

TEST(Compat, UserSignalMismatchRejected) {
  StreamParams with_user;
  with_user.user = make_bit(4);
  StreamParams without;
  EXPECT_FALSE(check_connection(*make_stream(make_bit(8), with_user),
                                *make_stream(make_bit(8), without), true)
                   .ok);
  StreamParams same_user;
  same_user.user = make_bit(4);
  EXPECT_TRUE(check_connection(*make_stream(make_bit(8), with_user),
                               *make_stream(make_bit(8), same_user), true)
                  .ok);
}

}  // namespace
}  // namespace tydi::types
