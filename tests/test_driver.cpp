// Driver-facade and CLI tests: pipeline staging, option handling, phase
// timing, multi-source compiles, and the `tydic` executable end-to-end.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/driver/compiler.hpp"
#include "src/ir/ir.hpp"
#include "src/sim/engine.hpp"
#include "src/support/intern.hpp"

namespace tydi {
namespace {

constexpr std::string_view kGood = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)";

TEST(Driver, PhaseTimingsRecorded) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  for (const char* phase : {"parse", "elaborate", "sugar", "lower", "drc",
                            "ir", "vhdl"}) {
    EXPECT_TRUE(result.phase_ms.contains(phase)) << phase;
    EXPECT_GE(result.phase_ms.at(phase), 0.0);
  }
}

TEST(Driver, PhaseTimingsInPipelineOrder) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  std::vector<std::string> order;
  for (const auto& e : result.phase_ms.entries()) order.push_back(e.phase);
  std::vector<std::string> expected = {"parse", "elaborate", "sugar",
                                       "lower", "drc", "ir", "vhdl"};
  EXPECT_EQ(order, expected);
  EXPECT_GE(result.phase_ms.total_ms(), 0.0);
  EXPECT_NE(result.phase_ms.render().find("parse"), std::string::npos);
}

TEST(Driver, LoweredModulePopulatedOnce) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_EQ(result.ir.top_name, "top");
  EXPECT_NE(result.ir.find_impl(support::intern("top")), nullptr);
  // The IR text is emitted from the stored module.
  EXPECT_EQ(result.ir_text, ir::emit(result.ir));
}

TEST(Driver, TemplateCacheStatsReported) {
  // voider_i<type t> is instantiated twice with the same argument: the
  // second instantiation must hit the template cache.
  driver::CompileOptions options;
  options.top = "top";
  options.drc.port_use_count_is_error = false;
  auto result = driver::compile_source(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t in, }
impl top of s {
  instance v1(voider_i<type t>),
  instance v2(voider_i<type t>),
  a => v1.in_,
  b => v2.in_,
}
)",
                                       options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_GE(result.template_cache.impl_hits, 1u);
  EXPECT_GE(result.template_cache.impl_misses, 1u);
  EXPECT_GT(result.template_cache.hit_rate(), 0.0);
  EXPECT_LT(result.template_cache.hit_rate(), 1.0);
}

TEST(Driver, WarmCompilesShareMemoPayloads) {
  // Template-memo replay shares Streamlet/Impl payloads into warm designs
  // (shared_ptr slots + copy-on-write) instead of value-copying them: two
  // warm compiles of the same source must reference the *same* payload
  // objects for impls the sugaring pass left untouched (external stdlib
  // monomorphisations qualify — sugaring only rewires structural impls).
  driver::CompileSession session;
  driver::CompileOptions options;
  options.top = "top";
  std::string source = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  instance v(voider_i<type t>),
  instance d(duplicator_i<type t, 2>),
  a => d.in_,
  d.out_[0] => b,
  d.out_[1] => v.in_,
}
)";
  auto warm_up = session.compile(
      {driver::NamedSource{"input.td", source}}, options);
  ASSERT_TRUE(warm_up.success()) << warm_up.report();
  auto first = session.compile(
      {driver::NamedSource{"input.td", source}}, options);
  auto second = session.compile(
      {driver::NamedSource{"input.td", source}}, options);
  ASSERT_TRUE(first.success()) << first.report();
  ASSERT_TRUE(second.success()) << second.report();

  const elab::Impl* voider_a = nullptr;
  const elab::Impl* voider_b = nullptr;
  for (const elab::Impl& impl : first.design.impls()) {
    if (impl.external && impl.template_name == "voider_i") voider_a = &impl;
  }
  for (const elab::Impl& impl : second.design.impls()) {
    if (impl.external && impl.template_name == "voider_i") voider_b = &impl;
  }
  ASSERT_NE(voider_a, nullptr);
  ASSERT_NE(voider_b, nullptr);
  // Same object, not equal copies: both warm designs replay the memo's
  // shared payload.
  EXPECT_EQ(voider_a, voider_b);

  // Streamlets are never mutated post-insertion, so every streamlet of the
  // two warm designs is shared.
  ASSERT_EQ(first.design.streamlets().size(),
            second.design.streamlets().size());
  for (std::size_t i = 0; i < first.design.streamlets().size(); ++i) {
    EXPECT_EQ(&first.design.streamlets()[i], &second.design.streamlets()[i]);
  }
}

TEST(Driver, BatchManifestLoadsJobs) {
  std::string source_path = "/tmp/tydi_manifest_job.td";
  {
    std::ofstream out(source_path);
    out << kGood;
  }
  std::string manifest_path = "/tmp/tydi_manifest.txt";
  {
    std::ofstream out(manifest_path);
    out << "# comment line\n\n" << source_path << " top\n"
        << source_path << " top\n";
  }
  std::vector<driver::BatchJob> jobs;
  support::Status loaded = driver::load_batch_manifest(manifest_path, jobs);
  ASSERT_TRUE(loaded.is_ok()) << loaded.render();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, source_path + ":top");
  EXPECT_EQ(jobs[0].options.top, "top");
  ASSERT_EQ(jobs[0].sources.size(), 1u);
  EXPECT_EQ(jobs[0].sources[0].name, source_path);

  driver::CompileSession session;
  driver::BatchResult result = driver::compile_batch(session, jobs);
  EXPECT_TRUE(result.success()) << result.render();
  EXPECT_EQ(result.entries.size(), 2u);
  EXPECT_TRUE(result.status().is_ok());

  // Malformed line (missing top name): recorded as a pre-failed job, not a
  // load failure.
  {
    std::ofstream out(manifest_path);
    out << source_path << "\n";
  }
  jobs.clear();
  loaded = driver::load_batch_manifest(manifest_path, jobs);
  EXPECT_TRUE(loaded.is_ok()) << loaded.render();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_FALSE(jobs[0].preflight.is_ok());
  EXPECT_EQ(jobs[0].preflight.code(), support::StatusCode::kCorruptData);
  EXPECT_NE(jobs[0].preflight.message().find("expected"), std::string::npos);

  // Unreadable source file: same record-and-skip treatment.
  {
    std::ofstream out(manifest_path);
    out << "/tmp/definitely_missing_source.td top\n";
  }
  jobs.clear();
  loaded = driver::load_batch_manifest(manifest_path, jobs);
  EXPECT_TRUE(loaded.is_ok()) << loaded.render();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].preflight.code(), support::StatusCode::kIoError);

  // An unreadable manifest IS fatal.
  jobs.clear();
  loaded = driver::load_batch_manifest("/nonexistent/manifest.txt", jobs);
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.code(), support::StatusCode::kIoError);
  EXPECT_TRUE(jobs.empty());
}

TEST(Driver, BatchSkipsMalformedJobsAndCompilesTheRest) {
  // One bad manifest line must not take down the batch: the well-formed
  // jobs compile, the condemned one surfaces as a failed entry carrying the
  // preflight status.
  std::string source_path = "/tmp/tydi_manifest_mixed.td";
  {
    std::ofstream out(source_path);
    out << kGood;
  }
  std::string manifest_path = "/tmp/tydi_manifest_mixed.txt";
  {
    std::ofstream out(manifest_path);
    out << source_path << " top\n"
        << source_path << "\n"  // malformed: missing top
        << source_path << " top\n";
  }
  std::vector<driver::BatchJob> jobs;
  support::Status loaded = driver::load_batch_manifest(manifest_path, jobs);
  ASSERT_TRUE(loaded.is_ok()) << loaded.render();
  ASSERT_EQ(jobs.size(), 3u);

  driver::CompileSession session;
  driver::BatchResult result = driver::compile_batch(session, jobs);
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_TRUE(result.entries[0].success);
  EXPECT_FALSE(result.entries[1].success);
  EXPECT_EQ(result.entries[1].status.code(),
            support::StatusCode::kCorruptData);
  EXPECT_TRUE(result.entries[2].success);
  EXPECT_EQ(result.failures, 1u);
  // The aggregate status is the first failing entry's classification.
  EXPECT_EQ(result.status().code(), support::StatusCode::kCorruptData);
  EXPECT_EQ(result.status().exit_code(), 4);
}

TEST(Driver, CompileStatusClassifiesFailurePhase) {
  driver::CompileOptions options;
  options.top = "top";
  // Parse failure -> kParseError / exit 5.
  auto parse_fail = driver::compile_source("streamlet {", options);
  ASSERT_FALSE(parse_fail.success());
  EXPECT_EQ(parse_fail.status().code(), support::StatusCode::kParseError);
  EXPECT_EQ(parse_fail.status().exit_code(), 5);
  // Elaboration failure (unknown impl) -> kElabError / exit 6.
  auto elab_fail = driver::compile_source(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, }
impl top of s {
  instance v(no_such_impl<type t>),
  a => v.in_,
}
)",
                                          options);
  ASSERT_FALSE(elab_fail.success());
  EXPECT_EQ(elab_fail.status().code(), support::StatusCode::kElabError);
  EXPECT_EQ(elab_fail.status().exit_code(), 6);
  // Success -> kOk / exit 0.
  auto good = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(good.success()) << good.report();
  EXPECT_TRUE(good.status().is_ok());
  EXPECT_EQ(good.status().exit_code(), 0);
}

TEST(Driver, EmitFlagsControlOutputs) {
  driver::CompileOptions options;
  options.top = "top";
  options.emit_ir = false;
  options.emit_vhdl = false;
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success());
  EXPECT_TRUE(result.ir_text.empty());
  EXPECT_TRUE(result.vhdl_text.empty());
  EXPECT_FALSE(result.phase_ms.contains("ir"));
  EXPECT_FALSE(result.phase_ms.contains("vhdl"));
}

TEST(Driver, ParseErrorsStopThePipeline) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source("streamlet {", options);
  EXPECT_FALSE(result.success());
  // Elaboration never ran.
  EXPECT_FALSE(result.phase_ms.contains("elaborate"));
  EXPECT_TRUE(result.vhdl_text.empty());
}

TEST(Driver, WithoutStdlibStdComponentsAreUnknown) {
  driver::CompileOptions options;
  options.top = "top";
  options.include_stdlib = false;
  auto result = driver::compile_source(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, }
impl top of s {
  instance v(voider_i<type t>),
  a => v.in_,
}
)",
                                       options);
  EXPECT_FALSE(result.success());
  EXPECT_NE(result.report().find("unknown impl 'voider_i'"),
            std::string::npos);
}

TEST(Driver, MultiSourceCompilesShareDeclarations) {
  std::vector<driver::NamedSource> sources;
  sources.push_back({"types.td", "type t_shared = Stream(Bit(8), d=1, c=2);"});
  sources.push_back({"design.td", R"(
streamlet s { a: t_shared in, b: t_shared out, }
impl top of s {
  a => b,
}
)"});
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile(sources, options);
  EXPECT_TRUE(result.success()) << result.report();
}

TEST(Driver, DiagnosticsNameTheSourceFile) {
  std::vector<driver::NamedSource> sources;
  sources.push_back({"broken_one.td", "const bad = ;"});
  driver::CompileOptions options;
  auto result = driver::compile(sources, options);
  EXPECT_FALSE(result.success());
  EXPECT_NE(result.report().find("broken_one.td"), std::string::npos);
}

TEST(Driver, RunAllElaboratesEveryConcreteImpl) {
  driver::CompileOptions options;  // no top
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_NE(result.design.find_impl("top"), nullptr);
  EXPECT_TRUE(result.design.top().empty());
}

TEST(SimOptions, ClockDomainPeriodsScaleChannelLatency) {
  // Identical design, slower clock domain => later deliveries.
  constexpr std::string_view source = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ slow_clk, b: t out @ slow_clk, }
impl top of s {
  a => b,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  options.emit_vhdl = false;
  auto compiled = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(compiled.success()) << compiled.report();

  auto run_with_period = [&compiled](double period) {
    support::DiagnosticEngine diags;
    sim::Engine engine(compiled.design, diags);
    sim::SimOptions sim_options;
    sim_options.clock_period_ns = {{"slow_clk", period}};
    sim::Stimulus stim;
    stim.port = "a";
    stim.packets.emplace_back(0.0, sim::Packet{7, true});
    sim_options.stimuli.push_back(stim);
    return engine.run(sim_options);
  };

  auto fast = run_with_period(10.0);
  auto slow = run_with_period(40.0);
  ASSERT_EQ(fast.top_outputs.at("b").size(), 1u);
  ASSERT_EQ(slow.top_outputs.at("b").size(), 1u);
  EXPECT_LT(fast.top_outputs.at("b")[0].first,
            slow.top_outputs.at("b")[0].first);
}

#ifdef TYDIC_PATH
TEST(Cli, TydicCompilesFileEndToEnd) {
  std::string dir = ::testing::TempDir();
  std::string td_path = dir + "/cli_design.td";
  std::string vhdl_path = dir + "/cli_design.vhd";
  std::string ir_path = dir + "/cli_design.tir";
  {
    std::ofstream out(td_path);
    out << kGood;
  }
  std::string command = std::string(TYDIC_PATH) + " --top top --emit-ir " +
                        ir_path + " --emit-vhdl " + vhdl_path + " " +
                        td_path + " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  EXPECT_EQ(rc, 0) << command;

  std::ifstream vhdl(vhdl_path);
  std::stringstream vhdl_text;
  vhdl_text << vhdl.rdbuf();
  EXPECT_NE(vhdl_text.str().find("entity top is"), std::string::npos);

  std::ifstream ir(ir_path);
  std::stringstream ir_text;
  ir_text << ir.rdbuf();
  EXPECT_NE(ir_text.str().find("impl top of s"), std::string::npos);
}

TEST(Cli, TydicReportsErrorsWithNonZeroExit) {
  std::string dir = ::testing::TempDir();
  std::string td_path = dir + "/cli_broken.td";
  {
    std::ofstream out(td_path);
    out << "const bad = ;";
  }
  std::string command = std::string(TYDIC_PATH) + " --top top " + td_path +
                        " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  EXPECT_NE(rc, 0);
  // The exit code names the failure class: parse errors exit 5 (see
  // src/support/status.hpp).
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 5) << command;
}

TEST(Cli, TydicUsageOnMissingArguments) {
  std::string command = std::string(TYDIC_PATH) + " > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}
#endif  // TYDIC_PATH

}  // namespace
}  // namespace tydi
