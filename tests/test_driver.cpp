// Driver-facade and CLI tests: pipeline staging, option handling, phase
// timing, multi-source compiles, and the `tydic` executable end-to-end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/driver/compiler.hpp"
#include "src/ir/ir.hpp"
#include "src/sim/engine.hpp"
#include "src/support/intern.hpp"

namespace tydi {
namespace {

constexpr std::string_view kGood = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t out, }
impl top of s {
  a => b,
}
)";

TEST(Driver, PhaseTimingsRecorded) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  for (const char* phase : {"parse", "elaborate", "sugar", "lower", "drc",
                            "ir", "vhdl"}) {
    EXPECT_TRUE(result.phase_ms.contains(phase)) << phase;
    EXPECT_GE(result.phase_ms.at(phase), 0.0);
  }
}

TEST(Driver, PhaseTimingsInPipelineOrder) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  std::vector<std::string> order;
  for (const auto& e : result.phase_ms.entries()) order.push_back(e.phase);
  std::vector<std::string> expected = {"parse", "elaborate", "sugar",
                                       "lower", "drc", "ir", "vhdl"};
  EXPECT_EQ(order, expected);
  EXPECT_GE(result.phase_ms.total_ms(), 0.0);
  EXPECT_NE(result.phase_ms.render().find("parse"), std::string::npos);
}

TEST(Driver, LoweredModulePopulatedOnce) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_EQ(result.ir.top_name, "top");
  EXPECT_NE(result.ir.find_impl(support::intern("top")), nullptr);
  // The IR text is emitted from the stored module.
  EXPECT_EQ(result.ir_text, ir::emit(result.ir));
}

TEST(Driver, TemplateCacheStatsReported) {
  // voider_i<type t> is instantiated twice with the same argument: the
  // second instantiation must hit the template cache.
  driver::CompileOptions options;
  options.top = "top";
  options.drc.port_use_count_is_error = false;
  auto result = driver::compile_source(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, b: t in, }
impl top of s {
  instance v1(voider_i<type t>),
  instance v2(voider_i<type t>),
  a => v1.in_,
  b => v2.in_,
}
)",
                                       options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_GE(result.template_cache.impl_hits, 1u);
  EXPECT_GE(result.template_cache.impl_misses, 1u);
  EXPECT_GT(result.template_cache.hit_rate(), 0.0);
  EXPECT_LT(result.template_cache.hit_rate(), 1.0);
}

TEST(Driver, EmitFlagsControlOutputs) {
  driver::CompileOptions options;
  options.top = "top";
  options.emit_ir = false;
  options.emit_vhdl = false;
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success());
  EXPECT_TRUE(result.ir_text.empty());
  EXPECT_TRUE(result.vhdl_text.empty());
  EXPECT_FALSE(result.phase_ms.contains("ir"));
  EXPECT_FALSE(result.phase_ms.contains("vhdl"));
}

TEST(Driver, ParseErrorsStopThePipeline) {
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile_source("streamlet {", options);
  EXPECT_FALSE(result.success());
  // Elaboration never ran.
  EXPECT_FALSE(result.phase_ms.contains("elaborate"));
  EXPECT_TRUE(result.vhdl_text.empty());
}

TEST(Driver, WithoutStdlibStdComponentsAreUnknown) {
  driver::CompileOptions options;
  options.top = "top";
  options.include_stdlib = false;
  auto result = driver::compile_source(R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in, }
impl top of s {
  instance v(voider_i<type t>),
  a => v.in_,
}
)",
                                       options);
  EXPECT_FALSE(result.success());
  EXPECT_NE(result.report().find("unknown impl 'voider_i'"),
            std::string::npos);
}

TEST(Driver, MultiSourceCompilesShareDeclarations) {
  std::vector<driver::NamedSource> sources;
  sources.push_back({"types.td", "type t_shared = Stream(Bit(8), d=1, c=2);"});
  sources.push_back({"design.td", R"(
streamlet s { a: t_shared in, b: t_shared out, }
impl top of s {
  a => b,
}
)"});
  driver::CompileOptions options;
  options.top = "top";
  auto result = driver::compile(sources, options);
  EXPECT_TRUE(result.success()) << result.report();
}

TEST(Driver, DiagnosticsNameTheSourceFile) {
  std::vector<driver::NamedSource> sources;
  sources.push_back({"broken_one.td", "const bad = ;"});
  driver::CompileOptions options;
  auto result = driver::compile(sources, options);
  EXPECT_FALSE(result.success());
  EXPECT_NE(result.report().find("broken_one.td"), std::string::npos);
}

TEST(Driver, RunAllElaboratesEveryConcreteImpl) {
  driver::CompileOptions options;  // no top
  auto result = driver::compile_source(std::string(kGood), options);
  ASSERT_TRUE(result.success()) << result.report();
  EXPECT_NE(result.design.find_impl("top"), nullptr);
  EXPECT_TRUE(result.design.top().empty());
}

TEST(SimOptions, ClockDomainPeriodsScaleChannelLatency) {
  // Identical design, slower clock domain => later deliveries.
  constexpr std::string_view source = R"(
type t = Stream(Bit(8), d=1, c=2);
streamlet s { a: t in @ slow_clk, b: t out @ slow_clk, }
impl top of s {
  a => b,
}
)";
  driver::CompileOptions options;
  options.top = "top";
  options.emit_vhdl = false;
  auto compiled = driver::compile_source(std::string(source), options);
  ASSERT_TRUE(compiled.success()) << compiled.report();

  auto run_with_period = [&compiled](double period) {
    support::DiagnosticEngine diags;
    sim::Engine engine(compiled.design, diags);
    sim::SimOptions sim_options;
    sim_options.clock_period_ns = {{"slow_clk", period}};
    sim::Stimulus stim;
    stim.port = "a";
    stim.packets.emplace_back(0.0, sim::Packet{7, true});
    sim_options.stimuli.push_back(stim);
    return engine.run(sim_options);
  };

  auto fast = run_with_period(10.0);
  auto slow = run_with_period(40.0);
  ASSERT_EQ(fast.top_outputs.at("b").size(), 1u);
  ASSERT_EQ(slow.top_outputs.at("b").size(), 1u);
  EXPECT_LT(fast.top_outputs.at("b")[0].first,
            slow.top_outputs.at("b")[0].first);
}

#ifdef TYDIC_PATH
TEST(Cli, TydicCompilesFileEndToEnd) {
  std::string dir = ::testing::TempDir();
  std::string td_path = dir + "/cli_design.td";
  std::string vhdl_path = dir + "/cli_design.vhd";
  std::string ir_path = dir + "/cli_design.tir";
  {
    std::ofstream out(td_path);
    out << kGood;
  }
  std::string command = std::string(TYDIC_PATH) + " --top top --emit-ir " +
                        ir_path + " --emit-vhdl " + vhdl_path + " " +
                        td_path + " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  EXPECT_EQ(rc, 0) << command;

  std::ifstream vhdl(vhdl_path);
  std::stringstream vhdl_text;
  vhdl_text << vhdl.rdbuf();
  EXPECT_NE(vhdl_text.str().find("entity top is"), std::string::npos);

  std::ifstream ir(ir_path);
  std::stringstream ir_text;
  ir_text << ir.rdbuf();
  EXPECT_NE(ir_text.str().find("impl top of s"), std::string::npos);
}

TEST(Cli, TydicReportsErrorsWithNonZeroExit) {
  std::string dir = ::testing::TempDir();
  std::string td_path = dir + "/cli_broken.td";
  {
    std::ofstream out(td_path);
    out << "const bad = ;";
  }
  std::string command = std::string(TYDIC_PATH) + " --top top " + td_path +
                        " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  EXPECT_NE(rc, 0);
}

TEST(Cli, TydicUsageOnMissingArguments) {
  std::string command = std::string(TYDIC_PATH) + " > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}
#endif  // TYDIC_PATH

}  // namespace
}  // namespace tydi
