// Simulator tests (Sec. V): event-driven semantics, the parallelize
// throughput example of Sec. IV-B, sim-block interpretation, bottleneck
// ranking and deadlock detection.
#include <gtest/gtest.h>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"

namespace tydi {
namespace {

/// The Sec. IV-B scenario: a processing unit with an 8-cycle service time
/// behind parallelize<channel>. Service = 7 delay cycles + 1 handshake.
constexpr std::string_view kParallelizeSource = R"tydi(
package partest;

type t_data = Stream(Bit(64), d=1, c=2);

impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}

streamlet partest_top_s {
  feed: t_data in,
  result: t_data out,
}

impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, 8>),
  feed => par.in_,
  par.out => result,
}
)tydi";

driver::CompileResult compile_parallelize(int channels) {
  std::string source(kParallelizeSource);
  // Swap the channel count in the single instantiation site.
  std::string needle = "impl pu_adder, 8>";
  std::string replacement = "impl pu_adder, " + std::to_string(channels) + ">";
  source.replace(source.find(needle), needle.size(), replacement);
  driver::CompileOptions options;
  options.top = "partest_top";
  options.emit_vhdl = false;
  return driver::compile_source(std::move(source), options);
}

sim::SimResult simulate_parallelize(int channels, int packets) {
  driver::CompileResult compiled = compile_parallelize(channels);
  EXPECT_TRUE(compiled.success()) << compiled.report();
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options;
  options.max_time_ns = 1.0e7;
  sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < packets; ++i) {
    sim::Packet p;
    p.value = i;
    p.last = (i == packets - 1);
    stim.packets.emplace_back(10.0 * i, p);
  }
  options.stimuli.push_back(std::move(stim));
  return engine.run(options);
}

TEST(SimParallelize, AllPacketsArriveInOrder) {
  sim::SimResult result = simulate_parallelize(4, 64);
  ASSERT_TRUE(result.top_outputs.contains("result"));
  const auto& outputs = result.top_outputs.at("result");
  ASSERT_EQ(outputs.size(), 64u);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].second.value, static_cast<std::int64_t>(i))
        << "packet order violated at " << i;
  }
  EXPECT_FALSE(result.deadlock);
}

TEST(SimParallelize, EightChannelsReachOnePacketPerCycle) {
  // Sec. IV-B: an 8-cycle processing unit parallelized 8 ways sustains the
  // full input rate of 1 packet/cycle (0.1 packets/ns at 10 ns period).
  sim::SimResult result = simulate_parallelize(8, 256);
  double throughput = result.throughput("result");
  EXPECT_GT(throughput, 0.095);
  EXPECT_LE(throughput, 0.105);
}

TEST(SimParallelize, TwoChannelsAreServiceLimited) {
  // 2 channels of an 8-cycle unit cap at 2/8 = 0.25 packets/cycle.
  sim::SimResult result = simulate_parallelize(2, 256);
  double throughput = result.throughput("result");
  EXPECT_GT(throughput, 0.020);
  EXPECT_LT(throughput, 0.030);
}

TEST(SimParallelize, ThroughputSaturatesAtEightChannels) {
  double t4 = simulate_parallelize(4, 128).throughput("result");
  double t8 = simulate_parallelize(8, 128).throughput("result");
  double t12 = simulate_parallelize(12, 128).throughput("result");
  EXPECT_LT(t4, t8 * 0.7);         // below saturation: scaling helps
  EXPECT_NEAR(t8, t12, t8 * 0.1);  // beyond 8: source-limited, flat
}

TEST(SimParallelize, UndersizedParallelizeShowsInputBottleneck) {
  // With 1 channel the feed channel into the demux must accumulate blocked
  // time (the paper's bottleneck signal).
  sim::SimResult result = simulate_parallelize(1, 128);
  const sim::ChannelStats* bottleneck = result.bottleneck();
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_NE(bottleneck->name.find("feed"), std::string::npos)
      << "expected the top feed channel to be the bottleneck, got "
      << bottleneck->name;
  EXPECT_GT(bottleneck->blocked_ns, 1000.0);
}

TEST(SimParallelize, StateTransitionsRecorded) {
  sim::SimResult result = simulate_parallelize(2, 8);
  // Each pu instance toggles idle->busy->idle per packet.
  EXPECT_FALSE(result.state_transitions.empty());
  bool saw_busy = false;
  for (const sim::StateTransition& t : result.state_transitions) {
    if (t.variable == "s" && t.to == "busy") saw_busy = true;
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_FALSE(sim::render_state_table(result).empty());
}

// ---------------------------------------------------------------------------
// Deadlock detection (Sec. V-B: "analyzing the relationship between data
// flow and state could also help identify the potential for deadlock").
// ---------------------------------------------------------------------------

constexpr std::string_view kDeadlockSource = R"tydi(
package deadtest;

type t_data = Stream(Bit(8), d=1, c=2);

streamlet join_s {
  a: t_data in,
  b: t_data in,
  out: t_data out,
}

// Requires BOTH inputs before acknowledging either.
impl join_i of join_s @ external {
  sim {
    on a.receive && b.receive {
      send(out);
      ack(a);
      ack(b);
    }
  }
}

streamlet loop_s {
  in_: t_data in,
  out: t_data out,
}

// Echoes packets; closes the cycle.
impl echo_i of loop_s @ external {
  sim {
    on in_.receive {
      send(out);
      ack(in_);
    }
  }
}

streamlet deadtop_s {
  feed: t_data in,
  result: t_data out,
}

// join needs a packet from echo, but echo is fed by join: a wait-for cycle
// with no initial token.
impl deadtop of deadtop_s {
  instance join(join_i),
  instance echo(echo_i),
  instance dup(duplicator_i<type t_data, 2>),
  feed => join.a,
  echo.out => join.b,
  join.out => dup.in_,
  dup.out_[0] => echo.in_,
  dup.out_[1] => result,
}
)tydi";

TEST(SimDeadlock, WaitForCycleIsDetectedAndReported) {
  driver::CompileOptions options;
  options.top = "deadtop";
  options.emit_vhdl = false;
  driver::CompileResult compiled =
      driver::compile_source(std::string(kDeadlockSource), options);
  ASSERT_TRUE(compiled.success()) << compiled.report();

  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions sim_options;
  sim::Stimulus stim;
  stim.port = "feed";
  stim.packets.emplace_back(0.0, sim::Packet{1, false});
  sim_options.stimuli.push_back(stim);

  sim::SimResult result = engine.run(sim_options);
  EXPECT_TRUE(result.deadlock);
  EXPECT_FALSE(result.blocked_report.empty());
  // The wait-for cycle must include the join component.
  bool join_in_cycle = false;
  for (const std::string& node : result.deadlock_cycle) {
    if (node.find("join") != std::string::npos) join_in_cycle = true;
  }
  EXPECT_TRUE(join_in_cycle)
      << sim::render_bottleneck_report(result, 10);
}

TEST(SimDeadlock, AcyclicDesignDoesNotDeadlock) {
  sim::SimResult result = simulate_parallelize(3, 32);
  EXPECT_FALSE(result.deadlock);
  EXPECT_TRUE(result.deadlock_cycle.empty());
}

TEST(SimEngine, MaxTimeCutoffStopsLongSimulations) {
  driver::CompileResult compiled = compile_parallelize(1);
  ASSERT_TRUE(compiled.success());
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options;
  options.max_time_ns = 500.0;  // far too short for 10k packets
  sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < 10000; ++i) {
    stim.packets.emplace_back(10.0 * i, sim::Packet{i, false});
  }
  options.stimuli.push_back(std::move(stim));
  sim::SimResult result = engine.run(options);
  EXPECT_LE(result.end_time_ns, 500.0);

  // Re-running on the same engine after a cut-off must start clean: no
  // stale events from the aborted run may leak into the next one.
  sim::SimOptions fresh;
  fresh.max_time_ns = 1.0e7;
  sim::Stimulus stim2;
  stim2.port = "feed";
  for (int i = 0; i < 16; ++i) {
    stim2.packets.emplace_back(10.0 * i, sim::Packet{i, i == 15});
  }
  fresh.stimuli.push_back(std::move(stim2));
  sim::SimResult second = engine.run(fresh);
  ASSERT_TRUE(second.top_outputs.contains("result"));
  EXPECT_EQ(second.top_outputs.at("result").size(), 16u);
}

TEST(SimEngine, SummaryMentionsOutputsAndBottleneck) {
  sim::SimResult result = simulate_parallelize(1, 64);
  std::string summary = result.summary();
  EXPECT_NE(summary.find("top output 'result'"), std::string::npos);
  EXPECT_NE(summary.find("bottleneck:"), std::string::npos);
}

TEST(SimEngine, ThroughputEdgeCases) {
  sim::SimResult empty;
  EXPECT_EQ(empty.throughput("nope"), 0.0);
  empty.top_outputs["one"].emplace_back(10.0, sim::Packet{});
  EXPECT_EQ(empty.throughput("one"), 0.0);  // single packet: no rate
  EXPECT_EQ(empty.bottleneck(), nullptr);
}

TEST(SimEngine, StimulusOnUnknownPortWarnsInsteadOfCrashing) {
  driver::CompileResult compiled = compile_parallelize(1);
  ASSERT_TRUE(compiled.success());
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options;
  sim::Stimulus stim;
  stim.port = "no_such_port";
  stim.packets.emplace_back(0.0, sim::Packet{});
  options.stimuli.push_back(std::move(stim));
  (void)engine.run(options);
  EXPECT_GT(diags.warning_count(), 0u);
}

TEST(SimEngine, RepeatedRunsAreDeterministic) {
  // Two identical runs must agree on bottleneck ranking (including the
  // tie-break at equal blocked_ns), trace ordering, and — for a deadlocking
  // design — the reported wait-for cycle.
  driver::CompileResult compiled = compile_parallelize(2);
  ASSERT_TRUE(compiled.success());
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);

  auto run_once = [&] {
    sim::SimOptions options;
    options.max_time_ns = 1.0e7;
    sim::Stimulus stim;
    stim.port = "feed";
    for (int i = 0; i < 96; ++i) {
      stim.packets.emplace_back(10.0 * i, sim::Packet{i, i == 95});
    }
    options.stimuli.push_back(std::move(stim));
    return engine.run(options);
  };
  sim::SimResult first = run_once();
  sim::SimResult second = run_once();

  auto ranked_names = [](const sim::SimResult& r) {
    std::vector<std::string> names;
    for (const sim::ChannelStats& c : sim::rank_bottlenecks(r)) {
      names.push_back(c.name);
    }
    return names;
  };
  EXPECT_EQ(ranked_names(first), ranked_names(second));
  ASSERT_NE(first.bottleneck(), nullptr);
  ASSERT_NE(second.bottleneck(), nullptr);
  EXPECT_EQ(first.bottleneck()->name, second.bottleneck()->name);

  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (std::size_t i = 0; i < first.trace.size(); ++i) {
    EXPECT_EQ(first.trace.time_ns(i), second.trace.time_ns(i)) << i;
    EXPECT_EQ(first.trace_event(i).channel, second.trace_event(i).channel)
        << i;
    EXPECT_EQ(first.trace.value(i), second.trace.value(i)) << i;
  }

  // Deadlock cycle determinism on the cyclic join design.
  driver::CompileOptions options;
  options.top = "deadtop";
  options.emit_vhdl = false;
  driver::CompileResult dead_compiled =
      driver::compile_source(std::string(kDeadlockSource), options);
  ASSERT_TRUE(dead_compiled.success()) << dead_compiled.report();
  sim::Engine dead_engine(dead_compiled.design, diags);
  auto dead_once = [&] {
    sim::SimOptions dead_options;
    sim::Stimulus stim;
    stim.port = "feed";
    stim.packets.emplace_back(0.0, sim::Packet{1, false});
    dead_options.stimuli.push_back(stim);
    return dead_engine.run(dead_options);
  };
  sim::SimResult dead_first = dead_once();
  sim::SimResult dead_second = dead_once();
  EXPECT_TRUE(dead_first.deadlock);
  EXPECT_EQ(dead_first.deadlock_cycle, dead_second.deadlock_cycle);
  EXPECT_EQ(dead_first.blocked_report, dead_second.blocked_report);
}

TEST(SimEngine, BottleneckTieBreaksByName) {
  sim::SimResult result;
  sim::ChannelStats z;
  z.name = "z.out -> sink.in_";
  z.blocked_ns = 50.0;
  sim::ChannelStats a;
  a.name = "a.out -> sink.in_";
  a.blocked_ns = 50.0;
  result.channels = {z, a};
  ASSERT_NE(result.bottleneck(), nullptr);
  EXPECT_EQ(result.bottleneck()->name, "a.out -> sink.in_");
  auto ranked = sim::rank_bottlenecks(result);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "a.out -> sink.in_");
}

TEST(SimEngine, TraceCanBeDisabled) {
  driver::CompileResult compiled = compile_parallelize(2);
  ASSERT_TRUE(compiled.success());
  support::DiagnosticEngine diags;
  sim::Engine engine(compiled.design, diags);
  sim::SimOptions options;
  options.record_trace = false;
  sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < 8; ++i) {
    stim.packets.emplace_back(10.0 * i, sim::Packet{i, i == 7});
  }
  options.stimuli.push_back(std::move(stim));
  sim::SimResult result = engine.run(options);
  EXPECT_TRUE(result.trace.empty());
  // Outputs are still recorded (trace only affects TraceEvents).
  EXPECT_EQ(result.top_outputs.at("result").size(), 8u);
}

}  // namespace
}  // namespace tydi
