// Observability layer tests: metrics registry semantics (counter / gauge /
// histogram, bucket boundaries, stable JSON export), span tracer behaviour
// (ring overwrite, args escaping, Chrome trace schema), and — the part CI
// runs under TSan in the sim-shard-tsan job — 8 threads hammering shared
// counters/histograms and emitting spans concurrently, which is where the
// registry's registration locking and the tracer's per-ring discipline are
// actually enforced. Ends with the golden-schema test: a traced TPC-H
// batch compile must export valid Chrome trace-event JSON containing the
// pipeline's span taxonomy.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/compiler.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("t.c");
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c += 41;
  EXPECT_EQ(c.value(), 42u);
  // Re-requesting the name returns the same instrument.
  EXPECT_EQ(&reg.counter("t.c"), &c);
  EXPECT_EQ(reg.counter("t.c").value(), 42u);

  obs::Gauge& g = reg.gauge("t.g");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("t.h", {1.0, 2.0, 5.0});
  // A value exactly on a bound lands in that bound's bucket (v <= bound).
  h.observe(1.0);   // le=1
  h.observe(1.5);   // le=2
  h.observe(2.0);   // le=2
  h.observe(5.0);   // le=5
  h.observe(5.001); // overflow
  h.observe(0.0);   // le=1
  h.observe(-3.0);  // le=1 (no underflow bucket; first bucket catches all)
  const std::vector<std::uint64_t> cum = h.bucket_counts();
  ASSERT_EQ(cum.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(cum[0], 3u);      // <= 1
  EXPECT_EQ(cum[1], 5u);      // <= 2
  EXPECT_EQ(cum[2], 6u);      // <= 5
  EXPECT_EQ(cum[3], 7u);      // everything
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.001 + 0.0 - 3.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_counts().back(), 0u);
}

TEST(Metrics, RenderJsonIsValidSortedAndStable) {
  obs::MetricsRegistry reg;
  reg.counter("tydi.b.count") += 2;
  reg.counter("tydi.a.count") += 1;
  reg.gauge("tydi.z.depth").set(3.25);
  reg.histogram("tydi.m.ms", {1.0, 10.0}).observe(0.5);
  const std::string json = reg.render_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  // Name-sorted within each section.
  EXPECT_LT(json.find("tydi.a.count"), json.find("tydi.b.count"));
  EXPECT_NE(json.find("\"tydi.z.depth\":3.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos) << json;
  // Byte-stable across renders with unchanged values.
  EXPECT_EQ(json, reg.render_json());
}

TEST(Metrics, EightThreadsHammerSharedInstruments) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, t]() {
      // Mixed first-sight registration and hot-path increments: half the
      // names are shared by all threads, half are per-thread, so both the
      // shared-lock lookup and the exclusive create race are exercised.
      obs::Counter& shared_counter = reg.counter("hammer.shared");
      obs::Histogram& shared_hist = reg.histogram("hammer.ms", {1.0, 10.0});
      obs::Counter& own = reg.counter("hammer.t" + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        ++shared_counter;
        ++own;
        shared_hist.observe(static_cast<double>(i % 20));
        if (i % 1024 == 0) {
          // Concurrent export while writers are hot must stay well-formed.
          EXPECT_TRUE(obs::json_valid(reg.render_json()));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter("hammer.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("hammer.t" + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
  obs::Histogram& h = reg.histogram("hammer.ms");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.bucket_counts().back(), h.count());
}

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::SpanTracer tracer;
  {
    obs::Span span(tracer, "noop");
    span.arg("k", std::string_view("v"));
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Trace, SpansRecordNamesArgsAndDurations) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(tracer, "work");
    span.arg("query", std::int64_t{6}).arg("kind", std::string_view("vhdl"));
  }
  tracer.record("manual", -1000, 50, "\"x\":1");
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() sorts by start time; the manual record's negative start
  // sorts deterministically before the RAII span's clock reading.
  EXPECT_EQ(spans[0].name, "manual");
  EXPECT_EQ(spans[1].name, "work");
  EXPECT_EQ(spans[1].args, "\"query\":6,\"kind\":\"vhdl\"");
  EXPECT_GE(spans[1].dur_ns, 0);

  const std::string json = tracer.export_chrome_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"query\":6,\"kind\":\"vhdl\"}"),
            std::string::npos)
      << json;
}

TEST(Trace, ArgsWithQuotesAndNewlinesStayValidJson) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  {
    obs::Span span(tracer, "weird \"name\"");
    span.arg("path", std::string_view("a\"b\\c\nd"));
  }
  EXPECT_TRUE(obs::json_valid(tracer.export_chrome_json()));
}

TEST(Trace, RingOverwritesOldestWhenFull) {
  obs::SpanTracer tracer(/*ring_capacity=*/8);
  tracer.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    tracer.record("span" + std::to_string(i), i * 100, 10);
  }
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The latest window survives: spans 12..19.
  EXPECT_EQ(spans.front().name, "span12");
  EXPECT_EQ(spans.back().name, "span19");

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Trace, EightThreadsEmitSpansConcurrently) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpans = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, t]() {
      for (int i = 0; i < kSpans; ++i) {
        obs::Span span(tracer, "worker");
        span.arg("thread", static_cast<std::int64_t>(t));
        if (i % 512 == 0) {
          // Export racing the writers stays well-formed (approximate
          // snapshot, like any live profiler).
          EXPECT_TRUE(obs::json_valid(tracer.export_chrome_json()));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kSpans);
  // Each thread got its own tid; 8 distinct tids in the export.
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  std::vector<bool> seen(kThreads + 2, false);
  for (const obs::SpanRecord& s : spans) {
    ASSERT_LT(s.tid, seen.size());
    seen[s.tid] = true;
  }
  int tids = 0;
  for (bool b : seen) tids += b ? 1 : 0;
  EXPECT_EQ(tids, kThreads);
}

// Golden-schema test: a traced TPC-H batch compile exports Chrome
// trace-event JSON that (a) parses, (b) has the trace-event envelope, and
// (c) contains the span taxonomy the wiring promises — per-phase compile
// spans, per-worker batch job spans with worker args.
TEST(Trace, TpchBatchCompileExportsChromeTraceSchema) {
  obs::SpanTracer& tracer = obs::SpanTracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    driver::CompileSession session;
    driver::BatchOptions options;
    options.jobs = 2;
    driver::BatchResult result =
        driver::compile_batch(session, tpch::batch_jobs(), options);
    EXPECT_EQ(result.failures, 0u);
  }
  tracer.set_enabled(false);
  const std::string json = tracer.export_chrome_json();
  tracer.clear();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tydi\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  for (const char* phase : {"compile.phase.parse", "compile.phase.elaborate",
                            "compile.phase.lower", "compile.phase.vhdl"}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  EXPECT_NE(json.find("\"name\":\"batch.job\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\":"), std::string::npos);
}

// The registry mirrors of the session cache stats can never disagree with
// the per-compile structs: warm-compile deltas must match what the result
// structs report.
TEST(Metrics, RegistryAgreesWithCompileResultStructs) {
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t vhdl_before =
      reg.counter("tydi.vhdl.bytes_emitted").value();
  const std::uint64_t hits_before =
      reg.counter("tydi.elab.instantiation_hits").value();
  const std::uint64_t misses_before =
      reg.counter("tydi.elab.instantiation_misses").value();

  const tpch::QueryCase* q = tpch::find_query("TPC-H 6");
  ASSERT_NE(q, nullptr);
  driver::CompileResult r = tpch::compile_query(*q);
  ASSERT_TRUE(r.success()) << r.report();

  EXPECT_EQ(reg.counter("tydi.vhdl.bytes_emitted").value() - vhdl_before,
            r.vhdl_text.size());
  EXPECT_EQ(reg.counter("tydi.elab.instantiation_hits").value() - hits_before,
            r.template_cache.hits());
  EXPECT_EQ(
      reg.counter("tydi.elab.instantiation_misses").value() - misses_before,
      r.template_cache.misses());
}

}  // namespace
}  // namespace tydi
