// Token definitions for the Tydi-lang lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/source.hpp"

namespace tydi::lang {

enum class TokenKind : std::uint8_t {
  kEnd,         // end of input
  kIdentifier,  // foo
  kIntLiteral,  // 42, 0xff, 0b1010
  kFloatLiteral,
  kStringLiteral,

  // Keywords.
  kKwPackage,
  kKwImport,
  kKwConst,
  kKwType,
  kKwGroup,
  kKwUnion,
  kKwStreamlet,
  kKwImpl,
  kKwOf,
  kKwExternal,
  kKwInstance,
  kKwFor,
  kKwIn,
  kKwIf,
  kKwElse,
  kKwAssert,
  kKwSim,
  kKwState,
  kKwOn,
  kKwSet,
  kKwInt,
  kKwFloat,
  kKwString,
  kKwBool,
  kKwClockdomain,
  kKwTrue,
  kKwFalse,
  kKwNull,
  kKwBit,
  kKwStream,

  // Punctuation and operators.
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLess,       // <
  kGreater,    // >
  kLessEq,     // <=
  kGreaterEq,  // >=
  kEq,         // =
  kEqEq,       // ==
  kNotEq,      // !=
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kStarStar,   // **
  kSlash,      // /
  kPercent,    // %
  kAmpAmp,     // &&
  kPipePipe,   // ||
  kBang,       // !
  kComma,      // ,
  kSemicolon,  // ;
  kColon,      // :
  kDot,        // .
  kDotDot,     // ..
  kFatArrow,   // =>
  kThinArrow,  // ->
  kAt,         // @

  kError,  // lexing error (message in `text`)
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier spelling / literal text / error message
  std::int64_t int_value = 0;
  double float_value = 0.0;
  support::Loc loc;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

}  // namespace tydi::lang
