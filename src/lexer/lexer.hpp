// Hand-written lexer for Tydi-lang.
//
// The reference implementation uses a Rust-Pest PEG grammar; here the same
// token language is produced by a conventional single-pass scanner with
// source locations for diagnostics. Comments (// and /* */) and whitespace
// are skipped; malformed input yields kError tokens rather than aborting so
// the parser can keep reporting later errors.
#pragma once

#include <vector>

#include "src/lexer/token.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/source.hpp"

namespace tydi::lang {

class Lexer {
 public:
  Lexer(std::string_view text, support::FileId file);

  /// Scans and returns the next token, advancing the cursor.
  Token next();

  /// Scans the whole input; the last element is always kEnd.
  [[nodiscard]] static std::vector<Token> tokenize(std::string_view text,
                                                   support::FileId file);

 private:
  std::string_view text_;
  support::FileId file_;
  std::uint32_t pos_ = 0;

  [[nodiscard]] char peek(std::uint32_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  void skip_trivia();
  [[nodiscard]] support::Loc here() const {
    return support::Loc{file_, pos_};
  }

  Token make(TokenKind kind, support::Loc loc, std::string text = {});
  Token lex_identifier_or_keyword(support::Loc start);
  Token lex_number(support::Loc start);
  Token lex_string(support::Loc start);
};

}  // namespace tydi::lang
