#include "src/lexer/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace tydi::lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"package", TokenKind::kKwPackage},
      {"import", TokenKind::kKwImport},
      {"const", TokenKind::kKwConst},
      {"type", TokenKind::kKwType},
      {"Group", TokenKind::kKwGroup},
      {"Union", TokenKind::kKwUnion},
      {"streamlet", TokenKind::kKwStreamlet},
      {"impl", TokenKind::kKwImpl},
      {"of", TokenKind::kKwOf},
      {"external", TokenKind::kKwExternal},
      {"instance", TokenKind::kKwInstance},
      {"for", TokenKind::kKwFor},
      {"in", TokenKind::kKwIn},
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"assert", TokenKind::kKwAssert},
      {"sim", TokenKind::kKwSim},
      {"state", TokenKind::kKwState},
      {"on", TokenKind::kKwOn},
      {"set", TokenKind::kKwSet},
      {"int", TokenKind::kKwInt},
      {"float", TokenKind::kKwFloat},
      {"string", TokenKind::kKwString},
      {"bool", TokenKind::kKwBool},
      {"clockdomain", TokenKind::kKwClockdomain},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
      {"Null", TokenKind::kKwNull},
      {"Bit", TokenKind::kKwBit},
      {"Stream", TokenKind::kKwStream},
  };
  return table;
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kKwPackage: return "'package'";
    case TokenKind::kKwImport: return "'import'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwType: return "'type'";
    case TokenKind::kKwGroup: return "'Group'";
    case TokenKind::kKwUnion: return "'Union'";
    case TokenKind::kKwStreamlet: return "'streamlet'";
    case TokenKind::kKwImpl: return "'impl'";
    case TokenKind::kKwOf: return "'of'";
    case TokenKind::kKwExternal: return "'external'";
    case TokenKind::kKwInstance: return "'instance'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwIn: return "'in'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwAssert: return "'assert'";
    case TokenKind::kKwSim: return "'sim'";
    case TokenKind::kKwState: return "'state'";
    case TokenKind::kKwOn: return "'on'";
    case TokenKind::kKwSet: return "'set'";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwFloat: return "'float'";
    case TokenKind::kKwString: return "'string'";
    case TokenKind::kKwBool: return "'bool'";
    case TokenKind::kKwClockdomain: return "'clockdomain'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwNull: return "'Null'";
    case TokenKind::kKwBit: return "'Bit'";
    case TokenKind::kKwStream: return "'Stream'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kStarStar: return "'**'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kFatArrow: return "'=>'";
    case TokenKind::kThinArrow: return "'->'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kError: return "invalid token";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view text, support::FileId file)
    : text_(text), file_(file) {}

char Lexer::peek(std::uint32_t ahead) const {
  return (pos_ + ahead < text_.size()) ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  return at_end() ? '\0' : text_[pos_++];
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) ++pos_;
      if (!at_end()) pos_ += 2;  // consume "*/"; unterminated hits EOF safely
    } else {
      break;
    }
  }
}

Token Lexer::make(TokenKind kind, support::Loc loc, std::string text) {
  Token t;
  t.kind = kind;
  t.loc = loc;
  t.text = std::move(text);
  return t;
}

Token Lexer::lex_identifier_or_keyword(support::Loc start) {
  std::uint32_t begin = pos_;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
                       peek() == '_')) {
    ++pos_;
  }
  std::string_view spelling = text_.substr(begin, pos_ - begin);
  auto it = keyword_table().find(spelling);
  if (it != keyword_table().end()) {
    return make(it->second, start, std::string(spelling));
  }
  return make(TokenKind::kIdentifier, start, std::string(spelling));
}

Token Lexer::lex_number(support::Loc start) {
  std::uint32_t begin = pos_;
  int base = 10;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    base = 16;
    pos_ += 2;
    begin = pos_;
    while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    base = 2;
    pos_ += 2;
    begin = pos_;
    while (peek() == '0' || peek() == '1') ++pos_;
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    // A '.' only continues the number if followed by a digit — otherwise it
    // is the start of '..' (range) or member access.
    bool is_float = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0) {
      is_float = true;
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      std::uint32_t save = pos_;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        is_float = true;
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    std::string spelling(text_.substr(begin, pos_ - begin));
    if (is_float) {
      Token t = make(TokenKind::kFloatLiteral, start, spelling);
      t.float_value = std::strtod(spelling.c_str(), nullptr);
      return t;
    }
    Token t = make(TokenKind::kIntLiteral, start, spelling);
    std::from_chars(spelling.data(), spelling.data() + spelling.size(),
                    t.int_value, 10);
    return t;
  }
  std::string spelling(text_.substr(begin, pos_ - begin));
  if (spelling.empty()) {
    return make(TokenKind::kError, start, "missing digits after base prefix");
  }
  Token t = make(TokenKind::kIntLiteral, start, spelling);
  std::from_chars(spelling.data(), spelling.data() + spelling.size(),
                  t.int_value, base);
  return t;
}

Token Lexer::lex_string(support::Loc start) {
  ++pos_;  // opening quote
  std::string value;
  while (!at_end() && peek() != '"') {
    char c = advance();
    if (c == '\\' && !at_end()) {
      char esc = advance();
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case '\\': value += '\\'; break;
        case '"': value += '"'; break;
        default: value += esc; break;
      }
    } else if (c == '\n') {
      return make(TokenKind::kError, start, "unterminated string literal");
    } else {
      value += c;
    }
  }
  if (at_end()) {
    return make(TokenKind::kError, start, "unterminated string literal");
  }
  ++pos_;  // closing quote
  return make(TokenKind::kStringLiteral, start, std::move(value));
}

Token Lexer::next() {
  skip_trivia();
  support::Loc start = here();
  if (at_end()) return make(TokenKind::kEnd, start);

  char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
    return lex_identifier_or_keyword(start);
  }
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
    return lex_number(start);
  }
  if (c == '"') return lex_string(start);

  ++pos_;
  switch (c) {
    case '{': return make(TokenKind::kLBrace, start);
    case '}': return make(TokenKind::kRBrace, start);
    case '(': return make(TokenKind::kLParen, start);
    case ')': return make(TokenKind::kRParen, start);
    case '[': return make(TokenKind::kLBracket, start);
    case ']': return make(TokenKind::kRBracket, start);
    case ',': return make(TokenKind::kComma, start);
    case ';': return make(TokenKind::kSemicolon, start);
    case ':': return make(TokenKind::kColon, start);
    case '@': return make(TokenKind::kAt, start);
    case '+': return make(TokenKind::kPlus, start);
    case '%': return make(TokenKind::kPercent, start);
    case '/': return make(TokenKind::kSlash, start);
    case '.':
      if (peek() == '.') {
        ++pos_;
        return make(TokenKind::kDotDot, start);
      }
      return make(TokenKind::kDot, start);
    case '*':
      if (peek() == '*') {
        ++pos_;
        return make(TokenKind::kStarStar, start);
      }
      return make(TokenKind::kStar, start);
    case '-':
      if (peek() == '>') {
        ++pos_;
        return make(TokenKind::kThinArrow, start);
      }
      return make(TokenKind::kMinus, start);
    case '=':
      if (peek() == '>') {
        ++pos_;
        return make(TokenKind::kFatArrow, start);
      }
      if (peek() == '=') {
        ++pos_;
        return make(TokenKind::kEqEq, start);
      }
      return make(TokenKind::kEq, start);
    case '<':
      if (peek() == '=') {
        ++pos_;
        return make(TokenKind::kLessEq, start);
      }
      return make(TokenKind::kLess, start);
    case '>':
      if (peek() == '=') {
        ++pos_;
        return make(TokenKind::kGreaterEq, start);
      }
      return make(TokenKind::kGreater, start);
    case '!':
      if (peek() == '=') {
        ++pos_;
        return make(TokenKind::kNotEq, start);
      }
      return make(TokenKind::kBang, start);
    case '&':
      if (peek() == '&') {
        ++pos_;
        return make(TokenKind::kAmpAmp, start);
      }
      return make(TokenKind::kError, start, "stray '&' (did you mean '&&'?)");
    case '|':
      if (peek() == '|') {
        ++pos_;
        return make(TokenKind::kPipePipe, start);
      }
      return make(TokenKind::kError, start, "stray '|' (did you mean '||'?)");
    default:
      return make(TokenKind::kError, start,
                  std::string("unexpected character '") + c + "'");
  }
}

std::vector<Token> Lexer::tokenize(std::string_view text,
                                   support::FileId file) {
  Lexer lexer(text, file);
  std::vector<Token> out;
  for (;;) {
    Token t = lexer.next();
    bool end = t.is(TokenKind::kEnd);
    out.push_back(std::move(t));
    if (end) break;
  }
  return out;
}

}  // namespace tydi::lang
