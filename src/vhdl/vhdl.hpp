// Tydi-IR -> VHDL backend.
//
// In the paper this is a separate project; here it is implemented in full so
// Table IV can be regenerated. The backend consumes the lowered ir::Module
// (never elab::Design): ports arrive with their physical stream layouts
// precomputed at lowering, connection endpoints are pre-resolved dense
// indices, and component dedup uses a flat per-impl bitmap instead of a
// string-keyed map. For every implementation we emit one
// entity/architecture pair:
//
//  - The entity expands each logical port into its physical stream signals
//    (valid/ready/data/last/stai/endi/strb/user per src/types/physical.hpp),
//    plus the standard clk/rst pair.
//  - Structural architectures declare one signal bundle per instance port,
//    instantiate children via component declarations, and wire connections
//    as continuous assignments (forward signals source->sink, ready
//    sink->source).
//  - External standard-library implementations get behavioural bodies from
//    the hard-coded RTL generator (rtl_lib, Sec. IV-C); other externals are
//    emitted as black boxes.
#pragma once

#include <memory>
#include <string>

#include "src/ir/ir.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::vhdl {

struct VhdlOptions {
  /// Library header emitted at the top of the file.
  bool emit_header = true;
  /// Emit behavioural bodies for known stdlib externals (otherwise black
  /// boxes only).
  bool generate_stdlib_rtl = true;
};

/// Session-lifetime emission cache. A port's emission products — its entity
/// port lines and per-net name/type fragments — are pure functions of the
/// port's name, logical type identity and direction; a
/// driver::CompileSession hands warm compiles the same TypeRefs, so the
/// emitter reuses the strings built by earlier compiles instead of
/// rebuilding them per module. Opaque: the payload type lives in vhdl.cpp.
/// Owned by the session; thread-safe (shared-lock reads, exclusive
/// publishes) so concurrent compiles emit through one cache.
class EmitSession {
 public:
  EmitSession();
  ~EmitSession();
  EmitSession(const EmitSession&) = delete;
  EmitSession& operator=(const EmitSession&) = delete;

  void clear();
  [[nodiscard]] std::size_t size() const;

  struct Impl;
  [[nodiscard]] Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Emits the whole lowered design as one VHDL file (deterministic order:
/// module table order, children before parents). `session` (optional)
/// reuses per-port emission strings across compiles of a session.
[[nodiscard]] std::string emit(const ir::Module& module,
                               const VhdlOptions& options,
                               support::DiagnosticEngine& diags,
                               EmitSession* session = nullptr);

/// VHDL-safe identifier for design names (lowercase, no '__' runs).
[[nodiscard]] std::string vhdl_name(std::string_view name);

}  // namespace tydi::vhdl
