// Hard-coded RTL generator for the Tydi-lang standard library (Sec. IV-C).
//
// "the components in the Tydi-lang standard library are too elementary to be
//  described as instances and connections ... there is another RTL
//  generation process for these standard components. However, this
//  generation process must be manually defined."
//
// Each stdlib template family (duplicator_i, voider_i, adder_i, ...) has a
// manually written VHDL architecture generator keyed by the family's
// interned symbol (flat sorted table, binary search — no string-keyed map).
// The generator receives the lowered impl (with its evaluated template
// arguments) and its streamlet, and produces the architecture declarations
// and body from the physical layouts cached on the IR ports.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/ir/ir.hpp"
#include "src/support/text.hpp"

namespace tydi::vhdl {

/// Architecture pieces for one external implementation. Both sections are
/// rope writers pre-set to architecture-body depth: the generators write
/// lines (as `string_view` pieces, no concatenation temporaries) and the
/// VHDL emitter splices the chunks into the output writer without copying.
struct RtlBody {
  support::CodeWriter declarations{"  ", 1};  ///< signal/constant decls
  support::CodeWriter statements{"  ", 1};    ///< concurrent stmts/processes
};

/// Returns the behavioural body for a known stdlib family, or nullopt if the
/// family has no hard-coded generator (the impl is then a black box).
[[nodiscard]] std::optional<RtlBody> generate_stdlib_rtl(
    const ir::IrImpl& impl, const ir::IrStreamlet& streamlet);

/// The list of template families with a hard-coded generator.
[[nodiscard]] const std::vector<std::string>& stdlib_rtl_families();

}  // namespace tydi::vhdl
