#include "src/vhdl/rtl_lib.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <functional>

#include "src/support/text.hpp"

namespace tydi::vhdl {

using ir::IrImpl;
using ir::IrPort;
using ir::IrStreamlet;
using ir::IrTemplateArg;
using ir::StreamLayout;
using support::Symbol;

namespace {

/// Primary physical stream of one port, read from the layout cached at
/// lowering, with its VHDL signal prefix. Full signal names are built once
/// per (port, signal) and reused across every mention in the generated body.
struct PortSignals {
  const IrPort* port = nullptr;
  const StreamLayout* layout = nullptr;
  std::string_view prefix;  ///< the port's cached sanitized identifier

  /// `<prefix>_<name>`, interned on first use. Keys are literals or
  /// layout-owned signal names; both outlive the generator call. The cache
  /// is a deque so returned references survive later insertions (several
  /// sig() results are routinely alive within one line() call).
  const std::string& sig(std::string_view name) const {
    for (const auto& [key, value] : names_) {
      if (key == name) return value;
    }
    std::string full;
    full.reserve(prefix.size() + 1 + name.size());
    full.append(prefix);
    full.push_back('_');
    full.append(name);
    names_.emplace_back(name, std::move(full));
    return names_.back().second;
  }

  [[nodiscard]] std::int64_t data_bits() const {
    return layout->stream.data_bits;
  }
  [[nodiscard]] std::int64_t last_bits() const {
    return layout->stream.last_bits;
  }

 private:
  mutable std::deque<std::pair<std::string_view, std::string>> names_;
};

std::vector<PortSignals> ports_of(const IrStreamlet& s, lang::PortDir dir) {
  std::vector<PortSignals> out;
  for (const IrPort& p : s.ports) {
    if (p.dir != dir || p.layouts.empty()) continue;
    PortSignals ps;
    ps.port = &p;
    ps.layout = &p.layouts.front();
    ps.prefix = p.vhdl;
    out.push_back(std::move(ps));
  }
  return out;
}

std::string vec(std::int64_t width) {
  return "std_logic_vector(" + std::to_string(width - 1) + " downto 0)";
}

/// First int-valued template argument, or `fallback`.
std::int64_t int_arg(const IrImpl& impl, std::int64_t fallback) {
  for (const IrTemplateArg& a : impl.template_args) {
    if (a.kind == IrTemplateArg::Kind::kInt) return a.int_value;
  }
  return fallback;
}

/// First string-valued template argument, or `fallback`.
std::string string_arg(const IrImpl& impl, const std::string& fallback) {
  for (const IrTemplateArg& a : impl.template_args) {
    if (a.kind == IrTemplateArg::Kind::kString) return a.string_value;
  }
  return fallback;
}

/// All string-valued template arguments, in order.
std::vector<std::string> string_args(const IrImpl& impl) {
  std::vector<std::string> out;
  for (const IrTemplateArg& a : impl.template_args) {
    if (a.kind == IrTemplateArg::Kind::kString) out.push_back(a.string_value);
  }
  return out;
}

/// Maps a Tydi-lang comparison operator string to its VHDL spelling (flat
/// table — six entries do not need a map).
std::string vhdl_compare_op(const std::string& op) {
  static constexpr std::array<std::pair<std::string_view, std::string_view>,
                              6>
      table{{{"==", "="},
             {"!=", "/="},
             {"<", "<"},
             {"<=", "<="},
             {">", ">"},
             {">=", ">="}}};
  for (const auto& [tydi_op, vhdl_op] : table) {
    if (op == tydi_op) return std::string(vhdl_op);
  }
  return "=";
}

/// Copies every forward payload signal (everything except valid/ready) from
/// `src` to `dst`; both carry the same logical type.
void copy_payload(RtlBody& body, const PortSignals& src,
                  const PortSignals& dst) {
  for (const types::PhysicalSignal& sig : src.layout->signals) {
    if (sig.name == "valid" || sig.name == "ready") continue;
    body.statements.line(dst.sig(sig.name), " <= ", src.sig(sig.name), ";");
  }
}

// ---------------------------------------------------------------------------
// Family generators. Each emits a self-contained behavioural architecture
// body using only the impl's streamlet ports; handshaking follows the
// Tydi-spec valid/ready protocol.
// ---------------------------------------------------------------------------

RtlBody gen_voider(const IrImpl&, const IrStreamlet& s) {
  // Always-ready sink: acknowledges every packet and discards it (Sec. IV-C:
  // "voiders will remove all data packets by always acknowledging the source
  // component and ignoring the data").
  RtlBody body;
  for (const PortSignals& in : ports_of(s, lang::PortDir::kIn)) {
    body.statements.line(in.sig("ready"), " <= '1';");
  }
  if (body.statements.empty()) {
    body.statements.line("-- voider with no inputs");
  }
  return body;
}

RtlBody gen_duplicator(const IrImpl&, const IrStreamlet& s) {
  // Copies the input packet to every output and acknowledges the input only
  // once all outputs have accepted (Sec. IV-C).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& in = ins.front();
  const std::size_t n = outs.size();
  const std::string top = std::to_string(n - 1);

  body.declarations.line("signal acked : std_logic_vector(", top,
                         " downto 0);");
  body.declarations.line("signal fire : std_logic_vector(", top,
                         " downto 0);");
  body.declarations.line("signal all_done : std_logic;");

  for (std::size_t k = 0; k < n; ++k) {
    const PortSignals& out = outs[k];
    std::string ks = std::to_string(k);
    body.statements.line(out.sig("valid"), " <= ", in.sig("valid"),
                         " and not acked(", ks, ");");
    copy_payload(body, in, out);
    body.statements.line("fire(", ks, ") <= acked(", ks, ") or (",
                         out.sig("valid"), " and ", out.sig("ready"), ");");
  }
  std::string all = "fire(0)";
  for (std::size_t k = 1; k < n; ++k) {
    all += " and fire(" + std::to_string(k) + ")";
  }
  body.statements.line("all_done <= ", all, ";");
  body.statements.line(in.sig("ready"), " <= all_done;");
  body.statements.line("track : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' or all_done = '1' then");
  body.statements.line("      acked <= (others => '0');");
  body.statements.line("    else");
  body.statements.line("      acked <= fire;");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process track;");
  return body;
}

/// Registered single-in single-out unit with a combinational datapath
/// expression produced by `datapath(in, out)`.
RtlBody gen_unary_pipe(
    const IrStreamlet& s,
    const std::function<std::string(const PortSignals&, const PortSignals&)>&
        datapath) {
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& in = ins.front();
  const PortSignals& out = outs.front();

  body.declarations.line("signal r_valid : std_logic;");
  body.declarations.line("signal r_data : ", vec(out.data_bits()), ";");
  if (out.last_bits() > 0) {
    body.declarations.line("signal r_last : ", vec(out.last_bits()), ";");
  }

  body.statements.line("datapath : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' then");
  body.statements.line("      r_valid <= '0';");
  body.statements.line("    elsif ", in.sig("valid"), " = '1' and ",
                       in.sig("ready"), " = '1' then");
  body.statements.line("      r_data <= ", datapath(in, out), ";");
  if (out.last_bits() > 0 && in.last_bits() > 0) {
    body.statements.line("      r_last <= ", in.sig("last"), ";");
  }
  body.statements.line("      r_valid <= '1';");
  body.statements.line("    elsif ", out.sig("ready"), " = '1' then");
  body.statements.line("      r_valid <= '0';");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process datapath;");
  body.statements.line(out.sig("valid"), " <= r_valid;");
  body.statements.line(out.sig("data"), " <= r_data;");
  if (out.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= r_last;");
  }
  body.statements.line(in.sig("ready"), " <= (not r_valid) or ",
                       out.sig("ready"), ";");
  // Remaining payload signals (strb/stai/endi) pass through registered-less;
  // acceptable for generated prototypes.
  return body;
}

std::string half_op(const PortSignals& in, const PortSignals& out,
                    const std::string& op) {
  // The stdlib arithmetic units consume a Group{lhs, rhs} packed into the
  // input data lanes; lhs occupies the high half, rhs the low half.
  std::int64_t w = in.data_bits();
  std::int64_t half = w / 2;
  std::string hi = in.sig("data") + "(" + std::to_string(w - 1) +
                   " downto " + std::to_string(half) + ")";
  std::string lo =
      in.sig("data") + "(" + std::to_string(half - 1) + " downto 0)";
  return "std_logic_vector(resize(unsigned(" + hi + ") " + op +
         " unsigned(" + lo + "), " + std::to_string(out.data_bits()) + "))";
}

RtlBody gen_adder(const IrImpl&, const IrStreamlet& s) {
  return gen_unary_pipe(s, [](const PortSignals& in, const PortSignals& out) {
    return half_op(in, out, "+");
  });
}

RtlBody gen_subtractor(const IrImpl&, const IrStreamlet& s) {
  return gen_unary_pipe(s, [](const PortSignals& in, const PortSignals& out) {
    return half_op(in, out, "-");
  });
}

RtlBody gen_multiplier(const IrImpl&, const IrStreamlet& s) {
  return gen_unary_pipe(s, [](const PortSignals& in, const PortSignals& out) {
    return half_op(in, out, "*");
  });
}

RtlBody gen_comparator(const IrImpl& impl, const IrStreamlet& s) {
  std::string vop = vhdl_compare_op(string_arg(impl, "=="));
  return gen_unary_pipe(
      s, [vop](const PortSignals& in, const PortSignals& out) {
        std::int64_t w = in.data_bits();
        std::int64_t half = w / 2;
        std::string hi = in.sig("data") + "(" + std::to_string(w - 1) +
                         " downto " + std::to_string(half) + ")";
        std::string lo =
            in.sig("data") + "(" + std::to_string(half - 1) + " downto 0)";
        (void)out;
        return "(0 => '1', others => '0') when unsigned(" + hi + ") " + vop +
               " unsigned(" + lo + ") else (others => '0')";
      });
}

RtlBody gen_const_compare(const IrImpl& impl, const IrStreamlet& s) {
  // Compares the input against a compile-time constant (e.g. the string
  // literals in `p_container in ('MED BAG', ...)`, Sec. IV-A).
  // const_compare_i carries (value: string, op: string); the integer
  // variant carries (value: int, op: string).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& in = ins.front();
  const PortSignals& out = outs.front();
  std::vector<std::string> strings = string_args(impl);
  bool has_string_value = strings.size() >= 2;
  std::string value = has_string_value ? strings[0] : "";
  std::string vop = vhdl_compare_op(
      has_string_value ? strings[1] : (strings.empty() ? "==" : strings[0]));

  // Encode the constant operand as a synthesizable literal of the input
  // width (string bytes packed big-endian; numeric constants via int arg).
  std::int64_t w = in.data_bits();
  if (has_string_value) {
    std::string bits(static_cast<std::size_t>(w), '0');
    for (std::size_t i = 0;
         i < value.size() * 8 && i < static_cast<std::size_t>(w); ++i) {
      std::size_t byte = i / 8;
      std::size_t bit = 7 - (i % 8);
      bool set = (static_cast<unsigned char>(value[byte]) >> bit) & 1U;
      bits[bits.size() - 1 - i] = set ? '1' : '0';
    }
    body.declarations.line("constant c_operand : ", vec(w), " := \"", bits,
                           "\";");
  } else {
    std::int64_t num = int_arg(impl, 0);
    body.declarations.line("constant c_operand : ", vec(w),
                           " := std_logic_vector(to_unsigned(",
                           std::to_string(num), ", ", std::to_string(w),
                           "));");
  }

  body.statements.line(out.sig("valid"), " <= ", in.sig("valid"), ";");
  body.statements.line(out.sig("data"),
                       " <= (0 => '1', others => '0') when unsigned(",
                       in.sig("data"), ") ", vop,
                       " unsigned(c_operand) else (others => '0');");
  if (out.last_bits() > 0 && in.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= ", in.sig("last"), ";");
  }
  body.statements.line(in.sig("ready"), " <= ", out.sig("ready"), ";");
  return body;
}

RtlBody gen_filter(const IrImpl&, const IrStreamlet& s) {
  // `filter<in, out, keep>`: forwards the data packet when the keep stream
  // carries 1, silently drops it when 0 (Sec. VI, TPC-H 19 walkthrough).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.size() < 2 || outs.empty()) return body;
  // Convention: the first input is data, the input named "keep" (or the
  // last input) is the predicate stream.
  const PortSignals* data = &ins[0];
  const PortSignals* keep = &ins[1];
  for (const PortSignals& p : ins) {
    if (p.port->name.find("keep") != std::string::npos) keep = &p;
  }
  if (keep == data) keep = &ins[1];
  const PortSignals& out = outs.front();

  body.declarations.line("signal both_valid : std_logic;");
  body.declarations.line("signal keep_bit : std_logic;");
  body.statements.line("both_valid <= ", data->sig("valid"), " and ",
                       keep->sig("valid"), ";");
  body.statements.line("keep_bit <= ", keep->sig("data"), "(0);");
  body.statements.line(out.sig("valid"), " <= both_valid and keep_bit;");
  copy_payload(body, *data, out);
  // Both inputs acknowledge together: either the packet was forwarded and
  // accepted, or it was dropped (keep = 0).
  body.statements.line(data->sig("ready"), " <= both_valid and (",
                       out.sig("ready"), " or not keep_bit);");
  body.statements.line(keep->sig("ready"), " <= both_valid and (",
                       out.sig("ready"), " or not keep_bit);");
  return body;
}

RtlBody gen_logic_reduce(const IrImpl&, const IrStreamlet& s,
                         const std::string& op) {
  // n-input logical and/or over single-bit streams with full
  // synchronization: fires when all inputs are valid.
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& out = outs.front();

  std::string all_valid = ins[0].sig("valid");
  std::string reduced = ins[0].sig("data") + "(0)";
  for (std::size_t i = 1; i < ins.size(); ++i) {
    all_valid += " and " + ins[i].sig("valid");
    reduced += " " + op + " " + ins[i].sig("data") + "(0)";
  }
  body.declarations.line("signal all_valid : std_logic;");
  body.statements.line("all_valid <= ", all_valid, ";");
  body.statements.line(out.sig("valid"), " <= all_valid;");
  body.statements.line(out.sig("data"), "(0) <= ", reduced, ";");
  if (out.last_bits() > 0 && ins[0].last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= ", ins[0].sig("last"), ";");
  }
  for (const PortSignals& in : ins) {
    body.statements.line(in.sig("ready"), " <= all_valid and ",
                         out.sig("ready"), ";");
  }
  return body;
}

RtlBody gen_demux(const IrImpl&, const IrStreamlet& s) {
  // Round-robin packet distributor: one input, n outputs.
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& in = ins.front();
  const std::size_t n = outs.size();

  body.declarations.line("signal sel : integer range 0 to ",
                         std::to_string(n - 1), " := 0;");
  for (std::size_t k = 0; k < n; ++k) {
    const PortSignals& out = outs[k];
    std::string ks = std::to_string(k);
    body.statements.line(out.sig("valid"), " <= ", in.sig("valid"),
                         " when sel = ", ks, " else '0';");
    copy_payload(body, in, out);
  }
  std::string ready_mux = "'0'";
  for (std::size_t k = 0; k < n; ++k) {
    ready_mux = outs[k].sig("ready") + " when sel = " + std::to_string(k) +
                " else " + ready_mux;
  }
  body.statements.line(in.sig("ready"), " <= ", ready_mux, ";");
  body.statements.line("advance : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' then");
  body.statements.line("      sel <= 0;");
  body.statements.line("    elsif ", in.sig("valid"), " = '1' and ",
                       in.sig("ready"), " = '1' then");
  body.statements.line("      if sel = ", std::to_string(n - 1),
                       " then sel <= 0; else sel <= sel + 1; end if;");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process advance;");
  return body;
}

RtlBody gen_mux(const IrImpl&, const IrStreamlet& s) {
  // Round-robin packet collector: n inputs, one output (order-preserving
  // counterpart of gen_demux).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& out = outs.front();
  const std::size_t n = ins.size();

  body.declarations.line("signal sel : integer range 0 to ",
                         std::to_string(n - 1), " := 0;");
  std::string valid_mux = "'0'";
  for (std::size_t k = 0; k < n; ++k) {
    valid_mux = ins[k].sig("valid") + " when sel = " + std::to_string(k) +
                " else " + valid_mux;
  }
  body.statements.line(out.sig("valid"), " <= ", valid_mux, ";");
  for (const types::PhysicalSignal& sig : out.layout->signals) {
    if (sig.name == "valid" || sig.name == "ready") continue;
    std::string data_mux = "(others => '0')";
    for (std::size_t k = 0; k < n; ++k) {
      data_mux = ins[k].sig(sig.name) + " when sel = " + std::to_string(k) +
                 " else " + data_mux;
    }
    body.statements.line(out.sig(sig.name), " <= ", data_mux, ";");
  }
  for (std::size_t k = 0; k < n; ++k) {
    body.statements.line(ins[k].sig("ready"), " <= ", out.sig("ready"),
                         " when sel = ", std::to_string(k), " else '0';");
  }
  body.statements.line("advance : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' then");
  body.statements.line("      sel <= 0;");
  body.statements.line("    elsif ", out.sig("valid"), " = '1' and ",
                       out.sig("ready"), " = '1' then");
  body.statements.line("      if sel = ", std::to_string(n - 1),
                       " then sel <= 0; else sel <= sel + 1; end if;");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process advance;");
  return body;
}

RtlBody gen_accumulator(const IrImpl&, const IrStreamlet& s) {
  // Sums packets of a dimension-1 sequence and emits the total on `last`
  // (used for SQL aggregates such as `sum(...)`).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.empty()) return body;
  const PortSignals& in = ins.front();
  const PortSignals& out = outs.front();
  std::int64_t w = out.data_bits();
  const std::string ws = std::to_string(w);

  body.declarations.line("signal acc : unsigned(", std::to_string(w - 1),
                         " downto 0);");
  body.declarations.line("signal total_valid : std_logic;");
  body.statements.line("accumulate : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' then");
  body.statements.line("      acc <= (others => '0');");
  body.statements.line("      total_valid <= '0';");
  body.statements.line("    elsif ", in.sig("valid"), " = '1' and ",
                       in.sig("ready"), " = '1' then");
  body.statements.line("      acc <= acc + resize(unsigned(", in.sig("data"),
                       "), ", ws, ");");
  if (in.last_bits() > 0) {
    body.statements.line("      total_valid <= ", in.sig("last"), "(0);");
  } else {
    body.statements.line("      total_valid <= '1';");
  }
  body.statements.line("    elsif total_valid = '1' and ", out.sig("ready"),
                       " = '1' then");
  body.statements.line("      total_valid <= '0';");
  body.statements.line("      acc <= (others => '0');");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process accumulate;");
  body.statements.line(out.sig("valid"), " <= total_valid;");
  body.statements.line(out.sig("data"), " <= std_logic_vector(acc);");
  if (out.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= (others => '1');");
  }
  body.statements.line(in.sig("ready"), " <= not total_valid;");
  return body;
}

/// Two-operand synchronized unit: fires when both inputs are valid.
RtlBody gen_binary_op(const IrStreamlet& s, const std::string& op,
                      bool is_compare) {
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.size() < 2 || outs.empty()) return body;
  const PortSignals& lhs = ins[0];
  const PortSignals& rhs = ins[1];
  const PortSignals& out = outs.front();

  body.declarations.line("signal both_valid : std_logic;");
  body.statements.line("both_valid <= ", lhs.sig("valid"), " and ",
                       rhs.sig("valid"), ";");
  body.statements.line(out.sig("valid"), " <= both_valid;");
  if (is_compare) {
    body.statements.line(out.sig("data"),
                         " <= (0 => '1', others => '0') when unsigned(",
                         lhs.sig("data"), ") ", op, " unsigned(",
                         rhs.sig("data"), ") else (others => '0');");
  } else {
    body.statements.line(out.sig("data"),
                         " <= std_logic_vector(resize(unsigned(",
                         lhs.sig("data"), ") ", op, " unsigned(",
                         rhs.sig("data"), "), ",
                         std::to_string(out.data_bits()), "));");
  }
  if (out.last_bits() > 0 && lhs.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= ", lhs.sig("last"), ";");
  }
  body.statements.line(lhs.sig("ready"), " <= both_valid and ",
                       out.sig("ready"), ";");
  body.statements.line(rhs.sig("ready"), " <= both_valid and ",
                       out.sig("ready"), ";");
  return body;
}

RtlBody gen_cmp2(const IrImpl& impl, const IrStreamlet& s) {
  return gen_binary_op(s, vhdl_compare_op(string_arg(impl, "==")), true);
}

RtlBody gen_const_generator(const IrImpl& impl, const IrStreamlet& s) {
  RtlBody body;
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (outs.empty()) return body;
  const PortSignals& out = outs.front();
  std::int64_t w = out.data_bits();
  std::int64_t value = int_arg(impl, 0);
  body.statements.line(out.sig("valid"), " <= '1';");
  body.statements.line(out.sig("data"), " <= std_logic_vector(to_unsigned(",
                       std::to_string(value), ", ", std::to_string(w), "));");
  if (out.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= (others => '0');");
  }
  return body;
}

RtlBody gen_group_split2(const IrImpl&, const IrStreamlet& s) {
  // Slices the Group's packed data into its two field streams; the input
  // is acknowledged when both outputs accept (joint handshake).
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.empty() || outs.size() < 2) return body;
  const PortSignals& in = ins.front();
  const PortSignals& a = outs[0];
  const PortSignals& b = outs[1];
  std::int64_t wa = a.data_bits();
  std::int64_t wb = b.data_bits();

  body.statements.line(a.sig("valid"), " <= ", in.sig("valid"), ";");
  body.statements.line(b.sig("valid"), " <= ", in.sig("valid"), ";");
  body.statements.line(a.sig("data"), " <= ", in.sig("data"), "(",
                       std::to_string(wa + wb - 1), " downto ",
                       std::to_string(wb), ");");
  body.statements.line(b.sig("data"), " <= ", in.sig("data"), "(",
                       std::to_string(wb - 1), " downto 0);");
  if (in.last_bits() > 0) {
    if (a.last_bits() > 0) {
      body.statements.line(a.sig("last"), " <= ", in.sig("last"), ";");
    }
    if (b.last_bits() > 0) {
      body.statements.line(b.sig("last"), " <= ", in.sig("last"), ";");
    }
  }
  body.statements.line(in.sig("ready"), " <= ", a.sig("ready"), " and ",
                       b.sig("ready"), ";");
  return body;
}

RtlBody gen_group_combine2(const IrImpl&, const IrStreamlet& s) {
  // Concatenates two field streams into the Group's packed data; fires when
  // both operands are present.
  RtlBody body;
  auto ins = ports_of(s, lang::PortDir::kIn);
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (ins.size() < 2 || outs.empty()) return body;
  const PortSignals& a = ins[0];
  const PortSignals& b = ins[1];
  const PortSignals& out = outs.front();

  body.declarations.line("signal both_valid : std_logic;");
  body.statements.line("both_valid <= ", a.sig("valid"), " and ",
                       b.sig("valid"), ";");
  body.statements.line(out.sig("valid"), " <= both_valid;");
  body.statements.line(out.sig("data"), " <= ", a.sig("data"), " & ",
                       b.sig("data"), ";");
  if (out.last_bits() > 0 && a.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= ", a.sig("last"), ";");
  }
  body.statements.line(a.sig("ready"), " <= both_valid and ",
                       out.sig("ready"), ";");
  body.statements.line(b.sig("ready"), " <= both_valid and ",
                       out.sig("ready"), ";");
  return body;
}

RtlBody gen_source(const IrImpl&, const IrStreamlet& s) {
  // Test stimulus source: free-running counter packets.
  RtlBody body;
  auto outs = ports_of(s, lang::PortDir::kOut);
  if (outs.empty()) return body;
  const PortSignals& out = outs.front();
  std::int64_t w = out.data_bits();
  body.declarations.line("signal counter : unsigned(", std::to_string(w - 1),
                         " downto 0);");
  body.statements.line(out.sig("valid"), " <= '1';");
  body.statements.line(out.sig("data"), " <= std_logic_vector(counter);");
  if (out.last_bits() > 0) {
    body.statements.line(out.sig("last"), " <= (others => '0');");
  }
  body.statements.line("count : process(clk)");
  body.statements.line("begin");
  body.statements.line("  if rising_edge(clk) then");
  body.statements.line("    if rst = '1' then");
  body.statements.line("      counter <= (others => '0');");
  body.statements.line("    elsif ", out.sig("ready"), " = '1' then");
  body.statements.line("      counter <= counter + 1;");
  body.statements.line("    end if;");
  body.statements.line("  end if;");
  body.statements.line("end process count;");
  return body;
}

RtlBody gen_sink(const IrImpl& impl, const IrStreamlet& s) {
  return gen_voider(impl, s);
}

using Generator = RtlBody (*)(const IrImpl&, const IrStreamlet&);

struct FamilyEntry {
  const char* name;
  Generator generator;
};

/// Family names with generators, alphabetical (stdlib_rtl_families order).
constexpr FamilyEntry kFamilies[] = {
    {"accumulator_i", &gen_accumulator},
    {"add2_i",
     [](const IrImpl&, const IrStreamlet& s) {
       return gen_binary_op(s, "+", false);
     }},
    {"adder_i", &gen_adder},
    {"cmp2_i", &gen_cmp2},
    {"comparator_i", &gen_comparator},
    {"const_compare_i", &gen_const_compare},
    {"const_compare_int_i", &gen_const_compare},
    {"const_generator_i", &gen_const_generator},
    {"demux_i", &gen_demux},
    {"duplicator_i", &gen_duplicator},
    {"filter_i", &gen_filter},
    {"group_combine2_i", &gen_group_combine2},
    {"group_split2_i", &gen_group_split2},
    {"logic_and_i",
     [](const IrImpl& impl, const IrStreamlet& s) {
       return gen_logic_reduce(impl, s, "and");
     }},
    {"logic_or_i",
     [](const IrImpl& impl, const IrStreamlet& s) {
       return gen_logic_reduce(impl, s, "or");
     }},
    {"mul2_i",
     [](const IrImpl&, const IrStreamlet& s) {
       return gen_binary_op(s, "*", false);
     }},
    {"multiplier_i", &gen_multiplier},
    {"mux_i", &gen_mux},
    {"sink_i", &gen_sink},
    {"source_i", &gen_source},
    {"sub2_i",
     [](const IrImpl&, const IrStreamlet& s) {
       return gen_binary_op(s, "-", false);
     }},
    {"subtractor_i", &gen_subtractor},
    {"voider_i", &gen_voider},
};

/// Symbol-keyed flat dispatch table, sorted by symbol for binary search
/// (built once; replaces the old std::map<std::string, Generator>).
const std::vector<std::pair<Symbol, Generator>>& generator_table() {
  static const std::vector<std::pair<Symbol, Generator>> table = [] {
    std::vector<std::pair<Symbol, Generator>> out;
    out.reserve(std::size(kFamilies));
    for (const FamilyEntry& f : kFamilies) {
      out.emplace_back(support::intern(f.name), f.generator);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }();
  return table;
}

}  // namespace

std::optional<RtlBody> generate_stdlib_rtl(const IrImpl& impl,
                                           const IrStreamlet& streamlet) {
  if (impl.family_sym == support::kNoSymbol) return std::nullopt;
  const auto& table = generator_table();
  auto it = std::lower_bound(
      table.begin(), table.end(), impl.family_sym,
      [](const auto& entry, Symbol sym) { return entry.first < sym; });
  if (it == table.end() || it->first != impl.family_sym) return std::nullopt;
  RtlBody body = it->second(impl, streamlet);
  if (body.statements.empty()) return std::nullopt;
  return body;
}

const std::vector<std::string>& stdlib_rtl_families() {
  static const std::vector<std::string> families = [] {
    std::vector<std::string> out;
    out.reserve(std::size(kFamilies));
    for (const FamilyEntry& f : kFamilies) out.emplace_back(f.name);
    return out;
  }();
  return families;
}

}  // namespace tydi::vhdl
