#include "src/vhdl/vhdl.hpp"

#include <map>

#include "src/support/text.hpp"
#include "src/types/physical.hpp"
#include "src/vhdl/rtl_lib.hpp"

namespace tydi::vhdl {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;
using support::CodeWriter;
using types::PhysicalSignal;
using types::PhysicalStream;

std::string vhdl_name(std::string_view name) {
  return support::sanitize_identifier(name);
}

namespace {

/// "std_logic" for 1-bit valid/ready, vector type otherwise.
std::string signal_type(const PhysicalSignal& sig) {
  if (sig.name == "valid" || sig.name == "ready") return "std_logic";
  return "std_logic_vector(" + std::to_string(sig.width - 1) + " downto 0)";
}

/// Physical streams of one logical port (throws only on non-stream types,
/// which elaboration already rejects).
std::vector<PhysicalStream> streams_of(const Port& p) {
  return types::physical_streams(p.type, vhdl_name(p.name));
}

/// VHDL direction of a physical signal on an entity port: forward signals
/// follow the port direction, ready runs opposite; Reverse streams flip.
std::string port_mode(const Port& p, const PhysicalStream& ps,
                      const PhysicalSignal& sig) {
  bool forward_is_in = (p.dir == lang::PortDir::kIn);
  if (ps.direction == lang::StreamDir::kReverse) forward_is_in = !forward_is_in;
  bool is_in = sig.reverse ? !forward_is_in : forward_is_in;
  return is_in ? "in" : "out";
}

/// Emits `entity <name> is port (...); end <name>;`.
void emit_entity(CodeWriter& w, const std::string& name,
                 const Streamlet& streamlet) {
  w.open("entity " + name + " is");
  w.open("port (");
  w.line("clk : in std_logic;");
  w.line("rst : in std_logic;");
  std::vector<std::string> lines;
  for (const Port& p : streamlet.ports) {
    for (const PhysicalStream& ps : streams_of(p)) {
      for (const PhysicalSignal& sig : ps.signals()) {
        lines.push_back(ps.name + "_" + sig.name + " : " +
                        port_mode(p, ps, sig) + " " + signal_type(sig));
      }
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    w.line(lines[i] + (i + 1 < lines.size() ? ";" : ""));
  }
  w.close(");");
  w.close("end entity " + name + ";");
}

/// Emits a component declaration matching emit_entity's port list.
void emit_component_decl(CodeWriter& w, const std::string& name,
                         const Streamlet& streamlet) {
  w.open("component " + name + " is");
  w.open("port (");
  w.line("clk : in std_logic;");
  w.line("rst : in std_logic;");
  std::vector<std::string> lines;
  for (const Port& p : streamlet.ports) {
    for (const PhysicalStream& ps : streams_of(p)) {
      for (const PhysicalSignal& sig : ps.signals()) {
        lines.push_back(ps.name + "_" + sig.name + " : " +
                        port_mode(p, ps, sig) + " " + signal_type(sig));
      }
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    w.line(lines[i] + (i + 1 < lines.size() ? ";" : ""));
  }
  w.close(");");
  w.close("end component;");
}

/// Bundle prefix for an endpoint: entity ports use their own names;
/// instance ports use a declared internal signal bundle.
std::string bundle_prefix(const Endpoint& ep) {
  if (ep.instance.empty()) return vhdl_name(ep.port);
  return "sig_" + vhdl_name(ep.instance) + "_" + vhdl_name(ep.port);
}

class ArchitectureEmitter {
 public:
  ArchitectureEmitter(CodeWriter& w, const Design& design, const Impl& impl,
                      const Streamlet& self,
                      support::DiagnosticEngine& diags)
      : w_(w), design_(design), impl_(impl), self_(self), diags_(diags) {}

  void emit_structural() {
    w_.open("architecture structural of " + vhdl_name(impl_.name) + " is");
    emit_component_decls();
    emit_signal_decls();
    w_.dedent();
    w_.open("begin");
    emit_instantiations();
    emit_connection_wiring();
    w_.close("end architecture structural;");
  }

 private:
  CodeWriter& w_;
  const Design& design_;
  const Impl& impl_;
  const Streamlet& self_;
  support::DiagnosticEngine& diags_;

  [[nodiscard]] const Streamlet* child_streamlet(
      const Instance& inst) const {
    const Impl* child = design_.find_impl(inst.impl_name);
    return child != nullptr ? design_.streamlet_of(*child) : nullptr;
  }

  void emit_component_decls() {
    // One declaration per distinct child implementation.
    std::map<std::string, const Streamlet*> components;
    for (const Instance& inst : impl_.instances) {
      const Streamlet* cs = child_streamlet(inst);
      if (cs != nullptr) components.emplace(inst.impl_name, cs);
    }
    for (const auto& [impl_name, streamlet] : components) {
      emit_component_decl(w_, vhdl_name(impl_name), *streamlet);
    }
  }

  void emit_signal_decls() {
    // One signal bundle per instance port; entity ports are used directly.
    for (const Instance& inst : impl_.instances) {
      const Streamlet* cs = child_streamlet(inst);
      if (cs == nullptr) {
        diags_.warning("vhdl",
                       "instance '" + inst.name +
                           "' has unresolved impl; skipped in VHDL",
                       inst.loc);
        continue;
      }
      for (const Port& p : cs->ports) {
        std::string prefix =
            "sig_" + vhdl_name(inst.name) + "_" + vhdl_name(p.name);
        for (const PhysicalStream& ps :
             types::physical_streams(p.type, prefix)) {
          for (const PhysicalSignal& sig : ps.signals()) {
            w_.line("signal " + ps.name + "_" + sig.name + " : " +
                    signal_type(sig) + ";");
          }
        }
      }
    }
  }

  void emit_instantiations() {
    for (const Instance& inst : impl_.instances) {
      const Streamlet* cs = child_streamlet(inst);
      if (cs == nullptr) continue;
      w_.open("u_" + vhdl_name(inst.name) + " : " +
              vhdl_name(inst.impl_name));
      w_.open("port map (");
      std::vector<std::string> maps;
      maps.push_back("clk => clk");
      maps.push_back("rst => rst");
      for (const Port& p : cs->ports) {
        std::string formal_prefix = vhdl_name(p.name);
        std::string actual_prefix =
            "sig_" + vhdl_name(inst.name) + "_" + vhdl_name(p.name);
        auto formal_streams = types::physical_streams(p.type, formal_prefix);
        auto actual_streams = types::physical_streams(p.type, actual_prefix);
        for (std::size_t s = 0; s < formal_streams.size(); ++s) {
          auto sigs = formal_streams[s].signals();
          for (const PhysicalSignal& sig : sigs) {
            maps.push_back(formal_streams[s].name + "_" + sig.name + " => " +
                           actual_streams[s].name + "_" + sig.name);
          }
        }
      }
      for (std::size_t i = 0; i < maps.size(); ++i) {
        w_.line(maps[i] + (i + 1 < maps.size() ? "," : ""));
      }
      w_.close(");");
      w_.dedent();
    }
  }

  void emit_connection_wiring() {
    for (const Connection& c : impl_.connections) {
      const Port* src_port = design_.resolve_endpoint(impl_, c.src);
      const Port* dst_port = design_.resolve_endpoint(impl_, c.dst);
      if (src_port == nullptr || dst_port == nullptr) {
        diags_.warning("vhdl",
                       "unresolved connection " + c.src.display() + " => " +
                           c.dst.display() + "; skipped in VHDL",
                       c.loc);
        continue;
      }
      std::string src_prefix = bundle_prefix(c.src);
      std::string dst_prefix = bundle_prefix(c.dst);
      auto src_streams = types::physical_streams(src_port->type, src_prefix);
      auto dst_streams = types::physical_streams(dst_port->type, dst_prefix);
      if (src_streams.size() != dst_streams.size()) continue;  // DRC reported
      w_.line("-- " + c.src.display() + " => " + c.dst.display());
      for (std::size_t s = 0; s < src_streams.size(); ++s) {
        auto src_sigs = src_streams[s].signals();
        auto dst_sigs = dst_streams[s].signals();
        for (std::size_t k = 0;
             k < src_sigs.size() && k < dst_sigs.size(); ++k) {
          const PhysicalSignal& sig = src_sigs[k];
          std::string src_sig = src_streams[s].name + "_" + sig.name;
          std::string dst_sig = dst_streams[s].name + "_" + sig.name;
          if (sig.reverse) {
            // ready flows sink -> source.
            w_.line(src_sig + " <= " + dst_sig + ";");
          } else {
            w_.line(dst_sig + " <= " + src_sig + ";");
          }
        }
      }
    }
  }
};

void emit_external_architecture(CodeWriter& w, const Impl& impl,
                                const Streamlet& streamlet,
                                const VhdlOptions& options,
                                support::DiagnosticEngine& diags) {
  std::optional<RtlBody> body;
  if (options.generate_stdlib_rtl) {
    body = generate_stdlib_rtl(impl, streamlet);
  }
  if (!body) {
    w.open("architecture blackbox of " + vhdl_name(impl.name) + " is");
    w.dedent();
    w.open("begin");
    w.line("-- external implementation '" + impl.display_name +
           "' is provided by an external tool;");
    w.line("-- its behaviour is characterized by the Tydi simulation code "
           "and verified via generated testbenches.");
    w.close("end architecture blackbox;");
    if (!impl.template_name.empty()) {
      diags.note("vhdl",
                 "external impl '" + impl.display_name +
                     "' emitted as black box (no stdlib RTL generator for "
                     "family '" +
                     impl.template_name + "')",
                 impl.loc);
    }
    return;
  }
  w.open("architecture behavioural of " + vhdl_name(impl.name) + " is");
  for (const std::string& d : body->declarations) w.line(d);
  w.dedent();
  w.open("begin");
  for (const std::string& s : body->statements) w.line(s);
  w.close("end architecture behavioural;");
}

}  // namespace

std::string emit(const Design& design, const VhdlOptions& options,
                 support::DiagnosticEngine& diags) {
  CodeWriter w;
  if (options.emit_header) {
    w.line("-- VHDL generated by tydi-cpp (Tydi-IR backend)");
    if (!design.top().empty()) w.line("-- top: " + design.top());
    w.line();
  }
  for (const Impl& impl : design.impls()) {
    const Streamlet* s = design.streamlet_of(impl);
    if (s == nullptr) {
      diags.warning("vhdl",
                    "impl '" + impl.name +
                        "' has unresolved streamlet; skipped",
                    impl.loc);
      continue;
    }
    w.line("library ieee;");
    w.line("use ieee.std_logic_1164.all;");
    w.line("use ieee.numeric_std.all;");
    w.line();
    w.line("-- " + impl.display_name + " of " + s->display_name);
    emit_entity(w, vhdl_name(impl.name), *s);
    w.line();
    if (impl.external) {
      emit_external_architecture(w, impl, *s, options, diags);
    } else {
      ArchitectureEmitter arch(w, design, impl, *s, diags);
      arch.emit_structural();
    }
    w.line();
  }
  return w.take();
}

}  // namespace tydi::vhdl
