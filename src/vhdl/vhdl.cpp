#include "src/vhdl/vhdl.hpp"

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/obs/metrics.hpp"
#include "src/support/text.hpp"
#include "src/vhdl/rtl_lib.hpp"

namespace tydi::vhdl {

using ir::Index;
using ir::IrConnection;
using ir::IrEndpoint;
using ir::IrImpl;
using ir::IrInstance;
using ir::IrPort;
using ir::IrStreamlet;
using ir::kNoIndex;
using ir::Module;
using ir::StreamLayout;
using support::CodeWriter;
using types::PhysicalSignal;

std::string vhdl_name(std::string_view name) {
  return support::sanitize_identifier(name);
}

namespace {

/// VHDL direction of a physical signal on an entity port: forward signals
/// follow the port direction, ready runs opposite; Reverse streams flip.
std::string_view port_mode(const IrPort& p, const StreamLayout& layout,
                           const PhysicalSignal& sig) {
  bool forward_is_in = (p.dir == lang::PortDir::kIn);
  if (layout.stream.direction == lang::StreamDir::kReverse) {
    forward_is_in = !forward_is_in;
  }
  bool is_in = sig.reverse ? !forward_is_in : forward_is_in;
  return is_in ? "in" : "out";
}

/// One physical net of a port: the `<suffix>_<signal>` name tail shared by
/// the port name and every signal-bundle prefix, plus pre-rendered pieces
/// for the per-instance emission sites (signal declarations and port maps),
/// which repeat once per instance of the streamlet.
struct Net {
  std::string suffix_sig;
  std::string decl_tail;  ///< "<suffix_sig> : <type>;"
  std::string map_head;   ///< "<port><suffix_sig> => sig_"
  bool reverse = false;
};

/// Emission products of one port — a pure function of (port name, logical
/// type identity, direction), so a session can share them across compiles.
struct PortEmit {
  std::vector<Net> nets;                ///< flattened over (layout, signal)
  std::vector<std::string> port_lines;  ///< entity/component port lines
};

/// "std_logic" for 1-bit valid/ready, "std_logic_vector(...)" otherwise,
/// appended to `out` without a temporary.
void append_signal_type(std::string& out, const PhysicalSignal& sig) {
  if (sig.name == "valid" || sig.name == "ready") {
    out += "std_logic";
  } else {
    out += "std_logic_vector(";
    out += std::to_string(sig.width - 1);
    out += " downto 0)";
  }
}

std::shared_ptr<const PortEmit> build_port_emit(const IrPort& p) {
  auto out = std::make_shared<PortEmit>();
  for (const StreamLayout& layout : p.layouts) {
    for (const PhysicalSignal& sig : layout.signals) {
      Net net;
      net.suffix_sig = layout.suffix + "_" + sig.name;
      net.reverse = sig.reverse;
      net.decl_tail = net.suffix_sig;
      net.decl_tail += " : ";
      append_signal_type(net.decl_tail, sig);
      net.decl_tail += ';';
      net.map_head = p.vhdl + net.suffix_sig + " => sig_";
      std::string line = p.vhdl + net.suffix_sig;
      line += " : ";
      line += port_mode(p, layout, sig);
      line += ' ';
      append_signal_type(line, sig);
      out->port_lines.push_back(std::move(line));
      out->nets.push_back(std::move(net));
    }
  }
  return out;
}

}  // namespace

/// Session-lifetime port-emission cache, keyed by (port name symbol,
/// logical-type identity, direction). Entries self-pin their TypeRef so the
/// pointer key stays valid for the session lifetime. Thread-safe: lookups
/// take the shared lock; a miss builds the PortEmit outside any lock and
/// publishes under the exclusive lock (first writer wins), so concurrent
/// emits of a session share entries without blocking each other's string
/// building.
struct EmitSession::Impl {
  struct Key {
    support::Symbol name_sym = support::kNoSymbol;
    const types::LogicalType* type = nullptr;
    lang::PortDir dir = lang::PortDir::kIn;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<const void*>()(k.type);
      h ^= (static_cast<std::size_t>(k.name_sym) + 1) *
           std::size_t{0x9e3779b97f4a7c15ULL};
      return h + (k.dir == lang::PortDir::kIn ? 0 : 1);
    }
  };
  struct Entry {
    types::TypeRef pin;
    std::shared_ptr<const PortEmit> emit;
  };
  std::unordered_map<Key, Entry, KeyHash> ports;
  mutable std::shared_mutex mu;

  [[nodiscard]] std::shared_ptr<const PortEmit> find(const Key& key) const {
    std::shared_lock lock(mu);
    auto it = ports.find(key);
    return it != ports.end() ? it->second.emit : nullptr;
  }
  /// Publishes `emit` for `key` unless another thread got there first, and
  /// returns the entry that ended up cached.
  [[nodiscard]] std::shared_ptr<const PortEmit> publish(
      const Key& key, types::TypeRef pin,
      std::shared_ptr<const PortEmit> emit) {
    std::unique_lock lock(mu);
    auto [it, inserted] =
        ports.try_emplace(key, Entry{std::move(pin), std::move(emit)});
    return it->second.emit;
  }
};

EmitSession::EmitSession() : impl_(std::make_unique<Impl>()) {}
EmitSession::~EmitSession() = default;
void EmitSession::clear() {
  std::unique_lock lock(impl_->mu);
  impl_->ports.clear();
}
std::size_t EmitSession::size() const {
  std::shared_lock lock(impl_->mu);
  return impl_->ports.size();
}

namespace {

/// Per-module emission cache: every string that the old emitter rebuilt per
/// use site — entity port lines, per-net `suffix_signal` name tails,
/// sanitized impl names, rendered component declarations — is built at most
/// once per module and written through the rope writer as `string_view`
/// pieces. With a session, per-port products come from the session cache,
/// so warm compiles skip the string building entirely.
class EmitCache {
 public:
  EmitCache(const Module& m, EmitSession::Impl* session)
      : m_(m),
        session_(session),
        streamlets_(m.streamlets.size()),
        impl_names_(m.impls.size()) {}

  /// Sanitized entity name of an impl, computed once per module.
  const std::string& impl_name(Index impl) {
    std::string& name = impl_names_[impl];
    if (name.empty()) name = vhdl_name(m_.impls[impl].name);
    return name;
  }

  struct StreamletEmit {
    /// Parallel to streamlet.ports; shared with the session cache.
    std::vector<std::shared_ptr<const PortEmit>> ports;
    std::size_t net_count = 0;  ///< total nets across all ports
  };

  const StreamletEmit& streamlet(Index index) {
    std::unique_ptr<StreamletEmit>& slot = streamlets_[index];
    if (slot == nullptr) {
      slot = std::make_unique<StreamletEmit>();
      build(m_.streamlets[index], *slot);
    }
    return *slot;
  }

  /// Fully rendered component declaration of an impl (depth 1 — component
  /// declarations only ever appear in an architecture's declarative part).
  /// Children recur across parent impls, so the block renders once per
  /// module and later mentions are a single chunk-level write().
  const std::string& component_decl(Index impl) {
    if (component_decls_.empty()) component_decls_.resize(m_.impls.size());
    std::string& text = component_decls_[impl];
    if (text.empty()) {
      CodeWriter w("  ", 1);
      emit_component_decl_uncached(w, impl_name(impl),
                                   streamlet(m_.impls[impl].streamlet));
      text = w.take();
    }
    return text;
  }

  static void emit_port_lines(CodeWriter& w, const StreamletEmit& se) {
    std::size_t written = 0;
    for (const auto& pe : se.ports) {
      for (const std::string& line : pe->port_lines) {
        ++written;
        w.line(line, written < se.net_count ? ";" : "");
      }
    }
  }

  static void emit_component_decl_uncached(CodeWriter& w,
                                           std::string_view name,
                                           const StreamletEmit& se) {
    w.open("component ", name, " is");
    w.open("port (");
    w.line("clk : in std_logic;");
    w.line("rst : in std_logic;");
    emit_port_lines(w, se);
    w.close(");");
    w.close("end component;");
  }

 private:
  void build(const IrStreamlet& s, StreamletEmit& out) {
    out.ports.reserve(s.ports.size());
    for (const IrPort& p : s.ports) {
      std::shared_ptr<const PortEmit> pe;
      if (session_ != nullptr && p.type != nullptr) {
        static obs::Counter& hits = obs::MetricsRegistry::global().counter(
            "tydi.vhdl.port_cache_hits");
        static obs::Counter& misses = obs::MetricsRegistry::global().counter(
            "tydi.vhdl.port_cache_misses");
        const EmitSession::Impl::Key key{p.sym, p.type.get(), p.dir};
        pe = session_->find(key);
        if (pe == nullptr) {
          ++misses;
          pe = session_->publish(key, p.type, build_port_emit(p));
        } else {
          ++hits;
        }
      } else {
        pe = build_port_emit(p);
      }
      out.net_count += pe->nets.size();
      out.ports.push_back(std::move(pe));
    }
  }

  const Module& m_;
  EmitSession::Impl* session_;
  std::vector<std::unique_ptr<StreamletEmit>> streamlets_;
  std::vector<std::string> impl_names_;
  std::vector<std::string> component_decls_;
};

/// Emits `entity <name> is port (...); end <name>;` off the cached lines.
void emit_entity(CodeWriter& w, std::string_view name,
                 const EmitCache::StreamletEmit& se) {
  w.open("entity ", name, " is");
  w.open("port (");
  w.line("clk : in std_logic;");
  w.line("rst : in std_logic;");
  EmitCache::emit_port_lines(w, se);
  w.close(");");
  w.close("end entity ", name, ";");
}

class ArchitectureEmitter {
 public:
  ArchitectureEmitter(CodeWriter& w, const Module& module, Index impl_index,
                      EmitCache& cache, support::DiagnosticEngine& diags)
      : w_(w),
        module_(module),
        impl_(module.impls[impl_index]),
        impl_index_(impl_index),
        cache_(cache),
        diags_(diags) {}

  void emit_structural() {
    w_.open("architecture structural of ", cache_.impl_name(impl_index_),
            " is");
    emit_component_decls();
    emit_signal_decls();
    w_.dedent();
    w_.open("begin");
    emit_instantiations();
    emit_connection_wiring();
    w_.close("end architecture structural;");
  }

 private:
  CodeWriter& w_;
  const Module& module_;
  const IrImpl& impl_;
  Index impl_index_;
  EmitCache& cache_;
  support::DiagnosticEngine& diags_;

  /// Streamlet table index of an instance's child impl, or kNoIndex.
  [[nodiscard]] Index child_streamlet_index(const IrInstance& inst) const {
    if (inst.impl == kNoIndex) return kNoIndex;
    return module_.impls[inst.impl].streamlet;
  }

  void emit_component_decls() {
    // One declaration per distinct child implementation, first-seen order
    // (flat per-impl bitmap, not a string-keyed map).
    std::vector<bool> declared(module_.impls.size(), false);
    for (const IrInstance& inst : impl_.instances) {
      Index cs = child_streamlet_index(inst);
      if (cs == kNoIndex || declared[inst.impl]) continue;
      declared[inst.impl] = true;
      w_.write(cache_.component_decl(inst.impl));
    }
  }

  void emit_signal_decls() {
    // One signal bundle per instance port; entity ports are used directly.
    // The bundle prefix `sig_<inst>_<port>` is written as view pieces — no
    // per-port prefix strings are built.
    for (const IrInstance& inst : impl_.instances) {
      Index cs = child_streamlet_index(inst);
      if (cs == kNoIndex) {
        diags_.warning("vhdl",
                       "instance '" + inst.name +
                           "' has unresolved impl; skipped in VHDL",
                       inst.loc);
        continue;
      }
      const IrStreamlet& child = module_.streamlets[cs];
      const EmitCache::StreamletEmit& se = cache_.streamlet(cs);
      for (std::size_t pi = 0; pi < child.ports.size(); ++pi) {
        const IrPort& p = child.ports[pi];
        for (const Net& net : se.ports[pi]->nets) {
          w_.line("signal sig_", inst.vhdl, "_", p.vhdl, net.decl_tail);
        }
      }
    }
  }

  void emit_instantiations() {
    for (const IrInstance& inst : impl_.instances) {
      Index cs = child_streamlet_index(inst);
      if (cs == kNoIndex) continue;
      const IrStreamlet& child = module_.streamlets[cs];
      const EmitCache::StreamletEmit& se = cache_.streamlet(cs);
      w_.open("u_", inst.vhdl, " : ", cache_.impl_name(inst.impl));
      w_.open("port map (");
      w_.line("clk => clk,");
      w_.line("rst => rst", se.net_count > 0 ? "," : "");
      std::size_t written = 0;
      for (std::size_t pi = 0; pi < child.ports.size(); ++pi) {
        const IrPort& p = child.ports[pi];
        for (const Net& net : se.ports[pi]->nets) {
          ++written;
          w_.line(net.map_head, inst.vhdl, "_", p.vhdl, net.suffix_sig,
                  written < se.net_count ? "," : "");
        }
      }
      w_.close(");");
      w_.dedent();
    }
  }

  /// A resolved wiring side: the port (for layouts), its cached nets, and
  /// the signal-bundle prefix as view pieces (self ports use their own
  /// names, instance ports their declared internal bundle).
  struct Side {
    const IrPort* port = nullptr;
    const PortEmit* nets = nullptr;
    std::string_view lead;  // "sig_" or ""
    std::string_view inst;  // instance identifier or ""
    std::string_view sep;   // "_" or ""
    std::string_view name;  // port identifier
  };

  [[nodiscard]] bool resolve_side(const IrEndpoint& ep, Side& out) {
    if (!ep.ok()) return false;
    Index cs;
    if (ep.is_self()) {
      cs = impl_.streamlet;
    } else {
      const IrInstance& inst = impl_.instances[ep.instance];
      cs = child_streamlet_index(inst);
      out.lead = "sig_";
      out.inst = inst.vhdl;
      out.sep = "_";
    }
    if (cs == kNoIndex) return false;
    out.port = &module_.streamlets[cs].ports[ep.port];
    out.nets = cache_.streamlet(cs).ports[ep.port].get();
    out.name = out.port->vhdl;
    return true;
  }

  void emit_connection_wiring() {
    for (const IrConnection& c : impl_.connections) {
      Side src;
      Side dst;
      if (!resolve_side(c.src, src) || !resolve_side(c.dst, dst)) {
        diags_.warning("vhdl",
                       "unresolved connection " + c.src.display() + " => " +
                           c.dst.display() + "; skipped in VHDL",
                       c.loc);
        continue;
      }
      const auto& src_layouts = src.port->layouts;
      const auto& dst_layouts = dst.port->layouts;
      if (src_layouts.size() != dst_layouts.size()) continue;  // DRC reported
      emit_endpoint_comment(c.src, c.dst);
      std::size_t src_net = 0;
      std::size_t dst_net = 0;
      for (std::size_t s = 0; s < src_layouts.size(); ++s) {
        const auto& src_sigs = src_layouts[s].signals;
        const auto& dst_sigs = dst_layouts[s].signals;
        const std::size_t common = std::min(src_sigs.size(), dst_sigs.size());
        for (std::size_t k = 0; k < common; ++k) {
          const PhysicalSignal& sig = src_sigs[k];
          // src side: the cached `<suffix>_<sig>` tail; dst side keeps the
          // historical spelling `<dst suffix>_<src signal name>`.
          const std::string& src_tail = src.nets->nets[src_net + k].suffix_sig;
          const std::string& dst_suffix = dst_layouts[s].suffix;
          if (sig.reverse) {
            // ready flows sink -> source.
            w_.line(src.lead, src.inst, src.sep, src.name, src_tail, " <= ",
                    dst.lead, dst.inst, dst.sep, dst.name, dst_suffix, "_",
                    sig.name, ";");
          } else {
            w_.line(dst.lead, dst.inst, dst.sep, dst.name, dst_suffix, "_",
                    sig.name, " <= ", src.lead, src.inst, src.sep, src.name,
                    src_tail, ";");
          }
        }
        src_net += src_sigs.size();
        dst_net += dst_sigs.size();
      }
    }
  }

  /// "-- src => dst" comment, written as interner-backed view pieces.
  void emit_endpoint_comment(const IrEndpoint& src, const IrEndpoint& dst) {
    auto named = [](support::Symbol sym) -> std::string_view {
      return sym != support::kNoSymbol ? std::string_view(support::symbol_name(sym))
                                       : std::string_view();
    };
    auto part = [&named](const IrEndpoint& ep,
                         std::size_t piece) -> std::string_view {
      if (ep.is_self()) {
        return piece == 2 ? named(ep.port_sym) : std::string_view();
      }
      switch (piece) {
        case 0: return named(ep.instance_sym);
        case 1: return ".";
        default: return named(ep.port_sym);
      }
    };
    w_.line("-- ", part(src, 0), part(src, 1), part(src, 2), " => ",
            part(dst, 0), part(dst, 1), part(dst, 2));
  }
};

void emit_external_architecture(CodeWriter& w, const IrImpl& impl,
                                const IrStreamlet& streamlet,
                                std::string_view name,
                                const VhdlOptions& options,
                                support::DiagnosticEngine& diags) {
  std::optional<RtlBody> body;
  if (options.generate_stdlib_rtl) {
    body = generate_stdlib_rtl(impl, streamlet);
  }
  if (!body) {
    w.open("architecture blackbox of ", name, " is");
    w.dedent();
    w.open("begin");
    w.line("-- external implementation '", impl.display_name,
           "' is provided by an external tool;");
    w.line("-- its behaviour is characterized by the Tydi simulation code "
           "and verified via generated testbenches.");
    w.close("end architecture blackbox;");
    if (!impl.template_family.empty()) {
      diags.note("vhdl",
                 "external impl '" + impl.display_name +
                     "' emitted as black box (no stdlib RTL generator for "
                     "family '" +
                     impl.template_family + "')",
                 impl.loc);
    }
    return;
  }
  // Splice the generated body by moving its rope chunks — the generators
  // wrote their lines at architecture-body depth already.
  w.open("architecture behavioural of ", name, " is");
  w.append(std::move(body->declarations));
  w.dedent();
  w.open("begin");
  w.append(std::move(body->statements));
  w.close("end architecture behavioural;");
}

}  // namespace

std::string emit(const Module& module, const VhdlOptions& options,
                 support::DiagnosticEngine& diags, EmitSession* session) {
  CodeWriter w;
  EmitCache cache(module, session != nullptr ? &session->impl() : nullptr);
  if (options.emit_header) {
    w.line("-- VHDL generated by tydi-cpp (Tydi-IR backend)");
    if (!module.top_name.empty()) w.line("-- top: ", module.top_name);
    w.line();
  }
  for (std::size_t i = 0; i < module.impls.size(); ++i) {
    const IrImpl& impl = module.impls[i];
    const IrStreamlet* s = module.streamlet_of(impl);
    if (s == nullptr) {
      diags.warning("vhdl",
                    "impl '" + impl.name +
                        "' has unresolved streamlet; skipped",
                    impl.loc);
      continue;
    }
    const std::string& name = cache.impl_name(static_cast<Index>(i));
    w.line("library ieee;");
    w.line("use ieee.std_logic_1164.all;");
    w.line("use ieee.numeric_std.all;");
    w.line();
    w.line("-- ", impl.display_name, " of ", s->display_name);
    emit_entity(w, name, cache.streamlet(impl.streamlet));
    w.line();
    if (impl.external) {
      emit_external_architecture(w, impl, *s, name, options, diags);
    } else {
      ArchitectureEmitter arch(w, module, static_cast<Index>(i), cache, diags);
      arch.emit_structural();
    }
    w.line();
  }
  return w.take();
}

}  // namespace tydi::vhdl
