#include "src/vhdl/vhdl.hpp"

#include "src/support/text.hpp"
#include "src/vhdl/rtl_lib.hpp"

namespace tydi::vhdl {

using ir::Index;
using ir::IrConnection;
using ir::IrEndpoint;
using ir::IrImpl;
using ir::IrInstance;
using ir::IrPort;
using ir::IrStreamlet;
using ir::kNoIndex;
using ir::Module;
using ir::StreamLayout;
using support::CodeWriter;
using types::PhysicalSignal;

std::string vhdl_name(std::string_view name) {
  return support::sanitize_identifier(name);
}

namespace {

/// "std_logic" for 1-bit valid/ready, vector type otherwise.
std::string signal_type(const PhysicalSignal& sig) {
  if (sig.name == "valid" || sig.name == "ready") return "std_logic";
  return "std_logic_vector(" + std::to_string(sig.width - 1) + " downto 0)";
}

/// VHDL direction of a physical signal on an entity port: forward signals
/// follow the port direction, ready runs opposite; Reverse streams flip.
std::string port_mode(const IrPort& p, const StreamLayout& layout,
                      const PhysicalSignal& sig) {
  bool forward_is_in = (p.dir == lang::PortDir::kIn);
  if (layout.stream.direction == lang::StreamDir::kReverse) {
    forward_is_in = !forward_is_in;
  }
  bool is_in = sig.reverse ? !forward_is_in : forward_is_in;
  return is_in ? "in" : "out";
}

/// Port list shared by entity and component declarations, built from the
/// layouts cached at lowering (no physical_streams() recomputation).
std::vector<std::string> port_lines(const IrStreamlet& streamlet) {
  std::vector<std::string> lines;
  for (const IrPort& p : streamlet.ports) {
    for (const StreamLayout& layout : p.layouts) {
      for (const PhysicalSignal& sig : layout.signals) {
        lines.push_back(p.vhdl + layout.suffix + "_" + sig.name + " : " +
                        port_mode(p, layout, sig) + " " + signal_type(sig));
      }
    }
  }
  return lines;
}

/// Emits `entity <name> is port (...); end <name>;`.
void emit_entity(CodeWriter& w, const std::string& name,
                 const IrStreamlet& streamlet) {
  w.open("entity " + name + " is");
  w.open("port (");
  w.line("clk : in std_logic;");
  w.line("rst : in std_logic;");
  std::vector<std::string> lines = port_lines(streamlet);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    w.line(lines[i] + (i + 1 < lines.size() ? ";" : ""));
  }
  w.close(");");
  w.close("end entity " + name + ";");
}

/// Emits a component declaration matching emit_entity's port list.
void emit_component_decl(CodeWriter& w, const std::string& name,
                         const IrStreamlet& streamlet) {
  w.open("component " + name + " is");
  w.open("port (");
  w.line("clk : in std_logic;");
  w.line("rst : in std_logic;");
  std::vector<std::string> lines = port_lines(streamlet);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    w.line(lines[i] + (i + 1 < lines.size() ? ";" : ""));
  }
  w.close(");");
  w.close("end component;");
}

class ArchitectureEmitter {
 public:
  ArchitectureEmitter(CodeWriter& w, const Module& module, const IrImpl& impl,
                      support::DiagnosticEngine& diags)
      : w_(w), module_(module), impl_(impl), diags_(diags) {}

  void emit_structural() {
    w_.open("architecture structural of " + vhdl_name(impl_.name) + " is");
    emit_component_decls();
    emit_signal_decls();
    w_.dedent();
    w_.open("begin");
    emit_instantiations();
    emit_connection_wiring();
    w_.close("end architecture structural;");
  }

 private:
  CodeWriter& w_;
  const Module& module_;
  const IrImpl& impl_;
  support::DiagnosticEngine& diags_;

  [[nodiscard]] const IrStreamlet* child_streamlet(
      const IrInstance& inst) const {
    if (inst.impl == kNoIndex) return nullptr;
    return module_.streamlet_of(module_.impls[inst.impl]);
  }

  /// Signal bundle prefix of an instance port.
  [[nodiscard]] static std::string sig_prefix(const IrInstance& inst,
                                              const IrPort& p) {
    return "sig_" + inst.vhdl + "_" + p.vhdl;
  }

  /// Bundle prefix for a resolved endpoint: entity ports use their own
  /// names; instance ports use a declared internal signal bundle.
  [[nodiscard]] std::string bundle_prefix(const IrEndpoint& ep,
                                          const IrPort& port) const {
    if (ep.is_self()) return port.vhdl;
    return sig_prefix(impl_.instances[ep.instance], port);
  }

  void emit_component_decls() {
    // One declaration per distinct child implementation, first-seen order
    // (flat per-impl bitmap, not a string-keyed map).
    std::vector<bool> declared(module_.impls.size(), false);
    for (const IrInstance& inst : impl_.instances) {
      const IrStreamlet* cs = child_streamlet(inst);
      if (cs == nullptr || declared[inst.impl]) continue;
      declared[inst.impl] = true;
      emit_component_decl(w_, vhdl_name(module_.impls[inst.impl].name), *cs);
    }
  }

  void emit_signal_decls() {
    // One signal bundle per instance port; entity ports are used directly.
    for (const IrInstance& inst : impl_.instances) {
      const IrStreamlet* cs = child_streamlet(inst);
      if (cs == nullptr) {
        diags_.warning("vhdl",
                       "instance '" + inst.name +
                           "' has unresolved impl; skipped in VHDL",
                       inst.loc);
        continue;
      }
      for (const IrPort& p : cs->ports) {
        std::string prefix = sig_prefix(inst, p);
        for (const StreamLayout& layout : p.layouts) {
          for (const PhysicalSignal& sig : layout.signals) {
            w_.line("signal " + prefix + layout.suffix + "_" + sig.name +
                    " : " + signal_type(sig) + ";");
          }
        }
      }
    }
  }

  void emit_instantiations() {
    for (const IrInstance& inst : impl_.instances) {
      const IrStreamlet* cs = child_streamlet(inst);
      if (cs == nullptr) continue;
      w_.open("u_" + inst.vhdl + " : " +
              vhdl_name(module_.impls[inst.impl].name));
      w_.open("port map (");
      std::vector<std::string> maps;
      maps.push_back("clk => clk");
      maps.push_back("rst => rst");
      for (const IrPort& p : cs->ports) {
        std::string actual_prefix = sig_prefix(inst, p);
        for (const StreamLayout& layout : p.layouts) {
          for (const PhysicalSignal& sig : layout.signals) {
            maps.push_back(p.vhdl + layout.suffix + "_" + sig.name + " => " +
                           actual_prefix + layout.suffix + "_" + sig.name);
          }
        }
      }
      for (std::size_t i = 0; i < maps.size(); ++i) {
        w_.line(maps[i] + (i + 1 < maps.size() ? "," : ""));
      }
      w_.close(");");
      w_.dedent();
    }
  }

  void emit_connection_wiring() {
    for (const IrConnection& c : impl_.connections) {
      const IrPort* src_port = module_.resolve(impl_, c.src);
      const IrPort* dst_port = module_.resolve(impl_, c.dst);
      if (src_port == nullptr || dst_port == nullptr) {
        diags_.warning("vhdl",
                       "unresolved connection " + c.src.display() + " => " +
                           c.dst.display() + "; skipped in VHDL",
                       c.loc);
        continue;
      }
      const auto& src_layouts = src_port->layouts;
      const auto& dst_layouts = dst_port->layouts;
      if (src_layouts.size() != dst_layouts.size()) continue;  // DRC reported
      std::string src_prefix = bundle_prefix(c.src, *src_port);
      std::string dst_prefix = bundle_prefix(c.dst, *dst_port);
      w_.line("-- " + c.src.display() + " => " + c.dst.display());
      for (std::size_t s = 0; s < src_layouts.size(); ++s) {
        const auto& src_sigs = src_layouts[s].signals;
        const auto& dst_sigs = dst_layouts[s].signals;
        for (std::size_t k = 0;
             k < src_sigs.size() && k < dst_sigs.size(); ++k) {
          const PhysicalSignal& sig = src_sigs[k];
          std::string src_sig =
              src_prefix + src_layouts[s].suffix + "_" + sig.name;
          std::string dst_sig =
              dst_prefix + dst_layouts[s].suffix + "_" + sig.name;
          if (sig.reverse) {
            // ready flows sink -> source.
            w_.line(src_sig + " <= " + dst_sig + ";");
          } else {
            w_.line(dst_sig + " <= " + src_sig + ";");
          }
        }
      }
    }
  }
};

void emit_external_architecture(CodeWriter& w, const IrImpl& impl,
                                const IrStreamlet& streamlet,
                                const VhdlOptions& options,
                                support::DiagnosticEngine& diags) {
  std::optional<RtlBody> body;
  if (options.generate_stdlib_rtl) {
    body = generate_stdlib_rtl(impl, streamlet);
  }
  if (!body) {
    w.open("architecture blackbox of " + vhdl_name(impl.name) + " is");
    w.dedent();
    w.open("begin");
    w.line("-- external implementation '" + impl.display_name +
           "' is provided by an external tool;");
    w.line("-- its behaviour is characterized by the Tydi simulation code "
           "and verified via generated testbenches.");
    w.close("end architecture blackbox;");
    if (!impl.template_family.empty()) {
      diags.note("vhdl",
                 "external impl '" + impl.display_name +
                     "' emitted as black box (no stdlib RTL generator for "
                     "family '" +
                     impl.template_family + "')",
                 impl.loc);
    }
    return;
  }
  w.open("architecture behavioural of " + vhdl_name(impl.name) + " is");
  for (const std::string& d : body->declarations) w.line(d);
  w.dedent();
  w.open("begin");
  for (const std::string& s : body->statements) w.line(s);
  w.close("end architecture behavioural;");
}

}  // namespace

std::string emit(const Module& module, const VhdlOptions& options,
                 support::DiagnosticEngine& diags) {
  CodeWriter w;
  if (options.emit_header) {
    w.line("-- VHDL generated by tydi-cpp (Tydi-IR backend)");
    if (!module.top_name.empty()) w.line("-- top: " + module.top_name);
    w.line();
  }
  for (const IrImpl& impl : module.impls) {
    const IrStreamlet* s = module.streamlet_of(impl);
    if (s == nullptr) {
      diags.warning("vhdl",
                    "impl '" + impl.name +
                        "' has unresolved streamlet; skipped",
                    impl.loc);
      continue;
    }
    w.line("library ieee;");
    w.line("use ieee.std_logic_1164.all;");
    w.line("use ieee.numeric_std.all;");
    w.line();
    w.line("-- " + impl.display_name + " of " + s->display_name);
    emit_entity(w, vhdl_name(impl.name), *s);
    w.line();
    if (impl.external) {
      emit_external_architecture(w, impl, *s, options, diags);
    } else {
      ArchitectureEmitter arch(w, module, impl, diags);
      arch.emit_structural();
    }
    w.line();
  }
  return w.take();
}

}  // namespace tydi::vhdl
