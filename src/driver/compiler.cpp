#include "src/driver/compiler.hpp"

#include <chrono>

#include "src/elab/elaborator.hpp"
#include "src/ir/ir.hpp"
#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"

namespace tydi::driver {

CompileResult::CompileResult()
    : sources(std::make_unique<support::SourceManager>()),
      diags(std::make_unique<support::DiagnosticEngine>(sources.get())) {}

namespace {

class PhaseTimer {
 public:
  PhaseTimer(std::map<std::string, double>& out, std::string phase)
      : out_(out),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    auto end = std::chrono::steady_clock::now();
    out_[phase_] +=
        std::chrono::duration<double, std::milli>(end - start_).count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::map<std::string, double>& out_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

CompileResult compile(const std::vector<NamedSource>& sources,
                      const CompileOptions& options) {
  CompileResult result;

  auto program = std::make_shared<elab::Program>();
  {
    PhaseTimer t(result.phase_ms, "parse");
    if (options.include_stdlib) {
      support::FileId id = result.sources->add(
          std::string(stdlib::stdlib_file_name()),
          std::string(stdlib::stdlib_source()));
      program->files.push_back(
          lang::parse(result.sources->text(id), id, *result.diags));
    }
    for (const NamedSource& src : sources) {
      support::FileId id = result.sources->add(src.name, src.text);
      program->files.push_back(
          lang::parse(result.sources->text(id), id, *result.diags));
    }
  }
  result.program = program;
  if (result.diags->has_errors()) return result;

  {
    PhaseTimer t(result.phase_ms, "elaborate");
    elab::Elaborator elaborator(program, *result.diags);
    result.design = options.top.empty() ? elaborator.run_all()
                                        : elaborator.run(options.top);
  }
  if (result.diags->has_errors()) return result;

  if (options.sugaring) {
    PhaseTimer t(result.phase_ms, "sugar");
    result.sugar_stats =
        sugar::apply_sugaring(result.design, options.sugar, *result.diags);
  }

  if (options.run_drc) {
    PhaseTimer t(result.phase_ms, "drc");
    result.drc_report = drc::check(result.design, options.drc, *result.diags);
  }

  if (options.emit_ir) {
    PhaseTimer t(result.phase_ms, "ir");
    result.ir_text = ir::emit(result.design);
  }
  if (options.emit_vhdl) {
    PhaseTimer t(result.phase_ms, "vhdl");
    result.vhdl_text =
        vhdl::emit(result.design, options.vhdl, *result.diags);
  }
  return result;
}

CompileResult compile_source(std::string text, const CompileOptions& options) {
  return compile({NamedSource{"input.td", std::move(text)}}, options);
}

}  // namespace tydi::driver
