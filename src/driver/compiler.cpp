#include "src/driver/compiler.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"

namespace tydi::driver {

void PhaseTimings::add(std::string_view phase, double ms) {
  for (Entry& e : entries_) {
    if (e.phase == phase) {
      e.ms += ms;
      return;
    }
  }
  entries_.push_back(Entry{std::string(phase), ms});
}

bool PhaseTimings::contains(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return true;
  }
  return false;
}

double PhaseTimings::at(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return e.ms;
  }
  return 0.0;
}

double PhaseTimings::total_ms() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.ms;
  return total;
}

std::string PhaseTimings::render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << " | ";
    out << entries_[i].phase << " " << entries_[i].ms << "ms";
  }
  return out.str();
}

CompileResult::CompileResult()
    : sources(std::make_unique<support::SourceManager>()),
      diags(std::make_unique<support::DiagnosticEngine>(sources.get())) {}

support::Status CompileResult::status() const {
  using support::Status;
  using support::StatusCode;
  if (!diags->has_errors()) return Status::ok();
  // Classify by the first error's reporting phase: the pipeline stops at
  // the first failing stage, so that phase names the failure class.
  for (const support::Diagnostic& d : diags->diagnostics()) {
    if (d.severity != support::Severity::kError) continue;
    StatusCode code = StatusCode::kInternal;
    if (d.phase == "lexer" || d.phase == "parser") {
      code = StatusCode::kParseError;
    } else if (d.phase == "elab" || d.phase == "sugar") {
      code = StatusCode::kElabError;
    } else if (d.phase == "drc") {
      code = StatusCode::kDrcError;
    } else if (d.phase == "ir" || d.phase == "vhdl") {
      code = StatusCode::kEmitError;
    }
    return Status::error(code, d.phase, d.message);
  }
  return Status::error(StatusCode::kInternal, "driver",
                       "error count nonzero but no error diagnostic stored");
}

namespace {

class PhaseTimer {
 public:
  PhaseTimer(PhaseTimings& out, std::string phase)
      : out_(out),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    auto end = std::chrono::steady_clock::now();
    out_.add(phase_,
             std::chrono::duration<double, std::milli>(end - start_).count());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseTimings& out_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

CompileResult compile_with_session(const std::vector<NamedSource>& sources,
                                   const CompileOptions& options,
                                   CompileSession* session) {
  CompileResult result;
  elab::SourceHashes hashes;

  auto program = std::make_shared<elab::Program>();
  {
    PhaseTimer t(result.phase_ms, "parse");
    // Registers + hashes a source, then parses it — or, with a session,
    // reuses a previously parsed AST when (file id, name, content hash)
    // match, so the AST's Locs resolve identically in this compile.
    auto add_and_parse = [&](const std::string& name, std::string text) {
      support::FileId id = result.sources->add(name, std::move(text));
      std::string_view stored = result.sources->text(id);
      const std::uint64_t hash = elab::source_hash(stored);
      if (hashes.size() <= id.value) hashes.resize(id.value + 1, 0);
      hashes[id.value] = hash;
      if (session != nullptr) {
        for (const CompileSession::CachedParse& c : session->parses_) {
          if (c.file_value == id.value && c.hash == hash && c.name == name) {
            program->files.push_back(c.ast);
            return;
          }
        }
      }
      const std::size_t diags_before = result.diags->diagnostics().size();
      auto ast = std::make_shared<const lang::SourceFile>(
          lang::parse(stored, id, *result.diags));
      program->files.push_back(ast);
      // Cache only diagnostic-free parses (cached reuse replays no diags).
      if (session != nullptr &&
          result.diags->diagnostics().size() == diags_before) {
        session->parses_.push_back(CompileSession::CachedParse{
            name, hash, id.value, std::move(ast)});
      }
    };
    if (options.include_stdlib) {
      add_and_parse(std::string(stdlib::stdlib_file_name()),
                    std::string(stdlib::stdlib_source()));
    }
    for (const NamedSource& src : sources) {
      add_and_parse(src.name, src.text);
    }
  }
  result.program = program;
  if (result.diags->has_errors()) return result;

  {
    PhaseTimer t(result.phase_ms, "elaborate");
    elab::MemoHook hook;
    if (session != nullptr) {
      hook.memo = &session->memo_;
      hook.hashes = &hashes;
    }
    elab::Elaborator elaborator(program, *result.diags, hook);
    result.design = options.top.empty() ? elaborator.run_all()
                                        : elaborator.run(options.top);
    result.template_cache = elaborator.stats();
  }
  if (result.diags->has_errors()) return result;

  if (options.sugaring) {
    PhaseTimer t(result.phase_ms, "sugar");
    result.sugar_stats =
        sugar::apply_sugaring(result.design, options.sugar, *result.diags);
  }

  // Lower once, unconditionally: every backend (DRC, IR text, VHDL) and any
  // caller-side consumer (e.g. the fletchgen manifest) reads result.ir.
  {
    PhaseTimer t(result.phase_ms, "lower");
    result.ir = ir::lower(result.design,
                          session != nullptr ? &session->type_cache_
                                             : nullptr);
  }

  if (options.run_drc) {
    PhaseTimer t(result.phase_ms, "drc");
    result.drc_report = drc::check(result.ir, options.drc, *result.diags);
  }

  if (options.emit_ir) {
    PhaseTimer t(result.phase_ms, "ir");
    result.ir_text = ir::emit(result.ir);
  }
  if (options.emit_vhdl) {
    PhaseTimer t(result.phase_ms, "vhdl");
    result.vhdl_text =
        vhdl::emit(result.ir, options.vhdl, *result.diags,
                   session != nullptr ? &session->vhdl_cache_ : nullptr);
  }
  return result;
}

CompileResult compile(const std::vector<NamedSource>& sources,
                      const CompileOptions& options) {
  return compile_with_session(sources, options, nullptr);
}

CompileResult compile_source(std::string text, const CompileOptions& options) {
  return compile({NamedSource{"input.td", std::move(text)}}, options);
}

support::Status load_batch_manifest(const std::string& path,
                                    std::vector<BatchJob>& jobs) {
  using support::Status;
  using support::StatusCode;
  std::ifstream manifest(path);
  if (!manifest) {
    return Status::error(StatusCode::kIoError, "manifest",
                         "cannot read manifest " + path);
  }
  std::string line;
  std::size_t line_no = 0;
  // One bad line poisons its own job, not the batch: the job is appended
  // with a preflight failure and compile_batch skips it while the rest of
  // the manifest loads normally.
  auto skip = [&](StatusCode code, const std::string& what) {
    BatchJob job;
    job.name = path + ":" + std::to_string(line_no);
    job.preflight = Status::error(
        code, "manifest", path + ":" + std::to_string(line_no) + ": " + what);
    jobs.push_back(std::move(job));
  };
  while (std::getline(manifest, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string source_path;
    std::string top;
    if (!(fields >> source_path)) continue;  // blank line
    if (source_path.front() == '#') continue;
    if (!(fields >> top)) {
      skip(StatusCode::kCorruptData, "expected \"source_file top_name\"");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      skip(StatusCode::kCorruptData, "trailing field '" + extra + "'");
      continue;
    }
    std::ifstream source(source_path, std::ios::binary);
    if (!source) {
      skip(StatusCode::kIoError, "cannot read " + source_path);
      continue;
    }
    BatchJob job;
    job.name = source_path + ":" + top;
    job.sources.push_back(NamedSource{
        source_path, std::string((std::istreambuf_iterator<char>(source)),
                                 std::istreambuf_iterator<char>())});
    job.options.top = top;
    jobs.push_back(std::move(job));
  }
  return Status::ok();
}

BatchResult compile_batch(CompileSession& session,
                          const std::vector<BatchJob>& jobs) {
  BatchResult out;
  // Canonical pipeline order for the aggregate, whatever phases jobs skip.
  for (const char* phase : kPipelinePhases) {
    out.phase_ms.add(phase, 0.0);
  }
  for (const BatchJob& job : jobs) {
    if (!job.preflight.is_ok()) {
      // The manifest loader already condemned this job; record it and move
      // on without compiling.
      BatchEntry entry;
      entry.name = job.name;
      entry.success = false;
      entry.status = job.preflight;
      entry.diagnostics = job.preflight.render() + "\n";
      ++out.failures;
      out.entries.push_back(std::move(entry));
      continue;
    }
    CompileResult r = session.compile(job.sources, job.options);
    BatchEntry entry;
    entry.name = job.name;
    entry.success = r.success();
    entry.phase_ms = r.phase_ms;
    entry.template_cache = r.template_cache;
    entry.vhdl_bytes = r.vhdl_text.size();
    entry.ir_bytes = r.ir_text.size();
    if (!entry.success) {
      entry.status = r.status();
      entry.diagnostics = r.report();
      ++out.failures;
    }
    for (const PhaseTimings::Entry& p : r.phase_ms.entries()) {
      out.phase_ms.add(p.phase, p.ms);
    }
    out.template_cache += r.template_cache;
    out.bytes_emitted += entry.vhdl_bytes + entry.ir_bytes;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

support::Status BatchResult::status() const {
  for (const BatchEntry& e : entries) {
    if (!e.success) return e.status;
  }
  return support::Status::ok();
}

std::string BatchResult::render() const {
  support::TextTable table;
  table.header({"query", "ok", "total ms", "elab ms", "vhdl ms", "hit rate",
                "memo hits", "vhdl bytes"});
  for (const BatchEntry& e : entries) {
    table.row({e.name, e.success ? "yes" : "NO",
               support::format_fixed(e.phase_ms.total_ms(), 3),
               support::format_fixed(e.phase_ms.at("elaborate"), 3),
               support::format_fixed(e.phase_ms.at("vhdl"), 3),
               support::format_fixed(e.template_cache.hit_rate(), 3),
               std::to_string(e.template_cache.session_hits()),
               std::to_string(e.vhdl_bytes)});
  }
  table.row({"(aggregate)", failures == 0 ? "yes" : "NO",
             support::format_fixed(phase_ms.total_ms(), 3),
             support::format_fixed(phase_ms.at("elaborate"), 3),
             support::format_fixed(phase_ms.at("vhdl"), 3),
             support::format_fixed(template_cache.hit_rate(), 3),
             std::to_string(template_cache.session_hits()),
             std::to_string(bytes_emitted)});
  std::string out = table.render();
  out += "phases: " + phase_ms.render() + "\n";
  for (const BatchEntry& e : entries) {
    if (!e.success) {
      out += "-- " + e.name + " failed:\n" + e.diagnostics;
    }
  }
  return out;
}

}  // namespace tydi::driver
