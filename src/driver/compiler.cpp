#include "src/driver/compiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"

namespace tydi::driver {

std::vector<SourceStamp> source_stamps(
    const std::vector<NamedSource>& sources) {
  std::vector<SourceStamp> stamps;
  stamps.reserve(sources.size());
  for (const NamedSource& source : sources) {
    stamps.push_back(SourceStamp{source.name, elab::source_hash(source.text)});
  }
  return stamps;
}

void PhaseTimings::add(std::string_view phase, double ms) {
  for (Entry& e : entries_) {
    if (e.phase == phase) {
      e.ms += ms;
      return;
    }
  }
  entries_.push_back(Entry{std::string(phase), ms});
}

bool PhaseTimings::contains(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return true;
  }
  return false;
}

double PhaseTimings::at(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return e.ms;
  }
  return 0.0;
}

double PhaseTimings::total_ms() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.ms;
  return total;
}

std::string PhaseTimings::render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << " | ";
    out << entries_[i].phase << " " << entries_[i].ms << "ms";
  }
  return out.str();
}

CompileResult::CompileResult()
    : sources(std::make_unique<support::SourceManager>()),
      diags(std::make_unique<support::DiagnosticEngine>(sources.get())) {}

support::Status CompileResult::status() const {
  using support::Status;
  using support::StatusCode;
  if (!diags->has_errors()) return Status::ok();
  // Classify by the first error's reporting phase: the pipeline stops at
  // the first failing stage, so that phase names the failure class.
  for (const support::Diagnostic& d : diags->diagnostics()) {
    if (d.severity != support::Severity::kError) continue;
    StatusCode code = StatusCode::kInternal;
    if (d.phase == "lexer" || d.phase == "parser") {
      code = StatusCode::kParseError;
    } else if (d.phase == "elab" || d.phase == "sugar") {
      code = StatusCode::kElabError;
    } else if (d.phase == "drc") {
      code = StatusCode::kDrcError;
    } else if (d.phase == "ir" || d.phase == "vhdl") {
      code = StatusCode::kEmitError;
    } else if (d.phase == "watchdog") {
      // Budget exceeded / externally cancelled between phases — the same
      // class as a watchdog-aborted simulation run.
      code = StatusCode::kAborted;
    }
    return Status::error(code, d.phase, d.message);
  }
  return Status::error(StatusCode::kInternal, "driver",
                       "error count nonzero but no error diagnostic stored");
}

namespace {

class PhaseTimer {
 public:
  PhaseTimer(PhaseTimings& out, std::string phase)
      : out_(out),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {
    if (obs::SpanTracer::global().enabled()) {
      span_start_ns_ = obs::SpanTracer::now_ns();
    }
  }
  ~PhaseTimer() {
    auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start_).count();
    out_.add(phase_, ms);
    // Mirror into the registry: one histogram per pipeline phase, plus a
    // tracer span covering the same interval. Both are no-ops per
    // observation beyond a shared-lock name lookup — phases are coarse.
    obs::MetricsRegistry::global()
        .histogram("tydi.compile.phase_ms." + phase_)
        .observe(ms);
    if (span_start_ns_ >= 0 && obs::SpanTracer::global().enabled()) {
      obs::SpanTracer::global().record(
          "compile.phase." + phase_, span_start_ns_,
          obs::SpanTracer::now_ns() - span_start_ns_);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseTimings& out_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t span_start_ns_ = -1;
};

/// Publishes one finished compile's telemetry to the process registry on
/// every exit path (early error returns included): outcome counters,
/// instantiation-cache deltas, and bytes emitted.
struct CompilePublisher {
  const CompileResult& result;
  ~CompilePublisher() {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& total = reg.counter("tydi.compile.total");
    static obs::Counter& errors = reg.counter("tydi.compile.errors");
    static obs::Counter& aborted = reg.counter("tydi.compile.aborted");
    static obs::Counter& inst_hits =
        reg.counter("tydi.elab.instantiation_hits");
    static obs::Counter& inst_misses =
        reg.counter("tydi.elab.instantiation_misses");
    static obs::Counter& inst_session_hits =
        reg.counter("tydi.elab.session_hits");
    static obs::Counter& ir_bytes = reg.counter("tydi.ir.bytes_emitted");
    static obs::Counter& vhdl_bytes = reg.counter("tydi.vhdl.bytes_emitted");
    ++total;
    if (result.diags->has_errors()) {
      if (result.status().code() == support::StatusCode::kAborted) {
        ++aborted;
      } else {
        ++errors;
      }
    }
    inst_hits += result.template_cache.hits();
    inst_misses += result.template_cache.misses();
    inst_session_hits += result.template_cache.session_hits();
    ir_bytes += result.ir_text.size();
    vhdl_bytes += result.vhdl_text.size();
  }
};

}  // namespace

CompileResult compile_with_session(const std::vector<NamedSource>& sources,
                                   const CompileOptions& options,
                                   CompileSession* session) {
  CompileResult result;
  elab::SourceHashes hashes;
  CompilePublisher publisher{result};
  obs::Span compile_span("compile");
  compile_span.arg("top", options.top);

  // Per-request guard rails: the wall-clock budget and the external cancel
  // poll are checked between phases (a phase is never interrupted
  // mid-flight). An exceeded budget classifies as kAborted via the
  // "watchdog" phase tag — the same taxonomy the sim watchdog uses.
  const auto start = std::chrono::steady_clock::now();
  auto aborted = [&]() -> bool {
    if (options.cancelled && options.cancelled()) {
      result.diags->error("watchdog", "compile cancelled");
      return true;
    }
    if (options.budget_ms > 0.0) {
      const double elapsed =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed > options.budget_ms) {
        result.diags->error(
            "watchdog", "compile budget of " +
                            std::to_string(options.budget_ms) +
                            " ms exceeded");
        return true;
      }
    }
    return false;
  };

  auto program = std::make_shared<elab::Program>();
  {
    PhaseTimer t(result.phase_ms, "parse");
    // Registers + hashes a source, then parses it — or, with a session,
    // reuses a previously parsed AST when (file id, name, content hash)
    // match, so the AST's Locs resolve identically in this compile.
    auto add_and_parse = [&](const std::string& name, std::string text) {
      support::FileId id = result.sources->add(name, std::move(text));
      std::string_view stored = result.sources->text(id);
      const std::uint64_t hash = elab::source_hash(stored);
      if (hashes.size() <= id.value) hashes.resize(id.value + 1, 0);
      hashes[id.value] = hash;
      static obs::Counter& parse_hits =
          obs::MetricsRegistry::global().counter("tydi.parse.cache_hits");
      static obs::Counter& parse_misses =
          obs::MetricsRegistry::global().counter("tydi.parse.cache_misses");
      if (session != nullptr) {
        std::shared_lock lock(session->parse_mu_);
        for (const CompileSession::CachedParse& c : session->parses_) {
          if (c.file_value == id.value && c.hash == hash && c.name == name) {
            program->files.push_back(c.ast);
            ++parse_hits;
            return;
          }
        }
      }
      if (session != nullptr) ++parse_misses;
      const std::size_t diags_before = result.diags->diagnostics().size();
      auto ast = std::make_shared<const lang::SourceFile>(
          lang::parse(stored, id, *result.diags));
      program->files.push_back(ast);
      // Cache only diagnostic-free parses (cached reuse replays no diags).
      if (session != nullptr &&
          result.diags->diagnostics().size() == diags_before) {
        std::unique_lock lock(session->parse_mu_);
        // Re-scan under the exclusive lock: a concurrent compile of the
        // same sources may have published this parse while we parsed.
        for (const CompileSession::CachedParse& c : session->parses_) {
          if (c.file_value == id.value && c.hash == hash && c.name == name) {
            return;
          }
        }
        session->parses_.push_back(CompileSession::CachedParse{
            name, hash, id.value, std::move(ast)});
      }
    };
    if (options.include_stdlib) {
      add_and_parse(std::string(stdlib::stdlib_file_name()),
                    std::string(stdlib::stdlib_source()));
    }
    for (const NamedSource& src : sources) {
      add_and_parse(src.name, src.text);
    }
  }
  result.program = program;
  if (result.diags->has_errors()) return result;
  if (aborted()) return result;

  {
    PhaseTimer t(result.phase_ms, "elaborate");
    elab::MemoHook hook;
    if (session != nullptr) {
      hook.memo = &session->memo_;
      hook.hashes = &hashes;
    }
    elab::Elaborator elaborator(program, *result.diags, hook);
    result.design = options.top.empty() ? elaborator.run_all()
                                        : elaborator.run(options.top);
    result.template_cache = elaborator.stats();
  }
  if (result.diags->has_errors()) return result;
  if (aborted()) return result;

  if (options.sugaring) {
    PhaseTimer t(result.phase_ms, "sugar");
    result.sugar_stats =
        sugar::apply_sugaring(result.design, options.sugar, *result.diags);
  }
  if (aborted()) return result;

  // Lower once, unconditionally: every backend (DRC, IR text, VHDL) and any
  // caller-side consumer (e.g. the fletchgen manifest) reads result.ir.
  {
    PhaseTimer t(result.phase_ms, "lower");
    result.ir = ir::lower(result.design,
                          session != nullptr ? &session->type_cache_
                                             : nullptr);
  }
  if (aborted()) return result;

  if (options.run_drc) {
    PhaseTimer t(result.phase_ms, "drc");
    result.drc_report = drc::check(result.ir, options.drc, *result.diags);
    if (aborted()) return result;
  }

  if (options.emit_ir) {
    PhaseTimer t(result.phase_ms, "ir");
    result.ir_text = ir::emit(result.ir);
  }
  if (options.emit_vhdl) {
    PhaseTimer t(result.phase_ms, "vhdl");
    result.vhdl_text =
        vhdl::emit(result.ir, options.vhdl, *result.diags,
                   session != nullptr ? &session->vhdl_cache_ : nullptr);
  }
  return result;
}

CompileResult compile(const std::vector<NamedSource>& sources,
                      const CompileOptions& options) {
  return compile_with_session(sources, options, nullptr);
}

CompileResult compile_source(std::string text, const CompileOptions& options) {
  return compile({NamedSource{"input.td", std::move(text)}}, options);
}

support::Status load_batch_manifest(const std::string& path,
                                    std::vector<BatchJob>& jobs) {
  using support::Status;
  using support::StatusCode;
  std::ifstream manifest(path);
  if (!manifest) {
    return Status::error(StatusCode::kIoError, "manifest",
                         "cannot read manifest " + path);
  }
  std::string line;
  std::size_t line_no = 0;
  // One bad line poisons its own job, not the batch: the job is appended
  // with a preflight failure and compile_batch skips it while the rest of
  // the manifest loads normally.
  auto skip = [&](StatusCode code, const std::string& what) {
    BatchJob job;
    job.name = path + ":" + std::to_string(line_no);
    job.preflight = Status::error(
        code, "manifest", path + ":" + std::to_string(line_no) + ": " + what);
    jobs.push_back(std::move(job));
  };
  while (std::getline(manifest, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string source_path;
    std::string top;
    if (!(fields >> source_path)) continue;  // blank line
    if (source_path.front() == '#') continue;
    if (!(fields >> top)) {
      skip(StatusCode::kCorruptData, "expected \"source_file top_name\"");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      skip(StatusCode::kCorruptData, "trailing field '" + extra + "'");
      continue;
    }
    // The source field is a comma-separated file list (compile order is
    // list order) so multi-file programs — each file keeping its own
    // `package` header — batch as one job.
    BatchJob job;
    job.name = source_path + ":" + top;
    bool ok = true;
    std::istringstream paths(source_path);
    std::string path;
    while (std::getline(paths, path, ',')) {
      if (path.empty()) continue;
      std::ifstream source(path, std::ios::binary);
      if (!source) {
        skip(StatusCode::kIoError, "cannot read " + path);
        ok = false;
        break;
      }
      job.sources.push_back(NamedSource{
          path, std::string((std::istreambuf_iterator<char>(source)),
                            std::istreambuf_iterator<char>())});
    }
    if (!ok) continue;
    if (job.sources.empty()) {
      skip(StatusCode::kCorruptData, "no source files in '" + source_path +
                                         "'");
      continue;
    }
    job.options.top = top;
    jobs.push_back(std::move(job));
  }
  return Status::ok();
}

BatchResult compile_batch(CompileSession& session,
                          const std::vector<BatchJob>& jobs,
                          const BatchOptions& options) {
  BatchResult out;
  // Canonical pipeline order for the aggregate, whatever phases jobs skip.
  for (const char* phase : kPipelinePhases) {
    out.phase_ms.add(phase, 0.0);
  }
  out.entries.resize(jobs.size());

  // Per-job slots are filled by whichever worker claims the job off the
  // shared cursor; aggregation runs single-threaded afterwards, in job
  // order, so the result is independent of the schedule. Outputs are too:
  // session compiles are byte-identical hit or miss, so interleaving only
  // changes who pays for which cache fill.
  auto run_job = [&](std::size_t index, std::size_t worker) {
    const BatchJob& job = jobs[index];
    BatchEntry& entry = out.entries[index];
    entry.name = job.name;
    static obs::Counter& batch_jobs =
        obs::MetricsRegistry::global().counter("tydi.batch.jobs");
    static obs::Counter& batch_failures =
        obs::MetricsRegistry::global().counter("tydi.batch.failures");
    ++batch_jobs;
    obs::Span span("batch.job");
    span.arg("job", job.name)
        .arg("worker", static_cast<std::int64_t>(worker));
    struct FailureCount {
      const BatchEntry& entry;
      obs::Counter& failures;
      ~FailureCount() {
        if (!entry.success) ++failures;
      }
    } count_failure{entry, batch_failures};
    if (!job.preflight.is_ok()) {
      // The manifest loader already condemned this job; record it and move
      // on without compiling.
      entry.success = false;
      entry.status = job.preflight;
      entry.diagnostics = job.preflight.render() + "\n";
      return;
    }
    CompileResult r = session.compile(job.sources, job.options);
    entry.success = r.success();
    entry.phase_ms = r.phase_ms;
    entry.template_cache = r.template_cache;
    entry.vhdl_bytes = r.vhdl_text.size();
    entry.ir_bytes = r.ir_text.size();
    if (options.keep_texts) {
      entry.vhdl_text = std::move(r.vhdl_text);
      entry.ir_text = std::move(r.ir_text);
    }
    if (!entry.success) {
      entry.status = r.status();
      entry.diagnostics = r.report();
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(jobs.size(),
                            options.jobs > 1
                                ? static_cast<std::size_t>(options.jobs)
                                : 1);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i, 0);
  } else {
    // Work stealing in its simplest form: an atomic cursor over the job
    // list. Jobs are coarse (whole compiles), so contention on the cursor
    // is negligible and idle workers always find the next unclaimed job.
    std::atomic<std::size_t> cursor{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        for (;;) {
          const std::size_t index =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (index >= jobs.size()) return;
          run_job(index, w);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Deterministic aggregation in job order, whatever the schedule was.
  for (const BatchEntry& entry : out.entries) {
    if (!entry.success) ++out.failures;
    for (const PhaseTimings::Entry& p : entry.phase_ms.entries()) {
      out.phase_ms.add(p.phase, p.ms);
    }
    out.template_cache += entry.template_cache;
    out.bytes_emitted += entry.vhdl_bytes + entry.ir_bytes;
  }
  return out;
}

support::Status BatchResult::status() const {
  for (const BatchEntry& e : entries) {
    if (!e.success) return e.status;
  }
  return support::Status::ok();
}

std::string BatchResult::render() const {
  support::TextTable table;
  table.header({"query", "ok", "total ms", "elab ms", "vhdl ms", "hit rate",
                "memo hits", "vhdl bytes"});
  for (const BatchEntry& e : entries) {
    table.row({e.name, e.success ? "yes" : "NO",
               support::format_fixed(e.phase_ms.total_ms(), 3),
               support::format_fixed(e.phase_ms.at("elaborate"), 3),
               support::format_fixed(e.phase_ms.at("vhdl"), 3),
               support::format_fixed(e.template_cache.hit_rate(), 3),
               std::to_string(e.template_cache.session_hits()),
               std::to_string(e.vhdl_bytes)});
  }
  table.row({"(aggregate)", failures == 0 ? "yes" : "NO",
             support::format_fixed(phase_ms.total_ms(), 3),
             support::format_fixed(phase_ms.at("elaborate"), 3),
             support::format_fixed(phase_ms.at("vhdl"), 3),
             support::format_fixed(template_cache.hit_rate(), 3),
             std::to_string(template_cache.session_hits()),
             std::to_string(bytes_emitted)});
  std::string out = table.render();
  out += "phases: " + phase_ms.render() + "\n";
  for (const BatchEntry& e : entries) {
    if (!e.success) {
      out += "-- " + e.name + " failed:\n" + e.diagnostics;
    }
  }
  return out;
}

}  // namespace tydi::driver
