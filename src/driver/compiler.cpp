#include "src/driver/compiler.hpp"

#include <chrono>
#include <sstream>

#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"

namespace tydi::driver {

void PhaseTimings::add(std::string_view phase, double ms) {
  for (Entry& e : entries_) {
    if (e.phase == phase) {
      e.ms += ms;
      return;
    }
  }
  entries_.push_back(Entry{std::string(phase), ms});
}

bool PhaseTimings::contains(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return true;
  }
  return false;
}

double PhaseTimings::at(std::string_view phase) const {
  for (const Entry& e : entries_) {
    if (e.phase == phase) return e.ms;
  }
  return 0.0;
}

double PhaseTimings::total_ms() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.ms;
  return total;
}

std::string PhaseTimings::render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << " | ";
    out << entries_[i].phase << " " << entries_[i].ms << "ms";
  }
  return out.str();
}

CompileResult::CompileResult()
    : sources(std::make_unique<support::SourceManager>()),
      diags(std::make_unique<support::DiagnosticEngine>(sources.get())) {}

namespace {

class PhaseTimer {
 public:
  PhaseTimer(PhaseTimings& out, std::string phase)
      : out_(out),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    auto end = std::chrono::steady_clock::now();
    out_.add(phase_,
             std::chrono::duration<double, std::milli>(end - start_).count());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseTimings& out_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

CompileResult compile(const std::vector<NamedSource>& sources,
                      const CompileOptions& options) {
  CompileResult result;

  auto program = std::make_shared<elab::Program>();
  {
    PhaseTimer t(result.phase_ms, "parse");
    if (options.include_stdlib) {
      support::FileId id = result.sources->add(
          std::string(stdlib::stdlib_file_name()),
          std::string(stdlib::stdlib_source()));
      program->files.push_back(
          lang::parse(result.sources->text(id), id, *result.diags));
    }
    for (const NamedSource& src : sources) {
      support::FileId id = result.sources->add(src.name, src.text);
      program->files.push_back(
          lang::parse(result.sources->text(id), id, *result.diags));
    }
  }
  result.program = program;
  if (result.diags->has_errors()) return result;

  {
    PhaseTimer t(result.phase_ms, "elaborate");
    elab::Elaborator elaborator(program, *result.diags);
    result.design = options.top.empty() ? elaborator.run_all()
                                        : elaborator.run(options.top);
    result.template_cache = elaborator.stats();
  }
  if (result.diags->has_errors()) return result;

  if (options.sugaring) {
    PhaseTimer t(result.phase_ms, "sugar");
    result.sugar_stats =
        sugar::apply_sugaring(result.design, options.sugar, *result.diags);
  }

  // Lower once, unconditionally: every backend (DRC, IR text, VHDL) and any
  // caller-side consumer (e.g. the fletchgen manifest) reads result.ir.
  {
    PhaseTimer t(result.phase_ms, "lower");
    result.ir = ir::lower(result.design);
  }

  if (options.run_drc) {
    PhaseTimer t(result.phase_ms, "drc");
    result.drc_report = drc::check(result.ir, options.drc, *result.diags);
  }

  if (options.emit_ir) {
    PhaseTimer t(result.phase_ms, "ir");
    result.ir_text = ir::emit(result.ir);
  }
  if (options.emit_vhdl) {
    PhaseTimer t(result.phase_ms, "vhdl");
    result.vhdl_text = vhdl::emit(result.ir, options.vhdl, *result.diags);
  }
  return result;
}

CompileResult compile_source(std::string text, const CompileOptions& options) {
  return compile({NamedSource{"input.td", std::move(text)}}, options);
}

}  // namespace tydi::driver
