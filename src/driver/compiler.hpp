// Compiler driver — the full Fig. 3 pipeline behind one call:
//
//   sources -> parse -> elaborate (evaluation + code expansion) ->
//   sugaring -> lower (Tydi-IR) -> DRC -> IR text -> VHDL
//
// This facade is the primary public API: examples, tests and benches all
// compile through it. The design is lowered to ir::Module exactly once;
// DRC, the IR text emitter and the VHDL backend all consume that module.
// Phase timings are recorded in pipeline order for the compile-performance
// bench.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/drc/drc.hpp"
#include "src/elab/design.hpp"
#include "src/elab/elaborator.hpp"
#include "src/ir/ir.hpp"
#include "src/sugar/sugar.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/source.hpp"
#include "src/support/status.hpp"
#include "src/vhdl/vhdl.hpp"

namespace tydi::driver {

/// Canonical pipeline phase names in execution order. Aggregators (batch
/// reports, the compile bench) seed their PhaseTimings from this single
/// list so skipped phases cannot reorder reports.
inline constexpr const char* kPipelinePhases[] = {
    "parse", "elaborate", "sugar", "lower", "drc", "ir", "vhdl"};

struct NamedSource {
  std::string name;
  std::string text;
};

/// One content stamp of a compile input: the source name plus the
/// elab::source_hash of the exact bytes that compiled. This is the durable
/// key shape the tydid compile journal persists (src/service/warmup.hpp):
/// a restart replays a journaled compile only while every stamped source
/// still hashes the same, so warm state is re-derived, never served stale.
struct SourceStamp {
  std::string name;
  std::uint64_t hash = 0;
};

/// Stamps every source (same hash function as the session caches use for
/// invalidation, so "stamp matches" and "memo entry still valid" agree).
[[nodiscard]] std::vector<SourceStamp> source_stamps(
    const std::vector<NamedSource>& sources);

struct CompileOptions {
  /// Name of the top-level (non-template) impl to elaborate.
  std::string top;
  /// Prepend the Tydi-lang standard library.
  bool include_stdlib = true;
  /// Auto duplicator/voider insertion (Fig. 4). Disable to reproduce the
  /// "without sugaring" Table IV row.
  bool sugaring = true;
  sugar::SugarOptions sugar;
  bool run_drc = true;
  drc::DrcOptions drc;
  /// Emit Tydi-IR / VHDL text (can be disabled for pure-frontend timing).
  bool emit_ir = true;
  bool emit_vhdl = true;
  vhdl::VhdlOptions vhdl;
  /// Wall-clock budget for this compile in ms (0 = unlimited). Polled at
  /// phase boundaries — an exceeded budget stops the pipeline between
  /// phases and classifies the result as kAborted (phase "watchdog"). This
  /// is the `tydid` per-request timeout hook; it cannot interrupt a phase
  /// mid-flight (phases are short and bounded in practice).
  double budget_ms = 0.0;
  /// Optional external cancellation poll (e.g. a service watchdog's stop
  /// flag), checked at the same phase boundaries as `budget_ms`. Must be
  /// callable from the compiling thread; empty = never cancelled.
  std::function<bool()> cancelled;
};

/// Wall-clock per pipeline phase. Stored as an ordered vector of
/// {phase, ms} so reports print in pipeline order (parse, elaborate, sugar,
/// lower, drc, ir, vhdl) instead of the alphabetical order a
/// std::map<std::string, double> imposed.
class PhaseTimings {
 public:
  struct Entry {
    std::string phase;
    double ms = 0.0;
  };

  /// Accumulates `ms` into `phase`, appending on first sight (insertion
  /// order is pipeline order because the driver times phases in order).
  void add(std::string_view phase, double ms);

  [[nodiscard]] bool contains(std::string_view phase) const;
  /// Milliseconds recorded for `phase`; 0.0 when absent.
  [[nodiscard]] double at(std::string_view phase) const;
  [[nodiscard]] double total_ms() const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// "parse 0.12ms | elaborate 0.48ms | ..." in pipeline order.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<Entry> entries_;
};

class CompileResult {
 public:
  CompileResult();
  CompileResult(CompileResult&&) = default;
  CompileResult& operator=(CompileResult&&) = default;

  std::unique_ptr<support::SourceManager> sources;
  std::unique_ptr<support::DiagnosticEngine> diags;
  elab::ProgramRef program;
  elab::Design design;
  sugar::SugarStats sugar_stats;
  /// The lowered Tydi-IR — the backend contract. Populated once per compile
  /// whenever elaboration (and sugaring) succeeded; DRC, the IR text
  /// emitter, the VHDL backend and caller-side consumers (fletchgen
  /// manifest) all read this module.
  ir::Module ir;
  drc::DrcReport drc_report;
  std::string ir_text;
  std::string vhdl_text;
  /// Wall-clock per phase in pipeline order: parse, elaborate, sugar,
  /// lower, drc, ir, vhdl (phases that did not run are absent).
  PhaseTimings phase_ms;
  /// Template-instantiation cache counters of the elaborator.
  elab::InstantiationStats template_cache;

  [[nodiscard]] bool success() const { return !diags->has_errors(); }
  /// Rendered diagnostics (errors, warnings, notes).
  [[nodiscard]] std::string report() const { return diags->render(); }
  /// Machine-readable classification of the first error: which pipeline
  /// phase failed (parse/elaborate/drc/emit) mapped onto the shared
  /// StatusCode taxonomy. kOk when the compile succeeded.
  [[nodiscard]] support::Status status() const;
};

/// Runs the whole pipeline. Never throws; check `result.success()`.
[[nodiscard]] CompileResult compile(const std::vector<NamedSource>& sources,
                                    const CompileOptions& options);

/// Convenience for single-source programs.
[[nodiscard]] CompileResult compile_source(std::string text,
                                           const CompileOptions& options);

class CompileSession;

/// Internal pipeline entry point shared by `compile` (no session) and
/// `CompileSession::compile`; declared here only to be befriendable.
[[nodiscard]] CompileResult compile_with_session(
    const std::vector<NamedSource>& sources, const CompileOptions& options,
    CompileSession* session);

/// A sequence of compiles sharing the process-wide caches of the compile
/// hot path:
///
///  - the template-instantiation memo (elab::TemplateMemo): stdlib and
///    user monomorphisations elaborated by one compile are replayed —
///    value-copied in original insertion order — by later compiles whose
///    defining sources are byte-identical;
///  - the parse cache: a source file whose (file id, name, content hash)
///    triple matches a previous compile reuses that compile's AST, so the
///    standard library parses once per session, not once per compile.
///
/// Compiles through a session produce byte-identical IR/VHDL to standalone
/// `driver::compile` calls (covered by the golden tests). Memo entries are
/// invalidated by content hash of their defining file *and* of every file
/// whose global types/constants their elaboration resolved (dependency
/// stamps, see src/elab/memo.hpp), so editing any involved source between
/// compiles re-elaborates instead of serving stale results. `invalidate()`
/// drops every cache wholesale.
///
/// Concurrency: any number of threads may call `compile` on one session
/// simultaneously (parallel `compile_batch` workers, `tydid` request
/// handlers). Each cache synchronizes itself — the template memo and the
/// lowering/emission caches via shared_mutex with shared-lock lookups, the
/// parse cache via the session's own lock — and every cache serves
/// immutable shared payloads, so compiles never block each other outside
/// the brief publish sections. Outputs are byte-identical whatever the
/// interleaving: a cache hit and a fresh elaboration of the same sources
/// produce the same bytes (golden-tested), so races only affect *which*
/// thread fills a cache slot, never what a compile emits. `invalidate()`
/// may race in-flight compiles safely: they keep the shared payloads they
/// already captured and simply re-elaborate on their next lookup.
class CompileSession {
 public:
  CompileSession() = default;
  CompileSession(const CompileSession&) = delete;
  CompileSession& operator=(const CompileSession&) = delete;

  /// Same contract as driver::compile, plus session cache reuse.
  [[nodiscard]] CompileResult compile(const std::vector<NamedSource>& sources,
                                      const CompileOptions& options) {
    return compile_with_session(sources, options, this);
  }

  /// Drops every cached parse, memo entry, per-type lowering product and
  /// per-port emission string. Safe to call while compiles are in flight:
  /// they keep the shared payloads they already hold and re-elaborate on
  /// their next lookup.
  void invalidate() {
    memo_.invalidate();
    {
      std::unique_lock lock(parse_mu_);
      parses_.clear();
    }
    type_cache_.clear();
    vhdl_cache_.clear();
  }

  [[nodiscard]] const elab::TemplateMemo& memo() const { return memo_; }
  [[nodiscard]] std::size_t parse_cache_size() const {
    std::shared_lock lock(parse_mu_);
    return parses_.size();
  }

 private:
  friend CompileResult compile_with_session(
      const std::vector<NamedSource>& sources, const CompileOptions& options,
      CompileSession* session);

  struct CachedParse {
    std::string name;
    std::uint64_t hash = 0;
    std::uint32_t file_value = 0;  ///< FileId the AST's Locs refer to
    std::shared_ptr<const lang::SourceFile> ast;
  };

  elab::TemplateMemo memo_;
  /// Guards `parses_` (the other caches synchronize themselves).
  mutable std::shared_mutex parse_mu_;
  std::vector<CachedParse> parses_;
  /// Per-type layouts/display reused by the "lower" phase: warm compiles
  /// receive the same TypeRefs from the memo, so lowering skips the
  /// physical-stream recomputation (see ir::TypeLoweringCache).
  ir::TypeLoweringCache type_cache_;
  /// Per-port emission strings reused by the "vhdl" phase (see
  /// vhdl::EmitSession).
  vhdl::EmitSession vhdl_cache_;
};

/// One unit of a batch compile: a named source set with its own options.
struct BatchJob {
  std::string name;  ///< e.g. "TPC-H 6"
  std::vector<NamedSource> sources;
  CompileOptions options;
  /// Pre-compile failure recorded by the manifest loader (malformed line,
  /// unreadable source). compile_batch records such jobs as failed entries
  /// without attempting to compile them, so one bad manifest line cannot
  /// take down the whole batch.
  support::Status preflight = support::Status::ok();
};

/// Per-job outcome kept by compile_batch (texts are dropped unless
/// BatchOptions::keep_texts asks for them; sizes and timings remain so
/// batch reports stay cheap for large workloads).
struct BatchEntry {
  std::string name;
  bool success = false;
  PhaseTimings phase_ms;
  elab::InstantiationStats template_cache;
  std::size_t vhdl_bytes = 0;
  std::size_t ir_bytes = 0;
  std::string diagnostics;  ///< rendered only for failed jobs
  /// Emitted texts; populated only with BatchOptions::keep_texts (the
  /// determinism harnesses diff them across worker counts).
  std::string vhdl_text;
  std::string ir_text;
  /// Failure class of this job (kOk on success): the manifest loader's
  /// preflight status for skipped jobs, the compile classification
  /// otherwise.
  support::Status status;
};

/// Knobs of a batch run.
struct BatchOptions {
  /// Worker threads compiling jobs concurrently through the shared session.
  /// 1 = compile inline on the calling thread (exact legacy behaviour).
  /// Workers pull jobs from a shared atomic cursor (work stealing in the
  /// simplest form: an idle worker immediately takes the next undone job),
  /// and results land in per-job slots, so BatchResult::entries is always
  /// in job order and byte-identical for any worker count.
  int jobs = 1;
  /// Keep each entry's emitted IR/VHDL texts (memory-heavy; meant for the
  /// determinism tests and bench gates).
  bool keep_texts = false;
};

struct BatchResult {
  std::vector<BatchEntry> entries;
  /// Aggregate wall-clock per phase, pipeline order (seeded canonically so
  /// jobs that skip phases cannot reorder the report).
  PhaseTimings phase_ms;
  elab::InstantiationStats template_cache;
  std::size_t failures = 0;
  std::size_t bytes_emitted = 0;  ///< IR + VHDL bytes across all jobs

  [[nodiscard]] bool success() const { return failures == 0; }
  /// kOk when every job succeeded; otherwise the first failing entry's
  /// status (the CLI exit code for batch runs).
  [[nodiscard]] support::Status status() const;
  /// Per-query + aggregate table (phase ms, cache hit rates, bytes).
  [[nodiscard]] std::string render() const;
};

/// Compiles every job through one shared session (memo + parse cache warm
/// across jobs) and aggregates timings — the `tydic --batch` entry point.
/// With `options.jobs > 1` the jobs fan out across that many worker
/// threads, all compiling through the same session; entries, aggregates
/// and emitted bytes are identical to a serial run for any worker count.
[[nodiscard]] BatchResult compile_batch(CompileSession& session,
                                        const std::vector<BatchJob>& jobs,
                                        const BatchOptions& options);
[[nodiscard]] inline BatchResult compile_batch(
    CompileSession& session, const std::vector<BatchJob>& jobs) {
  return compile_batch(session, jobs, BatchOptions{});
}

/// Parses a batch job manifest — one `source_files top_name` pair per line
/// (blank lines and `#` comments skipped; `source_files` is a
/// comma-separated file list compiled in list order, so multi-file
/// programs with per-file `package` headers batch as one job) — and
/// appends one BatchJob per line with the referenced sources loaded and
/// default options (stdlib + sugaring on). This is how arbitrary query sets, not just the built-in
/// Table IV cases, batch through one CompileSession (`tydic
/// --batch-manifest`).
///
/// A malformed line or an unreadable source is NOT fatal: the loader
/// appends a job whose `preflight` status records the problem, and
/// compile_batch reports it as a failed entry while every well-formed job
/// still compiles. Only an unreadable manifest returns a non-ok Status
/// (kIoError) with `jobs` untouched.
[[nodiscard]] support::Status load_batch_manifest(const std::string& path,
                                                  std::vector<BatchJob>& jobs);

}  // namespace tydi::driver
