// Compiler driver — the full Fig. 3 pipeline behind one call:
//
//   sources -> parse -> elaborate (evaluation + code expansion) ->
//   sugaring -> DRC -> Tydi-IR -> VHDL
//
// This facade is the primary public API: examples, tests and benches all
// compile through it. Phase timings are recorded for the compile-performance
// bench.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/drc/drc.hpp"
#include "src/elab/design.hpp"
#include "src/sugar/sugar.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/source.hpp"
#include "src/vhdl/vhdl.hpp"

namespace tydi::driver {

struct NamedSource {
  std::string name;
  std::string text;
};

struct CompileOptions {
  /// Name of the top-level (non-template) impl to elaborate.
  std::string top;
  /// Prepend the Tydi-lang standard library.
  bool include_stdlib = true;
  /// Auto duplicator/voider insertion (Fig. 4). Disable to reproduce the
  /// "without sugaring" Table IV row.
  bool sugaring = true;
  sugar::SugarOptions sugar;
  bool run_drc = true;
  drc::DrcOptions drc;
  /// Emit Tydi-IR / VHDL text (can be disabled for pure-frontend timing).
  bool emit_ir = true;
  bool emit_vhdl = true;
  vhdl::VhdlOptions vhdl;
};

class CompileResult {
 public:
  CompileResult();
  CompileResult(CompileResult&&) = default;
  CompileResult& operator=(CompileResult&&) = default;

  std::unique_ptr<support::SourceManager> sources;
  std::unique_ptr<support::DiagnosticEngine> diags;
  elab::ProgramRef program;
  elab::Design design;
  sugar::SugarStats sugar_stats;
  drc::DrcReport drc_report;
  std::string ir_text;
  std::string vhdl_text;
  /// Wall-clock per phase, milliseconds: parse, elaborate, sugar, drc, ir,
  /// vhdl.
  std::map<std::string, double> phase_ms;

  [[nodiscard]] bool success() const { return !diags->has_errors(); }
  /// Rendered diagnostics (errors, warnings, notes).
  [[nodiscard]] std::string report() const { return diags->render(); }
};

/// Runs the whole pipeline. Never throws; check `result.success()`.
[[nodiscard]] CompileResult compile(const std::vector<NamedSource>& sources,
                                    const CompileOptions& options);

/// Convenience for single-source programs.
[[nodiscard]] CompileResult compile_source(std::string text,
                                           const CompileOptions& options);

}  // namespace tydi::driver
