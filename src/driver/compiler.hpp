// Compiler driver — the full Fig. 3 pipeline behind one call:
//
//   sources -> parse -> elaborate (evaluation + code expansion) ->
//   sugaring -> lower (Tydi-IR) -> DRC -> IR text -> VHDL
//
// This facade is the primary public API: examples, tests and benches all
// compile through it. The design is lowered to ir::Module exactly once;
// DRC, the IR text emitter and the VHDL backend all consume that module.
// Phase timings are recorded in pipeline order for the compile-performance
// bench.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/drc/drc.hpp"
#include "src/elab/design.hpp"
#include "src/elab/elaborator.hpp"
#include "src/ir/ir.hpp"
#include "src/sugar/sugar.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/source.hpp"
#include "src/vhdl/vhdl.hpp"

namespace tydi::driver {

struct NamedSource {
  std::string name;
  std::string text;
};

struct CompileOptions {
  /// Name of the top-level (non-template) impl to elaborate.
  std::string top;
  /// Prepend the Tydi-lang standard library.
  bool include_stdlib = true;
  /// Auto duplicator/voider insertion (Fig. 4). Disable to reproduce the
  /// "without sugaring" Table IV row.
  bool sugaring = true;
  sugar::SugarOptions sugar;
  bool run_drc = true;
  drc::DrcOptions drc;
  /// Emit Tydi-IR / VHDL text (can be disabled for pure-frontend timing).
  bool emit_ir = true;
  bool emit_vhdl = true;
  vhdl::VhdlOptions vhdl;
};

/// Wall-clock per pipeline phase. Stored as an ordered vector of
/// {phase, ms} so reports print in pipeline order (parse, elaborate, sugar,
/// lower, drc, ir, vhdl) instead of the alphabetical order a
/// std::map<std::string, double> imposed.
class PhaseTimings {
 public:
  struct Entry {
    std::string phase;
    double ms = 0.0;
  };

  /// Accumulates `ms` into `phase`, appending on first sight (insertion
  /// order is pipeline order because the driver times phases in order).
  void add(std::string_view phase, double ms);

  [[nodiscard]] bool contains(std::string_view phase) const;
  /// Milliseconds recorded for `phase`; 0.0 when absent.
  [[nodiscard]] double at(std::string_view phase) const;
  [[nodiscard]] double total_ms() const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// "parse 0.12ms | elaborate 0.48ms | ..." in pipeline order.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<Entry> entries_;
};

class CompileResult {
 public:
  CompileResult();
  CompileResult(CompileResult&&) = default;
  CompileResult& operator=(CompileResult&&) = default;

  std::unique_ptr<support::SourceManager> sources;
  std::unique_ptr<support::DiagnosticEngine> diags;
  elab::ProgramRef program;
  elab::Design design;
  sugar::SugarStats sugar_stats;
  /// The lowered Tydi-IR — the backend contract. Populated once per compile
  /// whenever elaboration (and sugaring) succeeded; DRC, the IR text
  /// emitter, the VHDL backend and caller-side consumers (fletchgen
  /// manifest) all read this module.
  ir::Module ir;
  drc::DrcReport drc_report;
  std::string ir_text;
  std::string vhdl_text;
  /// Wall-clock per phase in pipeline order: parse, elaborate, sugar,
  /// lower, drc, ir, vhdl (phases that did not run are absent).
  PhaseTimings phase_ms;
  /// Template-instantiation cache counters of the elaborator.
  elab::InstantiationStats template_cache;

  [[nodiscard]] bool success() const { return !diags->has_errors(); }
  /// Rendered diagnostics (errors, warnings, notes).
  [[nodiscard]] std::string report() const { return diags->render(); }
};

/// Runs the whole pipeline. Never throws; check `result.success()`.
[[nodiscard]] CompileResult compile(const std::vector<NamedSource>& sources,
                                    const CompileOptions& options);

/// Convenience for single-source programs.
[[nodiscard]] CompileResult compile_source(std::string text,
                                           const CompileOptions& options);

}  // namespace tydi::driver
