// Expression interpreter — the "math system" of Sec. IV-A.
//
// Evaluates Tydi-lang expressions to Values at elaboration time (there is no
// runtime: hardware is static). Supports the builtin math library the paper
// demonstrates (e.g. `Bit(ceil(log2(10 ** 15 - 1)))`), ranges for the
// generative `for`, and array operations.
#pragma once

#include <stdexcept>

#include "src/ast/ast.hpp"
#include "src/eval/scope.hpp"
#include "src/eval/value.hpp"
#include "src/support/source.hpp"

namespace tydi::eval {

/// Raised on evaluation failure (unknown identifier, type mismatch, division
/// by zero, ...). Carries the source location of the failing subexpression.
class EvalError : public std::runtime_error {
 public:
  EvalError(std::string message, support::Loc loc)
      : std::runtime_error(std::move(message)), loc_(loc) {}

  [[nodiscard]] support::Loc loc() const { return loc_; }

 private:
  support::Loc loc_;
};

/// Evaluates `expr` in `scope`. Throws EvalError on failure.
[[nodiscard]] Value evaluate(const lang::Expr& expr, const Scope& scope);

/// Evaluates and requires an int (floats with integral value are accepted,
/// e.g. `ceil(...)` results).
[[nodiscard]] std::int64_t evaluate_int(const lang::Expr& expr,
                                        const Scope& scope);

/// Evaluates and requires a bool.
[[nodiscard]] bool evaluate_bool(const lang::Expr& expr, const Scope& scope);

/// Evaluates and requires a number, widened to double.
[[nodiscard]] double evaluate_number(const lang::Expr& expr,
                                     const Scope& scope);

/// The names of all builtin functions (for diagnostics/tests).
[[nodiscard]] const std::vector<std::string>& builtin_function_names();

/// Interns every identifier in the expression tree up front (fills the
/// lazily-cached `Ident::sym`). The simulator calls this when compiling
/// sim-block handlers so that expression evaluation on worker threads never
/// writes to the shared AST (sibling component instances of one impl share
/// the handler nodes).
void prime_symbols(const lang::Expr& expr);

}  // namespace tydi::eval
