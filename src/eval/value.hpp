// Runtime values of the Tydi-lang variable system (Sec. IV-A).
//
// The five variable types of the paper — integer, floating-point number,
// string, boolean and clock domain — plus arrays ("array" concept used by
// the generative `for` syntax). Values are immutable once bound in a scope.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tydi::eval {

/// A clock domain value: identity is the name; the frequency only matters to
/// the simulator (mapping clock domain → physical time, Sec. V-B).
struct ClockDomain {
  std::string name;
  double frequency_mhz = 100.0;

  friend bool operator==(const ClockDomain& a, const ClockDomain& b) {
    return a.name == b.name;
  }
};

class Value;
using Array = std::vector<Value>;

class Value {
 public:
  using Storage = std::variant<std::monostate, std::int64_t, double,
                               std::string, bool, ClockDomain, Array>;

  Value() = default;
  explicit Value(std::int64_t v) : storage_(v) {}
  explicit Value(double v) : storage_(v) {}
  explicit Value(std::string v) : storage_(std::move(v)) {}
  explicit Value(bool v) : storage_(v) {}
  explicit Value(ClockDomain v) : storage_(std::move(v)) {}
  explicit Value(Array v) : storage_(std::move(v)) {}

  [[nodiscard]] bool is_none() const {
    return std::holds_alternative<std::monostate>(storage_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(storage_);
  }
  [[nodiscard]] bool is_float() const {
    return std::holds_alternative<double>(storage_);
  }
  [[nodiscard]] bool is_numeric() const { return is_int() || is_float(); }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(storage_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(storage_);
  }
  [[nodiscard]] bool is_clock() const {
    return std::holds_alternative<ClockDomain>(storage_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(storage_);
  }

  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(storage_);
  }
  [[nodiscard]] double as_float() const { return std::get<double>(storage_); }
  /// Numeric value widened to double (int or float).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(storage_);
  }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }
  [[nodiscard]] const ClockDomain& as_clock() const {
    return std::get<ClockDomain>(storage_);
  }
  [[nodiscard]] const Array& as_array() const {
    return std::get<Array>(storage_);
  }

  /// Type name for diagnostics: "int", "float", "string", ...
  [[nodiscard]] std::string_view type_name() const;

  /// Display form for diagnostics and name mangling, e.g. `8`, `"MED BAG"`.
  [[nodiscard]] std::string to_display() const;

  /// Structural equality; int/float compare numerically.
  friend bool operator==(const Value& a, const Value& b);

 private:
  Storage storage_;
};

}  // namespace tydi::eval
