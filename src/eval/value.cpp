#include "src/eval/value.hpp"

#include <sstream>

namespace tydi::eval {

double Value::as_number() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_float();
}

std::string_view Value::type_name() const {
  return std::visit(
      [](const auto& v) -> std::string_view {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) return "none";
        else if constexpr (std::is_same_v<T, std::int64_t>) return "int";
        else if constexpr (std::is_same_v<T, double>) return "float";
        else if constexpr (std::is_same_v<T, std::string>) return "string";
        else if constexpr (std::is_same_v<T, bool>) return "bool";
        else if constexpr (std::is_same_v<T, ClockDomain>) return "clockdomain";
        else return "array";
      },
      storage_);
}

std::string Value::to_display() const {
  std::ostringstream out;
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          out << "<none>";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          out << v;
        } else if constexpr (std::is_same_v<T, double>) {
          out << v;
        } else if constexpr (std::is_same_v<T, std::string>) {
          out << '"' << v << '"';
        } else if constexpr (std::is_same_v<T, bool>) {
          out << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, ClockDomain>) {
          out << "clockdomain(" << v.name << ")";
        } else {
          out << "[";
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) out << ", ";
            out << v[i].to_display();
          }
          out << "]";
        }
      },
      storage_);
  return out.str();
}

bool operator==(const Value& a, const Value& b) {
  // Numeric cross-type comparison (1 == 1.0).
  if (a.is_numeric() && b.is_numeric()) {
    return a.as_number() == b.as_number();
  }
  return a.storage_ == b.storage_;
}

}  // namespace tydi::eval
