#include "src/eval/scope.hpp"

namespace tydi::eval {

bool Scope::define(Symbol name, Value value) {
  if (defined_here(name)) return false;
  bindings_.emplace_back(name, std::move(value));
  return true;
}

void Scope::assign(Symbol name, Value value) {
  for (auto& [sym, bound] : bindings_) {
    if (sym == name) {
      bound = std::move(value);
      return;
    }
  }
  bindings_.emplace_back(name, std::move(value));
}

const Value* Scope::lookup_ptr(Symbol name) const {
  for (const Scope* s = this; s != nullptr; s = s->parent_) {
    // Reverse scan: later bindings shadow earlier ones within a scope.
    for (auto it = s->bindings_.rbegin(); it != s->bindings_.rend(); ++it) {
      if (it->first == name) {
        if (s->observer_ != nullptr) s->observer_(name, s->observer_ctx_);
        return &it->second;
      }
    }
  }
  return nullptr;
}

bool Scope::defined_here(Symbol name) const {
  for (const auto& [sym, value] : bindings_) {
    if (sym == name) return true;
  }
  return false;
}

}  // namespace tydi::eval
