#include "src/eval/scope.hpp"

namespace tydi::eval {

bool Scope::define(const std::string& name, Value value) {
  auto [it, inserted] = bindings_.emplace(name, std::move(value));
  (void)it;
  return inserted;
}

std::optional<Value> Scope::lookup(const std::string& name) const {
  for (const Scope* s = this; s != nullptr; s = s->parent_) {
    auto it = s->bindings_.find(name);
    if (it != s->bindings_.end()) return it->second;
  }
  return std::nullopt;
}

bool Scope::defined_here(const std::string& name) const {
  return bindings_.contains(name);
}

}  // namespace tydi::eval
