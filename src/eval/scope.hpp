// Lexical scopes with immutable bindings and shadowing (Sec. IV-A: "all
// variables must be immutable. Variable shadowing is possible").
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/eval/value.hpp"

namespace tydi::eval {

class Scope {
 public:
  /// Root scope.
  Scope() = default;
  /// Child scope; `parent` must outlive the child.
  explicit Scope(const Scope* parent) : parent_(parent) {}

  /// Binds `name` to `value`. Returns false if `name` is already bound in
  /// *this* scope (immutability); shadowing an outer binding is allowed.
  bool define(const std::string& name, Value value);

  /// Looks `name` up through the scope chain.
  [[nodiscard]] std::optional<Value> lookup(const std::string& name) const;

  /// True if `name` is bound in this scope (not parents).
  [[nodiscard]] bool defined_here(const std::string& name) const;

  [[nodiscard]] const Scope* parent() const { return parent_; }

 private:
  const Scope* parent_ = nullptr;
  std::map<std::string, Value> bindings_;
};

}  // namespace tydi::eval
