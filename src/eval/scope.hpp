// Lexical scopes with immutable bindings and shadowing (Sec. IV-A: "all
// variables must be immutable. Variable shadowing is possible").
//
// Bindings are keyed by interned symbols and stored in a flat vector —
// scopes are small (template arguments, loop bindings, sim-block state), so
// a linear scan over integers beats a node-based string map, and lookups on
// the simulator hot path never hash a string.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/eval/value.hpp"
#include "src/support/intern.hpp"

namespace tydi::eval {

using support::Symbol;

class Scope {
 public:
  /// Root scope.
  Scope() = default;
  /// Child scope; `parent` must outlive the child.
  explicit Scope(const Scope* parent) : parent_(parent) {}

  /// Binds `name` to `value`. Returns false if `name` is already bound in
  /// *this* scope (immutability); shadowing an outer binding is allowed.
  bool define(Symbol name, Value value);
  bool define(const std::string& name, Value value) {
    return define(support::intern(name), std::move(value));
  }

  /// Overwrites-or-inserts, bypassing language immutability. Reserved for
  /// host-side bindings (simulator state variables, payload rebinding).
  void assign(Symbol name, Value value);

  /// Looks `name` up through the scope chain.
  [[nodiscard]] const Value* lookup_ptr(Symbol name) const;
  [[nodiscard]] std::optional<Value> lookup(Symbol name) const {
    const Value* v = lookup_ptr(name);
    return v != nullptr ? std::optional<Value>(*v) : std::nullopt;
  }
  [[nodiscard]] std::optional<Value> lookup(const std::string& name) const {
    return lookup(support::intern(name));
  }

  /// True if `name` is bound in this scope (not parents).
  [[nodiscard]] bool defined_here(Symbol name) const;
  [[nodiscard]] bool defined_here(const std::string& name) const {
    return defined_here(support::intern(name));
  }

  /// Drops all bindings of this scope (parent untouched).
  void clear() { bindings_.clear(); }
  void reserve(std::size_t n) { bindings_.reserve(n); }

  [[nodiscard]] const Scope* parent() const { return parent_; }

  /// Observer invoked whenever a lookup resolves in *this* scope (typically
  /// installed on the global scope only). The elaborator uses it to record
  /// which global constants a template elaboration actually read, so the
  /// cross-compile memo can invalidate on cross-file constant edits. Plain
  /// function pointer + context: one predictable null check per hit, no
  /// std::function overhead on the simulator's evaluation path.
  void set_lookup_observer(void (*fn)(Symbol, void*), void* ctx) {
    observer_ = fn;
    observer_ctx_ = ctx;
  }

 private:
  const Scope* parent_ = nullptr;
  std::vector<std::pair<Symbol, Value>> bindings_;
  void (*observer_)(Symbol, void*) = nullptr;
  void* observer_ctx_ = nullptr;
};

}  // namespace tydi::eval
