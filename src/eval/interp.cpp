#include "src/eval/interp.hpp"

#include <cmath>
#include <limits>

// GCC's -Wmaybe-uninitialized fires a known false positive on std::variant
// copies under optimization (PR105593 family); the Value variant returned
// from eval_binary trips it. Silenced here so -Werror builds stay clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace tydi::eval {

namespace {

using lang::BinaryOp;
using lang::Expr;
using lang::UnaryOp;

[[noreturn]] void fail(const std::string& message, support::Loc loc) {
  throw EvalError(message, loc);
}

Value numeric_result(double value, bool prefer_int) {
  if (prefer_int && std::floor(value) == value &&
      std::abs(value) < 9.0e18) {
    return Value(static_cast<std::int64_t>(value));
  }
  return Value(value);
}

Value eval_binary(const lang::Binary& bin, const Scope& scope,
                  support::Loc loc) {
  // Short-circuit logicals evaluate lazily.
  if (bin.op == BinaryOp::kAnd || bin.op == BinaryOp::kOr) {
    Value lhs = evaluate(*bin.lhs, scope);
    if (!lhs.is_bool()) {
      fail(std::string("left operand of '") +
               std::string(to_string(bin.op)) + "' must be bool, got " +
               std::string(lhs.type_name()),
           bin.lhs->loc);
    }
    if (bin.op == BinaryOp::kAnd && !lhs.as_bool()) return Value(false);
    if (bin.op == BinaryOp::kOr && lhs.as_bool()) return Value(true);
    Value rhs = evaluate(*bin.rhs, scope);
    if (!rhs.is_bool()) {
      fail(std::string("right operand of '") +
               std::string(to_string(bin.op)) + "' must be bool, got " +
               std::string(rhs.type_name()),
           bin.rhs->loc);
    }
    return rhs;
  }

  Value lhs = evaluate(*bin.lhs, scope);
  Value rhs = evaluate(*bin.rhs, scope);

  switch (bin.op) {
    case BinaryOp::kRange: {
      // Half-open integer range [lhs, rhs), the paper's `0-1->channel`
      // iteration domain.
      if (!lhs.is_int() || !rhs.is_int()) {
        fail("range bounds must be integers, got " +
                 std::string(lhs.type_name()) + " and " +
                 std::string(rhs.type_name()),
             loc);
      }
      Array arr;
      for (std::int64_t i = lhs.as_int(); i < rhs.as_int(); ++i) {
        arr.push_back(Value(i));
      }
      return Value(std::move(arr));
    }
    case BinaryOp::kAdd:
      if (lhs.is_string() && rhs.is_string()) {
        return Value(lhs.as_string() + rhs.as_string());
      }
      if (lhs.is_array() && rhs.is_array()) {
        Array joined = lhs.as_array();
        for (const Value& v : rhs.as_array()) joined.push_back(v);
        return Value(std::move(joined));
      }
      if (lhs.is_numeric() && rhs.is_numeric()) {
        return numeric_result(lhs.as_number() + rhs.as_number(),
                              lhs.is_int() && rhs.is_int());
      }
      fail("'+' requires numbers, strings or arrays", loc);
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
    case BinaryOp::kPow: {
      if (!lhs.is_numeric() || !rhs.is_numeric()) {
        fail(std::string("'") + std::string(to_string(bin.op)) +
                 "' requires numeric operands, got " +
                 std::string(lhs.type_name()) + " and " +
                 std::string(rhs.type_name()),
             loc);
      }
      bool both_int = lhs.is_int() && rhs.is_int();
      switch (bin.op) {
        case BinaryOp::kSub:
          return numeric_result(lhs.as_number() - rhs.as_number(), both_int);
        case BinaryOp::kMul:
          return numeric_result(lhs.as_number() * rhs.as_number(), both_int);
        case BinaryOp::kDiv:
          if (both_int) {
            if (rhs.as_int() == 0) fail("integer division by zero", loc);
            return Value(lhs.as_int() / rhs.as_int());
          }
          if (rhs.as_number() == 0.0) fail("division by zero", loc);
          return Value(lhs.as_number() / rhs.as_number());
        case BinaryOp::kMod:
          if (!both_int) fail("'%' requires integer operands", loc);
          if (rhs.as_int() == 0) fail("modulo by zero", loc);
          return Value(lhs.as_int() % rhs.as_int());
        case BinaryOp::kPow: {
          double result = std::pow(lhs.as_number(), rhs.as_number());
          bool int_result =
              both_int && rhs.as_int() >= 0 && std::floor(result) == result &&
              std::abs(result) < 9.0e18;
          return numeric_result(result, int_result);
        }
        default:
          break;
      }
      fail("unreachable arithmetic case", loc);
    }
    case BinaryOp::kEq:
      return Value(lhs == rhs);
    case BinaryOp::kNe:
      return Value(!(lhs == rhs));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      double cmp;
      if (lhs.is_numeric() && rhs.is_numeric()) {
        cmp = lhs.as_number() - rhs.as_number();
      } else if (lhs.is_string() && rhs.is_string()) {
        cmp = static_cast<double>(lhs.as_string().compare(rhs.as_string()));
      } else {
        fail("comparison requires two numbers or two strings", loc);
      }
      switch (bin.op) {
        case BinaryOp::kLt: return Value(cmp < 0);
        case BinaryOp::kLe: return Value(cmp <= 0);
        case BinaryOp::kGt: return Value(cmp > 0);
        default: return Value(cmp >= 0);
      }
    }
    default:
      fail("unhandled binary operator", loc);
  }
}

Value eval_call(const lang::Call& call, const Scope& scope,
                support::Loc loc) {
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) args.push_back(evaluate(*a, scope));

  auto require_arity = [&](std::size_t n) {
    if (args.size() != n) {
      fail(call.callee + "() expects " + std::to_string(n) +
               " argument(s), got " + std::to_string(args.size()),
           loc);
    }
  };
  auto num = [&](std::size_t i) -> double {
    if (!args[i].is_numeric()) {
      fail(call.callee + "() argument " + std::to_string(i + 1) +
               " must be numeric, got " + std::string(args[i].type_name()),
           loc);
    }
    return args[i].as_number();
  };

  const std::string& f = call.callee;
  if (f == "ceil") {
    require_arity(1);
    return Value(static_cast<std::int64_t>(std::ceil(num(0))));
  }
  if (f == "floor") {
    require_arity(1);
    return Value(static_cast<std::int64_t>(std::floor(num(0))));
  }
  if (f == "round") {
    require_arity(1);
    return Value(static_cast<std::int64_t>(std::llround(num(0))));
  }
  if (f == "abs") {
    require_arity(1);
    if (args[0].is_int()) return Value(std::abs(args[0].as_int()));
    return Value(std::abs(num(0)));
  }
  if (f == "min" || f == "max") {
    if (args.size() < 2) fail(f + "() expects at least 2 arguments", loc);
    bool all_int = true;
    for (const Value& v : args) {
      if (!v.is_numeric()) fail(f + "() arguments must be numeric", loc);
      all_int = all_int && v.is_int();
    }
    double best = args[0].as_number();
    for (std::size_t i = 1; i < args.size(); ++i) {
      double x = args[i].as_number();
      best = (f == "min") ? std::min(best, x) : std::max(best, x);
    }
    return numeric_result(best, all_int);
  }
  if (f == "pow") {
    require_arity(2);
    double result = std::pow(num(0), num(1));
    bool int_result = args[0].is_int() && args[1].is_int() &&
                      args[1].as_int() >= 0 &&
                      std::floor(result) == result && std::abs(result) < 9.0e18;
    return numeric_result(result, int_result);
  }
  if (f == "log2") {
    require_arity(1);
    double x = num(0);
    if (x <= 0) fail("log2() requires a positive argument", loc);
    return Value(std::log2(x));
  }
  if (f == "log10") {
    require_arity(1);
    double x = num(0);
    if (x <= 0) fail("log10() requires a positive argument", loc);
    return Value(std::log10(x));
  }
  if (f == "ln") {
    require_arity(1);
    double x = num(0);
    if (x <= 0) fail("ln() requires a positive argument", loc);
    return Value(std::log(x));
  }
  if (f == "len") {
    require_arity(1);
    if (args[0].is_array()) {
      return Value(static_cast<std::int64_t>(args[0].as_array().size()));
    }
    if (args[0].is_string()) {
      return Value(static_cast<std::int64_t>(args[0].as_string().size()));
    }
    fail("len() expects an array or string", loc);
  }
  if (f == "clockdomain") {
    // clockdomain("name") or clockdomain("name", freq_mhz)
    if (args.empty() || args.size() > 2 || !args[0].is_string()) {
      fail("clockdomain() expects (string name [, numeric MHz])", loc);
    }
    ClockDomain cd;
    cd.name = args[0].as_string();
    if (args.size() == 2) cd.frequency_mhz = num(1);
    return Value(std::move(cd));
  }
  fail("unknown function '" + f + "'", loc);
}

}  // namespace

Value evaluate(const Expr& expr, const Scope& scope) {
  return std::visit(
      [&](const auto& n) -> Value {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, lang::IntLit>) {
          return Value(n.value);
        } else if constexpr (std::is_same_v<T, lang::FloatLit>) {
          return Value(n.value);
        } else if constexpr (std::is_same_v<T, lang::StringLit>) {
          return Value(n.value);
        } else if constexpr (std::is_same_v<T, lang::BoolLit>) {
          return Value(n.value);
        } else if constexpr (std::is_same_v<T, lang::Ident>) {
          support::Symbol sym = n.sym.load(std::memory_order_relaxed);
          if (sym == support::kNoSymbol) {
            sym = support::intern(n.name);
            n.sym.store(sym, std::memory_order_relaxed);
          }
          if (const Value* v = scope.lookup_ptr(sym)) return *v;
          fail("unknown identifier '" + n.name + "'", expr.loc);
        } else if constexpr (std::is_same_v<T, lang::Binary>) {
          return eval_binary(n, scope, expr.loc);
        } else if constexpr (std::is_same_v<T, lang::Unary>) {
          Value v = evaluate(*n.operand, scope);
          if (n.op == UnaryOp::kNeg) {
            if (v.is_int()) return Value(-v.as_int());
            if (v.is_float()) return Value(-v.as_float());
            fail("unary '-' requires a number", expr.loc);
          }
          if (!v.is_bool()) fail("unary '!' requires a bool", expr.loc);
          return Value(!v.as_bool());
        } else if constexpr (std::is_same_v<T, lang::Call>) {
          return eval_call(n, scope, expr.loc);
        } else if constexpr (std::is_same_v<T, lang::ArrayLit>) {
          Array arr;
          arr.reserve(n.elems.size());
          for (const auto& el : n.elems) arr.push_back(evaluate(*el, scope));
          return Value(std::move(arr));
        } else {  // IndexExpr
          Value base = evaluate(*n.base, scope);
          Value index = evaluate(*n.index, scope);
          if (!base.is_array()) fail("indexing requires an array", expr.loc);
          if (!index.is_int()) fail("array index must be an int", expr.loc);
          std::int64_t i = index.as_int();
          const Array& arr = base.as_array();
          if (i < 0 || static_cast<std::size_t>(i) >= arr.size()) {
            fail("array index " + std::to_string(i) +
                     " out of bounds (size " + std::to_string(arr.size()) +
                     ")",
                 expr.loc);
          }
          return arr[static_cast<std::size_t>(i)];
        }
      },
      expr.node);
}

std::int64_t evaluate_int(const Expr& expr, const Scope& scope) {
  Value v = evaluate(expr, scope);
  if (v.is_int()) return v.as_int();
  if (v.is_float() && std::floor(v.as_float()) == v.as_float()) {
    return static_cast<std::int64_t>(v.as_float());
  }
  throw EvalError("expected an integer, got " + std::string(v.type_name()) +
                      " (" + v.to_display() + ")",
                  expr.loc);
}

bool evaluate_bool(const Expr& expr, const Scope& scope) {
  Value v = evaluate(expr, scope);
  if (v.is_bool()) return v.as_bool();
  throw EvalError("expected a bool, got " + std::string(v.type_name()),
                  expr.loc);
}

double evaluate_number(const Expr& expr, const Scope& scope) {
  Value v = evaluate(expr, scope);
  if (v.is_numeric()) return v.as_number();
  throw EvalError("expected a number, got " + std::string(v.type_name()),
                  expr.loc);
}

const std::vector<std::string>& builtin_function_names() {
  static const std::vector<std::string> names = {
      "ceil", "floor", "round", "abs",  "min",   "max",
      "pow",  "log2",  "log10", "ln",   "len",   "clockdomain"};
  return names;
}

void prime_symbols(const Expr& expr) {
  std::visit(
      [](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, lang::Ident>) {
          if (n.sym.load(std::memory_order_relaxed) == support::kNoSymbol) {
            n.sym.store(support::intern(n.name), std::memory_order_relaxed);
          }
        } else if constexpr (std::is_same_v<T, lang::Binary>) {
          prime_symbols(*n.lhs);
          prime_symbols(*n.rhs);
        } else if constexpr (std::is_same_v<T, lang::Unary>) {
          prime_symbols(*n.operand);
        } else if constexpr (std::is_same_v<T, lang::Call>) {
          for (const auto& arg : n.args) prime_symbols(*arg);
        } else if constexpr (std::is_same_v<T, lang::ArrayLit>) {
          for (const auto& el : n.elems) prime_symbols(*el);
        } else if constexpr (std::is_same_v<T, lang::IndexExpr>) {
          prime_symbols(*n.base);
          prime_symbols(*n.index);
        }
      },
      expr.node);
}

}  // namespace tydi::eval
