#include "src/stdlib/stdlib.hpp"

#include "src/support/text.hpp"

namespace tydi::stdlib {

namespace {

// NOTE: keep each template in sync with its RTL generator (vhdl/rtl_lib.cpp)
// and simulator model (sim/behavior.cpp); both are keyed by the impl name.
constexpr std::string_view kStdlibSource = R"tydi(
package std;

// Predicate stream shared by comparators, filters and logic reductions.
// Named here so strict type equality holds across component boundaries.
type std_bool = Stream(Bit(1), d=1, c=2);

// =====================================================================
// 1. Packet duplication / removal (handshake-layer templates).
//    Duplicators copy the bit-level packet to all outputs and acknowledge
//    the input once every output acknowledged; voiders always acknowledge.
// =====================================================================

streamlet duplicator_s<T: type, n: int> {
  in_: T in,
  out_: T out [n],
}
impl duplicator_i<T: type, n: int> of duplicator_s<type T, n> @ external {
}

streamlet voider_s<T: type> {
  in_: T in,
}
impl voider_i<T: type> of voider_s<type T> @ external {
}

// =====================================================================
// 2. Common behaviours for different logical types.
// =====================================================================

// Stimulus source and always-ready sink (testbench endpoints).
streamlet source_s<T: type> {
  out: T out,
}
impl source_i<T: type> of source_s<type T> @ external {
}

streamlet sink_s<T: type> {
  in_: T in,
}
impl sink_i<T: type> of sink_s<type T> @ external {
}

// Single-stream processing unit: one input, one output. Arithmetic units
// consume a Group of operands packed in the input element.
streamlet unary_op_s<Tin: type, Tout: type> {
  in_: Tin in,
  out: Tout out,
}

impl adder_i<Tin: type, Tout: type> of unary_op_s<type Tin, type Tout> @ external {
}
impl subtractor_i<Tin: type, Tout: type> of unary_op_s<type Tin, type Tout> @ external {
}
impl multiplier_i<Tin: type, Tout: type> of unary_op_s<type Tin, type Tout> @ external {
}

// Comparator over a packed operand pair; op is one of == != < <= > >=.
impl comparator_i<Tin: type, Tout: type, op: string> of unary_op_s<type Tin, type Tout> @ external {
}

// Comparison against a compile-time constant (string or integer), e.g. the
// literals of `p_container in ('MED BAG', 'MED BOX', ...)`; op is one of
// == != < <= > >=.
impl const_compare_i<Tin: type, Tout: type, value: string, op: string> of unary_op_s<type Tin, type Tout> @ external {
}
impl const_compare_int_i<Tin: type, Tout: type, value: int, op: string> of unary_op_s<type Tin, type Tout> @ external {
}

// Two-operand units over separate synchronized streams (the `addition<in0,
// in1, out, overflow>` shape sketched in the paper's TPC-H 19 walkthrough).
streamlet binary_op_s<Tl: type, Tr: type, Tout: type> {
  lhs: Tl in,
  rhs: Tr in,
  out: Tout out,
}
impl add2_i<Tl: type, Tr: type, Tout: type> of binary_op_s<type Tl, type Tr, type Tout> @ external {
}
impl sub2_i<Tl: type, Tr: type, Tout: type> of binary_op_s<type Tl, type Tr, type Tout> @ external {
}
impl mul2_i<Tl: type, Tr: type, Tout: type> of binary_op_s<type Tl, type Tr, type Tout> @ external {
}
// Two-stream comparator producing a std_bool predicate; op in == != < <= > >=.
impl cmp2_i<Tl: type, Tr: type, Tout: type, op: string> of binary_op_s<type Tl, type Tr, type Tout> @ external {
}

// SQL `where` support: forwards the data packet when keep = 1, drops it
// when keep = 0.
streamlet filter_s<T: type, B: type> {
  in_: T in,
  keep: B in,
  out: T out,
}
impl filter_i<T: type, B: type> of filter_s<type T, type B> @ external {
}

// n-way logical reduction over predicate streams (synchronized).
streamlet logic_reduce_s<B: type, n: int> {
  in_: B in [n],
  out: B out,
}
impl logic_and_i<B: type, n: int> of logic_reduce_s<type B, n> @ external {
}
impl logic_or_i<B: type, n: int> of logic_reduce_s<type B, n> @ external {
}

// Round-robin packet distribution / collection.
streamlet demux_s<T: type, n: int> {
  in_: T in,
  out_: T out [n],
}
impl demux_i<T: type, n: int> of demux_s<type T, n> @ external {
}

streamlet mux_s<T: type, n: int> {
  in_: T in [n],
  out: T out,
}
impl mux_i<T: type, n: int> of mux_s<type T, n> @ external {
}

// SQL aggregate support: sums a dimension-1 sequence, emits on `last`.
streamlet accumulator_s<Tin: type, Tout: type> {
  in_: Tin in,
  out: Tout out,
}
impl accumulator_i<Tin: type, Tout: type> of accumulator_s<type Tin, type Tout> @ external {
}

// Configurable constant generator (Sec. IV-B's "configurable constant
// integer generator" example).
streamlet const_generator_s<T: type> {
  out: T out,
}
impl const_generator_i<T: type, value: int> of const_generator_s<type T> @ external {
}

// =====================================================================
// 3. Logical-type transformation templates.
//    The paper lists this third stdlib category — "splitting a group type
//    into its inner types or combining several logical types in a group" —
//    as future work (Sec. IV-C); this implementation provides the
//    two-field split/combine pair.
// =====================================================================

// Splits a Group-typed stream into its two field streams. Ta must be the
// first (high-order) field type and Tb the second.
streamlet group_split2_s<G: type, Ta: type, Tb: type> {
  in_: G in,
  out_a: Ta out,
  out_b: Tb out,
}
impl group_split2_i<G: type, Ta: type, Tb: type> of group_split2_s<type G, type Ta, type Tb> @ external {
}

// Combines two field streams into a Group-typed stream (Ta high, Tb low).
streamlet group_combine2_s<Ta: type, Tb: type, G: type> {
  in_a: Ta in,
  in_b: Tb in,
  out: G out,
}
impl group_combine2_i<Ta: type, Tb: type, G: type> of group_combine2_s<type Ta, type Tb, type G> @ external {
}

// =====================================================================
// 4. Composition templates (Sec. IV-B).
// =====================================================================

// Abstract processing unit: known interface, unknown implementation.
streamlet process_unit_s<Tin: type, Tout: type> {
  in_: Tin in,
  out: Tout out,
}

// Bandwidth parallelizer: demux -> `channel` processing units -> mux.
streamlet parallelize_s<Tin: type, Tout: type> {
  in_: Tin in,
  out: Tout out,
}
impl parallelize_i<Tin: type, Tout: type, pu: impl of process_unit_s, channel: int>
of parallelize_s<type Tin, type Tout> {
  instance demux_inst(demux_i<type Tin, channel>),
  instance mux_inst(mux_i<type Tout, channel>),
  instance pu_inst(pu) [channel],
  in_ => demux_inst.in_,
  mux_inst.out => out,
  for i in 0->channel {
    demux_inst.out_[i] => pu_inst[i].in_,
    pu_inst[i].out => mux_inst.in_[i],
  }
}
)tydi";

}  // namespace

std::string_view stdlib_source() { return kStdlibSource; }

std::string_view stdlib_file_name() { return "std.td"; }

std::size_t stdlib_loc() { return support::count_tydi_loc(kStdlibSource); }

}  // namespace tydi::stdlib
