// The Tydi-lang standard library (Sec. IV-C) — a pure-template library of
// elementary streaming components, embedded as Tydi-lang source.
//
// Families mirror the three categories of the paper:
//  1. packet duplication/removal: duplicator, voider (handshake layer);
//  2. common behaviours over logical types: adder/subtractor/multiplier,
//     comparator, const_compare, filter, logical and/or, mux/demux,
//     accumulator, const_generator, source/sink;
//  3. composition templates: process_unit / parallelize (Sec. IV-B).
//
// Every external template here has a matching hard-coded RTL generator
// (vhdl::rtl_lib) and a built-in simulator model (sim::behavior).
#pragma once

#include <string_view>

namespace tydi::stdlib {

/// The full standard-library source. Prepend this to user programs.
[[nodiscard]] std::string_view stdlib_source();

/// Name used when registering the source with a SourceManager.
[[nodiscard]] std::string_view stdlib_file_name();

/// Lines of code of the standard library (paper Table IV: LoCs).
[[nodiscard]] std::size_t stdlib_loc();

}  // namespace tydi::stdlib
