#include "src/ir/ir.hpp"

#include <memory>
#include <mutex>

#include "src/elab/design.hpp"
#include "src/obs/metrics.hpp"
#include "src/support/text.hpp"

namespace tydi::ir {

Index IrStreamlet::port_index(Symbol port_sym) const {
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].sym == port_sym) return static_cast<Index>(i);
  }
  return kNoIndex;
}

Index IrImpl::instance_index(Symbol instance_sym) const {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].sym == instance_sym) return static_cast<Index>(i);
  }
  return kNoIndex;
}

std::string IrEndpoint::display() const {
  std::string port = port_sym != support::kNoSymbol
                         ? support::symbol_name(port_sym)
                         : std::string();
  if (is_self()) return port;
  return support::symbol_name(instance_sym) + "." + port;
}

const IrStreamlet* Module::find_streamlet(Symbol sym) const {
  Index i = streamlet_index(sym);
  return i != kNoIndex ? &streamlets[i] : nullptr;
}

const IrImpl* Module::find_impl(Symbol sym) const {
  Index i = impl_index(sym);
  return i != kNoIndex ? &impls[i] : nullptr;
}

Index Module::streamlet_index(Symbol sym) const {
  auto it = streamlet_index_.find(sym);
  return it != streamlet_index_.end() ? it->second : kNoIndex;
}

Index Module::impl_index(Symbol sym) const {
  auto it = impl_index_.find(sym);
  return it != impl_index_.end() ? it->second : kNoIndex;
}

const IrStreamlet* Module::streamlet_of(const IrImpl& impl) const {
  return impl.streamlet != kNoIndex ? &streamlets[impl.streamlet] : nullptr;
}

const IrPort* Module::resolve(const IrImpl& impl,
                              const IrEndpoint& ep) const {
  if (!ep.ok()) return nullptr;
  if (ep.is_self()) {
    const IrStreamlet* s = streamlet_of(impl);
    return s != nullptr ? &s->ports[ep.port] : nullptr;
  }
  const IrInstance& inst = impl.instances[ep.instance];
  if (inst.impl == kNoIndex) return nullptr;
  const IrStreamlet* s = streamlet_of(impls[inst.impl]);
  return s != nullptr ? &s->ports[ep.port] : nullptr;
}

void Module::rebuild_index() {
  streamlet_index_.clear();
  impl_index_.clear();
  streamlet_index_.reserve(streamlets.size());
  impl_index_.reserve(impls.size());
  for (std::size_t i = 0; i < streamlets.size(); ++i) {
    streamlet_index_[streamlets[i].sym] = static_cast<Index>(i);
  }
  for (std::size_t i = 0; i < impls.size(); ++i) {
    impl_index_[impls[i].sym] = static_cast<Index>(i);
  }
}

namespace {

IrTemplateArg lower_template_arg(const elab::TemplateArgValue& a) {
  IrTemplateArg out;
  out.display = a.display();
  if (a.kind == elab::TemplateArgValue::Kind::kValue) {
    if (a.value.is_int()) {
      out.kind = IrTemplateArg::Kind::kInt;
      out.int_value = a.value.as_int();
    } else if (a.value.is_string()) {
      out.kind = IrTemplateArg::Kind::kString;
      out.string_value = a.value.as_string();
    }
  }
  return out;
}

/// Layouts + display of a type, computed directly (the uncached path).
TypeLoweringCache::Entry compute_type_entry(const types::TypeRef& type) {
  TypeLoweringCache::Entry entry;
  entry.display = type->to_display();
  if (type->is_stream()) {
    // Prefix "" gives each stream's suffix directly ("" for the primary
    // stream, "__field..." for nested ones); consumers prepend their own
    // prefixes, so the layout is computed once here and never again.
    for (types::PhysicalStream& ps : types::physical_streams(type, "")) {
      StreamLayout layout;
      layout.suffix = ps.name;
      layout.signals = ps.signals();
      layout.stream = std::move(ps);
      entry.layouts.push_back(std::move(layout));
    }
  }
  return entry;
}

IrPort lower_port(const elab::Port& p, TypeLoweringCache* cache) {
  IrPort out;
  out.sym = p.sym != support::kNoSymbol ? p.sym : support::intern(p.name);
  out.name = p.name;
  out.vhdl = support::sanitize_identifier(p.name);
  out.dir = p.dir;
  out.type = p.type;
  out.clock_domain = p.clock_domain;
  out.clock_sym = support::intern(p.clock_domain);
  out.loc = p.loc;
  if (p.type == nullptr) {
    out.type_display = "<unresolved>";
    return out;
  }
  if (cache != nullptr) {
    // Snapshot: keeps the entry alive even if a concurrent invalidation
    // clears the cache while this port is being lowered.
    const std::shared_ptr<const TypeLoweringCache::Entry> entry =
        cache->of(p.type);
    out.type_display = entry->display;
    out.layouts = entry->layouts;
  } else {
    TypeLoweringCache::Entry entry = compute_type_entry(p.type);
    out.type_display = std::move(entry.display);
    out.layouts = std::move(entry.layouts);
  }
  return out;
}

/// Resolves one endpoint of a connection inside `impl` to dense indices.
IrEndpoint lower_endpoint(const Module& m, const IrImpl& impl,
                          const elab::Endpoint& ep) {
  IrEndpoint out;
  out.loc = ep.loc;
  out.port_sym = support::intern(ep.port);
  if (ep.instance.empty()) {
    if (impl.streamlet == kNoIndex) {
      out.status = EndpointStatus::kUnknownStreamlet;
      return out;
    }
    out.port = m.streamlets[impl.streamlet].port_index(out.port_sym);
    if (out.port == kNoIndex) out.status = EndpointStatus::kUnknownPort;
    return out;
  }
  out.instance_sym = support::intern(ep.instance);
  out.instance = impl.instance_index(out.instance_sym);
  if (out.instance == kNoIndex) {
    out.status = EndpointStatus::kUnknownInstance;
    return out;
  }
  const IrInstance& inst = impl.instances[out.instance];
  Index child_streamlet =
      inst.impl != kNoIndex ? m.impls[inst.impl].streamlet : kNoIndex;
  if (child_streamlet == kNoIndex) {
    out.status = EndpointStatus::kUnresolvedImpl;
    return out;
  }
  out.port = m.streamlets[child_streamlet].port_index(out.port_sym);
  if (out.port == kNoIndex) out.status = EndpointStatus::kUnknownPort;
  return out;
}

}  // namespace

std::shared_ptr<const TypeLoweringCache::Entry> TypeLoweringCache::of(
    const types::TypeRef& type) {
  static obs::Counter& hits =
      obs::MetricsRegistry::global().counter("tydi.lower.type_cache_hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::global().counter("tydi.lower.type_cache_misses");
  {
    std::shared_lock lock(mu_);
    auto it = entries_.find(type.get());
    if (it != entries_.end()) {
      ++hits;
      return it->second;
    }
  }
  ++misses;
  // Compute outside the lock: the recursive physical-stream walk is the
  // expensive part, and two threads racing on the same type produce
  // identical entries (first publish wins, the loser's work is dropped).
  auto computed =
      std::make_shared<const Entry>(compute_type_entry(type));
  std::unique_lock lock(mu_);
  auto [it, inserted] = entries_.emplace(type.get(), std::move(computed));
  if (inserted) pinned_.push_back(type);
  return it->second;
}

void TypeLoweringCache::clear() {
  std::unique_lock lock(mu_);
  entries_.clear();
  pinned_.clear();
}

Module lower(const elab::Design& design, TypeLoweringCache* cache) {
  Module m;
  m.streamlets.reserve(design.streamlets().size());
  m.impls.reserve(design.impls().size());

  for (const elab::Streamlet& s : design.streamlets()) {
    IrStreamlet is;
    is.sym = s.sym != support::kNoSymbol ? s.sym : support::intern(s.name);
    is.name = s.name;
    is.display_name = s.display_name;
    is.loc = s.loc;
    is.ports.reserve(s.ports.size());
    for (const elab::Port& p : s.ports) {
      is.ports.push_back(lower_port(p, cache));
    }
    m.streamlets.push_back(std::move(is));
  }

  // First pass: impl shells with instance references, so connection
  // endpoints can resolve instances of any impl regardless of order.
  for (const elab::Impl& i : design.impls()) {
    IrImpl ii;
    ii.sym = i.sym != support::kNoSymbol ? i.sym : support::intern(i.name);
    ii.name = i.name;
    ii.display_name = i.display_name;
    ii.streamlet_sym = support::intern(i.streamlet_name);
    ii.external = i.external;
    if (!i.template_name.empty()) {
      ii.family_sym = support::intern(i.template_name);
      ii.template_family = i.template_name;
    }
    ii.template_args.reserve(i.template_args.size());
    for (const elab::TemplateArgValue& a : i.template_args) {
      ii.template_args.push_back(lower_template_arg(a));
    }
    ii.instances.reserve(i.instances.size());
    for (const elab::Instance& inst : i.instances) {
      IrInstance ir_inst;
      ir_inst.sym = support::intern(inst.name);
      ir_inst.name = inst.name;
      ir_inst.vhdl = support::sanitize_identifier(inst.name);
      ir_inst.impl_sym = support::intern(inst.impl_name);
      ir_inst.loc = inst.loc;
      ii.instances.push_back(std::move(ir_inst));
    }
    ii.has_simulation = i.sim.has_value();
    ii.loc = i.loc;
    m.impls.push_back(std::move(ii));
  }
  m.rebuild_index();

  // Second pass: resolve every cross-reference to dense indices (all of
  // them, before any endpoint is resolved — an endpoint may point at an
  // instance of an impl that appears later in the table).
  for (IrImpl& ii : m.impls) {
    ii.streamlet = m.streamlet_index(ii.streamlet_sym);
    for (IrInstance& inst : ii.instances) {
      inst.impl = m.impl_index(inst.impl_sym);
    }
  }

  // Third pass: lower connections with endpoint resolution baked in.
  std::size_t impl_idx = 0;
  for (const elab::Impl& i : design.impls()) {
    IrImpl& ii = m.impls[impl_idx++];
    ii.connections.reserve(i.connections.size());
    for (const elab::Connection& c : i.connections) {
      IrConnection ic;
      ic.src = lower_endpoint(m, ii, c.src);
      ic.dst = lower_endpoint(m, ii, c.dst);
      ic.structural = c.structural;
      ic.loc = c.loc;
      ii.connections.push_back(std::move(ic));
    }
  }

  if (!design.top().empty()) {
    m.top_name = design.top();
    m.top = m.impl_index(support::Interner::global().intern(design.top()));
  }
  return m;
}

std::string emit(const Module& module) {
  support::CodeWriter w;
  w.line("// Tydi-IR generated by tydi-cpp");
  if (!module.top_name.empty()) w.line("// top: ", module.top_name);
  w.line();
  for (const IrStreamlet& s : module.streamlets) {
    if (s.display_name != s.name) w.line("// ", s.display_name);
    w.open("streamlet ", s.name, " {");
    for (const IrPort& p : s.ports) {
      const bool has_clock = p.clock_domain != "default";
      w.line("port ", p.name, ": ", lang::to_string(p.dir), " ",
             p.type_display, has_clock ? " @ " : "",
             has_clock ? std::string_view(p.clock_domain)
                       : std::string_view(),
             ";");
    }
    w.close("}");
    w.line();
  }
  for (const IrImpl& i : module.impls) {
    const IrStreamlet* s = module.streamlet_of(i);
    const std::string& streamlet_name =
        s != nullptr ? s->name : support::symbol_name(i.streamlet_sym);
    if (i.display_name != i.name) w.line("// ", i.display_name);
    if (i.external) {
      std::string generator;
      if (!i.template_family.empty() && i.template_family != i.name) {
        generator = " @generator(" + i.template_family;
        for (const IrTemplateArg& a : i.template_args) {
          generator += ", " + a.display;
        }
        generator += ")";
      }
      w.line("external impl ", i.name, " of ", streamlet_name, generator,
             i.has_simulation ? " @simulated" : "", ";");
      w.line();
      continue;
    }
    w.open("impl ", i.name, " of ", streamlet_name, " {");
    for (const IrInstance& inst : i.instances) {
      w.line("instance ", inst.name, ": ",
             support::symbol_name(inst.impl_sym), ";");
    }
    for (const IrConnection& c : i.connections) {
      w.line("connect ", c.src.display(), " -> ", c.dst.display(),
             c.structural ? " @structural" : "", ";");
    }
    w.close("}");
    w.line();
  }
  return w.take();
}

std::string emit(const elab::Design& design) { return emit(lower(design)); }

}  // namespace tydi::ir
