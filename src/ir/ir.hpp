// Tydi-IR — the compiler's output artifact ([2] in the paper).
//
// Tydi-IR describes the *fully monomorphised* design: concrete streamlets
// (port maps bound to stream types), implementations (instances +
// connections), and external implementations. This module provides a small
// IR data model lowered from the elaborated Design, and a deterministic
// textual emitter. The VHDL backend consumes the Design directly; the IR
// text is what `tydic` writes as its primary output, mirroring the two-step
// toolchain of Fig. 1 (frontend -> Tydi-IR -> backend -> VHDL).
#pragma once

#include <string>
#include <vector>

#include "src/elab/design.hpp"

namespace tydi::ir {

struct IrPort {
  std::string name;
  std::string direction;  // "in" / "out"
  std::string type;       // logical type display form
  std::string clock_domain;
};

struct IrStreamlet {
  std::string name;
  std::string doc;  // original template spelling
  std::vector<IrPort> ports;
};

struct IrInstance {
  std::string name;
  std::string impl;
};

struct IrConnection {
  std::string src;
  std::string dst;
  bool structural = false;
};

struct IrImpl {
  std::string name;
  std::string doc;
  std::string streamlet;
  bool external = false;
  std::string template_family;           // for external stdlib generation
  std::vector<std::string> template_args;
  std::vector<IrInstance> instances;
  std::vector<IrConnection> connections;
  bool has_simulation = false;
};

struct Module {
  std::string top;
  std::vector<IrStreamlet> streamlets;
  std::vector<IrImpl> impls;
};

/// Lowers an elaborated design to the IR model.
[[nodiscard]] Module lower(const elab::Design& design);

/// Emits the IR model as deterministic Tydi-IR text.
[[nodiscard]] std::string emit(const Module& module);

/// Convenience: lower + emit.
[[nodiscard]] std::string emit(const elab::Design& design);

}  // namespace tydi::ir
