// Tydi-IR — the typed, monomorphised mid-level representation ([2] in the
// paper's Fig. 1 toolchain: frontend -> Tydi-IR -> backend -> VHDL).
//
// The IR is the *backend contract*: every pass downstream of elaboration
// (DRC, VHDL emission, fletchgen, the textual IR emitter) consumes an
// ir::Module instead of re-traversing elab::Design with string-keyed maps.
// Lowering happens exactly once per compile (driver::compile, phase
// "lower") and precomputes everything the backends would otherwise
// recompute per consumer:
//
//  - names are interned (`support::Symbol`) and cross-references are dense
//    indices into the module's flat streamlet/impl tables, mirroring the
//    simulator's integer-ID design;
//  - every port carries its resolved `types::LogicalType` handle plus the
//    physical stream layouts (signal widths, canonical signal lists) of the
//    Tydi-spec physical protocol, computed once at lowering;
//  - every connection endpoint is resolved to (instance index, port index)
//    with an explicit resolution status, so the DRC reads violations off the
//    IR instead of re-resolving strings and the VHDL backend never repeats a
//    lookup.
//
// See src/ir/README.md for the data-model invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.hpp"
#include "src/support/intern.hpp"
#include "src/support/source.hpp"
#include "src/types/logical_type.hpp"
#include "src/types/physical.hpp"

namespace tydi::elab {
class Design;
}

namespace tydi::ir {

using support::Symbol;

/// Dense index into one of Module's flat tables (streamlets, impls, or an
/// impl's instance/port lists).
using Index = std::uint32_t;
inline constexpr Index kNoIndex = 0xFFFFFFFFu;

/// One physical stream of a port, cached at lowering time. `suffix` is the
/// stream's name relative to the port ("" for the primary stream,
/// "__field..." for split-off nested streams), so any consumer builds signal
/// names as `prefix + suffix + "_" + signal.name` without recomputing the
/// layout per prefix.
struct StreamLayout {
  std::string suffix;
  types::PhysicalStream stream;                 ///< stream.name == suffix
  std::vector<types::PhysicalSignal> signals;   ///< canonical order, cached
};

struct IrPort {
  Symbol sym = support::kNoSymbol;  ///< interned port name
  std::string name;
  std::string vhdl;                 ///< sanitized identifier, cached
  lang::PortDir dir = lang::PortDir::kIn;
  types::TypeRef type;              ///< resolved logical type (may be null
                                    ///< only on elaboration errors)
  std::string type_display;         ///< cached display form for IR text
  std::string clock_domain;
  Symbol clock_sym = support::kNoSymbol;
  support::Loc loc;
  /// Physical layouts, computed once. Empty when `type` is unresolved.
  std::vector<StreamLayout> layouts;
};

struct IrStreamlet {
  Symbol sym = support::kNoSymbol;
  std::string name;
  std::string display_name;  ///< original template spelling
  support::Loc loc;
  std::vector<IrPort> ports;

  /// Index of the port with symbol `port_sym` in `ports`, or kNoIndex.
  [[nodiscard]] Index port_index(Symbol port_sym) const;
};

/// Endpoint resolution outcome, decided once at lowering. The DRC turns
/// non-kOk states into R5 (resolution) violations; the VHDL backend skips
/// them with a warning.
enum class EndpointStatus : std::uint8_t {
  kOk,
  kUnknownStreamlet,  ///< self endpoint, impl's streamlet unresolved
  kUnknownInstance,   ///< named instance does not exist in the impl
  kUnresolvedImpl,    ///< instance exists but its impl is unresolved
  kUnknownPort,       ///< streamlet resolved, port name unknown
};

struct IrEndpoint {
  /// kNoSymbol for the implementation's own ports.
  Symbol instance_sym = support::kNoSymbol;
  Symbol port_sym = support::kNoSymbol;
  /// Index into the owning impl's `instances` (kNoIndex for self ports).
  Index instance = kNoIndex;
  /// Index into the resolved streamlet's `ports` (kNoIndex when not kOk).
  Index port = kNoIndex;
  EndpointStatus status = EndpointStatus::kOk;
  support::Loc loc;

  [[nodiscard]] bool is_self() const {
    return instance_sym == support::kNoSymbol;
  }
  [[nodiscard]] bool ok() const { return status == EndpointStatus::kOk; }
  /// "instance.port" / "port" via the interner.
  [[nodiscard]] std::string display() const;
};

struct IrConnection {
  IrEndpoint src;
  IrEndpoint dst;
  bool structural = false;
  support::Loc loc;
};

struct IrInstance {
  Symbol sym = support::kNoSymbol;
  std::string name;
  std::string vhdl;              ///< sanitized identifier, cached
  Symbol impl_sym = support::kNoSymbol;
  Index impl = kNoIndex;         ///< index into Module::impls, or kNoIndex
  support::Loc loc;
};

/// Evaluated template argument, monomorphised to what the backends need
/// (the stdlib RTL generator reads int/string values; everything else only
/// displays them). Keeps drc/vhdl/fletcher free of elab/eval types.
struct IrTemplateArg {
  enum class Kind : std::uint8_t { kInt, kString, kOther };
  Kind kind = Kind::kOther;
  std::int64_t int_value = 0;    ///< kInt
  std::string string_value;      ///< kString
  std::string display;           ///< all kinds
};

struct IrImpl {
  Symbol sym = support::kNoSymbol;
  std::string name;              ///< mangled
  std::string display_name;      ///< original spelling with arguments
  Symbol streamlet_sym = support::kNoSymbol;
  Index streamlet = kNoIndex;    ///< index into Module::streamlets
  bool external = false;
  Symbol family_sym = support::kNoSymbol;  ///< template family (generators)
  std::string template_family;
  std::vector<IrTemplateArg> template_args;
  std::vector<IrInstance> instances;
  std::vector<IrConnection> connections;
  bool has_simulation = false;
  support::Loc loc;

  /// Index of the instance with symbol `instance_sym`, or kNoIndex.
  [[nodiscard]] Index instance_index(Symbol instance_sym) const;
};

/// The lowered design. `streamlets` and `impls` are flat tables in design
/// insertion order (children before parents — emission order is
/// deterministic); the symbol indexes give O(1) integer-keyed lookup.
class Module {
 public:
  std::vector<IrStreamlet> streamlets;
  std::vector<IrImpl> impls;
  /// Top-level impl (index into `impls`), kNoIndex if none was set.
  Index top = kNoIndex;
  std::string top_name;

  [[nodiscard]] const IrStreamlet* find_streamlet(Symbol sym) const;
  [[nodiscard]] const IrImpl* find_impl(Symbol sym) const;
  [[nodiscard]] Index streamlet_index(Symbol sym) const;
  [[nodiscard]] Index impl_index(Symbol sym) const;

  /// The streamlet of `impl`, or nullptr when unresolved.
  [[nodiscard]] const IrStreamlet* streamlet_of(const IrImpl& impl) const;
  /// The port an endpoint refers to, or nullptr unless `ep.ok()`.
  [[nodiscard]] const IrPort* resolve(const IrImpl& impl,
                                      const IrEndpoint& ep) const;

  /// Rebuilds the symbol indexes from the flat tables (lower() calls this;
  /// hand-built modules in tests may call it too).
  void rebuild_index();

 private:
  std::unordered_map<Symbol, Index> streamlet_index_;
  std::unordered_map<Symbol, Index> impl_index_;
};

/// True if, inside an implementation, an endpoint with port direction `dir`
/// acts as a data *source*: a self `in` port or an instance `out` port.
[[nodiscard]] inline bool endpoint_is_source(lang::PortDir dir,
                                             bool is_self_port) {
  return is_self_port ? (dir == lang::PortDir::kIn)
                      : (dir == lang::PortDir::kOut);
}

/// Session-lifetime cache of per-type lowering products: the physical
/// stream layouts and the display string of a logical type, keyed by type
/// identity (the shared_ptr'd LogicalType address, pinned so keys stay
/// valid). Types are immutable, and a driver::CompileSession's template
/// memo hands the *same* TypeRefs to every warm compile, so repeated
/// lowering of a memoized design skips the recursive physical-stream walk
/// entirely. Owned by the session (bounded lifetime; `clear()` on
/// invalidation) — the sessionless `lower(design)` never caches.
///
/// Thread-safe: concurrent compiles of a session lower in parallel. Reads
/// take a shared lock; a miss computes the entry outside any lock and
/// publishes under the exclusive lock (first writer wins, losers adopt the
/// published entry). `of` returns an immutable shared_ptr snapshot, so a
/// caller may keep reading its entry while a concurrent `clear()` (session
/// invalidation racing an in-flight compile) drops the map — the snapshot
/// keeps the payload alive until the caller releases it.
class TypeLoweringCache {
 public:
  struct Entry {
    std::vector<StreamLayout> layouts;  ///< empty for non-stream types
    std::string display;
  };

  /// The cached entry for `type` (computed on first sight). `type` must be
  /// non-null. Never null; immutable after publication.
  std::shared_ptr<const Entry> of(const types::TypeRef& type);

  void clear();
  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<const types::LogicalType*, std::shared_ptr<const Entry>>
      entries_;
  std::vector<types::TypeRef> pinned_;  ///< keeps key addresses alive
};

/// Lowers an elaborated design to the IR. Runs once per compile. `cache`
/// (optional) reuses per-type lowering products across compiles of a
/// session.
[[nodiscard]] Module lower(const elab::Design& design,
                           TypeLoweringCache* cache = nullptr);

/// Emits the IR as deterministic Tydi-IR text (just another consumer of the
/// module — the backends do not depend on this form).
[[nodiscard]] std::string emit(const Module& module);

/// Convenience: lower + emit.
[[nodiscard]] std::string emit(const elab::Design& design);

}  // namespace tydi::ir
