#include "src/service/warmup.hpp"

#include <charconv>
#include <chrono>
#include <fstream>
#include <thread>

#include "src/elab/memo.hpp"
#include "src/obs/metrics.hpp"

namespace tydi::service::warmup {

using support::Status;
using support::StatusCode;

namespace {

using Clock = std::chrono::steady_clock;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

struct JournalMetrics {
  obs::Counter& appends;
  obs::Counter& append_failures;
  obs::Counter& compactions;
  obs::Counter& recovered_records;
  obs::Counter& dropped_bytes;
  obs::Gauge& bytes;
  obs::Gauge& live_keys;

  static JournalMetrics& get() {
    static auto& reg = obs::MetricsRegistry::global();
    static JournalMetrics m{reg.counter("tydi.journal.appends"),
                            reg.counter("tydi.journal.append_failures"),
                            reg.counter("tydi.journal.compactions"),
                            reg.counter("tydi.journal.recovered_records"),
                            reg.counter("tydi.journal.dropped_bytes"),
                            reg.gauge("tydi.journal.bytes"),
                            reg.gauge("tydi.journal.live_keys")};
    return m;
  }
};

}  // namespace

std::string JournalEntry::serialize() const {
  std::string out = request;
  out += '\n';
  for (const SourceStampRecord& stamp : stamps) {
    out += std::to_string(stamp.hash);
    out += ' ';
    out += stamp.path;
    out += '\n';
  }
  return out;
}

bool JournalEntry::parse(std::string_view payload, JournalEntry& out) {
  out = JournalEntry{};
  std::size_t pos = 0;
  bool first = true;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (first) {
      if (line.empty()) return false;
      out.request = std::string(line);
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos || space + 1 >= line.size()) {
      return false;
    }
    SourceStampRecord stamp;
    const std::string_view hash_text = line.substr(0, space);
    auto [ptr, ec] = std::from_chars(
        hash_text.data(), hash_text.data() + hash_text.size(), stamp.hash);
    if (ec != std::errc{} || ptr != hash_text.data() + hash_text.size()) {
      return false;
    }
    stamp.path = std::string(line.substr(space + 1));
    out.stamps.push_back(std::move(stamp));
  }
  return !first;
}

bool entry_is_current(const JournalEntry& entry) {
  for (const SourceStampRecord& stamp : entry.stamps) {
    std::ifstream file(stamp.path, std::ios::binary);
    if (!file) return false;  // gone or unreadable: stale, not an error
    const std::string text((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>());
    if (elab::source_hash(text) != stamp.hash) return false;
  }
  return true;
}

Status CompileJournal::open(const std::string& path) {
  std::lock_guard lock(mu_);
  path_ = path;

  support::RecoveredJournal recovered;
  Status status = support::recover_journal(path, recovered);
  if (!status.is_ok()) {
    record_error(status);
    return status;
  }
  recovery_dropped_ = recovered.dropped_bytes();
  recovered_corrupt_ = recovered.dropped_tail();
  if (recovered_corrupt_) {
    // Repair on disk what recovery decided: keep the longest valid prefix,
    // drop the torn/corrupt tail, so appends land on a valid journal.
    status = support::truncate_journal(path, recovered.valid_bytes);
    if (!status.is_ok()) {
      record_error(status);
      return status;
    }
  }

  recovered_.clear();
  live_.clear();
  index_.clear();
  for (const std::string& payload : recovered.records) {
    JournalEntry entry;
    if (!JournalEntry::parse(payload, entry)) continue;  // future format?
    recovered_.push_back(entry);
    // Seed the live set: later records for the same key win (they carry
    // the newest stamps).
    auto [it, inserted] = index_.try_emplace(entry.request, live_.size());
    if (inserted) {
      live_.push_back(std::move(entry));
    } else {
      live_[it->second] = std::move(entry);
    }
  }

  status = writer_.open(path);
  if (!status.is_ok()) {
    record_error(status);
    return status;
  }
  writer_.set_fault_plan(fault_plan_);

  auto& metrics = JournalMetrics::get();
  metrics.recovered_records += recovered_.size();
  metrics.dropped_bytes += recovery_dropped_;
  metrics.bytes.set(static_cast<double>(writer_.bytes()));
  metrics.live_keys.set(static_cast<double>(live_.size()));
  return Status::ok();
}

void CompileJournal::record(const JournalEntry& entry) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(entry.request);
  if (it != index_.end() && live_[it->second].stamps == entry.stamps) {
    return;  // already durable with identical stamps
  }
  if (it != index_.end()) {
    live_[it->second] = entry;  // stamps changed (source edited): re-journal
  } else {
    index_.emplace(entry.request, live_.size());
    live_.push_back(entry);
  }
  auto& metrics = JournalMetrics::get();
  if (!writer_.is_open()) return;  // journaling disabled by an earlier error
  const Status status = writer_.append(entry.serialize());
  if (!status.is_ok()) {
    ++stats_.append_failures;
    ++metrics.append_failures;
    record_error(status);
    return;
  }
  ++stats_.appends;
  ++metrics.appends;
  metrics.bytes.set(static_cast<double>(writer_.bytes()));
  metrics.live_keys.set(static_cast<double>(live_.size()));
}

Status CompileJournal::compact() {
  std::lock_guard lock(mu_);
  support::IoFaultInjector injector(fault_plan_);
  // The writer's fd must not straddle the rename: close, snapshot, reopen
  // (on failure, reopen the untouched previous journal).
  writer_.close();
  Status status = support::write_snapshot_atomic(
      path_, live_payloads_locked(),
      fault_plan_.enabled() ? &injector : nullptr);
  const Status reopen = writer_.open(path_);
  writer_.set_fault_plan(fault_plan_);
  if (!status.is_ok()) {
    record_error(status);
    return status;
  }
  if (!reopen.is_ok()) {
    record_error(reopen);
    return reopen;
  }
  last_compaction_epoch_ms_ = now_ms();
  auto& metrics = JournalMetrics::get();
  ++stats_.compactions;
  ++metrics.compactions;
  metrics.bytes.set(static_cast<double>(writer_.bytes()));
  metrics.live_keys.set(static_cast<double>(live_.size()));
  return Status::ok();
}

std::vector<std::string> CompileJournal::live_payloads_locked() const {
  std::vector<std::string> payloads;
  payloads.reserve(live_.size());
  for (const JournalEntry& entry : live_) {
    payloads.push_back(entry.serialize());
  }
  return payloads;
}

std::vector<JournalEntry> CompileJournal::recovered_entries() const {
  std::lock_guard lock(mu_);
  return recovered_;
}

std::uint64_t CompileJournal::journal_bytes() const {
  std::lock_guard lock(mu_);
  return writer_.bytes();
}

std::size_t CompileJournal::live_keys() const {
  std::lock_guard lock(mu_);
  return live_.size();
}

double CompileJournal::last_compaction_ms() const {
  std::lock_guard lock(mu_);
  if (last_compaction_epoch_ms_ < 0.0) return -1.0;
  return now_ms() - last_compaction_epoch_ms_;
}

std::uint64_t CompileJournal::recovered_records() const {
  std::lock_guard lock(mu_);
  return recovered_.size();
}

std::uint64_t CompileJournal::recovery_dropped_bytes() const {
  std::lock_guard lock(mu_);
  return recovery_dropped_;
}

bool CompileJournal::recovered_corrupt() const {
  std::lock_guard lock(mu_);
  return recovered_corrupt_;
}

std::string CompileJournal::last_error() const {
  std::lock_guard lock(mu_);
  return last_error_;
}

void CompileJournal::set_fault_plan(const support::IoFaultPlan& plan) {
  std::lock_guard lock(mu_);
  fault_plan_ = plan;
  writer_.set_fault_plan(plan);
}

void CompileJournal::record_error(const Status& status) {
  last_error_ = status.render();
}

double replay_entries(
    const std::vector<JournalEntry>& entries, const ReplayOptions& options,
    const std::function<Status(const std::string& line)>& submit,
    ReplayStats& stats, const std::function<bool()>& stop) {
  const Clock::time_point start = Clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  std::size_t attempted = 0;
  for (const JournalEntry& entry : entries) {
    if (stop && stop()) {
      stats.budget_expired += entries.size() - attempted;
      break;
    }
    if (options.budget_ms > 0.0 && elapsed_ms() >= options.budget_ms) {
      stats.budget_expired += entries.size() - attempted;
      break;
    }
    ++attempted;
    if (options.verify_stamps && !entry_is_current(entry)) {
      ++stats.skipped_stale;
      continue;
    }
    const Status status = submit(entry.request);
    if (status.is_ok()) {
      ++stats.replayed;
    } else if (status.code() == StatusCode::kUnavailable) {
      ++stats.shed;  // live traffic won; rewarming yields
    } else {
      ++stats.failed;
    }
  }
  return elapsed_ms();
}

}  // namespace tydi::service::warmup
