// Compile service core — the `tydid` daemon minus the transport.
//
// A CompileService owns one long-lived driver::CompileSession (the
// process-wide template memo, parse cache and emission caches) and answers
// textual compile requests against it. The service is the *library*; the
// socket server in src/service/server.hpp is a thin transport that feeds it
// request lines and writes back serialized responses, so every protocol
// behaviour is unit-testable without a socket.
//
// Overload safety (src/service/README.md has the full story): compile
// verbs are not executed on the calling thread. They are *admitted* into a
// bounded two-class priority queue (interactive FILE/TPCH vs. batch; see
// queue.hpp) and executed by a fixed worker pool, so a burst of clients
// can never pile up unbounded compile threads or memory. When the queue is
// full, the process is out of RSS headroom, or the service is draining,
// `submit` sheds immediately with StatusCode::kUnavailable and a
// retry-after-ms hint instead of queueing — bounded latency for everyone
// already admitted, an explicit machine-readable signal for everyone else.
// Meta verbs (PING/STATS/METRICS/HEALTH/INVALIDATE/SHUTDOWN) execute
// inline on the calling thread so introspection stays responsive at any
// load.
//
// Wire protocol (newline-delimited, documented with examples in
// src/driver/README.md):
//
//   request  := [envelope...] VERB [args...] "\n"
//   envelope := "PRIO" SP ("interactive"|"batch")
//             | "DEADLINE_MS" SP <ms>
//             | "ATTEMPT" SP <n>
//   response := ("OK" | "ERR") SP exit_code SP payload_bytes
//               [SP retry_after_ms] "\n"
//               payload (exactly payload_bytes bytes) "\n"
//
// Envelope tokens may precede any verb, in any order:
//   PRIO        queue class (default: interactive for FILE/TPCH/SLEEP)
//   DEADLINE_MS the caller stops waiting after this many ms. Folded into
//               the per-request watchdog budget, and a request whose
//               deadline expires while still queued is shed (kUnavailable)
//               instead of executed — work is never done for a caller
//               that already gave up.
//   ATTEMPT     1-based retry attempt (telemetry only: attempts > 1 count
//               into tydi.service.retried_requests).
//
// Verbs:
//   PING                                liveness probe; payload "pong"
//   STATS                               session cache counters, one per line
//   METRICS                             process metrics registry as JSON
//   HEALTH                              liveness JSON: status, uptime_ms,
//                                       in_flight, queue_depth, workers,
//                                       draining, shed_total, requests,
//                                       failures, memo_hit_rate, last_abort
//   INVALIDATE                          drop every session cache
//   SNAPSHOT                            compact the compile journal now
//                                       (atomic rewrite of the live key
//                                       set); payload reports keys + bytes
//   SHUTDOWN                            stop admitting (drain begins); the
//                                       transport drains and exits
//   TPCH <n> <vhdl|ir> [budget_ms]      compile built-in TPC-H query n
//   FILE <path[,path...]> <top> <vhdl|ir> [budget_ms]
//                                       compile .td files (comma-separated,
//                                       compiled in list order) against
//                                       `top`
//   SLEEP <ms>                          debug/test verb: occupy one worker
//                                       for ms (polls cancellation +
//                                       deadline); payload
//                                       "slept <ms> seq <n>" where n is the
//                                       global execution sequence number —
//                                       overload and priority-order tests
//                                       are built on it
//
// exit_code is the support::Status exit code of the request (stable 0-12
// taxonomy, identical to the `tydic` process exit codes), so a client can
// dispatch on the class — parse error vs. watchdog abort vs. shed — without
// scraping the payload. Shed responses (exit 12, kUnavailable) carry the
// optional retry_after_ms header field: the daemon's own estimate of when
// capacity frees up, honored by the retrying client (support::Retry).
// Failed compiles carry the rendered diagnostics as payload.
//
// Per-request timeouts reuse the PR 6 watchdog machinery: each compile
// request gets its own sim::RunGuard + sim::Watchdog (wall-clock budget,
// min'd with the remaining DEADLINE_MS); the driver polls the guard at
// phase boundaries and classifies a fired watchdog as kAborted (phase
// "watchdog"). Each executing request also polls a per-request cancel flag
// that the transport trips when the client disconnects mid-compile, so
// work for dead peers aborts instead of running to completion.
//
// Thread-safety: submit/handle_line may be called from any number of
// transport threads concurrently — admission is a try_push on the bounded
// queue, the underlying session caches synchronize themselves, and the
// service's own counters are relaxed atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/compiler.hpp"
#include "src/service/queue.hpp"
#include "src/service/warmup.hpp"
#include "src/support/counters.hpp"
#include "src/support/status.hpp"

namespace tydi::service {

struct ServiceConfig {
  /// Wall-clock budget applied to requests that do not name one
  /// (ms; 0 = unlimited).
  double default_budget_ms = 0.0;
  /// Upper clamp on any requested budget (ms; 0 = no clamp). Lets a
  /// deployment bound worst-case request latency whatever clients ask for.
  double max_budget_ms = 0.0;
  /// Fixed worker pool size executing queued compile requests.
  /// <= 0: max(2, hardware_concurrency).
  int workers = 0;
  /// Bound on queued-but-not-yet-executing requests (both classes
  /// combined). Admission beyond it sheds with kUnavailable.
  std::size_t queue_capacity = 64;
  /// Shed new compile admissions while the process RSS high-water mark
  /// exceeds this many MiB (0 = disabled). The memory-headroom half of
  /// admission control.
  std::uint64_t rss_shed_mb = 0;
  /// How long `drain()` lets queued + in-flight work finish before
  /// cancelling in-flight requests and shedding the rest of the queue.
  double drain_deadline_ms = 5000.0;
  /// Durable compile journal path ("" = durability disabled). Recovered at
  /// construction — a torn or corrupt journal truncates to its longest
  /// valid prefix and boots cold past that, never refuses to serve.
  std::string journal_path;
  /// Replay recovered journal keys at startup (start_replay()); off =
  /// journal still records, restarts just boot cold.
  bool replay = true;
  /// Wall-clock bound on startup replay (ms; 0 = unlimited).
  double replay_budget_ms = 0.0;
  /// Compact the journal every this-many ms (0 = only on drain/SNAPSHOT).
  double snapshot_interval_ms = 0.0;
  /// Deterministic I/O fault plan for the journal (tests only).
  support::IoFaultPlan journal_faults;
};

/// One answered request: the machine-readable classification plus the
/// payload bytes (emitted text, rendered diagnostics, or meta output).
struct Response {
  support::Status status;
  std::string payload;
  /// Set by SHUTDOWN: the transport should stop accepting after replying.
  bool shutdown = false;
  /// > 0 on shed responses (kUnavailable): the daemon's backoff hint in
  /// ms, serialized as the optional fourth header field.
  double retry_after_ms = 0.0;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
  /// `OK 0 1234` / `ERR 4 87` / `ERR 12 31 50` — the response header line
  /// (no newline; the trailing field appears only when retry_after_ms > 0).
  [[nodiscard]] std::string header() const;
  /// Full wire form: header + "\n" + payload + "\n".
  [[nodiscard]] std::string serialize() const;
};

/// Parses one serialized response back into a Response (used by the client
/// side and the protocol tests). `wire` must contain at least one full
/// response; trailing bytes are ignored. Returns false on a malformed
/// header or truncated payload.
[[nodiscard]] bool parse_response(std::string_view wire, Response& out);

/// The parsed request envelope: priority/deadline/attempt prefix tokens
/// plus the remaining "VERB args..." text. Exposed for tests.
struct RequestEnvelope {
  Priority priority = Priority::kInteractive;
  /// Caller-propagated deadline in ms from admission (0 = none).
  double deadline_ms = 0.0;
  /// 1-based retry attempt (1 = first try).
  std::uint64_t attempt = 1;
  /// The request line with envelope tokens stripped.
  std::string rest;
};

/// Splits envelope tokens off the front of `line`. Returns false (and sets
/// `error`) on a malformed envelope token.
[[nodiscard]] bool parse_envelope(const std::string& line,
                                  RequestEnvelope& out, std::string& error);

/// Handle to one submitted request. Meta verbs and sheds complete before
/// `submit` returns; queued compile verbs complete when a worker finishes
/// (or the request is cancelled/shed). Copyable — all copies share state.
class PendingRequest {
 public:
  struct State;

  PendingRequest() = default;

  /// True once the response is ready (take() will not block).
  [[nodiscard]] bool done() const;
  /// Waits up to `ms` for completion; true when done.
  [[nodiscard]] bool wait_for(double ms) const;
  /// Blocks until the response is ready and returns it.
  [[nodiscard]] Response take();
  /// Trips the request's cancellation hook (the transport calls this when
  /// the client disconnects): a still-queued request completes kAborted
  /// without executing; an executing compile observes the flag at its next
  /// cancellation poll and aborts. Idempotent.
  void cancel();

 private:
  friend class CompileService;
  explicit PendingRequest(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class CompileService {
 public:
  explicit CompileService(ServiceConfig config = ServiceConfig{});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Admits one request line (no trailing newline required). Never throws
  /// and never blocks on compile work: meta verbs execute inline, compile
  /// verbs are queued for the worker pool or shed (kUnavailable) when the
  /// queue is full / RSS headroom is gone / the service is draining.
  /// Malformed requests produce an ERR response with kInvalidArgument.
  [[nodiscard]] PendingRequest submit(const std::string& line);

  /// Convenience: submit + take (blocks until the response is ready).
  [[nodiscard]] Response handle_line(const std::string& line);

  /// Stops admitting compile requests (subsequent submissions shed with
  /// kUnavailable "draining"). Already-queued and in-flight work is
  /// unaffected. Idempotent; the SHUTDOWN verb calls this.
  void begin_drain();

  /// Blocks until queued + in-flight work completes, up to the configured
  /// drain deadline; past it, cancels in-flight requests and sheds the
  /// remaining queue. Joins the worker pool — the service stops executing
  /// after drain() returns (pending submissions all hold responses).
  void drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] driver::CompileSession& session() { return session_; }

  /// The durable compile journal (nullptr when journal_path was empty or
  /// the journal could not be opened at all).
  [[nodiscard]] warmup::CompileJournal* journal() { return journal_.get(); }

  /// Starts the background startup-replay thread: recovered journal keys
  /// are resubmitted through the normal admission path as "PRIO batch"
  /// work, bounded by replay_budget_ms, stale-stamp entries skipped, and
  /// every entry sheddable by live traffic. No-op without a journal, with
  /// replay disabled, or when already started. Idempotent.
  void start_replay();
  /// True once startup replay finished (or never needed to run).
  [[nodiscard]] bool replay_done() const {
    return replay_done_.load(std::memory_order_acquire);
  }
  /// Blocks until startup replay finishes (returns immediately when it
  /// never started).
  void wait_replay();
  [[nodiscard]] const warmup::ReplayStats& replay_stats() const {
    return replay_stats_;
  }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.get();
  }
  [[nodiscard]] std::uint64_t requests_failed() const {
    return failures_.get();
  }
  /// Requests shed by admission control (queue full, RSS, draining,
  /// deadline expired in queue, connection limit).
  [[nodiscard]] std::uint64_t requests_shed() const { return shed_.get(); }
  /// Requests currently executing or queued (live introspection; HEALTH
  /// reports executing + queued separately).
  [[nodiscard]] std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] int workers() const { return worker_count_; }

  /// Builds (and counts) a shed response for a transport-level rejection —
  /// the server uses this when the connection limit is hit, so connection
  /// sheds and queue sheds share one taxonomy and one counter.
  [[nodiscard]] Response shed_response(const std::string& reason);

 private:
  [[nodiscard]] Response dispatch_meta(const std::string& verb,
                                       const std::string& rest,
                                       std::uint64_t request_id);
  void worker_main();
  void execute(const std::shared_ptr<PendingRequest::State>& state);
  [[nodiscard]] Response dispatch_queued(PendingRequest::State& state);
  [[nodiscard]] Response compile_request(
      const std::vector<driver::NamedSource>& sources,
      driver::CompileOptions options, const std::string& emit,
      double budget_ms, PendingRequest::State& state);
  [[nodiscard]] Response sleep_request(double ms,
                                       PendingRequest::State& state);
  /// Effective wall-clock budget: the request's (or default) budget,
  /// clamped by max_budget_ms, min'd with the remaining DEADLINE_MS.
  [[nodiscard]] double effective_budget_ms(
      double requested_ms, const PendingRequest::State& state) const;
  [[nodiscard]] double retry_after_hint_ms() const;
  void finish(const std::shared_ptr<PendingRequest::State>& state,
              Response response);
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] std::string health_json() const;
  void record_abort(const support::Status& status);
  void cancel_until_idle();
  void join_workers();
  void open_journal();
  /// Journals one successfully compiled key (no-op without a journal).
  void journal_success(const warmup::JournalEntry& entry);
  [[nodiscard]] Response snapshot_now();
  void replay_main();
  void snapshot_main();
  void stop_background_threads();

  ServiceConfig config_;
  int worker_count_ = 0;
  driver::CompileSession session_;
  BoundedPriorityQueue<std::shared_ptr<PendingRequest::State>> queue_;
  std::vector<std::thread> workers_;
  std::once_flag join_once_;

  /// Requests currently inside execute() — the drain deadline cancels
  /// these through their shared states.
  std::mutex active_mu_;
  std::vector<std::shared_ptr<PendingRequest::State>> active_;

  std::atomic<bool> draining_{false};
  support::RelaxedCounter requests_;
  support::RelaxedCounter failures_;
  support::RelaxedCounter shed_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> exec_seq_{0};
  /// EWMA of execution wall-clock in us (relaxed; feeds the retry-after
  /// hint). Seeded at 50ms so a cold daemon hints something sane.
  std::atomic<std::uint64_t> avg_exec_us_{50000};
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  /// Rendered status of the most recent kAborted compile ("" if none yet);
  /// HEALTH surfaces it so operators see watchdog fires without log diving.
  mutable std::mutex last_abort_mu_;
  std::string last_abort_;

  // Durability (src/service/warmup.hpp). journal_ is constructed only when
  // config_.journal_path is set and the path is at least creatable.
  std::unique_ptr<warmup::CompileJournal> journal_;
  /// Rendered kCorruptData status when boot recovery dropped bytes ("" on
  /// a clean boot) — HEALTH's journal_error field.
  std::string journal_boot_error_;
  warmup::ReplayStats replay_stats_;
  std::atomic<bool> replay_done_{true};
  std::atomic<bool> replay_started_{false};
  std::thread replay_thread_;
  std::thread snapshot_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stop_bg_ = false;
};

}  // namespace tydi::service
