// Compile service core — the `tydid` daemon minus the transport.
//
// A CompileService owns one long-lived driver::CompileSession (the
// process-wide template memo, parse cache and emission caches) and answers
// textual compile requests against it. The service is the *library*; the
// socket server in src/service/server.hpp is a thin transport that feeds it
// request lines and writes back serialized responses, so every protocol
// behaviour is unit-testable without a socket.
//
// Wire protocol (newline-delimited, documented with examples in
// src/driver/README.md):
//
//   request  := VERB [args...] "\n"            (single line, space-separated)
//   response := ("OK" | "ERR") SP exit_code SP payload_bytes "\n"
//               payload (exactly payload_bytes bytes) "\n"
//
// Verbs:
//   PING                                liveness probe; payload "pong"
//   STATS                               session cache counters, one per line
//   METRICS                             process metrics registry as JSON
//                                       (the obs::MetricsRegistry snapshot:
//                                       counters/gauges/histograms, stable
//                                       key order)
//   HEALTH                              liveness JSON: status, uptime_ms,
//                                       in_flight, requests, failures,
//                                       memo_hit_rate, last_abort
//   INVALIDATE                          drop every session cache
//   SHUTDOWN                            stop the server after this response
//   TPCH <n> <vhdl|ir> [budget_ms]      compile built-in TPC-H query n
//   FILE <path[,path...]> <top> <vhdl|ir> [budget_ms]
//                                       compile .td files (comma-separated,
//                                       compiled in list order) against
//                                       `top`
//
// exit_code is the support::Status exit code of the request (stable 0-11
// taxonomy, identical to the `tydic` process exit codes), so a client can
// dispatch on the class — parse error vs. watchdog abort — without scraping
// the payload. Failed compiles carry the rendered diagnostics as payload.
//
// Per-request timeouts reuse the PR 6 watchdog machinery: each compile
// request gets its own sim::RunGuard + sim::Watchdog (wall-clock budget);
// the driver polls the guard at phase boundaries and classifies a fired
// watchdog as kAborted (phase "watchdog").
//
// Thread-safety: handle_line may be called from any number of transport
// threads concurrently — the underlying session caches synchronize
// themselves and the service's own counters are relaxed atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/driver/compiler.hpp"
#include "src/support/counters.hpp"
#include "src/support/status.hpp"

namespace tydi::service {

struct ServiceConfig {
  /// Wall-clock budget applied to requests that do not name one
  /// (ms; 0 = unlimited).
  double default_budget_ms = 0.0;
  /// Upper clamp on any requested budget (ms; 0 = no clamp). Lets a
  /// deployment bound worst-case request latency whatever clients ask for.
  double max_budget_ms = 0.0;
};

/// One answered request: the machine-readable classification plus the
/// payload bytes (emitted text, rendered diagnostics, or meta output).
struct Response {
  support::Status status;
  std::string payload;
  /// Set by SHUTDOWN: the transport should stop accepting after replying.
  bool shutdown = false;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
  /// `OK 0 1234` / `ERR 4 87` — the response header line (no newline).
  [[nodiscard]] std::string header() const;
  /// Full wire form: header + "\n" + payload + "\n".
  [[nodiscard]] std::string serialize() const;
};

/// Parses one serialized response back into a Response (used by the client
/// side and the protocol tests). `wire` must contain at least one full
/// response; trailing bytes are ignored. Returns false on a malformed
/// header or truncated payload.
[[nodiscard]] bool parse_response(std::string_view wire, Response& out);

class CompileService {
 public:
  explicit CompileService(ServiceConfig config = ServiceConfig{});

  /// Answers one request line (no trailing newline required). Never
  /// throws; malformed requests produce an ERR response with
  /// kInvalidArgument.
  [[nodiscard]] Response handle_line(const std::string& line);

  [[nodiscard]] driver::CompileSession& session() { return session_; }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.get();
  }
  [[nodiscard]] std::uint64_t requests_failed() const {
    return failures_.get();
  }
  /// Requests currently inside handle_line (live introspection; HEALTH
  /// reports it).
  [[nodiscard]] std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Response dispatch_line(const std::string& line,
                                       std::uint64_t request_id);
  [[nodiscard]] Response compile_request(
      const std::vector<driver::NamedSource>& sources,
      driver::CompileOptions options, const std::string& emit,
      double budget_ms);
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] std::string health_json() const;
  void record_abort(const support::Status& status);

  ServiceConfig config_;
  driver::CompileSession session_;
  support::RelaxedCounter requests_;
  support::RelaxedCounter failures_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> next_request_id_{1};
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  /// Rendered status of the most recent kAborted compile ("" if none yet);
  /// HEALTH surfaces it so operators see watchdog fires without log diving.
  mutable std::mutex last_abort_mu_;
  std::string last_abort_;
};

}  // namespace tydi::service
