// Durable compile journal + startup replay — how tydid restarts warm.
//
// The daemon's value is its warm state: the template memo, parse cache and
// emission caches a long-lived CompileSession accumulates. That state is
// deliberately *not* serialized — pickling elaborated C++ object graphs
// would tie the on-disk format to compiler internals and silently serve
// stale designs across compiler or source changes. Instead the journal
// persists the *compile keys*: for every request class that successfully
// compiled (TPCH/FILE), the normalized request line plus a content stamp
// (elab::source_hash) of every source file involved. On restart the keys
// are replayed through the normal compile path — the same admission
// control, the same caches — so the rewarmed state is re-derived by the
// current compiler from the current sources, and a key whose sources
// changed on disk is simply skipped as stale.
//
// Layering: support::journal (src/support/journal.hpp) owns bytes-on-disk
// (CRC32C framing, torn-tail recovery, atomic snapshots); this file owns
// the compile-specific record format, the live-key set and its compaction,
// and the replay loop. The service (src/service/service.hpp) wires it into
// the request pipeline; replay submits through a callback so this layer
// never depends on the service types.
//
// Record payload format (one journal record per key):
//
//   line 1:  the normalized request ("TPCH 6 vhdl",
//            "FILE a.td,b.td top_i vhdl" — no envelope, no budget)
//   line 2+: "<content-hash-decimal> <source-path>" per stamped source
//            (TPCH keys carry no stamps: their sources are built in)
//
// Concurrency: one mutex guards the writer, the live-key map and
// compaction — record() is called from worker threads on the first
// successful compile of a key (a duplicate key with identical stamps is a
// no-op before the lock is even expensive), compact() from the snapshot
// timer / drain path / SNAPSHOT verb.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/counters.hpp"
#include "src/support/journal.hpp"
#include "src/support/status.hpp"

namespace tydi::service::warmup {

/// One stamped source of a journaled compile key.
struct SourceStampRecord {
  std::string path;
  std::uint64_t hash = 0;

  bool operator==(const SourceStampRecord&) const = default;
};

/// One journaled compile key: the replayable request plus the content
/// stamps that must still match for replay to make sense.
struct JournalEntry {
  /// Normalized request line ("TPCH 6 vhdl" / "FILE <paths> <top> <emit>"):
  /// no envelope tokens, no per-request budget — replay supplies its own.
  std::string request;
  std::vector<SourceStampRecord> stamps;

  [[nodiscard]] std::string serialize() const;
  /// Parses one record payload; false on a malformed payload (corrupt
  /// records that pass CRC cannot occur in practice, but a journal written
  /// by a future format version must degrade to "skip entry", not UB).
  [[nodiscard]] static bool parse(std::string_view payload, JournalEntry& out);

  bool operator==(const JournalEntry&) const = default;
};

/// True when every stamped source still has byte-identical content on disk
/// (re-read + re-hash). Entries with no stamps (TPCH) are always current;
/// a missing/unreadable file is stale, never an error.
[[nodiscard]] bool entry_is_current(const JournalEntry& entry);

/// Counters of one journal's lifetime (relaxed atomics — read by
/// HEALTH/STATS from transport threads while workers append).
struct JournalStats {
  support::RelaxedCounter appends;
  support::RelaxedCounter append_failures;
  support::RelaxedCounter compactions;
};

/// The durable key set of one daemon. All methods are thread-safe.
class CompileJournal {
 public:
  /// Recovers `path` (longest valid prefix; torn/corrupt tails truncated
  /// away), seeds the live-key set from the recovered records, and opens
  /// the writer for appends. Returns non-ok only when the path cannot be
  /// read/created at all — recovery of any byte content succeeds, possibly
  /// cold. `recovery_dropped_bytes()`/`recovered_corrupt()` report what was
  /// lost for HEALTH and logs.
  [[nodiscard]] support::Status open(const std::string& path);

  /// Records one successfully-compiled key. Appends only when the key is
  /// new or its stamps changed (so warm traffic does not grow the
  /// journal); append failures are counted and remembered but never
  /// propagate — durability is best-effort, serving is not.
  void record(const JournalEntry& entry);

  /// Atomically rewrites the journal as the deduplicated live-key set
  /// (temp + fsync + rename + parent fsync) and reopens the writer on the
  /// compacted file. On failure the previous journal remains live.
  [[nodiscard]] support::Status compact();

  /// Entries recovered at open(), in journal order — the replay worklist.
  [[nodiscard]] std::vector<JournalEntry> recovered_entries() const;

  [[nodiscard]] std::uint64_t journal_bytes() const;
  [[nodiscard]] std::size_t live_keys() const;
  /// ms since the last successful compaction; negative when none ran yet.
  [[nodiscard]] double last_compaction_ms() const;
  [[nodiscard]] std::uint64_t recovered_records() const;
  [[nodiscard]] std::uint64_t recovery_dropped_bytes() const;
  /// True when open() found bytes it had to drop (torn tail / corruption)
  /// — the kCorruptData-class event HEALTH reports as journal_error.
  [[nodiscard]] bool recovered_corrupt() const;
  /// Rendered status of the most recent journal I/O failure ("" if none).
  [[nodiscard]] std::string last_error() const;
  [[nodiscard]] const JournalStats& stats() const { return stats_; }

  /// Fault plan for the writer + snapshot path (tests only).
  void set_fault_plan(const support::IoFaultPlan& plan);

 private:
  void record_error(const support::Status& status);
  [[nodiscard]] std::vector<std::string> live_payloads_locked() const;

  mutable std::mutex mu_;
  std::string path_;
  support::JournalWriter writer_;
  support::IoFaultPlan fault_plan_;
  /// Live keys in first-seen order (replay and compaction preserve it).
  std::vector<JournalEntry> live_;
  std::unordered_map<std::string, std::size_t> index_;  ///< request -> slot
  std::vector<JournalEntry> recovered_;
  std::uint64_t recovery_dropped_ = 0;
  bool recovered_corrupt_ = false;
  double last_compaction_epoch_ms_ = -1.0;  ///< steady-clock ms, -1 = never
  std::string last_error_;
  JournalStats stats_;
};

/// Replay pacing knobs.
struct ReplayOptions {
  /// Wall-clock budget for the whole replay loop in ms (0 = unlimited).
  /// Entries not attempted before it expires are counted, not compiled —
  /// a huge journal must not hold a restart hostage.
  double budget_ms = 0.0;
  /// Skip entries whose source stamps no longer match the files on disk.
  bool verify_stamps = true;
};

/// Outcome of one replay run (all relaxed atomics: HEALTH reads them live
/// while the replay thread is still working).
struct ReplayStats {
  support::RelaxedCounter replayed;       ///< compiled ok
  support::RelaxedCounter skipped_stale;  ///< stamps no longer match
  support::RelaxedCounter shed;           ///< admission control said no
  support::RelaxedCounter failed;         ///< compiled with an error
  support::RelaxedCounter budget_expired; ///< not attempted: budget ran out
};

/// Replays `entries` through `submit` (one normalized request line per
/// call; the caller wraps it in its own envelope — the service uses
/// "PRIO batch" so live interactive traffic always wins). `submit` returns
/// the request's classification; kUnavailable counts as shed, any other
/// error as failed. `stop` (optional) is polled between entries so a drain
/// aborts replay promptly. Returns wall-clock ms spent.
[[nodiscard]] double replay_entries(
    const std::vector<JournalEntry>& entries, const ReplayOptions& options,
    const std::function<support::Status(const std::string& line)>& submit,
    ReplayStats& stats, const std::function<bool()>& stop = nullptr);

}  // namespace tydi::service::warmup
