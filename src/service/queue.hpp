// Bounded two-class priority queue — the admission-controlled buffer
// between the service's transport threads and its fixed worker pool.
//
// Two classes, strict priority: every queued *interactive* item is served
// before any *batch* item; within a class, FIFO. The capacity bounds the
// sum of both classes — `try_push` never blocks and returns false the
// moment the queue is full (or closed), which is the admission-control
// signal the service turns into a kUnavailable shed with a retry-after-ms
// hint. `pop` blocks until an item, or until the queue is closed *and*
// drained (so closing never drops accepted work; the drain-deadline path
// uses `drain_remaining` to explicitly flush what it chooses not to run).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

namespace tydi::service {

/// Request classes. Interactive (the default for FILE/TPCH — a human or a
/// build step is blocked on the answer) preempts batch (bulk manifest
/// traffic that tolerates latency) at dequeue time.
enum class Priority : std::uint8_t { kInteractive = 0, kBatch = 1 };

[[nodiscard]] constexpr std::string_view to_string(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Non-blocking admission: false when the queue is full or closed (the
  /// caller sheds). True = the item is owned by the queue until a `pop`.
  [[nodiscard]] bool try_push(T item, Priority prio) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || depth_locked() >= capacity_) return false;
      (prio == Priority::kInteractive ? interactive_ : batch_)
          .push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (interactive first) or the queue is
  /// closed and empty (returns false — the worker should exit).
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || depth_locked() > 0; });
    if (depth_locked() == 0) return false;
    std::deque<T>& q = interactive_.empty() ? batch_ : interactive_;
    out = std::move(q.front());
    q.pop_front();
    return true;
  }

  /// Rejects future pushes and wakes every blocked `pop`. Items already
  /// queued are still served (pop drains them before returning false).
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Removes and returns everything still queued (interactive first) —
  /// the drain-deadline path sheds these instead of running them.
  [[nodiscard]] std::vector<T> drain_remaining() {
    std::vector<T> out;
    std::lock_guard lock(mu_);
    for (std::deque<T>* q : {&interactive_, &batch_}) {
      for (T& item : *q) out.push_back(std::move(item));
      q->clear();
    }
    return out;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mu_);
    return depth_locked();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  [[nodiscard]] std::size_t depth_locked() const {
    return interactive_.size() + batch_.size();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> interactive_;
  std::deque<T> batch_;
  bool closed_ = false;
};

}  // namespace tydi::service
