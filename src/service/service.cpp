#include "src/service/service.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/guard.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi::service {

using support::Status;
using support::StatusCode;

std::string Response::header() const {
  std::string out = ok() ? "OK " : "ERR ";
  out += std::to_string(status.exit_code());
  out += ' ';
  out += std::to_string(payload.size());
  return out;
}

std::string Response::serialize() const {
  std::string out = header();
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

bool parse_response(std::string_view wire, Response& out) {
  const std::size_t eol = wire.find('\n');
  if (eol == std::string_view::npos) return false;
  std::istringstream header(std::string(wire.substr(0, eol)));
  std::string verdict;
  int code = 0;
  std::size_t bytes = 0;
  if (!(header >> verdict >> code >> bytes)) return false;
  if (verdict != "OK" && verdict != "ERR") return false;
  std::string_view rest = wire.substr(eol + 1);
  if (rest.size() < bytes) return false;
  out.payload = std::string(rest.substr(0, bytes));
  out.shutdown = false;
  if (verdict == "OK") {
    out.status = Status::ok();
  } else {
    // The wire carries the exit code, not the full Status; reconstruct a
    // classification that round-trips the exit code.
    StatusCode status_code = StatusCode::kInternal;
    for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
      if (support::exit_code(static_cast<StatusCode>(c)) == code) {
        status_code = static_cast<StatusCode>(c);
        break;
      }
    }
    out.status = Status::error(status_code, "service", "remote failure");
  }
  return true;
}

CompileService::CompileService(ServiceConfig config)
    : config_(config) {}

namespace {

Response error_response(StatusCode code, const std::string& message) {
  Response r;
  r.status = Status::error(code, "service", message);
  r.payload = r.status.render() + "\n";
  return r;
}

bool parse_budget(const std::string& token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value < 0.0) return false;
  out = value;
  return true;
}

}  // namespace

std::string CompileService::health_json() const {
  const elab::MemoStats& memo = session_.memo().stats();
  const std::uint64_t hits = memo.streamlet_hits + memo.impl_hits;
  const std::uint64_t lookups = hits + memo.misses + memo.stale;
  const double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::string last_abort;
  {
    std::lock_guard lock(last_abort_mu_);
    last_abort = last_abort_;
  }
  // last_abort is a rendered Status (no quotes/backslashes/control bytes in
  // practice), but escape defensively since messages embed file paths.
  std::string escaped;
  for (char c : last_abort) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    escaped += c;
  }
  std::string out = "{\"status\":\"ok\",\"uptime_ms\":";
  out += obs::json_number(uptime_ms);
  out += ",\"in_flight\":";
  out += std::to_string(in_flight_.load(std::memory_order_relaxed));
  out += ",\"requests\":";
  out += std::to_string(requests_.get());
  out += ",\"failures\":";
  out += std::to_string(failures_.get());
  out += ",\"memo_hit_rate\":";
  out += obs::json_number(hit_rate);
  out += ",\"last_abort\":\"";
  out += escaped;
  out += "\"}";
  return out;
}

void CompileService::record_abort(const support::Status& status) {
  std::lock_guard lock(last_abort_mu_);
  last_abort_ = status.render();
}

std::string CompileService::stats_text() const {
  const elab::MemoStats& memo = session_.memo().stats();
  std::ostringstream out;
  out << "requests " << requests_.get() << "\n"
      << "failures " << failures_.get() << "\n"
      << "memo_streamlets " << session_.memo().streamlet_count() << "\n"
      << "memo_impls " << session_.memo().impl_count() << "\n"
      << "memo_streamlet_hits " << memo.streamlet_hits.get() << "\n"
      << "memo_impl_hits " << memo.impl_hits.get() << "\n"
      << "memo_misses " << memo.misses.get() << "\n"
      << "memo_stale " << memo.stale.get() << "\n"
      << "parse_cache " << session_.parse_cache_size() << "\n";
  return out.str();
}

Response CompileService::compile_request(
    const std::vector<driver::NamedSource>& sources,
    driver::CompileOptions options, const std::string& emit,
    double budget_ms) {
  if (emit == "vhdl") {
    options.emit_ir = false;
    options.emit_vhdl = true;
  } else if (emit == "ir") {
    options.emit_ir = true;
    options.emit_vhdl = false;
  } else {
    return error_response(StatusCode::kInvalidArgument,
                          "unknown emit kind '" + emit +
                              "' (expected vhdl|ir)");
  }
  if (budget_ms <= 0.0) budget_ms = config_.default_budget_ms;
  if (config_.max_budget_ms > 0.0 &&
      (budget_ms <= 0.0 || budget_ms > config_.max_budget_ms)) {
    budget_ms = config_.max_budget_ms;
  }

  // Per-request watchdog: a dedicated guard + monitor thread enforcing the
  // wall-clock budget; the driver polls the guard at phase boundaries and
  // classifies a fired watchdog as kAborted (phase "watchdog").
  sim::RunGuard guard;
  sim::Watchdog::Config watchdog_config;
  watchdog_config.wall_clock_budget_ms = budget_ms;
  options.cancelled = [&guard]() { return guard.stop_requested(); };
  driver::CompileResult result = [&] {
    sim::Watchdog watchdog(guard, watchdog_config);
    return session_.compile(sources, options);
  }();

  Response r;
  r.status = result.status();
  if (result.success()) {
    r.payload = options.emit_vhdl ? std::move(result.vhdl_text)
                                  : std::move(result.ir_text);
  } else {
    r.payload = result.report();
    if (r.status.code() == StatusCode::kAborted) record_abort(r.status);
  }
  return r;
}

Response CompileService::handle_line(const std::string& line) {
  ++requests_;
  static obs::Counter& requests_metric =
      obs::MetricsRegistry::global().counter("tydi.service.requests");
  static obs::Counter& failures_metric =
      obs::MetricsRegistry::global().counter("tydi.service.failures");
  ++requests_metric;
  // In-flight count + per-request span: the request id ties a span in the
  // Chrome trace back to a daemon response. Dispatch runs in its own
  // function so the single `!ok` check below mirrors every failure path
  // into the registry (the per-site ++failures_ stays the service-local
  // source of truth).
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  struct InFlight {
    std::atomic<std::int64_t>& counter;
    ~InFlight() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } in_flight_guard{in_flight_};
  Response response = dispatch_line(line, request_id);
  if (!response.ok()) ++failures_metric;
  return response;
}

Response CompileService::dispatch_line(const std::string& line,
                                       std::uint64_t request_id) {
  std::istringstream fields(line);
  std::string verb;
  if (!(fields >> verb)) {
    ++failures_;
    return error_response(StatusCode::kInvalidArgument, "empty request");
  }
  obs::Span span("service.request");
  span.arg("verb", verb).arg("request_id", request_id);

  if (verb == "PING") {
    Response r;
    r.payload = "pong";
    return r;
  }
  if (verb == "STATS") {
    Response r;
    r.payload = stats_text();
    return r;
  }
  if (verb == "METRICS") {
    Response r;
    r.payload = obs::MetricsRegistry::global().render_json();
    return r;
  }
  if (verb == "HEALTH") {
    Response r;
    r.payload = health_json();
    return r;
  }
  if (verb == "INVALIDATE") {
    session_.invalidate();
    Response r;
    r.payload = "invalidated";
    return r;
  }
  if (verb == "SHUTDOWN") {
    Response r;
    r.payload = "bye";
    r.shutdown = true;
    return r;
  }

  if (verb == "TPCH") {
    std::string number;
    std::string emit;
    if (!(fields >> number >> emit)) {
      ++failures_;
      return error_response(StatusCode::kInvalidArgument,
                            "usage: TPCH <n> <vhdl|ir> [budget_ms]");
    }
    double budget_ms = 0.0;
    std::string budget_token;
    if (fields >> budget_token && !parse_budget(budget_token, budget_ms)) {
      ++failures_;
      return error_response(StatusCode::kInvalidArgument,
                            "bad budget_ms '" + budget_token + "'");
    }
    const tpch::QueryCase* query = tpch::find_query("TPC-H " + number);
    if (query == nullptr) {
      ++failures_;
      return error_response(StatusCode::kInvalidArgument,
                            "unknown TPC-H query '" + number + "'");
    }
    Response r = compile_request(tpch::query_sources(*query),
                                 tpch::query_options(*query), emit,
                                 budget_ms);
    if (!r.ok()) ++failures_;
    return r;
  }

  if (verb == "FILE") {
    std::string path;
    std::string top;
    std::string emit;
    if (!(fields >> path >> top >> emit)) {
      ++failures_;
      return error_response(
          StatusCode::kInvalidArgument,
          "usage: FILE <path> <top> <vhdl|ir> [budget_ms]");
    }
    double budget_ms = 0.0;
    std::string budget_token;
    if (fields >> budget_token && !parse_budget(budget_token, budget_ms)) {
      ++failures_;
      return error_response(StatusCode::kInvalidArgument,
                            "bad budget_ms '" + budget_token + "'");
    }
    // Comma-separated file list, compiled in list order (each file keeps
    // its own `package` header) — same convention as the batch manifest.
    std::vector<driver::NamedSource> sources;
    std::istringstream paths(path);
    std::string one;
    while (std::getline(paths, one, ',')) {
      if (one.empty()) continue;
      std::ifstream file(one, std::ios::binary);
      if (!file) {
        ++failures_;
        return error_response(StatusCode::kIoError, "cannot read " + one);
      }
      sources.push_back(driver::NamedSource{
          one, std::string((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>())});
    }
    if (sources.empty()) {
      ++failures_;
      return error_response(StatusCode::kInvalidArgument,
                            "no source files in '" + path + "'");
    }
    driver::CompileOptions options;
    options.top = top;
    Response r = compile_request(sources, std::move(options), emit,
                                 budget_ms);
    if (!r.ok()) ++failures_;
    return r;
  }

  ++failures_;
  return error_response(StatusCode::kInvalidArgument,
                        "unknown verb '" + verb + "'");
}

}  // namespace tydi::service
