#include "src/service/service.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/elab/memo.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/guard.hpp"
#include "src/tpch/tpch.hpp"

namespace tydi::service {

using support::Status;
using support::StatusCode;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

}  // namespace

/// Why an executing/queued request was cancelled (first cause wins — the
/// response message and the metrics tell disconnects apart from drains).
enum class CancelReason : std::uint8_t { kNone = 0, kClientGone, kDrain };

/// Shared state of one submitted request: the completion slot the
/// transport waits on, plus everything a worker needs to execute it.
struct PendingRequest::State {
  // Completion slot.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response response;

  // Cancellation: polled by the executing compile at phase boundaries and
  // by SLEEP every few ms; checked by workers before starting.
  std::atomic<std::uint8_t> cancel{
      static_cast<std::uint8_t>(CancelReason::kNone)};

  // Immutable after admission.
  std::string line;  ///< envelope-stripped "VERB args..."
  RequestEnvelope envelope;
  std::uint64_t request_id = 0;
  Clock::time_point admitted;
  /// admitted + envelope.deadline_ms; only meaningful with has_deadline.
  Clock::time_point deadline;
  bool has_deadline = false;

  [[nodiscard]] CancelReason cancel_reason() const {
    return static_cast<CancelReason>(cancel.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool cancelled() const {
    return cancel_reason() != CancelReason::kNone;
  }
  void request_cancel(CancelReason reason) {
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::kNone);
    cancel.compare_exchange_strong(expected,
                                   static_cast<std::uint8_t>(reason),
                                   std::memory_order_relaxed);
  }
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline && Clock::now() > deadline;
  }
  [[nodiscard]] double deadline_remaining_ms() const {
    return std::chrono::duration<double, std::milli>(deadline - Clock::now())
        .count();
  }
};

bool PendingRequest::done() const {
  if (!state_) return true;
  std::lock_guard lock(state_->mu);
  return state_->done;
}

bool PendingRequest::wait_for(double ms) const {
  if (!state_) return true;
  std::unique_lock lock(state_->mu);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(ms),
      [&] { return state_->done; });
}

Response PendingRequest::take() {
  if (!state_) return Response{};
  std::unique_lock lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->response;
}

void PendingRequest::cancel() {
  if (state_) state_->request_cancel(CancelReason::kClientGone);
}

std::string Response::header() const {
  std::string out = ok() ? "OK " : "ERR ";
  out += std::to_string(status.exit_code());
  out += ' ';
  out += std::to_string(payload.size());
  if (retry_after_ms > 0.0) {
    out += ' ';
    out += std::to_string(
        static_cast<std::uint64_t>(retry_after_ms + 0.5));
  }
  return out;
}

std::string Response::serialize() const {
  std::string out = header();
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

bool parse_response(std::string_view wire, Response& out) {
  const std::size_t eol = wire.find('\n');
  if (eol == std::string_view::npos) return false;
  std::istringstream header(std::string(wire.substr(0, eol)));
  std::string verdict;
  int code = 0;
  std::size_t bytes = 0;
  if (!(header >> verdict >> code >> bytes)) return false;
  if (verdict != "OK" && verdict != "ERR") return false;
  double retry_after = 0.0;
  if (!(header >> retry_after)) retry_after = 0.0;
  std::string_view rest = wire.substr(eol + 1);
  if (rest.size() < bytes) return false;
  out.payload = std::string(rest.substr(0, bytes));
  out.shutdown = false;
  out.retry_after_ms = retry_after;
  if (verdict == "OK") {
    out.status = Status::ok();
  } else {
    // The wire carries the exit code, not the full Status; reconstruct a
    // classification that round-trips the exit code.
    out.status = Status::error(support::status_code_for_exit(code),
                               "service", "remote failure");
  }
  return true;
}

bool parse_envelope(const std::string& line, RequestEnvelope& out,
                    std::string& error) {
  out = RequestEnvelope{};
  std::istringstream fields(line);
  std::string token;
  while (fields >> token) {
    if (token == "PRIO") {
      std::string value;
      if (!(fields >> value) ||
          (value != "interactive" && value != "batch")) {
        error = "usage: PRIO <interactive|batch>";
        return false;
      }
      out.priority =
          value == "batch" ? Priority::kBatch : Priority::kInteractive;
    } else if (token == "DEADLINE_MS") {
      std::string value;
      double ms = 0.0;
      if (!(fields >> value)) {
        error = "usage: DEADLINE_MS <ms>";
        return false;
      }
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), ms);
      if (ec != std::errc{} || ptr != value.data() + value.size() ||
          ms <= 0.0) {
        error = "bad DEADLINE_MS '" + value + "'";
        return false;
      }
      out.deadline_ms = ms;
    } else if (token == "ATTEMPT") {
      std::uint64_t n = 0;
      if (!(fields >> n) || n == 0) {
        error = "usage: ATTEMPT <n>";
        return false;
      }
      out.attempt = n;
    } else {
      // First non-envelope token: the verb. Everything from here on is
      // the request proper.
      std::string rest;
      std::getline(fields, rest);
      out.rest = token + rest;
      return true;
    }
  }
  out.rest.clear();  // envelope only / empty line
  return true;
}

CompileService::CompileService(ServiceConfig config)
    : config_(config),
      worker_count_(config.workers > 0
                        ? config.workers
                        : static_cast<int>(std::max(
                              2u, std::thread::hardware_concurrency()))),
      queue_(config.queue_capacity) {
  open_journal();
  workers_.reserve(static_cast<std::size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this]() { worker_main(); });
  }
  if (journal_ && config_.snapshot_interval_ms > 0.0) {
    snapshot_thread_ = std::thread([this]() { snapshot_main(); });
  }
}

CompileService::~CompileService() {
  // Don't wait for in-flight work on destruction: cancel it, shed the
  // queue, join. (The daemon path calls drain() first, which is the
  // graceful variant.)
  begin_drain();
  cancel_until_idle();
  queue_.close();
  join_workers();
  stop_background_threads();
}

void CompileService::open_journal() {
  if (config_.journal_path.empty()) return;
  auto journal = std::make_unique<warmup::CompileJournal>();
  if (config_.journal_faults.enabled()) {
    journal->set_fault_plan(config_.journal_faults);
  }
  const Status status = journal->open(config_.journal_path);
  if (!status.is_ok()) {
    // The path itself is unusable (unreadable/uncreatable). Serve without
    // durability rather than refusing to boot; HEALTH carries the reason.
    journal_boot_error_ = status.render();
    return;
  }
  if (journal->recovered_corrupt()) {
    // Torn tail or corruption truncated away: this boot is (partially)
    // cold. The classification HEALTH reports is kCorruptData.
    journal_boot_error_ =
        Status::error(StatusCode::kCorruptData, "journal",
                      "recovered journal dropped " +
                          std::to_string(journal->recovery_dropped_bytes()) +
                          " corrupt tail byte(s); continuing from " +
                          std::to_string(journal->recovered_records()) +
                          " valid record(s)")
            .render();
  }
  journal_ = std::move(journal);
}

/// Sheds everything queued and cancels everything executing, sweeping
/// until no request is queued or active. A worker may pop a queued item
/// between the flush and the cancel sweep; the next sweep catches it once
/// it registers as active, so this always converges (cancelled work aborts
/// within one poll interval).
void CompileService::cancel_until_idle() {
  static obs::Counter& cancelled_metric =
      obs::MetricsRegistry::global().counter("tydi.service.drain_cancelled");
  for (;;) {
    for (const auto& state : queue_.drain_remaining()) {
      finish(state, shed_response("draining; daemon is shutting down"));
    }
    bool active_empty;
    {
      std::lock_guard lock(active_mu_);
      active_empty = active_.empty();
      for (const auto& state : active_) {
        if (!state->cancelled()) ++cancelled_metric;
        state->request_cancel(CancelReason::kDrain);
      }
    }
    if (active_empty && queue_.depth() == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

namespace {

Response error_response(StatusCode code, const std::string& message) {
  Response r;
  r.status = Status::error(code, "service", message);
  r.payload = r.status.render() + "\n";
  return r;
}

bool parse_budget(const std::string& token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value < 0.0) return false;
  out = value;
  return true;
}

bool is_queued_verb(const std::string& verb) {
  return verb == "TPCH" || verb == "FILE" || verb == "SLEEP";
}

}  // namespace

Response CompileService::shed_response(const std::string& reason) {
  ++shed_;
  static obs::Counter& shed_metric =
      obs::MetricsRegistry::global().counter("tydi.service.shed_total");
  ++shed_metric;
  Response r = error_response(StatusCode::kUnavailable, reason);
  r.retry_after_ms = retry_after_hint_ms();
  return r;
}

double CompileService::retry_after_hint_ms() const {
  // Rough time for the backlog ahead of a retry to clear: queued requests
  // times the average execution time, divided across the pool. Clamped so
  // a cold daemon hints something usable and a deep queue cannot push
  // clients out forever.
  const double avg_ms =
      static_cast<double>(avg_exec_us_.load(std::memory_order_relaxed)) /
      1000.0;
  const double backlog =
      static_cast<double>(queue_.depth() + 1) * avg_ms /
      static_cast<double>(worker_count_);
  return std::clamp(backlog, 25.0, 2000.0);
}

void CompileService::finish(
    const std::shared_ptr<PendingRequest::State>& state, Response response) {
  if (!response.ok()) {
    ++failures_;
    static obs::Counter& failures_metric =
        obs::MetricsRegistry::global().counter("tydi.service.failures");
    ++failures_metric;
    if (response.status.code() == StatusCode::kAborted) {
      record_abort(response.status);
    }
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(state->mu);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

PendingRequest CompileService::submit(const std::string& line) {
  ++requests_;
  static auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& requests_metric =
      reg.counter("tydi.service.requests");
  static obs::Counter& retried_metric =
      reg.counter("tydi.service.retried_requests");
  static obs::Gauge& depth_gauge = reg.gauge("tydi.service.queue_depth");
  ++requests_metric;

  auto state = std::make_shared<PendingRequest::State>();
  state->request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  state->admitted = Clock::now();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  PendingRequest pending(state);

  std::string envelope_error;
  if (!parse_envelope(line, state->envelope, envelope_error)) {
    finish(state, error_response(StatusCode::kInvalidArgument,
                                 envelope_error));
    return pending;
  }
  if (state->envelope.attempt > 1) ++retried_metric;
  if (state->envelope.deadline_ms > 0.0) {
    state->has_deadline = true;
    state->deadline =
        state->admitted +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                state->envelope.deadline_ms));
  }
  state->line = state->envelope.rest;

  std::istringstream fields(state->line);
  std::string verb;
  if (!(fields >> verb)) {
    finish(state,
           error_response(StatusCode::kInvalidArgument, "empty request"));
    return pending;
  }

  if (!is_queued_verb(verb)) {
    // Meta verbs execute inline on the transport thread: cheap, and they
    // must stay responsive under overload (HEALTH during saturation is
    // exactly when an operator needs an answer).
    finish(state, dispatch_meta(verb, state->line, state->request_id));
    return pending;
  }

  // Admission control for compile verbs.
  if (draining_.load(std::memory_order_acquire)) {
    finish(state, shed_response("draining; daemon is shutting down"));
    return pending;
  }
  if (config_.rss_shed_mb > 0 &&
      sim::current_rss_mb() > config_.rss_shed_mb) {
    finish(state,
           shed_response("rss " + std::to_string(sim::current_rss_mb()) +
                         " MiB above shed threshold " +
                         std::to_string(config_.rss_shed_mb) + " MiB"));
    return pending;
  }
  if (!queue_.try_push(state, state->envelope.priority)) {
    finish(state, shed_response(
                      "queue full (depth " +
                      std::to_string(queue_.depth()) + ", capacity " +
                      std::to_string(queue_.capacity()) + ")"));
    return pending;
  }
  depth_gauge.set(static_cast<double>(queue_.depth()));
  return pending;
}

Response CompileService::handle_line(const std::string& line) {
  return submit(line).take();
}

void CompileService::begin_drain() {
  const bool was_draining = draining_.exchange(true);
  if (!was_draining) {
    obs::MetricsRegistry::global().gauge("tydi.service.draining").set(1.0);
  }
}

void CompileService::drain() {
  begin_drain();
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              config_.drain_deadline_ms > 0.0 ? config_.drain_deadline_ms
                                              : 0.0));
  auto idle = [&] {
    if (queue_.depth() != 0) return false;
    std::lock_guard lock(active_mu_);
    return active_.empty();
  };
  while (!idle() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Drain deadline blown (or already idle): shed whatever is still queued
  // and cancel anything executing, then stop the pool.
  cancel_until_idle();
  queue_.close();
  join_workers();
  stop_background_threads();
  if (journal_) {
    // Final compaction on the graceful-exit path: the next boot recovers
    // the deduplicated live key set instead of the full append history.
    (void)journal_->compact();
  }
}

void CompileService::stop_background_threads() {
  {
    std::lock_guard lock(bg_mu_);
    stop_bg_ = true;
  }
  bg_cv_.notify_all();
  if (replay_thread_.joinable()) replay_thread_.join();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
}

void CompileService::start_replay() {
  if (!journal_ || !config_.replay) return;
  if (replay_started_.exchange(true)) return;
  if (journal_->recovered_entries().empty()) return;
  replay_done_.store(false, std::memory_order_release);
  replay_thread_ = std::thread([this]() { replay_main(); });
}

void CompileService::wait_replay() {
  if (replay_thread_.joinable()) replay_thread_.join();
}

void CompileService::replay_main() {
  static auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& replayed_metric =
      reg.counter("tydi.service.replay.replayed");
  static obs::Counter& stale_metric =
      reg.counter("tydi.service.replay.skipped_stale");
  static obs::Counter& shed_metric = reg.counter("tydi.service.replay.shed");
  static obs::Counter& failed_metric =
      reg.counter("tydi.service.replay.failed");
  static obs::Counter& expired_metric =
      reg.counter("tydi.service.replay.budget_expired");
  static obs::Gauge& ms_gauge = reg.gauge("tydi.service.replay.ms");

  const std::vector<warmup::JournalEntry> entries =
      journal_->recovered_entries();
  warmup::ReplayOptions options;
  options.budget_ms = config_.replay_budget_ms;
  double elapsed_ms = 0.0;
  {
    obs::Span span("service.replay");
    span.arg("entries", entries.size());
    elapsed_ms = warmup::replay_entries(
        entries, options,
        [this](const std::string& request) {
          // Through the normal admission path, as batch work: live
          // interactive traffic preempts replay in the queue, and the
          // same shedding that protects clients protects the restart.
          return handle_line("PRIO batch " + request).status;
        },
        replay_stats_,
        [this] { return draining_.load(std::memory_order_acquire); });
  }
  replayed_metric += replay_stats_.replayed.get();
  stale_metric += replay_stats_.skipped_stale.get();
  shed_metric += replay_stats_.shed.get();
  failed_metric += replay_stats_.failed.get();
  expired_metric += replay_stats_.budget_expired.get();
  ms_gauge.set(elapsed_ms);
  replay_done_.store(true, std::memory_order_release);
}

void CompileService::snapshot_main() {
  std::unique_lock lock(bg_mu_);
  for (;;) {
    const bool stopping = bg_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            config_.snapshot_interval_ms),
        [this] { return stop_bg_; });
    if (stopping) return;
    lock.unlock();
    (void)journal_->compact();  // failures recorded in journal last_error
    lock.lock();
  }
}

void CompileService::journal_success(const warmup::JournalEntry& entry) {
  if (journal_) journal_->record(entry);
}

Response CompileService::snapshot_now() {
  if (!journal_) {
    return error_response(StatusCode::kInvalidArgument,
                          "no journal configured (--journal)");
  }
  const Status status = journal_->compact();
  if (!status.is_ok()) {
    Response r;
    r.status = status;
    r.payload = status.render() + "\n";
    return r;
  }
  Response r;
  r.payload = "compacted " + std::to_string(journal_->live_keys()) +
              " key(s), " + std::to_string(journal_->journal_bytes()) +
              " bytes";
  return r;
}

void CompileService::join_workers() {
  std::call_once(join_once_, [&] {
    queue_.close();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  });
}

void CompileService::worker_main() {
  std::shared_ptr<PendingRequest::State> state;
  while (queue_.pop(state)) {
    execute(state);
    state.reset();
  }
}

void CompileService::execute(
    const std::shared_ptr<PendingRequest::State>& state) {
  static auto& reg = obs::MetricsRegistry::global();
  static obs::Gauge& depth_gauge = reg.gauge("tydi.service.queue_depth");
  static obs::Histogram& wait_histogram =
      reg.histogram("tydi.service.queue_wait_ms");
  static obs::Histogram& exec_histogram =
      reg.histogram("tydi.service.request_ms");
  static obs::Counter& expired_metric =
      reg.counter("tydi.service.deadline_expired");
  static obs::Counter& disconnect_metric =
      reg.counter("tydi.service.disconnect_aborts");

  depth_gauge.set(static_cast<double>(queue_.depth()));
  wait_histogram.observe(ms_since(state->admitted));

  // A dead client or an expired deadline means nobody is waiting: shed /
  // abort without executing.
  if (state->cancel_reason() == CancelReason::kClientGone) {
    ++disconnect_metric;
    finish(state, error_response(StatusCode::kAborted,
                                 "client disconnected before execution"));
    return;
  }
  if (state->deadline_expired()) {
    ++expired_metric;
    Response r = shed_response(
        "deadline expired after " +
        obs::json_number(ms_since(state->admitted)) + " ms in queue");
    finish(state, std::move(r));
    return;
  }

  {
    std::lock_guard lock(active_mu_);
    active_.push_back(state);
  }
  const Clock::time_point exec_start = Clock::now();
  Response response;
  {
    obs::Span span("service.request");
    span.arg("request_id", state->request_id)
        .arg("prio", to_string(state->envelope.priority));
    response = dispatch_queued(*state);
  }
  const double exec_ms = ms_since(exec_start);
  exec_histogram.observe(exec_ms);
  // EWMA (alpha 1/4) feeding the retry-after hint.
  const std::uint64_t prev =
      avg_exec_us_.load(std::memory_order_relaxed);
  const auto sample = static_cast<std::uint64_t>(exec_ms * 1000.0);
  avg_exec_us_.store(prev - prev / 4 + sample / 4,
                     std::memory_order_relaxed);
  if (state->cancel_reason() == CancelReason::kClientGone &&
      response.status.code() == StatusCode::kAborted) {
    ++disconnect_metric;
  }
  {
    std::lock_guard lock(active_mu_);
    active_.erase(std::find(active_.begin(), active_.end(), state));
  }
  finish(state, std::move(response));
}

double CompileService::effective_budget_ms(
    double requested_ms, const PendingRequest::State& state) const {
  double budget = requested_ms > 0.0 ? requested_ms
                                     : config_.default_budget_ms;
  if (config_.max_budget_ms > 0.0 &&
      (budget <= 0.0 || budget > config_.max_budget_ms)) {
    budget = config_.max_budget_ms;
  }
  if (state.has_deadline) {
    // Never run past the caller's deadline: fold the remaining wait into
    // the watchdog budget (floor of 1ms keeps the watchdog armed rather
    // than treating ~0 as "unlimited").
    const double remaining = std::max(1.0, state.deadline_remaining_ms());
    budget = budget > 0.0 ? std::min(budget, remaining) : remaining;
  }
  return budget;
}

Response CompileService::sleep_request(double ms,
                                       PendingRequest::State& state) {
  const double budget = effective_budget_ms(0.0, state);
  const Clock::time_point start = Clock::now();
  const std::uint64_t seq =
      exec_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (;;) {
    const double elapsed = ms_since(start);
    if (elapsed >= ms) break;
    if (state.cancelled()) {
      return error_response(
          StatusCode::kAborted,
          state.cancel_reason() == CancelReason::kClientGone
              ? "client disconnected; sleep aborted"
              : "drain deadline; sleep aborted");
    }
    if (budget > 0.0 && elapsed >= budget) {
      return error_response(StatusCode::kAborted,
                            "budget/deadline exceeded; sleep aborted");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Response r;
  r.payload = "slept " + obs::json_number(ms) + " seq " +
              std::to_string(seq);
  return r;
}

Response CompileService::compile_request(
    const std::vector<driver::NamedSource>& sources,
    driver::CompileOptions options, const std::string& emit,
    double budget_ms, PendingRequest::State& state) {
  if (emit == "vhdl") {
    options.emit_ir = false;
    options.emit_vhdl = true;
  } else if (emit == "ir") {
    options.emit_ir = true;
    options.emit_vhdl = false;
  } else {
    return error_response(StatusCode::kInvalidArgument,
                          "unknown emit kind '" + emit +
                              "' (expected vhdl|ir)");
  }
  exec_seq_.fetch_add(1, std::memory_order_relaxed);

  // Per-request watchdog: a dedicated guard + monitor thread enforcing the
  // wall-clock budget (request budget min'd with the propagated deadline);
  // the driver polls the guard at phase boundaries and classifies a fired
  // watchdog as kAborted (phase "watchdog"). The same poll observes the
  // transport's disconnect cancel, so compiles for dead peers abort too.
  sim::RunGuard guard;
  sim::Watchdog::Config watchdog_config;
  watchdog_config.wall_clock_budget_ms = effective_budget_ms(budget_ms, state);
  options.cancelled = [&guard, &state]() {
    return guard.stop_requested() || state.cancelled();
  };
  driver::CompileResult result = [&] {
    sim::Watchdog watchdog(guard, watchdog_config);
    return session_.compile(sources, options);
  }();

  Response r;
  r.status = result.status();
  if (result.success()) {
    r.payload = options.emit_vhdl ? std::move(result.vhdl_text)
                                  : std::move(result.ir_text);
  } else {
    r.payload = result.report();
    if (r.status.code() == StatusCode::kAborted &&
        state.cancel_reason() == CancelReason::kClientGone) {
      r.status = Status::error(StatusCode::kAborted, "watchdog",
                               "client disconnected; compile aborted");
      r.payload = r.status.render() + "\n";
    }
  }
  return r;
}

Response CompileService::dispatch_queued(PendingRequest::State& state) {
  std::istringstream fields(state.line);
  std::string verb;
  fields >> verb;

  if (verb == "SLEEP") {
    std::string ms_token;
    double ms = 0.0;
    if (!(fields >> ms_token) || !parse_budget(ms_token, ms)) {
      return error_response(StatusCode::kInvalidArgument,
                            "usage: SLEEP <ms>");
    }
    return sleep_request(ms, state);
  }

  if (verb == "TPCH") {
    std::string number;
    std::string emit;
    if (!(fields >> number >> emit)) {
      return error_response(StatusCode::kInvalidArgument,
                            "usage: TPCH <n> <vhdl|ir> [budget_ms]");
    }
    double budget_ms = 0.0;
    std::string budget_token;
    if (fields >> budget_token && !parse_budget(budget_token, budget_ms)) {
      return error_response(StatusCode::kInvalidArgument,
                            "bad budget_ms '" + budget_token + "'");
    }
    const tpch::QueryCase* query = tpch::find_query("TPC-H " + number);
    if (query == nullptr) {
      return error_response(StatusCode::kInvalidArgument,
                            "unknown TPC-H query '" + number + "'");
    }
    Response r = compile_request(tpch::query_sources(*query),
                                 tpch::query_options(*query), emit,
                                 budget_ms, state);
    if (r.ok()) {
      // TPCH sources are built into the binary: the key needs no stamps
      // (a different binary re-derives everything on replay anyway).
      journal_success(
          warmup::JournalEntry{"TPCH " + number + " " + emit, {}});
    }
    return r;
  }

  if (verb == "FILE") {
    std::string path;
    std::string top;
    std::string emit;
    if (!(fields >> path >> top >> emit)) {
      return error_response(
          StatusCode::kInvalidArgument,
          "usage: FILE <path> <top> <vhdl|ir> [budget_ms]");
    }
    double budget_ms = 0.0;
    std::string budget_token;
    if (fields >> budget_token && !parse_budget(budget_token, budget_ms)) {
      return error_response(StatusCode::kInvalidArgument,
                            "bad budget_ms '" + budget_token + "'");
    }
    // Comma-separated file list, compiled in list order (each file keeps
    // its own `package` header) — same convention as the batch manifest.
    std::vector<driver::NamedSource> sources;
    std::istringstream paths(path);
    std::string one;
    while (std::getline(paths, one, ',')) {
      if (one.empty()) continue;
      std::ifstream file(one, std::ios::binary);
      if (!file) {
        return error_response(StatusCode::kIoError, "cannot read " + one);
      }
      sources.push_back(driver::NamedSource{
          one, std::string((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>())});
    }
    if (sources.empty()) {
      return error_response(StatusCode::kInvalidArgument,
                            "no source files in '" + path + "'");
    }
    driver::CompileOptions options;
    options.top = top;
    Response r = compile_request(sources, std::move(options), emit,
                                 budget_ms, state);
    if (r.ok()) {
      // Journal the key with a content stamp per source, taken from the
      // exact bytes that compiled — replay skips the key when any file on
      // disk no longer matches.
      warmup::JournalEntry entry;
      entry.request = "FILE " + path + " " + top + " " + emit;
      for (const driver::SourceStamp& stamp : driver::source_stamps(sources)) {
        entry.stamps.push_back(
            warmup::SourceStampRecord{stamp.name, stamp.hash});
      }
      journal_success(entry);
    }
    return r;
  }

  return error_response(StatusCode::kInternal,
                        "verb '" + verb + "' queued but not dispatchable");
}

Response CompileService::dispatch_meta(const std::string& verb,
                                       const std::string& rest,
                                       std::uint64_t request_id) {
  obs::Span span("service.request");
  span.arg("verb", verb).arg("request_id", request_id);
  (void)rest;

  if (verb == "PING") {
    Response r;
    r.payload = "pong";
    return r;
  }
  if (verb == "STATS") {
    Response r;
    r.payload = stats_text();
    return r;
  }
  if (verb == "METRICS") {
    Response r;
    r.payload = obs::MetricsRegistry::global().render_json();
    return r;
  }
  if (verb == "HEALTH") {
    Response r;
    r.payload = health_json();
    return r;
  }
  if (verb == "INVALIDATE") {
    session_.invalidate();
    Response r;
    r.payload = "invalidated";
    return r;
  }
  if (verb == "SNAPSHOT") {
    return snapshot_now();
  }
  if (verb == "SHUTDOWN") {
    // Stop admitting right away (in-flight + queued work still drains);
    // the transport sees the flag and runs the full drain + unlink path.
    begin_drain();
    Response r;
    r.payload = "bye";
    r.shutdown = true;
    return r;
  }

  return error_response(StatusCode::kInvalidArgument,
                        "unknown verb '" + verb + "'");
}

std::string CompileService::health_json() const {
  const elab::MemoStats& memo = session_.memo().stats();
  const std::uint64_t hits = memo.streamlet_hits + memo.impl_hits;
  const std::uint64_t lookups = hits + memo.misses + memo.stale;
  const double hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  const double uptime_ms = ms_since(start_);
  std::string last_abort;
  {
    std::lock_guard lock(last_abort_mu_);
    last_abort = last_abort_;
  }
  // Rendered Status strings carry no quotes/backslashes/control bytes in
  // practice, but escape defensively since messages embed file paths.
  const auto escape = [](const std::string& text) {
    std::string escaped;
    for (char c : text) {
      if (c == '"' || c == '\\') escaped += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;
      escaped += c;
    }
    return escaped;
  };
  const std::string escaped = escape(last_abort);
  std::string journal_error = journal_boot_error_;
  if (journal_) {
    const std::string io_error = journal_->last_error();
    if (!io_error.empty()) journal_error = io_error;
  }
  const bool is_draining = draining_.load(std::memory_order_acquire);
  std::string out = "{\"status\":\"";
  out += is_draining ? "draining" : "ok";
  out += "\",\"uptime_ms\":";
  out += obs::json_number(uptime_ms);
  out += ",\"in_flight\":";
  out += std::to_string(in_flight_.load(std::memory_order_relaxed));
  out += ",\"queue_depth\":";
  out += std::to_string(queue_.depth());
  out += ",\"workers\":";
  out += std::to_string(worker_count_);
  out += ",\"draining\":";
  out += is_draining ? "true" : "false";
  out += ",\"shed_total\":";
  out += std::to_string(shed_.get());
  out += ",\"requests\":";
  out += std::to_string(requests_.get());
  out += ",\"failures\":";
  out += std::to_string(failures_.get());
  out += ",\"memo_hit_rate\":";
  out += obs::json_number(hit_rate);
  out += ",\"journal_enabled\":";
  out += journal_ ? "true" : "false";
  out += ",\"journal_bytes\":";
  out += std::to_string(journal_ ? journal_->journal_bytes() : 0);
  out += ",\"journal_live_keys\":";
  out += std::to_string(journal_ ? journal_->live_keys() : 0);
  out += ",\"journal_recovered_records\":";
  out += std::to_string(journal_ ? journal_->recovered_records() : 0);
  out += ",\"journal_last_compaction_ms\":";
  out += obs::json_number(journal_ ? journal_->last_compaction_ms() : -1.0);
  out += ",\"journal_error\":\"";
  out += escape(journal_error);
  out += "\",\"replay_done\":";
  out += replay_done_.load(std::memory_order_acquire) ? "true" : "false";
  out += ",\"replayed\":";
  out += std::to_string(replay_stats_.replayed.get());
  out += ",\"replay_skipped_stale\":";
  out += std::to_string(replay_stats_.skipped_stale.get());
  out += ",\"replay_shed\":";
  out += std::to_string(replay_stats_.shed.get());
  out += ",\"replay_failed\":";
  out += std::to_string(replay_stats_.failed.get());
  out += ",\"replay_budget_expired\":";
  out += std::to_string(replay_stats_.budget_expired.get());
  out += ",\"last_abort\":\"";
  out += escaped;
  out += "\"}";
  return out;
}

void CompileService::record_abort(const support::Status& status) {
  std::lock_guard lock(last_abort_mu_);
  last_abort_ = status.render();
}

std::string CompileService::stats_text() const {
  const elab::MemoStats& memo = session_.memo().stats();
  std::ostringstream out;
  out << "requests " << requests_.get() << "\n"
      << "failures " << failures_.get() << "\n"
      << "shed " << shed_.get() << "\n"
      << "workers " << worker_count_ << "\n"
      << "queue_depth " << queue_.depth() << "\n"
      << "queue_capacity " << queue_.capacity() << "\n"
      << "draining " << (draining_.load(std::memory_order_acquire) ? 1 : 0)
      << "\n"
      << "memo_streamlets " << session_.memo().streamlet_count() << "\n"
      << "memo_impls " << session_.memo().impl_count() << "\n"
      << "memo_streamlet_hits " << memo.streamlet_hits.get() << "\n"
      << "memo_impl_hits " << memo.impl_hits.get() << "\n"
      << "memo_misses " << memo.misses.get() << "\n"
      << "memo_stale " << memo.stale.get() << "\n"
      << "parse_cache " << session_.parse_cache_size() << "\n"
      << "journal_enabled " << (journal_ ? 1 : 0) << "\n"
      << "journal_bytes " << (journal_ ? journal_->journal_bytes() : 0)
      << "\n"
      << "journal_live_keys " << (journal_ ? journal_->live_keys() : 0)
      << "\n"
      << "journal_appends "
      << (journal_ ? journal_->stats().appends.get() : 0) << "\n"
      << "journal_compactions "
      << (journal_ ? journal_->stats().compactions.get() : 0) << "\n"
      << "replay_done "
      << (replay_done_.load(std::memory_order_acquire) ? 1 : 0) << "\n"
      << "replayed " << replay_stats_.replayed.get() << "\n"
      << "replay_skipped_stale " << replay_stats_.skipped_stale.get()
      << "\n"
      << "replay_shed " << replay_stats_.shed.get() << "\n"
      << "replay_failed " << replay_stats_.failed.get() << "\n";
  return out.str();
}

}  // namespace tydi::service
