#include "src/service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"

namespace tydi::service {

using support::Status;
using support::StatusCode;

namespace {

Status io_error(const std::string& what) {
  return Status::error(StatusCode::kIoError, "service",
                       what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying on EINTR / short writes.
/// MSG_NOSIGNAL: a peer that hung up yields EPIPE (false) instead of a
/// process-killing SIGPIPE — replying to a dead client is an expected
/// event for a daemon, not a crash.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Binds an AF_UNIX stream socket at `path` (unlinking any stale file).
int bind_listener(const std::string& path, int backlog, Status& status) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    status = Status::error(StatusCode::kInvalidArgument, "service",
                           "socket path too long: " + path);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = io_error("socket");
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    status = io_error("bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    status = io_error("listen " + path);
    ::close(fd);
    return -1;
  }
  status = Status::ok();
  return fd;
}

int connect_client(const std::string& path, Status& status) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    status = Status::error(StatusCode::kInvalidArgument, "service",
                           "socket path too long: " + path);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = io_error("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    status = io_error("connect " + path);
    ::close(fd);
    return -1;
  }
  status = Status::ok();
  return fd;
}

/// Open connection fds, so the drain path can SHUT_RD all of them (stop
/// reading further request lines while in-flight replies still flush).
class ConnectionTracker {
 public:
  void add(int fd) {
    std::lock_guard lock(mu_);
    fds_.insert(fd);
  }
  void remove(int fd) {
    std::lock_guard lock(mu_);
    fds_.erase(fd);
  }
  [[nodiscard]] std::size_t count() const {
    std::lock_guard lock(mu_);
    return fds_.size();
  }
  void shutdown_reads() {
    std::lock_guard lock(mu_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RD);
  }

 private:
  mutable std::mutex mu_;
  std::set<int> fds_;
};

/// True when the peer has closed its end: a zero-byte MSG_PEEK read.
/// Pipelined request bytes (n > 0) and EAGAIN both mean the peer is alive.
bool peer_disconnected(int fd) {
  char probe = 0;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  return n == 0;
}

/// Per-connection loop: one request line in, one response frame out, until
/// EOF or a SHUTDOWN request. Buffered reads — a client may pipeline
/// several lines into one packet. While a submitted request is pending,
/// the connection thread polls the peer; a disconnect cancels the request
/// so the worker pool never finishes work for a dead client.
void serve_connection(int fd, CompileService& service,
                      std::atomic<bool>& shutdown, int listen_fd,
                      ConnectionTracker& tracker) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t eol;
    while ((eol = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        tracker.remove(fd);
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, eol);
    buffer.erase(0, eol + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    PendingRequest pending = service.submit(line);
    while (!pending.wait_for(25.0)) {
      // Drain SHUT_RDs our fd, which a probe cannot tell apart from a
      // real peer EOF — skip probing then; the drain deadline bounds us.
      if (!service.draining() && peer_disconnected(fd)) {
        pending.cancel();
      }
    }
    Response response = pending.take();
    if (!write_all(fd, response.serialize())) {
      tracker.remove(fd);
      ::close(fd);
      return;
    }
    if (response.shutdown) {
      // Stop the accept loop: mark shutdown, then poke the listener awake
      // by shutting it down (accept() returns with an error immediately).
      shutdown.store(true, std::memory_order_release);
      ::shutdown(listen_fd, SHUT_RDWR);
      tracker.remove(fd);
      ::close(fd);
      return;
    }
  }
}

// Signal plumbing: the handler may only touch lock-free state and call
// async-signal-safe functions. Lock-free atomics are both
// async-signal-safe AND visible across threads — the handler can run on
// any thread while serve() reads the flag from another. shutdown(2) on
// the listener wakes the blocking accept() so the serve loop notices the
// flag promptly.
std::atomic<int> g_listen_fd{-1};
std::atomic<int> g_signal{0};

void handle_stop_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  const int fd = g_listen_fd.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

/// Installs SIGINT/SIGTERM handlers for the lifetime of one serve() and
/// restores the previous handlers on destruction.
class ScopedSignalHandlers {
 public:
  explicit ScopedSignalHandlers(int listen_fd) {
    g_signal = 0;
    g_listen_fd.store(listen_fd, std::memory_order_relaxed);
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedSignalHandlers() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
    g_listen_fd.store(-1, std::memory_order_relaxed);
  }

 private:
  struct sigaction old_int_{};
  struct sigaction old_term_{};
};

}  // namespace

Status serve(CompileService& service, const ServerConfig& config) {
  Status status;
  const int listen_fd =
      bind_listener(config.socket_path, config.backlog, status);
  if (listen_fd < 0) return status;

  std::optional<ScopedSignalHandlers> signals;
  if (config.handle_signals) signals.emplace(listen_fd);

  std::atomic<bool> shutdown{false};
  ConnectionTracker tracker;
  std::vector<std::thread> connections;
  std::mutex connections_mu;
  static obs::Gauge& connections_gauge =
      obs::MetricsRegistry::global().gauge("tydi.service.connections");

  while (!shutdown.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && g_signal == 0) continue;
      // A shutdown request or signal closes the listener under us;
      // anything else is a real transport failure.
      if (shutdown.load(std::memory_order_acquire) || g_signal != 0) break;
      status = io_error("accept");
      break;
    }
    if (config.max_connections > 0 &&
        tracker.count() >= config.max_connections) {
      // Shed at the transport: one kUnavailable frame (with retry-after),
      // then close. Shares the service's shed counter and taxonomy.
      const Response shed = service.shed_response(
          "connection limit (" + std::to_string(config.max_connections) +
          ") reached");
      write_all(fd, shed.serialize());
      ::close(fd);
      continue;
    }
    tracker.add(fd);
    connections_gauge.set(static_cast<double>(tracker.count()));
    std::lock_guard lock(connections_mu);
    connections.emplace_back([fd, &service, &shutdown, listen_fd,
                              &tracker]() {
      serve_connection(fd, service, shutdown, listen_fd, tracker);
    });
  }

  // One drain path for SHUTDOWN, signals, and fatal accept errors: stop
  // admitting, stop reading new request lines, finish (or cancel at the
  // drain deadline) what was already accepted, then tear down.
  static obs::Counter& drains =
      obs::MetricsRegistry::global().counter("tydi.service.drains");
  ++drains;
  service.begin_drain();
  tracker.shutdown_reads();
  service.drain();
  for (std::thread& t : connections) t.join();
  connections_gauge.set(0.0);
  ::close(listen_fd);
  ::unlink(config.socket_path.c_str());
  if (g_signal != 0) return Status::ok();
  return status;
}

Status request(const std::string& socket_path, const std::string& line,
               Response& out) {
  Status status;
  const int fd = connect_client(socket_path, status);
  if (fd < 0) return status;
  // A failed write (EPIPE) does not necessarily mean no response: a
  // transport-level shed writes one kUnavailable frame and closes without
  // ever reading the request line. Record the error but still try to read
  // a frame; report the write failure only if none arrives.
  Status write_status = Status::ok();
  if (!write_all(fd, line + "\n")) {
    write_status = io_error("write " + socket_path);
  }
  // Read until the full frame is parseable (header tells us the payload
  // length) or the peer closes early.
  std::string wire;
  char chunk[4096];
  for (;;) {
    if (parse_response(wire, out)) {
      ::close(fd);
      return Status::ok();
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      status = io_error("read " + socket_path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      if (!write_status.is_ok()) return write_status;
      return Status::error(StatusCode::kCorruptData, "service",
                           "connection closed mid-response");
    }
    wire.append(chunk, static_cast<std::size_t>(n));
  }
}

Status request_with_retry(const std::string& socket_path,
                          const std::string& line,
                          const support::RetryPolicy& policy, Response& out,
                          int* attempts_out) {
  support::Retry retry(policy);
  for (;;) {
    const int attempt = retry.next_attempt();
    const std::string attempt_line =
        attempt > 1 ? "ATTEMPT " + std::to_string(attempt) + " " + line
                    : line;
    Response response;
    const Status transport = request(socket_path, attempt_line, response);
    const bool shed = transport.is_ok() &&
                      response.status.code() == StatusCode::kUnavailable;
    if (transport.is_ok() && !shed) {
      out = std::move(response);
      if (attempts_out != nullptr) *attempts_out = attempt;
      return transport;
    }
    const double hint = shed ? response.retry_after_ms : 0.0;
    double delay_ms = 0.0;
    if (!retry.next_delay_ms(hint, delay_ms)) {
      if (attempts_out != nullptr) *attempts_out = retry.attempts();
      if (!transport.is_ok()) return transport;
      out = std::move(response);  // the final shed, exit code 12
      return Status::ok();
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
}

}  // namespace tydi::service
