#include "src/service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace tydi::service {

using support::Status;
using support::StatusCode;

namespace {

Status io_error(const std::string& what) {
  return Status::error(StatusCode::kIoError, "service",
                       what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying on EINTR / short writes.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Binds an AF_UNIX stream socket at `path` (unlinking any stale file).
int bind_listener(const std::string& path, int backlog, Status& status) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    status = Status::error(StatusCode::kInvalidArgument, "service",
                           "socket path too long: " + path);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = io_error("socket");
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    status = io_error("bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    status = io_error("listen " + path);
    ::close(fd);
    return -1;
  }
  status = Status::ok();
  return fd;
}

int connect_client(const std::string& path, Status& status) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    status = Status::error(StatusCode::kInvalidArgument, "service",
                           "socket path too long: " + path);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = io_error("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    status = io_error("connect " + path);
    ::close(fd);
    return -1;
  }
  status = Status::ok();
  return fd;
}

/// Per-connection loop: one request line in, one response frame out, until
/// EOF or a SHUTDOWN request. Buffered reads — a client may pipeline
/// several lines into one packet.
void serve_connection(int fd, CompileService& service,
                      std::atomic<bool>& shutdown, int listen_fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t eol;
    while ((eol = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer.substr(0, eol);
    buffer.erase(0, eol + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    Response response = service.handle_line(line);
    if (!write_all(fd, response.serialize())) {
      ::close(fd);
      return;
    }
    if (response.shutdown) {
      // Stop the accept loop: mark shutdown, then poke the listener awake
      // by shutting it down (accept() returns with an error immediately).
      shutdown.store(true, std::memory_order_release);
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(fd);
      return;
    }
  }
}

}  // namespace

Status serve(CompileService& service, const ServerConfig& config) {
  Status status;
  const int listen_fd =
      bind_listener(config.socket_path, config.backlog, status);
  if (listen_fd < 0) return status;

  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  std::mutex connections_mu;

  while (!shutdown.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // A shutdown request closes the listener under us; anything else is
      // a real transport failure.
      if (shutdown.load(std::memory_order_acquire)) break;
      status = io_error("accept");
      break;
    }
    std::lock_guard lock(connections_mu);
    connections.emplace_back([fd, &service, &shutdown, listen_fd]() {
      serve_connection(fd, service, shutdown, listen_fd);
    });
  }

  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(config.socket_path.c_str());
  return status;
}

Status request(const std::string& socket_path, const std::string& line,
               Response& out) {
  Status status;
  const int fd = connect_client(socket_path, status);
  if (fd < 0) return status;
  if (!write_all(fd, line + "\n")) {
    status = io_error("write " + socket_path);
    ::close(fd);
    return status;
  }
  // Read until the full frame is parseable (header tells us the payload
  // length) or the peer closes early.
  std::string wire;
  char chunk[4096];
  for (;;) {
    if (parse_response(wire, out)) {
      ::close(fd);
      return Status::ok();
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      status = io_error("read " + socket_path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return Status::error(StatusCode::kCorruptData, "service",
                           "connection closed mid-response");
    }
    wire.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace tydi::service
