// AF_UNIX transport for the compile service — the `tydid` daemon's server
// loop and the matching one-shot + retrying clients.
//
// The server owns a listening socket on a filesystem path and serves each
// accepted connection on its own thread: newline-delimited request lines in,
// serialized Response frames out (see src/service/service.hpp for the wire
// protocol). A connection may issue any number of requests; the server
// replies in order per connection while connections proceed fully in
// parallel. Connection threads only *admit* requests — compile work runs on
// the service's fixed worker pool, so accepted connections bound thread
// count at the transport layer while the queue bounds compile concurrency.
//
// Overload behaviour at this layer:
//   - `max_connections` caps concurrently-served connections; past it the
//     accept loop answers with a one-frame kUnavailable shed (retry-after
//     hint included) and closes, sharing the service's shed taxonomy.
//   - While a request is in flight, the connection thread probes the peer
//     (MSG_PEEK); a disconnected client trips the request's cancellation
//     hook so queued work is skipped and executing compiles abort at their
//     next poll instead of running to completion for nobody.
//
// Shutdown: a SHUTDOWN request or (when `handle_signals`) SIGINT/SIGTERM
// routes through one drain path — stop accepting, stop reading new request
// lines from open connections, let queued + in-flight work finish against
// the service's drain deadline (then cancel/shed), join every thread, and
// unlink the socket file. Ctrl-C never leaves a stale socket behind.
#pragma once

#include <string>

#include "src/service/service.hpp"
#include "src/support/retry.hpp"
#include "src/support/status.hpp"

namespace tydi::service {

struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket. An existing file at
  /// the path is unlinked first (stale socket from a crashed daemon).
  std::string socket_path;
  int backlog = 16;
  /// Cap on concurrently-served connections (0 = unlimited). Connections
  /// past the cap receive a single kUnavailable frame and are closed.
  std::size_t max_connections = 0;
  /// Install SIGINT/SIGTERM handlers for the duration of `serve()` that
  /// route through the same drain path as SHUTDOWN. Process-wide — leave
  /// false when embedding multiple servers in one process (tests).
  bool handle_signals = false;
};

/// Runs the accept loop until a SHUTDOWN request, a handled signal, or a
/// fatal socket error; drains the service before returning. Blocking;
/// returns kOk after a clean (request- or signal-driven) shutdown.
[[nodiscard]] support::Status serve(CompileService& service,
                                    const ServerConfig& config);

/// One-shot client: connects to `socket_path`, sends `line` (newline
/// appended), reads back one response frame into `out`. Returns a non-ok
/// Status only for transport failures — a compile failure or shed arrives
/// as a successful round-trip whose `out.status` is the remote
/// classification (and `out.retry_after_ms` the shed backoff hint).
[[nodiscard]] support::Status request(const std::string& socket_path,
                                      const std::string& line, Response& out);

/// Retrying client: `request` wrapped in a support::Retry loop. Retries
/// transport failures and kUnavailable sheds, sleeping the jittered backoff
/// (raised to the shed frame's retry-after-ms hint) between attempts, and
/// prefixes each retry with an `ATTEMPT <n>` envelope token so the daemon
/// can count retried requests. Any other response — success or a
/// non-retryable failure class — returns immediately. When the attempt
/// budget runs out the last outcome is returned: the transport Status if
/// the final attempt never got a frame, otherwise kOk with the shed
/// response in `out`. `attempts_out` (optional) receives the number of
/// attempts made.
[[nodiscard]] support::Status request_with_retry(
    const std::string& socket_path, const std::string& line,
    const support::RetryPolicy& policy, Response& out,
    int* attempts_out = nullptr);

}  // namespace tydi::service
