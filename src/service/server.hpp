// AF_UNIX transport for the compile service — the `tydid` daemon's server
// loop and the matching one-shot client.
//
// The server owns a listening socket on a filesystem path and serves each
// accepted connection on its own thread: newline-delimited request lines in,
// serialized Response frames out (see src/service/service.hpp for the wire
// protocol). A connection may issue any number of requests; the server
// replies in order per connection while connections proceed fully in
// parallel — all handlers compile through the service's single shared
// session, which is the point of the daemon. A SHUTDOWN request stops the
// accept loop after the reply is flushed; `serve()` then joins every
// connection thread and removes the socket file.
#pragma once

#include <string>

#include "src/service/service.hpp"
#include "src/support/status.hpp"

namespace tydi::service {

struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket. An existing file at
  /// the path is unlinked first (stale socket from a crashed daemon).
  std::string socket_path;
  int backlog = 16;
};

/// Runs the accept loop until a SHUTDOWN request (or a fatal socket error).
/// Blocking; returns kOk after a clean shutdown.
[[nodiscard]] support::Status serve(CompileService& service,
                                    const ServerConfig& config);

/// One-shot client: connects to `socket_path`, sends `line` (newline
/// appended), reads back one response frame into `out`. Returns a non-ok
/// Status only for transport failures — a compile failure arrives as a
/// successful round-trip whose `out.status` is the remote classification.
[[nodiscard]] support::Status request(const std::string& socket_path,
                                      const std::string& line, Response& out);

}  // namespace tydi::service
