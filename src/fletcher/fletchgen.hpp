// Fletcher interface generator: Arrow schema -> Tydi-lang declarations.
//
// For each table the generator emits
//  - one named stream type alias per column (`t_<table>_<column>`), so
//    query code and reader ports share the same *named* logical type and
//    the strict type-equality DRC passes across component boundaries;
//  - a `<table>_reader_s` streamlet whose primary-key columns are input
//    ports and whose data columns are output ports;
//  - an external `<table>_reader_i` impl (the memory-access component that
//    Fletcher would realize in hardware).
//
// The LoC of this generated text is the Table IV "Fletcher part" (LoCf).
#pragma once

#include <string>
#include <vector>

#include "src/fletcher/schema.hpp"

namespace tydi::fletcher {

struct FletchgenOptions {
  /// Stream dimension of column streams (1: a sequence of row values).
  int dimension = 1;
  /// Protocol complexity of the generated readers.
  int complexity = 2;
};

/// Tydi-lang interface for a single table.
[[nodiscard]] std::string generate_interface(const Schema& schema,
                                             const FletchgenOptions& options);

/// Interfaces for several tables in one source file (package fletcher).
[[nodiscard]] std::string generate_interfaces(
    const std::vector<Schema>& schemas, const FletchgenOptions& options);

/// Name of the column stream type alias used by generated interfaces and
/// by query code: `t_<table>_<column>`.
[[nodiscard]] std::string column_type_name(const Schema& schema,
                                           const Column& column);

}  // namespace tydi::fletcher
