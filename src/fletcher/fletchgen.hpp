// Fletcher interface generator: Arrow schema -> Tydi-lang declarations.
//
// For each table the generator emits
//  - one named stream type alias per column (`t_<table>_<column>`), so
//    query code and reader ports share the same *named* logical type and
//    the strict type-equality DRC passes across component boundaries;
//  - a `<table>_reader_s` streamlet whose primary-key columns are input
//    ports and whose data columns are output ports;
//  - an external `<table>_reader_i` impl (the memory-access component that
//    Fletcher would realize in hardware).
//
// The LoC of this generated text is the Table IV "Fletcher part" (LoCf).
#pragma once

#include <string>
#include <vector>

#include "src/fletcher/schema.hpp"
#include "src/ir/ir.hpp"

namespace tydi::fletcher {

struct FletchgenOptions {
  /// Stream dimension of column streams (1: a sequence of row values).
  int dimension = 1;
  /// Protocol complexity of the generated readers.
  int complexity = 2;
};

/// Tydi-lang interface for a single table.
[[nodiscard]] std::string generate_interface(const Schema& schema,
                                             const FletchgenOptions& options);

/// Interfaces for several tables in one source file (package fletcher).
[[nodiscard]] std::string generate_interfaces(
    const std::vector<Schema>& schemas, const FletchgenOptions& options);

/// Name of the column stream type alias used by generated interfaces and
/// by query code: `t_<table>_<column>`.
[[nodiscard]] std::string column_type_name(const Schema& schema,
                                           const Column& column);

/// One reader recovered from the lowered IR: the external `<table>_reader_i`
/// impl together with the physical widths of its column streams. This is
/// the hand-off fletchgen needs to realize the memory-access hardware —
/// recovered entirely from ir::Module (cached layouts, symbol lookups), the
/// elaborated design is never re-traversed.
struct ReaderPort {
  std::string column;          ///< column/port name
  bool is_primary_key = false; ///< input port (key lookups flow inward)
  std::int64_t data_bits = 0;  ///< primary stream payload width
  int dimension = 0;
  int complexity = 1;
};

struct ReaderInfo {
  std::string table;           ///< table name (impl name minus "_reader_i")
  std::string impl;            ///< mangled impl name
  std::vector<ReaderPort> ports;
};

/// Scans the module for external reader impls (`*_reader_i`). Deterministic:
/// module table order.
[[nodiscard]] std::vector<ReaderInfo> readers_of(const ir::Module& module);

/// Fletchgen-style manifest of every reader in the module, one block per
/// table with per-column physical widths (deterministic text; consumed by
/// downstream tooling the way fletchgen consumes Arrow schemas).
[[nodiscard]] std::string generate_reader_manifest(const ir::Module& module);

}  // namespace tydi::fletcher
