// Arrow-like schema model — the substrate for the Fletcher integration.
//
// Fletcher ([10] in the paper) generates hardware components that stream
// Apache Arrow columnar data from host memory into the FPGA. The paper's
// evaluation did not run Fletcher either ("we manually write the interface
// for Fletcher components"); this module reproduces exactly that step:
// given a schema, emit the Tydi-lang interface declarations for the memory
// access components (see fletchgen.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tydi::fletcher {

/// Arrow-ish column types used by TPC-H.
enum class ColumnType {
  kInt32,
  kInt64,
  kDecimal,     ///< decimal(precision, scale), bit width = ceil(log2(10^p))
  kDate,        ///< days since epoch, 32 bits
  kFixedUtf8,   ///< fixed-width CHAR(n), n * 8 bits
};

[[nodiscard]] std::string_view to_string(ColumnType t);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  int precision = 0;     ///< kDecimal
  int scale = 0;         ///< kDecimal (hardware-equivalent per Sec. IV-A)
  int fixed_length = 0;  ///< kFixedUtf8: characters

  /// Hardware bits required for one value (the paper's
  /// `Bit(ceil(log2(10 ** precision - 1)))` rule for decimals).
  [[nodiscard]] std::int64_t bit_width() const;
};

struct Schema {
  std::string name;  ///< table name, e.g. "lineitem"
  std::vector<Column> columns;
  /// Primary-key columns become *input* ports of the reader ("The primary
  /// keys in the TPC-H dataframe will be treated as input ports", Sec. VI).
  std::vector<std::string> primary_keys;

  [[nodiscard]] const Column* find_column(std::string_view name) const;
  [[nodiscard]] bool is_primary_key(std::string_view name) const;
};

}  // namespace tydi::fletcher
