#include "src/fletcher/schema.hpp"

#include <algorithm>
#include <cmath>

namespace tydi::fletcher {

std::string_view to_string(ColumnType t) {
  switch (t) {
    case ColumnType::kInt32: return "int32";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDecimal: return "decimal";
    case ColumnType::kDate: return "date";
    case ColumnType::kFixedUtf8: return "utf8";
  }
  return "?";
}

std::int64_t Column::bit_width() const {
  switch (type) {
    case ColumnType::kInt32:
      return 32;
    case ColumnType::kInt64:
      return 64;
    case ColumnType::kDecimal: {
      // Bit(ceil(log2(10 ** precision - 1))): digits after the point are a
      // software-level annotation only (decimal(10,2) == decimal(10) on
      // hardware, Sec. IV-A).
      int p = precision > 0 ? precision : 15;
      return static_cast<std::int64_t>(
          std::ceil(std::log2(std::pow(10.0, p) - 1.0)));
    }
    case ColumnType::kDate:
      return 32;
    case ColumnType::kFixedUtf8:
      return static_cast<std::int64_t>(fixed_length) * 8;
  }
  return 0;
}

const Column* Schema::find_column(std::string_view column_name) const {
  for (const Column& c : columns) {
    if (c.name == column_name) return &c;
  }
  return nullptr;
}

bool Schema::is_primary_key(std::string_view column_name) const {
  return std::find(primary_keys.begin(), primary_keys.end(), column_name) !=
         primary_keys.end();
}

}  // namespace tydi::fletcher
