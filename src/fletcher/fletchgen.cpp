#include "src/fletcher/fletchgen.hpp"

#include "src/support/text.hpp"

namespace tydi::fletcher {

std::string column_type_name(const Schema& schema, const Column& column) {
  return "t_" + schema.name + "_" + column.name;
}

std::string generate_interface(const Schema& schema,
                               const FletchgenOptions& options) {
  support::CodeWriter w;
  const std::string dim = std::to_string(options.dimension);
  const std::string complexity = std::to_string(options.complexity);
  w.line("// interface for Arrow schema '", schema.name,
         "' (generated, Fletcher-style)");
  for (const Column& c : schema.columns) {
    w.line("type ", column_type_name(schema, c), " = Stream(Bit(",
           std::to_string(c.bit_width()), "), d=", dim, ", c=", complexity,
           ");");
  }
  w.open("streamlet ", schema.name, "_reader_s {");
  for (const Column& c : schema.columns) {
    bool is_pk = schema.is_primary_key(c.name);
    w.line(c.name, ": ", column_type_name(schema, c),
           is_pk ? " in," : " out,");
  }
  w.close("}");
  w.line("impl ", schema.name, "_reader_i of ", schema.name,
         "_reader_s @ external {");
  w.line("}");
  return w.take();
}

std::string generate_interfaces(const std::vector<Schema>& schemas,
                                const FletchgenOptions& options) {
  std::string out = "package fletcher;\n";
  for (const Schema& s : schemas) {
    out += "\n";
    out += generate_interface(s, options);
  }
  return out;
}

namespace {

constexpr std::string_view kReaderSuffix = "_reader_i";

}  // namespace

std::vector<ReaderInfo> readers_of(const ir::Module& module) {
  std::vector<ReaderInfo> out;
  for (const ir::IrImpl& impl : module.impls) {
    if (!impl.external || !impl.name.ends_with(kReaderSuffix)) continue;
    const ir::IrStreamlet* s = module.streamlet_of(impl);
    if (s == nullptr) continue;
    ReaderInfo info;
    info.table = impl.name.substr(0, impl.name.size() - kReaderSuffix.size());
    info.impl = impl.name;
    info.ports.reserve(s->ports.size());
    for (const ir::IrPort& p : s->ports) {
      ReaderPort rp;
      rp.column = p.name;
      // Generated readers expose primary keys as input ports (Sec. VI).
      rp.is_primary_key = (p.dir == lang::PortDir::kIn);
      if (!p.layouts.empty()) {
        const types::PhysicalStream& primary = p.layouts.front().stream;
        rp.data_bits = primary.data_bits;
        rp.dimension = primary.dimension;
        rp.complexity = primary.complexity;
      }
      info.ports.push_back(std::move(rp));
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string generate_reader_manifest(const ir::Module& module) {
  support::CodeWriter w;
  std::vector<ReaderInfo> readers = readers_of(module);
  w.line("# fletchgen reader manifest (recovered from Tydi-IR)");
  w.line("# readers: ", std::to_string(readers.size()));
  for (const ReaderInfo& r : readers) {
    w.line();
    w.open("reader ", r.table, " (impl ", r.impl, ") {");
    for (const ReaderPort& p : r.ports) {
      w.line("column ", p.column, ": ",
             p.is_primary_key ? "key_in" : "data_out", ", bits=",
             std::to_string(p.data_bits), ", d=", std::to_string(p.dimension),
             ", c=", std::to_string(p.complexity), ";");
    }
    w.close("}");
  }
  return w.take();
}

}  // namespace tydi::fletcher
