#include "src/fletcher/fletchgen.hpp"

#include "src/support/text.hpp"

namespace tydi::fletcher {

std::string column_type_name(const Schema& schema, const Column& column) {
  return "t_" + schema.name + "_" + column.name;
}

std::string generate_interface(const Schema& schema,
                               const FletchgenOptions& options) {
  support::CodeWriter w;
  w.line("// interface for Arrow schema '" + schema.name +
         "' (generated, Fletcher-style)");
  for (const Column& c : schema.columns) {
    w.line("type " + column_type_name(schema, c) + " = Stream(Bit(" +
           std::to_string(c.bit_width()) + "), d=" +
           std::to_string(options.dimension) + ", c=" +
           std::to_string(options.complexity) + ");");
  }
  w.open("streamlet " + schema.name + "_reader_s {");
  for (const Column& c : schema.columns) {
    bool is_pk = schema.is_primary_key(c.name);
    w.line(c.name + ": " + column_type_name(schema, c) +
           (is_pk ? " in," : " out,"));
  }
  w.close("}");
  w.line("impl " + schema.name + "_reader_i of " + schema.name +
         "_reader_s @ external {");
  w.line("}");
  return w.take();
}

std::string generate_interfaces(const std::vector<Schema>& schemas,
                                const FletchgenOptions& options) {
  std::string out = "package fletcher;\n";
  for (const Schema& s : schemas) {
    out += "\n";
    out += generate_interface(s, options);
  }
  return out;
}

}  // namespace tydi::fletcher
