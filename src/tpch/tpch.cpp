#include "src/tpch/tpch.hpp"

#include "src/fletcher/fletchgen.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"

namespace tydi::tpch {

using fletcher::Column;
using fletcher::ColumnType;
using fletcher::Schema;

namespace {

Column col(std::string name, ColumnType type, int a = 0, int b = 0) {
  Column c;
  c.name = std::move(name);
  c.type = type;
  if (type == ColumnType::kDecimal) {
    c.precision = a;
    c.scale = b;
  } else if (type == ColumnType::kFixedUtf8) {
    c.fixed_length = a;
  }
  return c;
}

std::vector<Schema> build_schemas() {
  std::vector<Schema> schemas;

  Schema lineitem;
  lineitem.name = "lineitem";
  lineitem.primary_keys = {"l_orderkey"};
  lineitem.columns = {
      col("l_orderkey", ColumnType::kInt64),
      col("l_partkey", ColumnType::kInt64),
      col("l_suppkey", ColumnType::kInt64),
      col("l_linenumber", ColumnType::kInt32),
      col("l_quantity", ColumnType::kDecimal, 15, 2),
      col("l_extendedprice", ColumnType::kDecimal, 15, 2),
      col("l_discount", ColumnType::kDecimal, 15, 2),
      col("l_tax", ColumnType::kDecimal, 15, 2),
      col("l_returnflag", ColumnType::kFixedUtf8, 1),
      col("l_linestatus", ColumnType::kFixedUtf8, 1),
      col("l_shipdate", ColumnType::kDate),
      col("l_commitdate", ColumnType::kDate),
      col("l_receiptdate", ColumnType::kDate),
      col("l_shipinstruct", ColumnType::kFixedUtf8, 25),
      col("l_shipmode", ColumnType::kFixedUtf8, 10),
      col("l_comment", ColumnType::kFixedUtf8, 44),
  };
  schemas.push_back(std::move(lineitem));

  Schema part;
  part.name = "part";
  part.primary_keys = {"p_partkey"};
  part.columns = {
      col("p_partkey", ColumnType::kInt64),
      col("p_name", ColumnType::kFixedUtf8, 55),
      col("p_mfgr", ColumnType::kFixedUtf8, 25),
      col("p_brand", ColumnType::kFixedUtf8, 10),
      col("p_type", ColumnType::kFixedUtf8, 25),
      col("p_size", ColumnType::kInt32),
      col("p_container", ColumnType::kFixedUtf8, 10),
      col("p_retailprice", ColumnType::kDecimal, 15, 2),
      col("p_comment", ColumnType::kFixedUtf8, 23),
  };
  schemas.push_back(std::move(part));

  Schema orders;
  orders.name = "orders";
  orders.primary_keys = {"o_orderkey"};
  orders.columns = {
      col("o_orderkey", ColumnType::kInt64),
      col("o_custkey", ColumnType::kInt64),
      col("o_orderstatus", ColumnType::kFixedUtf8, 1),
      col("o_totalprice", ColumnType::kDecimal, 15, 2),
      col("o_orderdate", ColumnType::kDate),
      col("o_orderpriority", ColumnType::kFixedUtf8, 15),
      col("o_clerk", ColumnType::kFixedUtf8, 15),
      col("o_shippriority", ColumnType::kInt32),
      col("o_comment", ColumnType::kFixedUtf8, 79),
  };
  schemas.push_back(std::move(orders));

  Schema customer;
  customer.name = "customer";
  customer.primary_keys = {"c_custkey"};
  customer.columns = {
      col("c_custkey", ColumnType::kInt64),
      col("c_name", ColumnType::kFixedUtf8, 25),
      col("c_address", ColumnType::kFixedUtf8, 40),
      col("c_nationkey", ColumnType::kInt64),
      col("c_phone", ColumnType::kFixedUtf8, 15),
      col("c_acctbal", ColumnType::kDecimal, 15, 2),
      col("c_mktsegment", ColumnType::kFixedUtf8, 10),
      col("c_comment", ColumnType::kFixedUtf8, 117),
  };
  schemas.push_back(std::move(customer));

  Schema supplier;
  supplier.name = "supplier";
  supplier.primary_keys = {"s_suppkey"};
  supplier.columns = {
      col("s_suppkey", ColumnType::kInt64),
      col("s_name", ColumnType::kFixedUtf8, 25),
      col("s_address", ColumnType::kFixedUtf8, 40),
      col("s_nationkey", ColumnType::kInt64),
      col("s_phone", ColumnType::kFixedUtf8, 15),
      col("s_acctbal", ColumnType::kDecimal, 15, 2),
      col("s_comment", ColumnType::kFixedUtf8, 101),
  };
  schemas.push_back(std::move(supplier));

  Schema nation;
  nation.name = "nation";
  nation.primary_keys = {"n_nationkey"};
  nation.columns = {
      col("n_nationkey", ColumnType::kInt64),
      col("n_name", ColumnType::kFixedUtf8, 25),
      col("n_regionkey", ColumnType::kInt64),
      col("n_comment", ColumnType::kFixedUtf8, 152),
  };
  schemas.push_back(std::move(nation));

  Schema region;
  region.name = "region";
  region.primary_keys = {"r_regionkey"};
  region.columns = {
      col("r_regionkey", ColumnType::kInt64),
      col("r_name", ColumnType::kFixedUtf8, 25),
      col("r_comment", ColumnType::kFixedUtf8, 152),
  };
  schemas.push_back(std::move(region));

  return schemas;
}

// ===========================================================================
// TPC-H 6 — forecasting revenue change.
// ===========================================================================

constexpr std::string_view kQ6Sql = R"sql(
select
  sum(l_extendedprice * l_discount) as revenue
from
  lineitem
where
  l_shipdate >= date ':1'
  and l_shipdate < date ':1' + interval '1' year
  and l_discount between :2 - 0.01 and :2 + 0.01
  and l_quantity < 24;
)sql";

constexpr std::string_view kQ6Source = R"tydi(
package q6;

// revenue item and aggregate: product of two 50-bit decimals
type t_q6_mul = Stream(Bit(100), d=1, c=2);
type t_q6_total = Stream(Bit(100), d=1, c=2);

streamlet q6_s {
  orderkey_req: t_lineitem_l_orderkey in,
  revenue: t_q6_total out,
}

impl q6_i of q6_s {
  // date ':1' = 1994-01-01 (days since epoch) and one year later
  const date_lo = 8766;
  const date_hi = 9131;
  // discount between :2 - 0.01 and :2 + 0.01, scaled to integer cents
  const disc_lo = 5;
  const disc_hi = 7;
  const qty_hi = 24;

  // memory access component (Fletcher)
  instance reader(lineitem_reader_i),
  orderkey_req => reader.l_orderkey,

  // where clause predicates
  instance p_date_lo(const_compare_int_i<type t_lineitem_l_shipdate, type std_bool, date_lo, ">=">),
  instance p_date_hi(const_compare_int_i<type t_lineitem_l_shipdate, type std_bool, date_hi, "<">),
  instance p_disc_lo(const_compare_int_i<type t_lineitem_l_discount, type std_bool, disc_lo, ">=">),
  instance p_disc_hi(const_compare_int_i<type t_lineitem_l_discount, type std_bool, disc_hi, "<=">),
  instance p_qty(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_hi, "<">),
  reader.l_shipdate => p_date_lo.in_,
  reader.l_shipdate => p_date_hi.in_,
  reader.l_discount => p_disc_lo.in_,
  reader.l_discount => p_disc_hi.in_,
  reader.l_quantity => p_qty.in_,

  // conjunction of the five predicates
  instance keep_and(logic_and_i<type std_bool, 5>),
  p_date_lo.out => keep_and.in_[0],
  p_date_hi.out => keep_and.in_[1],
  p_disc_lo.out => keep_and.in_[2],
  p_disc_hi.out => keep_and.in_[3],
  p_qty.out => keep_and.in_[4],

  // filter both operand columns with the same keep stream
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  reader.l_extendedprice => f_price.in_,
  reader.l_discount => f_disc.in_,
  keep_and.out => f_price.keep,
  keep_and.out => f_disc.keep,

  // revenue = sum(l_extendedprice * l_discount)
  instance mul(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q6_mul>),
  f_price.out => mul.lhs,
  f_disc.out => mul.rhs,
  instance acc(accumulator_i<type t_q6_mul, type t_q6_total>),
  mul.out => acc.in_,
  acc.out => revenue,
}
)tydi";

// ===========================================================================
// TPC-H 1 — pricing summary report.
// ===========================================================================

constexpr std::string_view kQ1Sql = R"sql(
select
  l_returnflag, l_linestatus,
  sum(l_quantity) as sum_qty,
  sum(l_extendedprice) as sum_base_price,
  sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
  sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
  avg(l_quantity) as avg_qty,
  avg(l_extendedprice) as avg_price,
  avg(l_discount) as avg_disc,
  count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval ':1' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus;
)sql";

// Shared body of both Q1 variants (group keys, aggregates, arithmetic).
// The sugared variant relies on automatic duplicator/voider insertion; the
// non-sugared variant spells every duplicator and voider out by hand.
constexpr std::string_view kQ1Source = R"tydi(
package q1;

// widened aggregate types (products of 50-bit scaled decimals)
type t_q1_money = Stream(Bit(100), d=1, c=2);
type t_q1_charge = Stream(Bit(150), d=1, c=2);
type t_q1_sum = Stream(Bit(100), d=1, c=2);
type t_q1_charge_sum = Stream(Bit(150), d=1, c=2);
type t_q1_one = Stream(Bit(64), d=1, c=2);
type t_q1_count = Stream(Bit(64), d=1, c=2);

streamlet q1_s {
  orderkey_req: t_lineitem_l_orderkey in,
  group_flag: t_lineitem_l_returnflag out,
  group_status: t_lineitem_l_linestatus out,
  sum_qty: t_q1_sum out,
  sum_base_price: t_q1_sum out,
  sum_disc_price: t_q1_sum out,
  sum_charge: t_q1_charge_sum out,
  sum_disc: t_q1_sum out,
  count_rows: t_q1_count out,
}

impl q1_i of q1_s {
  // date '1998-12-01' - interval ':1' day, as days since epoch
  const ship_cutoff = 10490;
  // scaled decimal constant 1.00 (two digits after the point)
  const one_scaled = 100;

  // memory access component (Fletcher)
  instance reader(lineitem_reader_i),
  orderkey_req => reader.l_orderkey,

  // where l_shipdate <= ship_cutoff
  instance p_date(const_compare_int_i<type t_lineitem_l_shipdate, type std_bool, ship_cutoff, "<=">),
  reader.l_shipdate => p_date.in_,

  // filter every column the aggregates consume with the same predicate
  instance f_qty(filter_i<type t_lineitem_l_quantity, type std_bool>),
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  instance f_tax(filter_i<type t_lineitem_l_tax, type std_bool>),
  instance f_flag(filter_i<type t_lineitem_l_returnflag, type std_bool>),
  instance f_status(filter_i<type t_lineitem_l_linestatus, type std_bool>),
  instance f_ones(filter_i<type t_q1_one, type std_bool>),
  reader.l_quantity => f_qty.in_,
  reader.l_extendedprice => f_price.in_,
  reader.l_discount => f_disc.in_,
  reader.l_tax => f_tax.in_,
  reader.l_returnflag => f_flag.in_,
  reader.l_linestatus => f_status.in_,
  p_date.out => f_qty.keep,
  p_date.out => f_price.keep,
  p_date.out => f_disc.keep,
  p_date.out => f_tax.keep,
  p_date.out => f_flag.keep,
  p_date.out => f_status.keep,
  p_date.out => f_ones.keep,

  // count(*): a constant 1 per row, filtered and summed
  instance c_ones(const_generator_i<type t_q1_one, 1>),
  c_ones.out => f_ones.in_,

  // 1 - l_discount and 1 + l_tax on scaled decimals
  instance c_one_d(const_generator_i<type t_lineitem_l_discount, one_scaled>),
  instance c_one_t(const_generator_i<type t_lineitem_l_tax, one_scaled>),
  instance one_minus_disc(sub2_i<type t_lineitem_l_discount, type t_lineitem_l_discount, type t_lineitem_l_discount>),
  instance one_plus_tax(add2_i<type t_lineitem_l_tax, type t_lineitem_l_tax, type t_lineitem_l_tax>),
  c_one_d.out => one_minus_disc.lhs,
  f_disc.out => one_minus_disc.rhs,
  c_one_t.out => one_plus_tax.lhs,
  f_tax.out => one_plus_tax.rhs,

  // disc_price = l_extendedprice * (1 - l_discount)
  instance disc_price(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q1_money>),
  f_price.out => disc_price.lhs,
  one_minus_disc.out => disc_price.rhs,

  // charge = disc_price * (1 + l_tax)
  instance charge(mul2_i<type t_q1_money, type t_lineitem_l_tax, type t_q1_charge>),
  disc_price.out => charge.lhs,
  one_plus_tax.out => charge.rhs,

  // aggregates (avg(x) = sum(x) / count on the host side)
  instance acc_qty(accumulator_i<type t_lineitem_l_quantity, type t_q1_sum>),
  instance acc_price(accumulator_i<type t_lineitem_l_extendedprice, type t_q1_sum>),
  instance acc_disc_price(accumulator_i<type t_q1_money, type t_q1_sum>),
  instance acc_charge(accumulator_i<type t_q1_charge, type t_q1_charge_sum>),
  instance acc_disc(accumulator_i<type t_lineitem_l_discount, type t_q1_sum>),
  instance acc_count(accumulator_i<type t_q1_one, type t_q1_count>),
  f_qty.out => acc_qty.in_,
  f_price.out => acc_price.in_,
  disc_price.out => acc_disc_price.in_,
  charge.out => acc_charge.in_,
  f_disc.out => acc_disc.in_,
  f_ones.out => acc_count.in_,

  // group keys stream out for host-side group-by/order-by
  f_flag.out => group_flag,
  f_status.out => group_status,
  acc_qty.out => sum_qty,
  acc_price.out => sum_base_price,
  acc_disc_price.out => sum_disc_price,
  acc_charge.out => sum_charge,
  acc_disc.out => sum_disc,
  acc_count.out => count_rows,
}
)tydi";

// Non-sugared Q1: the identical query with every duplicator and voider
// written out manually (Table IV row "TPC-H 1 (without sugaring)").
constexpr std::string_view kQ1NoSugarSource = R"tydi(
package q1;

type t_q1_money = Stream(Bit(100), d=1, c=2);
type t_q1_charge = Stream(Bit(150), d=1, c=2);
type t_q1_sum = Stream(Bit(100), d=1, c=2);
type t_q1_charge_sum = Stream(Bit(150), d=1, c=2);
type t_q1_one = Stream(Bit(64), d=1, c=2);
type t_q1_count = Stream(Bit(64), d=1, c=2);

streamlet q1_s {
  orderkey_req: t_lineitem_l_orderkey in,
  group_flag: t_lineitem_l_returnflag out,
  group_status: t_lineitem_l_linestatus out,
  sum_qty: t_q1_sum out,
  sum_base_price: t_q1_sum out,
  sum_disc_price: t_q1_sum out,
  sum_charge: t_q1_charge_sum out,
  sum_disc: t_q1_sum out,
  count_rows: t_q1_count out,
}

impl q1_i of q1_s {
  const ship_cutoff = 10490;
  const one_scaled = 100;

  instance reader(lineitem_reader_i),
  orderkey_req => reader.l_orderkey,

  // manual voiders for every unused Fletcher output
  instance v_partkey(voider_i<type t_lineitem_l_partkey>),
  instance v_suppkey(voider_i<type t_lineitem_l_suppkey>),
  instance v_linenumber(voider_i<type t_lineitem_l_linenumber>),
  instance v_commitdate(voider_i<type t_lineitem_l_commitdate>),
  instance v_receiptdate(voider_i<type t_lineitem_l_receiptdate>),
  instance v_shipinstruct(voider_i<type t_lineitem_l_shipinstruct>),
  instance v_shipmode(voider_i<type t_lineitem_l_shipmode>),
  instance v_comment(voider_i<type t_lineitem_l_comment>),
  reader.l_partkey => v_partkey.in_,
  reader.l_suppkey => v_suppkey.in_,
  reader.l_linenumber => v_linenumber.in_,
  reader.l_commitdate => v_commitdate.in_,
  reader.l_receiptdate => v_receiptdate.in_,
  reader.l_shipinstruct => v_shipinstruct.in_,
  reader.l_shipmode => v_shipmode.in_,
  reader.l_comment => v_comment.in_,

  instance p_date(const_compare_int_i<type t_lineitem_l_shipdate, type std_bool, ship_cutoff, "<=">),
  reader.l_shipdate => p_date.in_,

  // manual duplicator for the shared keep stream (7 consumers)
  instance d_keep(duplicator_i<type std_bool, 7>),
  p_date.out => d_keep.in_,

  instance f_qty(filter_i<type t_lineitem_l_quantity, type std_bool>),
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  instance f_tax(filter_i<type t_lineitem_l_tax, type std_bool>),
  instance f_flag(filter_i<type t_lineitem_l_returnflag, type std_bool>),
  instance f_status(filter_i<type t_lineitem_l_linestatus, type std_bool>),
  instance f_ones(filter_i<type t_q1_one, type std_bool>),
  reader.l_quantity => f_qty.in_,
  reader.l_extendedprice => f_price.in_,
  reader.l_discount => f_disc.in_,
  reader.l_tax => f_tax.in_,
  reader.l_returnflag => f_flag.in_,
  reader.l_linestatus => f_status.in_,
  d_keep.out_[0] => f_qty.keep,
  d_keep.out_[1] => f_price.keep,
  d_keep.out_[2] => f_disc.keep,
  d_keep.out_[3] => f_tax.keep,
  d_keep.out_[4] => f_flag.keep,
  d_keep.out_[5] => f_status.keep,
  d_keep.out_[6] => f_ones.keep,

  instance c_ones(const_generator_i<type t_q1_one, 1>),
  c_ones.out => f_ones.in_,

  // manual duplicators for the reused value streams
  instance d_price(duplicator_i<type t_lineitem_l_extendedprice, 2>),
  instance d_disc(duplicator_i<type t_lineitem_l_discount, 2>),
  f_price.out => d_price.in_,
  f_disc.out => d_disc.in_,

  instance c_one_d(const_generator_i<type t_lineitem_l_discount, one_scaled>),
  instance c_one_t(const_generator_i<type t_lineitem_l_tax, one_scaled>),
  instance one_minus_disc(sub2_i<type t_lineitem_l_discount, type t_lineitem_l_discount, type t_lineitem_l_discount>),
  instance one_plus_tax(add2_i<type t_lineitem_l_tax, type t_lineitem_l_tax, type t_lineitem_l_tax>),
  c_one_d.out => one_minus_disc.lhs,
  d_disc.out_[0] => one_minus_disc.rhs,
  c_one_t.out => one_plus_tax.lhs,
  f_tax.out => one_plus_tax.rhs,

  instance disc_price(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q1_money>),
  d_price.out_[0] => disc_price.lhs,
  one_minus_disc.out => disc_price.rhs,

  instance d_disc_price(duplicator_i<type t_q1_money, 2>),
  disc_price.out => d_disc_price.in_,

  instance charge(mul2_i<type t_q1_money, type t_lineitem_l_tax, type t_q1_charge>),
  d_disc_price.out_[0] => charge.lhs,
  one_plus_tax.out => charge.rhs,

  instance acc_qty(accumulator_i<type t_lineitem_l_quantity, type t_q1_sum>),
  instance acc_price(accumulator_i<type t_lineitem_l_extendedprice, type t_q1_sum>),
  instance acc_disc_price(accumulator_i<type t_q1_money, type t_q1_sum>),
  instance acc_charge(accumulator_i<type t_q1_charge, type t_q1_charge_sum>),
  instance acc_disc(accumulator_i<type t_lineitem_l_discount, type t_q1_sum>),
  instance acc_count(accumulator_i<type t_q1_one, type t_q1_count>),
  f_qty.out => acc_qty.in_,
  d_price.out_[1] => acc_price.in_,
  d_disc_price.out_[1] => acc_disc_price.in_,
  charge.out => acc_charge.in_,
  d_disc.out_[1] => acc_disc.in_,
  f_ones.out => acc_count.in_,

  f_flag.out => group_flag,
  f_status.out => group_status,
  acc_qty.out => sum_qty,
  acc_price.out => sum_base_price,
  acc_disc_price.out => sum_disc_price,
  acc_charge.out => sum_charge,
  acc_disc.out => sum_disc,
  acc_count.out => count_rows,
}
)tydi";

// ===========================================================================
// TPC-H 3 — shipping priority.
// ===========================================================================

constexpr std::string_view kQ3Sql = R"sql(
select
  l_orderkey,
  sum(l_extendedprice * (1 - l_discount)) as revenue,
  o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = ':1'
  and c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and o_orderdate < date ':2'
  and l_shipdate > date ':2'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate;
)sql";

constexpr std::string_view kQ3Source = R"tydi(
package q3;

type t_q3_money = Stream(Bit(100), d=1, c=2);
type t_q3_total = Stream(Bit(100), d=1, c=2);

streamlet q3_s {
  orderkey_req: t_lineitem_l_orderkey in,
  revenue: t_q3_total out,
  group_orderdate: t_orders_o_orderdate out,
  group_shippriority: t_orders_o_shippriority out,
}

impl q3_i of q3_s {
  // ':2' = 1995-03-15 as days since epoch
  const cutoff_date = 9204;
  const one_scaled = 100;

  instance reader_l(lineitem_reader_i),
  instance reader_o(orders_reader_i),
  instance reader_c(customer_reader_i),

  // the same order keys request lineitem and orders rows (aligned scan);
  // customer rows are requested by the returned o_custkey (index lookup),
  // which realizes c_custkey = o_custkey and l_orderkey = o_orderkey
  orderkey_req => reader_l.l_orderkey,
  orderkey_req => reader_o.o_orderkey @structural,
  reader_o.o_custkey => reader_c.c_custkey @structural,

  // where predicates
  instance p_seg(const_compare_i<type t_customer_c_mktsegment, type std_bool, "BUILDING", "==">),
  instance p_odate(const_compare_int_i<type t_orders_o_orderdate, type std_bool, cutoff_date, "<">),
  instance p_sdate(const_compare_int_i<type t_lineitem_l_shipdate, type std_bool, cutoff_date, ">">),
  reader_c.c_mktsegment => p_seg.in_,
  reader_o.o_orderdate => p_odate.in_,
  reader_l.l_shipdate => p_sdate.in_,

  instance keep_and(logic_and_i<type std_bool, 3>),
  p_seg.out => keep_and.in_[0],
  p_odate.out => keep_and.in_[1],
  p_sdate.out => keep_and.in_[2],

  // revenue = sum(l_extendedprice * (1 - l_discount)) over kept rows
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  instance f_odate(filter_i<type t_orders_o_orderdate, type std_bool>),
  instance f_prio(filter_i<type t_orders_o_shippriority, type std_bool>),
  reader_l.l_extendedprice => f_price.in_,
  reader_l.l_discount => f_disc.in_,
  reader_o.o_orderdate => f_odate.in_,
  reader_o.o_shippriority => f_prio.in_,
  keep_and.out => f_price.keep,
  keep_and.out => f_disc.keep,
  keep_and.out => f_odate.keep,
  keep_and.out => f_prio.keep,

  instance c_one(const_generator_i<type t_lineitem_l_discount, one_scaled>),
  instance one_minus_disc(sub2_i<type t_lineitem_l_discount, type t_lineitem_l_discount, type t_lineitem_l_discount>),
  c_one.out => one_minus_disc.lhs,
  f_disc.out => one_minus_disc.rhs,
  instance mul(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q3_money>),
  f_price.out => mul.lhs,
  one_minus_disc.out => mul.rhs,
  instance acc(accumulator_i<type t_q3_money, type t_q3_total>),
  mul.out => acc.in_,
  acc.out => revenue,
  f_odate.out => group_orderdate,
  f_prio.out => group_shippriority,
}
)tydi";

// ===========================================================================
// TPC-H 5 — local supplier volume.
// ===========================================================================

constexpr std::string_view kQ5Sql = R"sql(
select
  n_name,
  sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = ':1'
  and o_orderdate >= date ':2'
  and o_orderdate < date ':2' + interval '1' year
group by n_name
order by revenue desc;
)sql";

constexpr std::string_view kQ5Source = R"tydi(
package q5;

type t_q5_money = Stream(Bit(100), d=1, c=2);
type t_q5_total = Stream(Bit(100), d=1, c=2);

streamlet q5_s {
  orderkey_req: t_lineitem_l_orderkey in,
  group_nation: t_nation_n_name out,
  revenue: t_q5_total out,
}

impl q5_i of q5_s {
  const date_lo = 8766;
  const date_hi = 9131;
  const one_scaled = 100;

  instance reader_l(lineitem_reader_i),
  instance reader_o(orders_reader_i),
  instance reader_c(customer_reader_i),
  instance reader_s(supplier_reader_i),
  instance reader_n(nation_reader_i),
  instance reader_r(region_reader_i),

  // aligned scan of lineitem/orders; index lookups along the join chain
  orderkey_req => reader_l.l_orderkey,
  orderkey_req => reader_o.o_orderkey @structural,
  reader_o.o_custkey => reader_c.c_custkey @structural,
  reader_l.l_suppkey => reader_s.s_suppkey @structural,
  reader_s.s_nationkey => reader_n.n_nationkey @structural,
  reader_n.n_regionkey => reader_r.r_regionkey @structural,

  // c_nationkey = s_nationkey (the join predicate not satisfied by lookup)
  instance p_nation(cmp2_i<type t_customer_c_nationkey, type t_supplier_s_nationkey, type std_bool, "==">),
  reader_c.c_nationkey => p_nation.lhs,
  reader_s.s_nationkey => p_nation.rhs,

  // r_name = ':1' and the order date window
  instance p_region(const_compare_i<type t_region_r_name, type std_bool, "ASIA", "==">),
  instance p_date_lo(const_compare_int_i<type t_orders_o_orderdate, type std_bool, date_lo, ">=">),
  instance p_date_hi(const_compare_int_i<type t_orders_o_orderdate, type std_bool, date_hi, "<">),
  reader_r.r_name => p_region.in_,
  reader_o.o_orderdate => p_date_lo.in_,
  reader_o.o_orderdate => p_date_hi.in_,

  instance keep_and(logic_and_i<type std_bool, 4>),
  p_nation.out => keep_and.in_[0],
  p_region.out => keep_and.in_[1],
  p_date_lo.out => keep_and.in_[2],
  p_date_hi.out => keep_and.in_[3],

  // revenue and the n_name group key
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  instance f_name(filter_i<type t_nation_n_name, type std_bool>),
  reader_l.l_extendedprice => f_price.in_,
  reader_l.l_discount => f_disc.in_,
  reader_n.n_name => f_name.in_,
  keep_and.out => f_price.keep,
  keep_and.out => f_disc.keep,
  keep_and.out => f_name.keep,

  instance c_one(const_generator_i<type t_lineitem_l_discount, one_scaled>),
  instance one_minus_disc(sub2_i<type t_lineitem_l_discount, type t_lineitem_l_discount, type t_lineitem_l_discount>),
  c_one.out => one_minus_disc.lhs,
  f_disc.out => one_minus_disc.rhs,
  instance mul(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q5_money>),
  f_price.out => mul.lhs,
  one_minus_disc.out => mul.rhs,
  instance acc(accumulator_i<type t_q5_money, type t_q5_total>),
  mul.out => acc.in_,
  acc.out => revenue,
  f_name.out => group_nation,
}
)tydi";

// ===========================================================================
// TPC-H 19 — discounted revenue (three or-clauses with in-lists).
// ===========================================================================

constexpr std::string_view kQ19Sql = R"sql(
select
  sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, part
where
  ( p_partkey = l_partkey and p_brand = ':1'
    and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
    and l_quantity >= :4 and l_quantity <= :4 + 10
    and p_size between 1 and 5
    and l_shipmode in ('AIR', 'AIR REG')
    and l_shipinstruct = 'DELIVER IN PERSON' )
  or
  ( p_partkey = l_partkey and p_brand = ':2'
    and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
    and l_quantity >= :5 and l_quantity <= :5 + 10
    and p_size between 1 and 10
    and l_shipmode in ('AIR', 'AIR REG')
    and l_shipinstruct = 'DELIVER IN PERSON' )
  or
  ( p_partkey = l_partkey and p_brand = ':3'
    and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
    and l_quantity >= :6 and l_quantity <= :6 + 10
    and p_size between 1 and 15
    and l_shipmode in ('AIR', 'AIR REG')
    and l_shipinstruct = 'DELIVER IN PERSON' );
)sql";

constexpr std::string_view kQ19Source = R"tydi(
package q19;

type t_q19_money = Stream(Bit(100), d=1, c=2);
type t_q19_total = Stream(Bit(100), d=1, c=2);

streamlet q19_s {
  orderkey_req: t_lineitem_l_orderkey in,
  revenue: t_q19_total out,
}

impl q19_i of q19_s {
  const one_scaled = 100;
  const qty_1 = 1;
  const qty_2 = 10;
  const qty_3 = 20;

  instance reader_l(lineitem_reader_i),
  instance reader_p(part_reader_i),
  orderkey_req => reader_l.l_orderkey,
  // p_partkey = l_partkey: part rows are fetched by the lineitem part key
  reader_l.l_partkey => reader_p.p_partkey @structural,

  // predicates shared by the three or-clauses
  instance p_instruct(const_compare_i<type t_lineitem_l_shipinstruct, type std_bool, "DELIVER IN PERSON", "==">),
  reader_l.l_shipinstruct => p_instruct.in_,
  const shipmodes = ["AIR", "AIR REG"];
  instance or_ship(logic_or_i<type std_bool, 2>),
  for i in 0->2 {
    instance p_ship[i](const_compare_i<type t_lineitem_l_shipmode, type std_bool, shipmodes[i], "==">),
    reader_l.l_shipmode => p_ship[i].in_,
    p_ship[i].out => or_ship.in_[i],
  }

  // clause 1: ':1' brand, SM containers, quantity window, size 1..5
  const containers_1 = ["SM CASE", "SM BOX", "SM PACK", "SM PKG"];
  instance p_brand_1(const_compare_i<type t_part_p_brand, type std_bool, "Brand#12", "==">),
  reader_p.p_brand => p_brand_1.in_,
  instance or_cont_1(logic_or_i<type std_bool, 4>),
  for i in 0->4 {
    instance p_cont_1[i](const_compare_i<type t_part_p_container, type std_bool, containers_1[i], "==">),
    reader_p.p_container => p_cont_1[i].in_,
    p_cont_1[i].out => or_cont_1.in_[i],
  }
  instance p_qty_lo_1(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_1, ">=">),
  instance p_qty_hi_1(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_1 + 10, "<=">),
  instance p_size_lo_1(const_compare_int_i<type t_part_p_size, type std_bool, 1, ">=">),
  instance p_size_hi_1(const_compare_int_i<type t_part_p_size, type std_bool, 5, "<=">),
  reader_l.l_quantity => p_qty_lo_1.in_,
  reader_l.l_quantity => p_qty_hi_1.in_,
  reader_p.p_size => p_size_lo_1.in_,
  reader_p.p_size => p_size_hi_1.in_,
  instance and_1(logic_and_i<type std_bool, 8>),
  p_brand_1.out => and_1.in_[0],
  or_cont_1.out => and_1.in_[1],
  p_qty_lo_1.out => and_1.in_[2],
  p_qty_hi_1.out => and_1.in_[3],
  p_size_lo_1.out => and_1.in_[4],
  p_size_hi_1.out => and_1.in_[5],
  or_ship.out => and_1.in_[6],
  p_instruct.out => and_1.in_[7],

  // clause 2: ':2' brand, MED containers, quantity window, size 1..10
  const containers_2 = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
  instance p_brand_2(const_compare_i<type t_part_p_brand, type std_bool, "Brand#23", "==">),
  reader_p.p_brand => p_brand_2.in_,
  instance or_cont_2(logic_or_i<type std_bool, 4>),
  for i in 0->4 {
    instance p_cont_2[i](const_compare_i<type t_part_p_container, type std_bool, containers_2[i], "==">),
    reader_p.p_container => p_cont_2[i].in_,
    p_cont_2[i].out => or_cont_2.in_[i],
  }
  instance p_qty_lo_2(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_2, ">=">),
  instance p_qty_hi_2(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_2 + 10, "<=">),
  instance p_size_lo_2(const_compare_int_i<type t_part_p_size, type std_bool, 1, ">=">),
  instance p_size_hi_2(const_compare_int_i<type t_part_p_size, type std_bool, 10, "<=">),
  reader_l.l_quantity => p_qty_lo_2.in_,
  reader_l.l_quantity => p_qty_hi_2.in_,
  reader_p.p_size => p_size_lo_2.in_,
  reader_p.p_size => p_size_hi_2.in_,
  instance and_2(logic_and_i<type std_bool, 8>),
  p_brand_2.out => and_2.in_[0],
  or_cont_2.out => and_2.in_[1],
  p_qty_lo_2.out => and_2.in_[2],
  p_qty_hi_2.out => and_2.in_[3],
  p_size_lo_2.out => and_2.in_[4],
  p_size_hi_2.out => and_2.in_[5],
  or_ship.out => and_2.in_[6],
  p_instruct.out => and_2.in_[7],

  // clause 3: ':3' brand, LG containers, quantity window, size 1..15
  const containers_3 = ["LG CASE", "LG BOX", "LG PACK", "LG PKG"];
  instance p_brand_3(const_compare_i<type t_part_p_brand, type std_bool, "Brand#34", "==">),
  reader_p.p_brand => p_brand_3.in_,
  instance or_cont_3(logic_or_i<type std_bool, 4>),
  for i in 0->4 {
    instance p_cont_3[i](const_compare_i<type t_part_p_container, type std_bool, containers_3[i], "==">),
    reader_p.p_container => p_cont_3[i].in_,
    p_cont_3[i].out => or_cont_3.in_[i],
  }
  instance p_qty_lo_3(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_3, ">=">),
  instance p_qty_hi_3(const_compare_int_i<type t_lineitem_l_quantity, type std_bool, qty_3 + 10, "<=">),
  instance p_size_lo_3(const_compare_int_i<type t_part_p_size, type std_bool, 1, ">=">),
  instance p_size_hi_3(const_compare_int_i<type t_part_p_size, type std_bool, 15, "<=">),
  reader_l.l_quantity => p_qty_lo_3.in_,
  reader_l.l_quantity => p_qty_hi_3.in_,
  reader_p.p_size => p_size_lo_3.in_,
  reader_p.p_size => p_size_hi_3.in_,
  instance and_3(logic_and_i<type std_bool, 8>),
  p_brand_3.out => and_3.in_[0],
  or_cont_3.out => and_3.in_[1],
  p_qty_lo_3.out => and_3.in_[2],
  p_qty_hi_3.out => and_3.in_[3],
  p_size_lo_3.out => and_3.in_[4],
  p_size_hi_3.out => and_3.in_[5],
  or_ship.out => and_3.in_[6],
  p_instruct.out => and_3.in_[7],

  // disjunction of the three clauses
  instance keep_or(logic_or_i<type std_bool, 3>),
  and_1.out => keep_or.in_[0],
  and_2.out => keep_or.in_[1],
  and_3.out => keep_or.in_[2],

  // revenue = sum(l_extendedprice * (1 - l_discount))
  instance f_price(filter_i<type t_lineitem_l_extendedprice, type std_bool>),
  instance f_disc(filter_i<type t_lineitem_l_discount, type std_bool>),
  reader_l.l_extendedprice => f_price.in_,
  reader_l.l_discount => f_disc.in_,
  keep_or.out => f_price.keep,
  keep_or.out => f_disc.keep,

  instance c_one(const_generator_i<type t_lineitem_l_discount, one_scaled>),
  instance one_minus_disc(sub2_i<type t_lineitem_l_discount, type t_lineitem_l_discount, type t_lineitem_l_discount>),
  c_one.out => one_minus_disc.lhs,
  f_disc.out => one_minus_disc.rhs,
  instance mul(mul2_i<type t_lineitem_l_extendedprice, type t_lineitem_l_discount, type t_q19_money>),
  f_price.out => mul.lhs,
  one_minus_disc.out => mul.rhs,
  instance acc(accumulator_i<type t_q19_money, type t_q19_total>),
  mul.out => acc.in_,
  acc.out => revenue,
}
)tydi";

std::vector<QueryCase> build_queries();

}  // namespace

const std::vector<Schema>& schemas() {
  static const std::vector<Schema> instance = build_schemas();
  return instance;
}

const std::string& fletcher_source() {
  static const std::string instance =
      fletcher::generate_interfaces(schemas(), fletcher::FletchgenOptions{});
  return instance;
}

std::size_t fletcher_loc() {
  return support::count_tydi_loc(fletcher_source());
}

const std::vector<QueryCase>& queries() {
  static const std::vector<QueryCase> instance = build_queries();
  return instance;
}

const QueryCase* find_query(std::string_view id, std::string_view note) {
  for (const QueryCase& q : queries()) {
    if (q.id == id && q.note == note) return &q;
  }
  return nullptr;
}

std::vector<driver::NamedSource> query_sources(const QueryCase& query) {
  std::vector<driver::NamedSource> sources;
  sources.push_back(
      driver::NamedSource{"fletcher.td", fletcher_source()});
  sources.push_back(driver::NamedSource{
      std::string(query.id) + ".td", std::string(query.source)});
  return sources;
}

driver::CompileOptions query_options(const QueryCase& query) {
  driver::CompileOptions options;
  options.top = query.top_impl;
  options.sugaring = query.sugaring;
  return options;
}

driver::CompileResult compile_query(const QueryCase& query) {
  return driver::compile(query_sources(query), query_options(query));
}

driver::CompileResult compile_query(const QueryCase& query,
                                    driver::CompileSession& session) {
  return session.compile(query_sources(query), query_options(query));
}

std::vector<driver::BatchJob> batch_jobs() {
  std::vector<driver::BatchJob> jobs;
  for (const QueryCase& q : queries()) {
    driver::BatchJob job;
    job.name = q.id + q.note;
    job.sources = query_sources(q);
    job.options = query_options(q);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Table4Row> measure_table4() {
  std::vector<Table4Row> rows;
  const std::size_t loc_f = fletcher_loc();
  const std::size_t loc_s = stdlib::stdlib_loc();
  for (const QueryCase& q : queries()) {
    Table4Row row;
    row.query = q.id + (q.note.empty() ? "" : " " + q.note);
    row.raw_sql_loc = support::count_tydi_loc(q.raw_sql);
    row.query_loc = support::count_tydi_loc(q.source);
    row.total_loc = row.query_loc + loc_f + loc_s;
    driver::CompileResult result = compile_query(q);
    row.compiled_ok = result.success();
    row.vhdl_loc = support::count_vhdl_loc(result.vhdl_text);
    if (row.query_loc > 0) {
      row.ratio_query =
          static_cast<double>(row.vhdl_loc) / static_cast<double>(row.query_loc);
    }
    if (row.total_loc > 0) {
      row.ratio_total =
          static_cast<double>(row.vhdl_loc) / static_cast<double>(row.total_loc);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

std::vector<QueryCase> build_queries() {
  std::vector<QueryCase> out;
  out.push_back(QueryCase{"TPC-H 1", "q1_i", kQ1NoSugarSource, kQ1Sql, false,
                          "(without sugaring)"});
  out.push_back(QueryCase{"TPC-H 1", "q1_i", kQ1Source, kQ1Sql, true, ""});
  out.push_back(QueryCase{"TPC-H 3", "q3_i", kQ3Source, kQ3Sql, true, ""});
  out.push_back(QueryCase{"TPC-H 5", "q5_i", kQ5Source, kQ5Sql, true, ""});
  out.push_back(QueryCase{"TPC-H 6", "q6_i", kQ6Source, kQ6Sql, true, ""});
  out.push_back(QueryCase{"TPC-H 19", "q19_i", kQ19Source, kQ19Sql, true,
                          ""});
  return out;
}

}  // namespace

}  // namespace tydi::tpch
