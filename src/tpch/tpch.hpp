// TPC-H workload for the Table IV experiment (Sec. VI).
//
// Each query case carries:
//  - the raw SQL (for documentation and the LoC of the "Raw SQL query"
//    column),
//  - the Tydi-lang query logic (LoCq),
// and compiles against the shared standard library (LoCs) and the
// Fletcher-generated table interfaces (LoCf), exactly mirroring the paper's
// three-part accounting: LoCa = LoCq + LoCf + LoCs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/driver/compiler.hpp"
#include "src/fletcher/schema.hpp"

namespace tydi::tpch {

struct QueryCase {
  std::string id;          ///< e.g. "TPC-H 6"
  std::string top_impl;    ///< top impl name, e.g. "q6_i"
  std::string_view source; ///< query logic in Tydi-lang
  std::string_view raw_sql;
  bool sugaring = true;    ///< false for the manual (non-sugared) variant
  std::string note;        ///< e.g. "(without sugaring)"
};

/// The TPC-H table schemas (full canonical column sets).
[[nodiscard]] const std::vector<fletcher::Schema>& schemas();

/// The Fletcher part: generated interfaces for all tables (cached).
[[nodiscard]] const std::string& fletcher_source();

/// LoC of the Fletcher part (Table IV: LoCf).
[[nodiscard]] std::size_t fletcher_loc();

/// All query cases in Table IV order: Q1 (without sugaring), Q1, Q3, Q5,
/// Q6, Q19.
[[nodiscard]] const std::vector<QueryCase>& queries();

/// Looks a query up by id + note; nullptr if absent.
[[nodiscard]] const QueryCase* find_query(std::string_view id,
                                          std::string_view note = "");

/// Sources of one query exactly as compile_query builds them (Fletcher
/// interfaces + query logic; the driver prepends the stdlib).
[[nodiscard]] std::vector<driver::NamedSource> query_sources(
    const QueryCase& query);

/// CompileOptions of one query (top impl, sugaring per the case).
[[nodiscard]] driver::CompileOptions query_options(const QueryCase& query);

/// Compiles one query through the full pipeline (stdlib + Fletcher part +
/// query logic; sugaring per the case).
[[nodiscard]] driver::CompileResult compile_query(const QueryCase& query);

/// Session variant: identical output, but the session's template memo and
/// parse cache serve repeated/shared monomorphisations.
[[nodiscard]] driver::CompileResult compile_query(
    const QueryCase& query, driver::CompileSession& session);

/// The whole Table IV workload as batch jobs (shared by `tydic --batch`,
/// bench_compile_perf and the golden tests).
[[nodiscard]] std::vector<driver::BatchJob> batch_jobs();

/// One row of Table IV as measured on this implementation.
struct Table4Row {
  std::string query;
  std::size_t raw_sql_loc = 0;
  std::size_t query_loc = 0;    // LoCq
  std::size_t total_loc = 0;    // LoCa = LoCq + LoCf + LoCs
  std::size_t vhdl_loc = 0;     // LoCvhdl
  double ratio_query = 0.0;     // Rq = LoCvhdl / LoCq
  double ratio_total = 0.0;     // Ra = LoCvhdl / LoCa
  bool compiled_ok = false;
};

/// Compiles every query and measures the Table IV columns.
[[nodiscard]] std::vector<Table4Row> measure_table4();

}  // namespace tydi::tpch
