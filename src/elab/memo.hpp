// Process-wide template-instantiation memo (the "cross-compile template
// cache" of the compile hot-path overhaul).
//
// The elaborator's per-compile cache is the Design itself: a repeated
// instantiation inside one compile is an integer-keyed lookup, but every new
// `driver::compile` starts from an empty Design and re-monomorphises the
// whole standard library. The paper's workload — many structurally similar
// TPC-H query designs against one shared stdlib — makes that the dominant
// frontend cost, so a `driver::CompileSession` owns one TemplateMemo and
// threads it through every compile of the session.
//
// Keying and validity:
//  - Entries are keyed by the mangled name's interned Symbol. The mangled
//    name encodes the declaration name plus the *evaluated* template
//    arguments (type arguments by resolved structural display), i.e. the
//    `(decl Symbol, arg Symbols)` identity of an instantiation.
//  - Each entry carries a SourceStamp: the FileId and content hash of the
//    file that declared it. A lookup only hits when the same file id still
//    holds byte-identical text in the current compile, so editing a source
//    invalidates naturally. Entries are *versioned* per stamp: two batch
//    jobs declaring the same name from different sources (the Q1 /
//    Q1-without-sugaring pair shares decl names across different query
//    files) each keep their own version instead of evicting each other —
//    alternating jobs stay warm.
//  - An impl entry also records, in insertion order, every streamlet/impl
//    the original elaboration added transitively (its "window"). A hit
//    replays that window into the current Design, reproducing the cold
//    compile's insertion order byte for byte; if any window member is stale
//    the hit is rejected and the impl re-elaborates normally (re-hitting
//    per-child entries that are still valid).
//
//  - Cross-file resolution is covered by *dependency stamps*: while an
//    entry elaborates, the elaborator records the defining file of every
//    global named type it resolves and every global constant it reads
//    (including through the per-compile type cache and the scope-lookup
//    observer), transitively merged into enclosing entries. A lookup only
//    hits when the entry's own stamp *and* every dependency stamp match the
//    current compile — editing a type/const in file B invalidates entries
//    declared in untouched file A that resolved through it.
//
// `invalidate()` remains the wholesale escape hatch.
//
// Concurrency: the memo is shared by every concurrent compile of a session
// (parallel `compile_batch` workers, `tydid` request handlers). A
// shared_mutex guards the tables — lookups take the shared side, publishes
// and invalidation the exclusive side — and the stat counters are relaxed
// atomics. Impl entries are handed out as `shared_ptr<const ImplEntry>`
// snapshots, so a reader replaying a window is never invalidated by a
// concurrent upsert or `invalidate()`: the payloads it captured stay alive
// until it drops them. Two compiles racing to publish the same entry both
// upsert; last writer wins and both payloads are equivalent (same source
// bytes), so warm outputs are byte-identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/elab/design.hpp"
#include "src/support/counters.hpp"

namespace tydi::elab {

/// FNV-1a 64 over a source text — the per-file validity stamp of the memo.
[[nodiscard]] std::uint64_t source_hash(std::string_view text);

/// Current content hashes of a compile's sources, indexed by FileId value
/// (slot 0 — the "unknown file" id — is unused).
using SourceHashes = std::vector<std::uint64_t>;

/// Where a memoized entity was declared, pinned to the file content that was
/// current when it was elaborated.
struct SourceStamp {
  support::FileId file;
  std::uint64_t hash = 0;

  [[nodiscard]] bool current(const SourceHashes& hashes) const {
    return file.valid() && file.value < hashes.size() &&
           hashes[file.value] == hash;
  }
};

/// Hit/miss counters of the process-wide memo (distinct from the
/// per-compile InstantiationStats, which also counts within-compile hits).
/// Relaxed atomics: concurrent compiles bump them without synchronizing.
struct MemoStats {
  support::RelaxedCounter streamlet_hits;
  support::RelaxedCounter impl_hits;
  support::RelaxedCounter misses;
  /// Lookups rejected because the entry (or one of an impl's window
  /// members) no longer matches the current source text.
  support::RelaxedCounter stale;
};

class TemplateMemo {
 public:
  struct ImplEntry {
    /// Shared with every Design that elaborated or replayed this impl —
    /// never value-copied. The sugaring pass copies-on-write before
    /// mutating (Design::impl_mutable), so the memo's view stays the
    /// pristine pre-sugar elaboration.
    std::shared_ptr<const Impl> payload;
    SourceStamp stamp;
    /// Defining files of every global type/const this elaboration resolved
    /// (transitively); all must be current for the entry to hit.
    std::vector<SourceStamp> dep_sources;
    /// Streamlets / impls (mangled symbols) the original elaboration
    /// inserted transitively, in Design insertion order; `payload` itself
    /// is not listed (it is always replayed last).
    std::vector<Symbol> dep_streamlets;
    std::vector<Symbol> dep_impls;
    /// Entities the elaboration *referenced* that were already in the
    /// design before its window opened (e.g. a shared child elaborated by
    /// an earlier sibling). They are not replayed — a hit requires them to
    /// be present in the current design already, otherwise the impl
    /// re-elaborates so insertion order matches a cold compile.
    std::vector<Symbol> required_streamlets;
    std::vector<Symbol> required_impls;
  };

  /// Valid payload lookups: nullptr on miss *or* stale stamp (stat-counted).
  /// Payloads are returned as shared handles so a hit inserts into the
  /// current Design without copying; the impl entry is a shared snapshot
  /// that outlives any concurrent upsert/invalidate.
  [[nodiscard]] std::shared_ptr<const Streamlet> find_streamlet(
      Symbol sym, const SourceHashes& hashes);
  [[nodiscard]] std::shared_ptr<const ImplEntry> find_impl(
      Symbol sym, const SourceHashes& hashes);

  /// Stamp-checked payload reads for window replay (no stat counting).
  [[nodiscard]] std::shared_ptr<const Streamlet> valid_streamlet(
      Symbol sym, const SourceHashes& hashes) const;
  [[nodiscard]] std::shared_ptr<const Impl> valid_impl(
      Symbol sym, const SourceHashes& hashes) const;

  /// Inserts or replaces (a re-elaboration after a stale lookup replaces).
  /// Payloads are shared with the inserting Design, not copied.
  void put_streamlet(Symbol sym, std::shared_ptr<const Streamlet> payload,
                     SourceStamp stamp,
                     std::vector<SourceStamp> dep_sources);
  void put_impl(Symbol sym, ImplEntry entry, ProgramRef pin);

  /// Explicit invalidation: drops every entry (and the pinned ASTs).
  void invalidate();

  /// Distinct mangled names memoized (not counting per-stamp versions).
  [[nodiscard]] std::size_t streamlet_count() const {
    std::shared_lock lock(mu_);
    return streamlets_.size();
  }
  [[nodiscard]] std::size_t impl_count() const {
    std::shared_lock lock(mu_);
    return impls_.size();
  }
  /// Counters are atomics; the reference is safe to read concurrently.
  [[nodiscard]] const MemoStats& stats() const { return stats_; }

 private:
  struct StreamletEntry {
    std::shared_ptr<const Streamlet> payload;  ///< shared, never copied
    SourceStamp stamp;
    std::vector<SourceStamp> dep_sources;  ///< see ImplEntry::dep_sources
  };

  // One version per distinct source stamp (at most one can be current for
  // any compile: a file id has exactly one current hash). Version vectors
  // stay tiny — one per source variant of a decl seen by the session. Impl
  // versions are shared_ptr'd so a lookup returns a stable snapshot while
  // writers replace versions in place.
  std::unordered_map<Symbol, std::vector<StreamletEntry>> streamlets_;
  std::unordered_map<Symbol, std::vector<std::shared_ptr<const ImplEntry>>>
      impls_;
  /// Programs whose ASTs memoized impls point into (sim blocks); kept alive
  /// for the memo lifetime.
  std::vector<ProgramRef> pinned_;
  /// Guards the three containers above. Lookups shared, publishes and
  /// invalidation exclusive; never held while elaborating.
  mutable std::shared_mutex mu_;
  MemoStats stats_;
};

/// The elaborator's optional view of a session memo: both pointers must be
/// set for memoization to engage (the plain `driver::compile` passes none).
struct MemoHook {
  TemplateMemo* memo = nullptr;
  const SourceHashes* hashes = nullptr;

  [[nodiscard]] bool enabled() const {
    return memo != nullptr && hashes != nullptr;
  }
};

}  // namespace tydi::elab
