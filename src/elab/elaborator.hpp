// The elaborator: AST -> Design (Fig. 3 "evaluation" + "code expansion &
// evaluation" stages).
//
// Responsibilities:
//  - evaluate global constants (immutable, in declaration order)
//  - resolve logical types (Group/Union/alias/Bit/Stream) to types::TypeRef
//  - monomorphise streamlet/impl templates (name mangling per argument list)
//  - check template argument kinds, including `impl of <streamlet>`
//    constraints (Sec. IV-B)
//  - expand generative `for`/`if`, evaluate `assert`
//  - expand port/instance arrays to scalars
//  - capture simulation programs of external impls
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/elab/design.hpp"
#include "src/elab/memo.hpp"
#include "src/eval/scope.hpp"
#include "src/support/counters.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/intern.hpp"

namespace tydi::elab {

/// Counters of the template-instantiation cache: monomorphisation is
/// memoized on the mangled name's interned symbol (a repeated
/// streamlet/impl instantiation with identical evaluated arguments is an
/// integer-keyed lookup, not a re-elaboration). Reported per compile by
/// driver::CompileResult and by `bench_compile_perf --json`. Hits served by
/// a session's process-wide TemplateMemo (instead of the per-compile Design
/// cache) are additionally counted in the session_* fields.
///
/// The counters are relaxed atomics (support::RelaxedCounter): each
/// Elaborator is single-threaded, but aggregate stats structs (batch
/// results, bench accumulators) are summed from concurrent compiles, and
/// atomics keep every such accumulation TSan-clean without a lock.
struct InstantiationStats {
  support::RelaxedCounter streamlet_hits;
  support::RelaxedCounter streamlet_misses;
  support::RelaxedCounter impl_hits;
  support::RelaxedCounter impl_misses;
  /// Subset of *_hits that came from the cross-compile TemplateMemo.
  support::RelaxedCounter session_streamlet_hits;
  support::RelaxedCounter session_impl_hits;

  [[nodiscard]] std::uint64_t hits() const {
    return streamlet_hits + impl_hits;
  }
  [[nodiscard]] std::uint64_t misses() const {
    return streamlet_misses + impl_misses;
  }
  [[nodiscard]] std::uint64_t session_hits() const {
    return session_streamlet_hits + session_impl_hits;
  }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits() + misses();
    return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
  }

  InstantiationStats& operator+=(const InstantiationStats& o) {
    streamlet_hits += o.streamlet_hits;
    streamlet_misses += o.streamlet_misses;
    impl_hits += o.impl_hits;
    impl_misses += o.impl_misses;
    session_streamlet_hits += o.session_streamlet_hits;
    session_impl_hits += o.session_impl_hits;
    return *this;
  }
};

class Elaborator {
 public:
  /// `memo` (optional) connects this compile to a session's process-wide
  /// template memo; see elab::MemoHook.
  Elaborator(ProgramRef program, support::DiagnosticEngine& diags,
             MemoHook memo = {});

  /// Elaborates the design rooted at `top_impl` (must name a non-template
  /// impl). On errors a partial Design is returned; check diags.
  [[nodiscard]] Design run(const std::string& top_impl);

  /// Elaborates every non-template impl in the program (used by tests and
  /// by library-wide checks); top is left empty unless `top_impl` is given.
  [[nodiscard]] Design run_all();

  /// Template-instantiation cache counters accumulated by this elaborator.
  [[nodiscard]] const InstantiationStats& stats() const { return stats_; }

 private:
  struct Context {
    eval::Scope* scope = nullptr;
    const std::map<std::string, types::TypeRef>* type_bindings = nullptr;
    const std::map<std::string, std::string>* impl_bindings = nullptr;
  };

  ProgramRef program_;
  support::DiagnosticEngine& diags_;
  Design design_;
  eval::Scope global_scope_;

  // Declaration registries and caches keyed by interned symbol: name
  // resolution interns once and then does integer-hash lookups instead of
  // string-keyed tree walks (the monomorphiser hits these per instantiation).
  std::unordered_map<Symbol, const lang::ConstDecl*> const_decls_;
  std::unordered_map<Symbol, const lang::TypeAliasDecl*> alias_decls_;
  std::unordered_map<Symbol, const lang::GroupDecl*> group_decls_;
  std::unordered_map<Symbol, const lang::StreamletDecl*> streamlet_decls_;
  std::unordered_map<Symbol, const lang::ImplDecl*> impl_decls_;
  /// Impl declarations in source order (run_all must elaborate
  /// deterministically; the symbol-keyed map above is hash-ordered).
  std::vector<const lang::ImplDecl*> impl_decl_order_;

  std::unordered_map<Symbol, types::TypeRef> named_type_cache_;
  std::unordered_set<Symbol> resolving_types_;
  std::unordered_set<Symbol> impls_in_progress_;
  InstantiationStats stats_;
  MemoHook memo_;

  void build_registries();
  void evaluate_global_consts();
  void evaluate_global_const(const lang::ConstDecl& c);

  /// Validity stamp of a decl's defining file, or an invalid stamp when the
  /// file is unknown to the current compile (memoization is then skipped).
  [[nodiscard]] SourceStamp stamp_for(support::Loc loc) const;
  /// Replays a memoized impl's insertion window into the design. Validates
  /// every window member first; returns false (inserting nothing) when any
  /// member is stale, so the caller re-elaborates normally.
  [[nodiscard]] bool materialize_memo_impl(const TemplateMemo::ImplEntry& e);

  // Dependency recording for the cross-compile memo: while an entry
  // elaborates (one frame per active elaborate_streamlet/impl miss or
  // named-type resolution), the defining files of every global type/const
  // resolved — transitively, via the per-type and per-const dependency
  // closures below — plus every already-elaborated entity referenced are
  // recorded into the top frame; frames merge into their parent on pop so
  // dependencies propagate to enclosing entries.
  struct DepFrameData {
    std::vector<SourceStamp> sources;
    std::vector<Symbol> ref_streamlets;  ///< design-cache hits (pre-window)
    std::vector<Symbol> ref_impls;
  };
  std::vector<DepFrameData> dep_stack_;
  /// Transitive file deps of each evaluated global constant (its own file
  /// plus the files of every constant its initializer read).
  std::unordered_map<Symbol, std::vector<SourceStamp>> const_deps_;
  /// Transitive file deps of each resolved global named type.
  std::unordered_map<Symbol, std::vector<SourceStamp>> type_deps_;
  void record_stamp(SourceStamp stamp);
  void record_source_dep(support::Loc loc);
  void record_const_dep(Symbol name_sym);
  void record_named_type_dep(Symbol name_sym);
  void record_ref_streamlet(Symbol sym);
  void record_ref_impl(Symbol sym);
  void push_dep_frame() { dep_stack_.emplace_back(); }
  /// Pops the top frame, merges it into the parent (if any) and returns it.
  DepFrameData pop_dep_frame();
  /// RAII frame, exception/early-return safe; inactive when memo disabled.
  struct DepFrame {
    Elaborator* e = nullptr;
    explicit DepFrame(Elaborator* elab) {
      if (elab->memo_.enabled()) {
        e = elab;
        e->push_dep_frame();
      }
    }
    ~DepFrame() {
      if (e != nullptr) e->pop_dep_frame();
    }
    DepFrame(const DepFrame&) = delete;
    DepFrame& operator=(const DepFrame&) = delete;
  };

  [[nodiscard]] types::TypeRef resolve_type(const lang::TypeExpr& type,
                                            const Context& ctx);
  [[nodiscard]] types::TypeRef resolve_named_type(const std::string& name,
                                                  support::Loc loc,
                                                  const Context& ctx);

  [[nodiscard]] std::vector<TemplateArgValue> evaluate_args(
      const std::vector<lang::TemplateArg>& args, const Context& ctx);

  /// Returns the mangled name ("" on failure).
  std::string elaborate_streamlet(const lang::StreamletDecl& decl,
                                  const std::vector<TemplateArgValue>& args,
                                  support::Loc use_loc);
  std::string elaborate_impl(const lang::ImplDecl& decl,
                             const std::vector<TemplateArgValue>& args,
                             support::Loc use_loc);

  /// Resolves an impl name appearing as an instance target or an `impl`
  /// template argument: either an impl-parameter binding or a global impl
  /// declaration (elaborated with `args`). Returns mangled name or "".
  std::string resolve_impl_ref(const std::string& name,
                               const std::vector<lang::TemplateArg>& args,
                               const Context& ctx, support::Loc loc);

  bool check_param_binding(const lang::TemplateParam& param,
                           const TemplateArgValue& arg, const Context& ctx,
                           support::Loc loc);

  void walk_stmts(const std::vector<lang::ImplStmt>& stmts, Impl& impl,
                  eval::Scope& scope, const Context& parent_ctx,
                  std::map<std::string, eval::Value>& captured);

  [[nodiscard]] Endpoint resolve_port_ref(const lang::PortRef& ref,
                                          const Context& ctx);

  [[nodiscard]] static std::string mangle(
      const std::string& base, const std::vector<TemplateArgValue>& args);
};

}  // namespace tydi::elab
