#include "src/elab/design.hpp"

#include <sstream>

namespace tydi::elab {

const Port* Streamlet::find_port(std::string_view port_name) const {
  for (const Port& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

const Port* Streamlet::find_port(Symbol port_sym) const {
  for (const Port& p : ports) {
    if (p.sym == port_sym) return &p;
  }
  return nullptr;
}

int Streamlet::port_index(Symbol port_sym) const {
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].sym == port_sym) return static_cast<int>(i);
  }
  return -1;
}

const Instance* Impl::find_instance(std::string_view instance_name) const {
  for (const Instance& i : instances) {
    if (i.name == instance_name) return &i;
  }
  return nullptr;
}

std::string TemplateArgValue::display() const {
  switch (kind) {
    case Kind::kValue:
      return value.to_display();
    case Kind::kType:
      return type != nullptr
                 ? (type->origin().empty() ? type->to_display()
                                           : type->origin())
                 : "<null type>";
    case Kind::kImpl:
      return "impl " + impl_name;
  }
  return "?";
}

const Streamlet& Design::add_streamlet(Streamlet s) {
  s.sym = support::intern(s.name);
  for (Port& p : s.ports) p.sym = support::intern(p.name);
  // make_shared<Streamlet>, not <const Streamlet>: the payload object must
  // not be genuinely const (impl_mutable const_casts unique slots).
  return add_streamlet(std::make_shared<Streamlet>(std::move(s)));
}

const Impl& Design::add_impl(Impl i) {
  i.sym = support::intern(i.name);
  return add_impl(std::make_shared<Impl>(std::move(i)));
}

const Streamlet& Design::add_streamlet(std::shared_ptr<const Streamlet> s) {
  streamlet_index_[s->sym] = streamlets_.size();
  streamlets_.push_back(std::move(s));
  return *streamlets_.back();
}

const Impl& Design::add_impl(std::shared_ptr<const Impl> i) {
  impl_index_[i->sym] = impls_.size();
  impls_.push_back(std::move(i));
  return *impls_.back();
}

std::shared_ptr<const Streamlet> Design::share_streamlet(Symbol sym) const {
  auto it = streamlet_index_.find(sym);
  return it != streamlet_index_.end() ? streamlets_[it->second] : nullptr;
}

std::shared_ptr<const Impl> Design::share_impl(Symbol sym) const {
  auto it = impl_index_.find(sym);
  return it != impl_index_.end() ? impls_[it->second] : nullptr;
}

Impl& Design::impl_mutable(std::size_t index) {
  std::shared_ptr<const Impl>& slot = impls_[index];
  // Copy-on-write, unconditionally: the payload may be shared with a
  // template-memo entry or another design replaying it, and the memo must
  // keep the pristine pre-sugar elaboration. A `use_count() == 1` in-place
  // fast path would be a data race: use_count() is a relaxed load, so a
  // concurrent reader releasing its reference (e.g. a memo invalidation
  // racing this compile) is not ordered before the in-place mutation.
  // Callers that mutate repeatedly should clone once and keep the
  // reference — the pointee is heap-stable until this slot is replaced.
  slot = std::make_shared<Impl>(*slot);
  return const_cast<Impl&>(*slot);  // originated as make_shared<Impl>
}

const Streamlet* Design::find_streamlet(std::string_view name) const {
  // find(), not intern(): negative lookups must not grow the global table.
  Symbol sym = support::Interner::global().find(name);
  return sym != support::kNoSymbol ? find_streamlet(sym) : nullptr;
}

const Streamlet* Design::find_streamlet(Symbol sym) const {
  auto it = streamlet_index_.find(sym);
  if (it == streamlet_index_.end()) return nullptr;
  return streamlets_[it->second].get();
}

const Impl* Design::find_impl(std::string_view name) const {
  Symbol sym = support::Interner::global().find(name);
  return sym != support::kNoSymbol ? find_impl(sym) : nullptr;
}

const Impl* Design::find_impl(Symbol sym) const {
  auto it = impl_index_.find(sym);
  if (it == impl_index_.end()) return nullptr;
  return impls_[it->second].get();
}

const Streamlet* Design::streamlet_of(const Impl& impl) const {
  return find_streamlet(impl.streamlet_name);
}

const Port* Design::resolve_endpoint(const Impl& impl,
                                     const Endpoint& ep) const {
  if (ep.instance.empty()) {
    const Streamlet* s = streamlet_of(impl);
    return s != nullptr ? s->find_port(ep.port) : nullptr;
  }
  const Instance* inst = impl.find_instance(ep.instance);
  if (inst == nullptr) return nullptr;
  const Impl* child = find_impl(inst->impl_name);
  if (child == nullptr) return nullptr;
  const Streamlet* s = streamlet_of(*child);
  return s != nullptr ? s->find_port(ep.port) : nullptr;
}

std::string Design::summary() const {
  std::ostringstream out;
  out << "design: " << streamlets_.size() << " streamlet(s), "
      << impls_.size() << " implementation(s)";
  if (!top_.empty()) out << ", top = " << top_;
  out << "\n";
  for (const auto& slot : impls_) {
    const Impl& i = *slot;
    out << "  impl " << i.name;
    if (i.display_name != i.name) out << " (" << i.display_name << ")";
    out << " of " << i.streamlet_name;
    if (i.external) out << " @external";
    out << ": " << i.instances.size() << " instance(s), "
        << i.connections.size() << " connection(s)\n";
  }
  return out.str();
}

bool endpoint_is_source(const lang::PortDir dir, bool is_self_port) {
  // Inside an implementation, the data available to connect FROM is:
  //  - the impl's own input ports (data arriving from outside), and
  //  - the output ports of nested instances.
  return is_self_port ? (dir == lang::PortDir::kIn)
                      : (dir == lang::PortDir::kOut);
}

}  // namespace tydi::elab
