// Elaborated design — "code structure #3/#4" of Fig. 3.
//
// The elaborator monomorphises templates, expands `for`/`if` generative
// statements and instance/port arrays, and evaluates every expression, so a
// Design contains only concrete streamlets, implementations, instances and
// connections. This is the form the sugaring pass, the DRC, the Tydi-IR
// emitter and the simulator all operate on.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.hpp"
#include "src/eval/value.hpp"
#include "src/support/intern.hpp"
#include "src/support/source.hpp"
#include "src/types/logical_type.hpp"

namespace tydi::elab {

using support::Symbol;

/// The parsed program (all source files of a compilation: standard library,
/// Fletcher interfaces, user code). The Design keeps it alive because
/// simulation programs point into the AST. Files are held by shared_ptr so a
/// driver::CompileSession can reuse a parsed file across compiles (the
/// standard library parses once per session, not once per compile) and so
/// the template memo can pin the ASTs its cached impls point into.
struct Program {
  std::vector<std::shared_ptr<const lang::SourceFile>> files;
};
using ProgramRef = std::shared_ptr<const Program>;

/// A concrete scalar port. Port arrays `p: T in [n]` are expanded to
/// `p_0 .. p_{n-1}` during elaboration.
struct Port {
  std::string name;
  types::TypeRef type;
  lang::PortDir dir = lang::PortDir::kIn;
  std::string clock_domain = "default";
  support::Loc loc;
  /// Interned `name`; assigned by Design::add_streamlet so the simulator can
  /// match ports by integer symbol.
  Symbol sym = support::kNoSymbol;
};

/// A concrete streamlet (port map). Template instances carry a mangled
/// `name`; `display_name` keeps the human-readable template spelling.
struct Streamlet {
  std::string name;
  std::string display_name;
  std::vector<Port> ports;
  support::Loc loc;
  /// Interned `name`; assigned by Design::add_streamlet.
  Symbol sym = support::kNoSymbol;

  [[nodiscard]] const Port* find_port(std::string_view port_name) const;
  /// Symbol-keyed variant (no string comparison).
  [[nodiscard]] const Port* find_port(Symbol port_sym) const;
  /// Index of the port with symbol `port_sym` in `ports`, or -1.
  [[nodiscard]] int port_index(Symbol port_sym) const;
};

/// One endpoint of an elaborated connection. `instance` is empty for the
/// implementation's own ports.
struct Endpoint {
  std::string instance;
  std::string port;
  support::Loc loc;

  [[nodiscard]] std::string display() const {
    return instance.empty() ? port : instance + "." + port;
  }
  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.instance == b.instance && a.port == b.port;
  }
};

struct Connection {
  Endpoint src;
  Endpoint dst;
  bool structural = false;  ///< relax strict type equality (`@structural`)
  support::Loc loc;
};

/// A nested implementation instance. Instance arrays are expanded like port
/// arrays.
struct Instance {
  std::string name;
  std::string impl_name;  ///< mangled name of the elaborated implementation
  support::Loc loc;
};

/// An evaluated template argument, recorded for diagnostics, mangling and
/// the standard-library RTL generator.
struct TemplateArgValue {
  enum class Kind { kValue, kType, kImpl };
  Kind kind = Kind::kValue;
  eval::Value value;       // kValue
  types::TypeRef type;     // kType
  std::string impl_name;   // kImpl (mangled)

  [[nodiscard]] std::string display() const;
};

/// Simulation program attached to an external implementation: a pointer into
/// the AST (kept alive via Program) plus the constants captured from the
/// elaboration scope, so the simulator can evaluate expressions.
struct SimProgram {
  const lang::SimBlock* block = nullptr;
  std::map<std::string, eval::Value> captured;
};

struct Impl {
  std::string name;          ///< mangled
  /// Interned `name`; assigned by Design::add_impl.
  Symbol sym = support::kNoSymbol;
  std::string display_name;  ///< original spelling with arguments
  std::string streamlet_name;
  /// The *family* name of the streamlet this impl derives from (the
  /// unmangled declaration name), used to check `impl of <streamlet>`
  /// template-argument constraints.
  std::string streamlet_family;
  bool external = false;
  /// The declaration this was instantiated from (for the stdlib RTL
  /// generator, which is keyed by template family per Sec. IV-C).
  std::string template_name;
  std::vector<TemplateArgValue> template_args;
  std::vector<Instance> instances;
  std::vector<Connection> connections;
  std::optional<SimProgram> sim;
  support::Loc loc;

  [[nodiscard]] const Instance* find_instance(
      std::string_view instance_name) const;
};

/// The fully elaborated design. Insertion order is preserved so emitted IR /
/// VHDL is deterministic (children appear before their parents).
class Design {
 public:
  explicit Design(ProgramRef program = nullptr)
      : program_(std::move(program)) {}

  Streamlet& add_streamlet(Streamlet s);
  Impl& add_impl(Impl i);

  [[nodiscard]] const Streamlet* find_streamlet(std::string_view name) const;
  [[nodiscard]] const Streamlet* find_streamlet(Symbol sym) const;
  [[nodiscard]] const Impl* find_impl(std::string_view name) const;
  [[nodiscard]] const Impl* find_impl(Symbol sym) const;
  [[nodiscard]] Impl* find_impl_mutable(std::string_view name);

  [[nodiscard]] const std::vector<Streamlet>& streamlets() const {
    return streamlets_;
  }
  [[nodiscard]] const std::vector<Impl>& impls() const { return impls_; }
  [[nodiscard]] std::vector<Impl>& impls_mutable() { return impls_; }

  /// Name of the top-level implementation (set by the elaborator).
  [[nodiscard]] const std::string& top() const { return top_; }
  void set_top(std::string name) { top_ = std::move(name); }

  /// Resolves the streamlet of `impl`, or nullptr.
  [[nodiscard]] const Streamlet* streamlet_of(const Impl& impl) const;

  /// Resolves the port type/direction of an endpoint inside `impl`:
  /// self ports come from the impl's own streamlet; instance ports from the
  /// instance's implementation's streamlet. Returns nullptr if unresolvable.
  [[nodiscard]] const Port* resolve_endpoint(const Impl& impl,
                                             const Endpoint& ep) const;

  /// Human-readable inventory (streamlets, impls, instance/connection
  /// counts) for debugging and the quickstart example.
  [[nodiscard]] std::string summary() const;

 private:
  ProgramRef program_;
  std::vector<Streamlet> streamlets_;
  std::vector<Impl> impls_;
  // Flat symbol-keyed indexes: lookups intern once and hash an integer
  // instead of walking a string-keyed tree.
  std::unordered_map<Symbol, std::size_t> streamlet_index_;
  std::unordered_map<Symbol, std::size_t> impl_index_;
  std::string top_;
};

/// True if, inside an implementation, `ep` acts as a data *source*:
/// a self `in` port or an instance `out` port.
[[nodiscard]] bool endpoint_is_source(const lang::PortDir dir,
                                      bool is_self_port);

}  // namespace tydi::elab
