// Elaborated design — "code structure #3/#4" of Fig. 3.
//
// The elaborator monomorphises templates, expands `for`/`if` generative
// statements and instance/port arrays, and evaluates every expression, so a
// Design contains only concrete streamlets, implementations, instances and
// connections. This is the form the sugaring pass, the DRC, the Tydi-IR
// emitter and the simulator all operate on.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.hpp"
#include "src/eval/value.hpp"
#include "src/support/intern.hpp"
#include "src/support/source.hpp"
#include "src/types/logical_type.hpp"

namespace tydi::elab {

using support::Symbol;

/// The parsed program (all source files of a compilation: standard library,
/// Fletcher interfaces, user code). The Design keeps it alive because
/// simulation programs point into the AST. Files are held by shared_ptr so a
/// driver::CompileSession can reuse a parsed file across compiles (the
/// standard library parses once per session, not once per compile) and so
/// the template memo can pin the ASTs its cached impls point into.
struct Program {
  std::vector<std::shared_ptr<const lang::SourceFile>> files;
};
using ProgramRef = std::shared_ptr<const Program>;

/// A concrete scalar port. Port arrays `p: T in [n]` are expanded to
/// `p_0 .. p_{n-1}` during elaboration.
struct Port {
  std::string name;
  types::TypeRef type;
  lang::PortDir dir = lang::PortDir::kIn;
  std::string clock_domain = "default";
  support::Loc loc;
  /// Interned `name`; assigned by Design::add_streamlet so the simulator can
  /// match ports by integer symbol.
  Symbol sym = support::kNoSymbol;
};

/// A concrete streamlet (port map). Template instances carry a mangled
/// `name`; `display_name` keeps the human-readable template spelling.
struct Streamlet {
  std::string name;
  std::string display_name;
  std::vector<Port> ports;
  support::Loc loc;
  /// Interned `name`; assigned by Design::add_streamlet.
  Symbol sym = support::kNoSymbol;

  [[nodiscard]] const Port* find_port(std::string_view port_name) const;
  /// Symbol-keyed variant (no string comparison).
  [[nodiscard]] const Port* find_port(Symbol port_sym) const;
  /// Index of the port with symbol `port_sym` in `ports`, or -1.
  [[nodiscard]] int port_index(Symbol port_sym) const;
};

/// One endpoint of an elaborated connection. `instance` is empty for the
/// implementation's own ports.
struct Endpoint {
  std::string instance;
  std::string port;
  support::Loc loc;

  [[nodiscard]] std::string display() const {
    return instance.empty() ? port : instance + "." + port;
  }
  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.instance == b.instance && a.port == b.port;
  }
};

struct Connection {
  Endpoint src;
  Endpoint dst;
  bool structural = false;  ///< relax strict type equality (`@structural`)
  support::Loc loc;
};

/// A nested implementation instance. Instance arrays are expanded like port
/// arrays.
struct Instance {
  std::string name;
  std::string impl_name;  ///< mangled name of the elaborated implementation
  support::Loc loc;
};

/// An evaluated template argument, recorded for diagnostics, mangling and
/// the standard-library RTL generator.
struct TemplateArgValue {
  enum class Kind { kValue, kType, kImpl };
  Kind kind = Kind::kValue;
  eval::Value value;       // kValue
  types::TypeRef type;     // kType
  std::string impl_name;   // kImpl (mangled)

  [[nodiscard]] std::string display() const;
};

/// Simulation program attached to an external implementation: a pointer into
/// the AST (kept alive via Program) plus the constants captured from the
/// elaboration scope, so the simulator can evaluate expressions.
struct SimProgram {
  const lang::SimBlock* block = nullptr;
  std::map<std::string, eval::Value> captured;
};

struct Impl {
  std::string name;          ///< mangled
  /// Interned `name`; assigned by Design::add_impl.
  Symbol sym = support::kNoSymbol;
  std::string display_name;  ///< original spelling with arguments
  std::string streamlet_name;
  /// The *family* name of the streamlet this impl derives from (the
  /// unmangled declaration name), used to check `impl of <streamlet>`
  /// template-argument constraints.
  std::string streamlet_family;
  bool external = false;
  /// The declaration this was instantiated from (for the stdlib RTL
  /// generator, which is keyed by template family per Sec. IV-C).
  std::string template_name;
  std::vector<TemplateArgValue> template_args;
  std::vector<Instance> instances;
  std::vector<Connection> connections;
  std::optional<SimProgram> sim;
  support::Loc loc;

  [[nodiscard]] const Instance* find_instance(
      std::string_view instance_name) const;
};

/// Lightweight deref view over a vector of shared payload slots: iterates
/// and indexes as `const T&`, so consumers read shared-storage designs with
/// the same syntax as the old by-value vectors.
template <typename T>
class SharedView {
 public:
  using Slots = std::vector<std::shared_ptr<const T>>;

  explicit SharedView(const Slots& slots) : slots_(&slots) {}

  class iterator {
   public:
    explicit iterator(typename Slots::const_iterator it) : it_(it) {}
    const T& operator*() const { return **it_; }
    const T* operator->() const { return it_->get(); }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const iterator& other) const { return it_ == other.it_; }
    bool operator!=(const iterator& other) const { return it_ != other.it_; }

   private:
    typename Slots::const_iterator it_;
  };

  [[nodiscard]] iterator begin() const { return iterator(slots_->begin()); }
  [[nodiscard]] iterator end() const { return iterator(slots_->end()); }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return *(*slots_)[i];
  }
  [[nodiscard]] std::size_t size() const { return slots_->size(); }
  [[nodiscard]] bool empty() const { return slots_->empty(); }

 private:
  const Slots* slots_;
};

/// The fully elaborated design. Insertion order is preserved so emitted IR /
/// VHDL is deterministic (children appear before their parents).
///
/// Streamlet/Impl payloads live behind shared_ptr slots so the template
/// memo can *share* them across warm compiles instead of value-copying the
/// whole standard library into every Design (see elab::TemplateMemo). The
/// only post-insertion mutator, the sugaring pass, goes through
/// `impl_mutable`, which copies-on-write when the slot is shared — a memo
/// therefore always holds the pristine pre-sugar payload. A pleasant side
/// effect: payload addresses are stable under insertion (the old by-value
/// vectors invalidated references on growth).
class Design {
 public:
  explicit Design(ProgramRef program = nullptr)
      : program_(std::move(program)) {}

  /// Interns the name/port symbols and takes ownership of a fresh payload.
  const Streamlet& add_streamlet(Streamlet s);
  const Impl& add_impl(Impl i);
  /// Shared insert (memo replay): indexes the payload without copying.
  /// Symbols must already be interned (true for any payload that has been
  /// through the by-value overload in a previous compile).
  const Streamlet& add_streamlet(std::shared_ptr<const Streamlet> s);
  const Impl& add_impl(std::shared_ptr<const Impl> i);

  [[nodiscard]] const Streamlet* find_streamlet(std::string_view name) const;
  [[nodiscard]] const Streamlet* find_streamlet(Symbol sym) const;
  [[nodiscard]] const Impl* find_impl(std::string_view name) const;
  [[nodiscard]] const Impl* find_impl(Symbol sym) const;

  /// Shared handles for memoization (nullptr when absent).
  [[nodiscard]] std::shared_ptr<const Streamlet> share_streamlet(
      Symbol sym) const;
  [[nodiscard]] std::shared_ptr<const Impl> share_impl(Symbol sym) const;

  /// Mutable access for the sugaring pass; clones the payload first when
  /// the slot is shared with a memo or another design (copy-on-write).
  [[nodiscard]] Impl& impl_mutable(std::size_t index);

  [[nodiscard]] SharedView<Streamlet> streamlets() const {
    return SharedView<Streamlet>(streamlets_);
  }
  [[nodiscard]] SharedView<Impl> impls() const {
    return SharedView<Impl>(impls_);
  }

  /// Name of the top-level implementation (set by the elaborator).
  [[nodiscard]] const std::string& top() const { return top_; }
  void set_top(std::string name) { top_ = std::move(name); }

  /// Resolves the streamlet of `impl`, or nullptr.
  [[nodiscard]] const Streamlet* streamlet_of(const Impl& impl) const;

  /// Resolves the port type/direction of an endpoint inside `impl`:
  /// self ports come from the impl's own streamlet; instance ports from the
  /// instance's implementation's streamlet. Returns nullptr if unresolvable.
  [[nodiscard]] const Port* resolve_endpoint(const Impl& impl,
                                             const Endpoint& ep) const;

  /// Human-readable inventory (streamlets, impls, instance/connection
  /// counts) for debugging and the quickstart example.
  [[nodiscard]] std::string summary() const;

 private:
  ProgramRef program_;
  // Payload objects always originate from make_shared<T> in the by-value
  // add_* overloads (shared inserts only recirculate such objects), so the
  // unique-slot const_cast in impl_mutable never touches a genuinely const
  // object.
  std::vector<std::shared_ptr<const Streamlet>> streamlets_;
  std::vector<std::shared_ptr<const Impl>> impls_;
  // Flat symbol-keyed indexes: lookups intern once and hash an integer
  // instead of walking a string-keyed tree.
  std::unordered_map<Symbol, std::size_t> streamlet_index_;
  std::unordered_map<Symbol, std::size_t> impl_index_;
  std::string top_;
};

/// True if, inside an implementation, `ep` acts as a data *source*:
/// a self `in` port or an instance `out` port.
[[nodiscard]] bool endpoint_is_source(const lang::PortDir dir,
                                      bool is_self_port);

}  // namespace tydi::elab
