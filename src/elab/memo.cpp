#include "src/elab/memo.hpp"

namespace tydi::elab {

std::uint64_t source_hash(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// True when the entry's own stamp and every dependency stamp match the
/// current compile's sources.
template <typename Entry>
bool entry_current(const Entry& entry, const SourceHashes& hashes) {
  if (!entry.stamp.current(hashes)) return false;
  for (const SourceStamp& dep : entry.dep_sources) {
    if (!dep.current(hashes)) return false;
  }
  return true;
}

/// The version whose stamps all match the current source hashes, or
/// nullptr. At most one version's *own* stamp can match (a file id has one
/// current hash), so the scan is deterministic.
template <typename Entry>
const Entry* current_version(const std::vector<Entry>& versions,
                             const SourceHashes& hashes) {
  for (const Entry& entry : versions) {
    if (entry_current(entry, hashes)) return &entry;
  }
  return nullptr;
}

/// Replaces the version with the same stamp identity, or appends.
template <typename Entry>
void upsert_version(std::vector<Entry>& versions, Entry entry) {
  for (Entry& existing : versions) {
    if (existing.stamp.file == entry.stamp.file &&
        existing.stamp.hash == entry.stamp.hash) {
      existing = std::move(entry);
      return;
    }
  }
  versions.push_back(std::move(entry));
}

}  // namespace

std::shared_ptr<const Streamlet> TemplateMemo::find_streamlet(
    Symbol sym, const SourceHashes& hashes) {
  auto it = streamlets_.find(sym);
  if (it == streamlets_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const StreamletEntry* entry = current_version(it->second, hashes);
  if (entry == nullptr) {
    ++stats_.stale;
    return nullptr;
  }
  ++stats_.streamlet_hits;
  return entry->payload;
}

const TemplateMemo::ImplEntry* TemplateMemo::find_impl(
    Symbol sym, const SourceHashes& hashes) {
  auto it = impls_.find(sym);
  if (it == impls_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const ImplEntry* entry = current_version(it->second, hashes);
  if (entry == nullptr) {
    ++stats_.stale;
    return nullptr;
  }
  ++stats_.impl_hits;
  return entry;
}

std::shared_ptr<const Streamlet> TemplateMemo::valid_streamlet(
    Symbol sym, const SourceHashes& hashes) const {
  auto it = streamlets_.find(sym);
  if (it == streamlets_.end()) return nullptr;
  const StreamletEntry* entry = current_version(it->second, hashes);
  return entry != nullptr ? entry->payload : nullptr;
}

std::shared_ptr<const Impl> TemplateMemo::valid_impl(
    Symbol sym, const SourceHashes& hashes) const {
  auto it = impls_.find(sym);
  if (it == impls_.end()) return nullptr;
  const ImplEntry* entry = current_version(it->second, hashes);
  return entry != nullptr ? entry->payload : nullptr;
}

void TemplateMemo::put_streamlet(Symbol sym,
                                 std::shared_ptr<const Streamlet> payload,
                                 SourceStamp stamp,
                                 std::vector<SourceStamp> dep_sources) {
  upsert_version(streamlets_[sym],
                 StreamletEntry{std::move(payload), stamp,
                                std::move(dep_sources)});
}

void TemplateMemo::put_impl(Symbol sym, ImplEntry entry, ProgramRef pin) {
  upsert_version(impls_[sym], std::move(entry));
  if (pin != nullptr &&
      (pinned_.empty() || pinned_.back() != pin)) {
    pinned_.push_back(std::move(pin));
  }
}

void TemplateMemo::invalidate() {
  streamlets_.clear();
  impls_.clear();
  pinned_.clear();
}

}  // namespace tydi::elab
