#include "src/elab/memo.hpp"

#include <mutex>

#include "src/obs/metrics.hpp"

namespace tydi::elab {

namespace {

/// Process-wide mirrors of MemoStats: every memo in the process folds its
/// hits/misses into the same tydi.memo.* counters so the daemon's METRICS
/// snapshot reports cross-compile cache behaviour without walking
/// sessions. (MemoStats stays the per-memo source of truth.)
struct MemoCounters {
  obs::Counter& streamlet_hits;
  obs::Counter& impl_hits;
  obs::Counter& misses;
  obs::Counter& stale;

  static MemoCounters& get() {
    static MemoCounters* c = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new MemoCounters{reg.counter("tydi.memo.streamlet_hits"),
                              reg.counter("tydi.memo.impl_hits"),
                              reg.counter("tydi.memo.misses"),
                              reg.counter("tydi.memo.stale")};
    }();
    return *c;
  }
};

}  // namespace

std::uint64_t source_hash(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// True when the entry's own stamp and every dependency stamp match the
/// current compile's sources.
template <typename Entry>
bool entry_current(const Entry& entry, const SourceHashes& hashes) {
  if (!entry.stamp.current(hashes)) return false;
  for (const SourceStamp& dep : entry.dep_sources) {
    if (!dep.current(hashes)) return false;
  }
  return true;
}

/// The version whose stamps all match the current source hashes, or
/// nullptr. At most one version's *own* stamp can match (a file id has one
/// current hash), so the scan is deterministic.
const TemplateMemo::ImplEntry* current_impl_version(
    const std::vector<std::shared_ptr<const TemplateMemo::ImplEntry>>& versions,
    const SourceHashes& hashes) {
  for (const auto& entry : versions) {
    if (entry_current(*entry, hashes)) return entry.get();
  }
  return nullptr;
}

}  // namespace

std::shared_ptr<const Streamlet> TemplateMemo::find_streamlet(
    Symbol sym, const SourceHashes& hashes) {
  std::shared_lock lock(mu_);
  auto it = streamlets_.find(sym);
  if (it == streamlets_.end()) {
    ++stats_.misses;
    ++MemoCounters::get().misses;
    return nullptr;
  }
  for (const StreamletEntry& entry : it->second) {
    if (entry_current(entry, hashes)) {
      ++stats_.streamlet_hits;
      ++MemoCounters::get().streamlet_hits;
      return entry.payload;
    }
  }
  ++stats_.stale;
  ++MemoCounters::get().stale;
  return nullptr;
}

std::shared_ptr<const TemplateMemo::ImplEntry> TemplateMemo::find_impl(
    Symbol sym, const SourceHashes& hashes) {
  std::shared_lock lock(mu_);
  auto it = impls_.find(sym);
  if (it == impls_.end()) {
    ++stats_.misses;
    ++MemoCounters::get().misses;
    return nullptr;
  }
  for (const auto& entry : it->second) {
    if (entry_current(*entry, hashes)) {
      ++stats_.impl_hits;
      ++MemoCounters::get().impl_hits;
      return entry;
    }
  }
  ++stats_.stale;
  ++MemoCounters::get().stale;
  return nullptr;
}

std::shared_ptr<const Streamlet> TemplateMemo::valid_streamlet(
    Symbol sym, const SourceHashes& hashes) const {
  std::shared_lock lock(mu_);
  auto it = streamlets_.find(sym);
  if (it == streamlets_.end()) return nullptr;
  for (const StreamletEntry& entry : it->second) {
    if (entry_current(entry, hashes)) return entry.payload;
  }
  return nullptr;
}

std::shared_ptr<const Impl> TemplateMemo::valid_impl(
    Symbol sym, const SourceHashes& hashes) const {
  std::shared_lock lock(mu_);
  auto it = impls_.find(sym);
  if (it == impls_.end()) return nullptr;
  const ImplEntry* entry = current_impl_version(it->second, hashes);
  return entry != nullptr ? entry->payload : nullptr;
}

void TemplateMemo::put_streamlet(Symbol sym,
                                 std::shared_ptr<const Streamlet> payload,
                                 SourceStamp stamp,
                                 std::vector<SourceStamp> dep_sources) {
  std::unique_lock lock(mu_);
  std::vector<StreamletEntry>& versions = streamlets_[sym];
  for (StreamletEntry& existing : versions) {
    if (existing.stamp.file == stamp.file &&
        existing.stamp.hash == stamp.hash) {
      existing = StreamletEntry{std::move(payload), stamp,
                                std::move(dep_sources)};
      return;
    }
  }
  versions.push_back(
      StreamletEntry{std::move(payload), stamp, std::move(dep_sources)});
}

void TemplateMemo::put_impl(Symbol sym, ImplEntry entry, ProgramRef pin) {
  auto shared = std::make_shared<const ImplEntry>(std::move(entry));
  std::unique_lock lock(mu_);
  std::vector<std::shared_ptr<const ImplEntry>>& versions = impls_[sym];
  bool placed = false;
  for (auto& existing : versions) {
    if (existing->stamp.file == shared->stamp.file &&
        existing->stamp.hash == shared->stamp.hash) {
      // Replace the version in place; concurrent readers holding the old
      // snapshot keep it alive until they are done with it.
      existing = shared;
      placed = true;
      break;
    }
  }
  if (!placed) versions.push_back(std::move(shared));
  if (pin != nullptr && (pinned_.empty() || pinned_.back() != pin)) {
    pinned_.push_back(std::move(pin));
  }
}

void TemplateMemo::invalidate() {
  std::unique_lock lock(mu_);
  streamlets_.clear();
  impls_.clear();
  pinned_.clear();
}

}  // namespace tydi::elab
