#include "src/elab/elaborator.hpp"

#include <algorithm>
#include <cassert>

#include "src/eval/interp.hpp"
#include "src/support/text.hpp"

namespace tydi::elab {

using eval::EvalError;
using eval::Value;
using support::Loc;

namespace {

/// FNV-1a 64-bit, rendered as 8 hex chars — disambiguates mangled names whose
/// sanitized argument spellings collide (e.g. "MED BAG" vs "MED_BAG").
std::string short_hash(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[i] = digits[(h >> (i * 4)) & 0xF];
  }
  return out;
}

std::string display_args(const std::vector<TemplateArgValue>& args) {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const TemplateArgValue& a : args) parts.push_back(a.display());
  return support::join(parts, ", ");
}

}  // namespace

Elaborator::Elaborator(ProgramRef program, support::DiagnosticEngine& diags,
                       MemoHook memo)
    : program_(std::move(program)),
      diags_(diags),
      design_(program_),
      memo_(memo) {
  build_registries();
  if (memo_.enabled()) {
    // Record every global-constant read as a dependency of the entry (or
    // constant/type) being elaborated. Installed before the global consts
    // evaluate so const-to-const reads build the transitive closure.
    global_scope_.set_lookup_observer(
        [](Symbol name, void* ctx) {
          static_cast<Elaborator*>(ctx)->record_const_dep(name);
        },
        this);
  }
  evaluate_global_consts();
}

void Elaborator::record_stamp(SourceStamp stamp) {
  if (dep_stack_.empty() || !stamp.file.valid()) return;
  std::vector<SourceStamp>& sources = dep_stack_.back().sources;
  for (const SourceStamp& existing : sources) {
    if (existing.file == stamp.file) return;
  }
  sources.push_back(stamp);
}

void Elaborator::record_source_dep(support::Loc loc) {
  if (dep_stack_.empty()) return;
  record_stamp(stamp_for(loc));
}

void Elaborator::record_const_dep(Symbol name_sym) {
  if (dep_stack_.empty()) return;
  // A constant's value may have been baked from other files' constants
  // during evaluate_global_consts; replay its full transitive closure.
  if (auto it = const_deps_.find(name_sym); it != const_deps_.end()) {
    for (const SourceStamp& stamp : it->second) record_stamp(stamp);
    return;
  }
  if (auto it = const_decls_.find(name_sym); it != const_decls_.end()) {
    record_source_dep(it->second->loc);
  }
}

void Elaborator::record_named_type_dep(Symbol name_sym) {
  if (dep_stack_.empty()) return;
  // First resolution stored the transitive closure (nested aliases/groups
  // may live in other files); cache hits replay it in full.
  if (auto it = type_deps_.find(name_sym); it != type_deps_.end()) {
    for (const SourceStamp& stamp : it->second) record_stamp(stamp);
    return;
  }
  if (auto it = alias_decls_.find(name_sym); it != alias_decls_.end()) {
    record_source_dep(it->second->loc);
  } else if (auto git = group_decls_.find(name_sym);
             git != group_decls_.end()) {
    record_source_dep(git->second->loc);
  }
}

void Elaborator::record_ref_streamlet(Symbol sym) {
  if (dep_stack_.empty()) return;
  std::vector<Symbol>& refs = dep_stack_.back().ref_streamlets;
  if (std::find(refs.begin(), refs.end(), sym) == refs.end()) {
    refs.push_back(sym);
  }
}

void Elaborator::record_ref_impl(Symbol sym) {
  if (dep_stack_.empty()) return;
  std::vector<Symbol>& refs = dep_stack_.back().ref_impls;
  if (std::find(refs.begin(), refs.end(), sym) == refs.end()) {
    refs.push_back(sym);
  }
}

Elaborator::DepFrameData Elaborator::pop_dep_frame() {
  DepFrameData frame = std::move(dep_stack_.back());
  dep_stack_.pop_back();
  if (!dep_stack_.empty()) {
    DepFrameData& parent = dep_stack_.back();
    for (const SourceStamp& dep : frame.sources) {
      bool seen = false;
      for (const SourceStamp& existing : parent.sources) {
        if (existing.file == dep.file) {
          seen = true;
          break;
        }
      }
      if (!seen) parent.sources.push_back(dep);
    }
    for (Symbol sym : frame.ref_streamlets) {
      if (std::find(parent.ref_streamlets.begin(),
                    parent.ref_streamlets.end(),
                    sym) == parent.ref_streamlets.end()) {
        parent.ref_streamlets.push_back(sym);
      }
    }
    for (Symbol sym : frame.ref_impls) {
      if (std::find(parent.ref_impls.begin(), parent.ref_impls.end(), sym) ==
          parent.ref_impls.end()) {
        parent.ref_impls.push_back(sym);
      }
    }
  }
  return frame;
}

SourceStamp Elaborator::stamp_for(support::Loc loc) const {
  SourceStamp stamp;
  if (memo_.enabled() && loc.file.valid() &&
      loc.file.value < memo_.hashes->size()) {
    stamp.file = loc.file;
    stamp.hash = (*memo_.hashes)[loc.file.value];
  }
  return stamp;
}

bool Elaborator::materialize_memo_impl(const TemplateMemo::ImplEntry& e) {
  // Entities the original elaboration referenced but did not insert must
  // already be present; otherwise re-elaborate so the current compile's
  // insertion order matches its own cold order (per-child memo hits still
  // apply during that re-elaboration).
  for (Symbol sym : e.required_streamlets) {
    if (design_.find_streamlet(sym) == nullptr) return false;
  }
  for (Symbol sym : e.required_impls) {
    if (design_.find_impl(sym) == nullptr) return false;
  }
  // Validate the whole window before touching the design: a member already
  // elaborated in this compile is satisfied by the design itself, anything
  // else must have a stamp-current memo entry. Payload handles are captured
  // here, *before* any insertion, so a concurrent invalidate()/upsert
  // between validation and replay cannot leave a half-replayed window — the
  // snapshot below is inserted wholesale or not at all.
  std::vector<std::pair<Symbol, std::shared_ptr<const Streamlet>>>
      streamlet_window;
  std::vector<std::pair<Symbol, std::shared_ptr<const Impl>>> impl_window;
  for (Symbol sym : e.dep_streamlets) {
    if (design_.find_streamlet(sym) != nullptr) continue;
    std::shared_ptr<const Streamlet> payload =
        memo_.memo->valid_streamlet(sym, *memo_.hashes);
    if (payload == nullptr) return false;
    streamlet_window.emplace_back(sym, std::move(payload));
  }
  for (Symbol sym : e.dep_impls) {
    if (design_.find_impl(sym) != nullptr) continue;
    std::shared_ptr<const Impl> payload =
        memo_.memo->valid_impl(sym, *memo_.hashes);
    if (payload == nullptr) return false;
    impl_window.emplace_back(sym, std::move(payload));
  }
  // Replay in recorded insertion order (skipping already-present members)
  // so a warm compile reproduces the cold compile's emission order exactly.
  // Payloads are shared, not copied — the design references the memo's
  // objects until something (the sugaring pass) copies-on-write.
  for (auto& [sym, payload] : streamlet_window) {
    if (design_.find_streamlet(sym) == nullptr) {
      design_.add_streamlet(std::move(payload));
    }
  }
  for (auto& [sym, payload] : impl_window) {
    if (design_.find_impl(sym) == nullptr) {
      design_.add_impl(std::move(payload));
    }
  }
  design_.add_impl(e.payload);
  return true;
}

void Elaborator::build_registries() {
  assert(program_ != nullptr);
  for (const auto& file_ptr : program_->files) {
    const lang::SourceFile& file = *file_ptr;
    for (const lang::Decl& d : file.decls) {
      std::visit(
          [this](const auto& n) {
            using T = std::decay_t<decltype(n)>;
            auto check_dup = [this, &n](const auto& map) {
              if (map.contains(support::intern(n.name))) {
                diags_.error("elab",
                             "duplicate declaration of '" + n.name + "'",
                             n.loc);
                return true;
              }
              return false;
            };
            if constexpr (std::is_same_v<T, lang::ConstDecl>) {
              if (!check_dup(const_decls_)) {
                const_decls_[support::intern(n.name)] = &n;
              }
            } else if constexpr (std::is_same_v<T, lang::TypeAliasDecl>) {
              if (!check_dup(alias_decls_)) {
                alias_decls_[support::intern(n.name)] = &n;
              }
            } else if constexpr (std::is_same_v<T, lang::GroupDecl>) {
              if (!check_dup(group_decls_)) {
                group_decls_[support::intern(n.name)] = &n;
              }
            } else if constexpr (std::is_same_v<T, lang::StreamletDecl>) {
              if (!check_dup(streamlet_decls_)) {
                streamlet_decls_[support::intern(n.name)] = &n;
              }
            } else if constexpr (std::is_same_v<T, lang::ImplDecl>) {
              if (!check_dup(impl_decls_)) {
                impl_decls_[support::intern(n.name)] = &n;
                impl_decl_order_.push_back(&n);
              }
            }
          },
          d.node);
    }
  }
}

void Elaborator::evaluate_global_consts() {
  // Declaration order across files: stdlib sources come first by convention
  // (driver concatenates them first), so user constants may reference them.
  for (const auto& file_ptr : program_->files) {
    const lang::SourceFile& file = *file_ptr;
    for (const lang::Decl& d : file.decls) {
      const auto* c = std::get_if<lang::ConstDecl>(&d.node);
      if (c == nullptr) continue;
      if (!memo_.enabled()) {
        evaluate_global_const(*c);
        continue;
      }
      // With a memo, collect the transitive file deps of this constant
      // (its own file + the files of every constant its initializer read)
      // so entries reading it later can stamp the full closure.
      push_dep_frame();
      evaluate_global_const(*c);
      DepFrameData frame = pop_dep_frame();
      SourceStamp own = stamp_for(c->loc);
      if (own.file.valid()) {
        bool seen = false;
        for (const SourceStamp& s : frame.sources) {
          if (s.file == own.file) {
            seen = true;
            break;
          }
        }
        if (!seen) frame.sources.push_back(own);
      }
      const_deps_[support::intern(c->name)] = std::move(frame.sources);
    }
  }
}

void Elaborator::evaluate_global_const(const lang::ConstDecl& c) {
  try {
    Value v = eval::evaluate(*c.init, global_scope_);
    if (c.declared_kind) {
      bool matches = false;
      switch (*c.declared_kind) {
        case lang::ParamKind::kInt: matches = v.is_int(); break;
        case lang::ParamKind::kFloat: matches = v.is_numeric(); break;
        case lang::ParamKind::kString: matches = v.is_string(); break;
        case lang::ParamKind::kBool: matches = v.is_bool(); break;
        case lang::ParamKind::kClockdomain: matches = v.is_clock(); break;
        default: matches = false; break;
      }
      if (!matches) {
        diags_.error("elab",
                     "constant '" + c.name + "' declared as " +
                         std::string(lang::to_string(*c.declared_kind)) +
                         " but initialized with " +
                         std::string(v.type_name()),
                     c.loc);
        return;
      }
    }
    if (!global_scope_.define(c.name, std::move(v))) {
      diags_.error("elab",
                   "constant '" + c.name +
                       "' is already defined (variables are immutable)",
                   c.loc);
    }
  } catch (const EvalError& e) {
    diags_.error("elab", e.what(), e.loc());
  }
}

std::string Elaborator::mangle(const std::string& base,
                               const std::vector<TemplateArgValue>& args) {
  if (args.empty()) return base;
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const TemplateArgValue& a : args) {
    parts.push_back(support::sanitize_identifier(a.display()));
  }
  std::string raw = display_args(args);
  return base + "__" + support::join(parts, "_") + "_" + short_hash(raw);
}

types::TypeRef Elaborator::resolve_named_type(const std::string& name,
                                              Loc loc, const Context& ctx) {
  // 1. Template `type` parameter binding.
  if (ctx.type_bindings != nullptr) {
    auto it = ctx.type_bindings->find(name);
    if (it != ctx.type_bindings->end()) return it->second;
  }
  // 2. Cached global named type. A cache hit replays the type's stored
  // transitive file-dependency closure into the active memo frame; a fresh
  // resolution collects that closure in its own frame below.
  const Symbol name_sym = support::intern(name);
  auto cached = named_type_cache_.find(name_sym);
  if (cached != named_type_cache_.end()) {
    record_named_type_dep(name_sym);
    return cached->second;
  }

  if (resolving_types_.contains(name_sym)) {
    diags_.error("elab", "recursive type definition involving '" + name + "'",
                 loc);
    return nullptr;
  }
  resolving_types_.insert(name_sym);
  const bool track_deps = memo_.enabled();
  if (track_deps) {
    push_dep_frame();
    if (auto it = alias_decls_.find(name_sym); it != alias_decls_.end()) {
      record_source_dep(it->second->loc);
    } else if (auto git = group_decls_.find(name_sym);
               git != group_decls_.end()) {
      record_source_dep(git->second->loc);
    }
  }
  types::TypeRef result;

  // Global types resolve in the *global* context only (logical types cannot
  // be templates, Sec. IV-B, so their definitions may not capture params).
  Context global_ctx;
  global_ctx.scope = &global_scope_;

  if (auto it = alias_decls_.find(name_sym); it != alias_decls_.end()) {
    types::TypeRef base = resolve_type(*it->second->type, global_ctx);
    if (base != nullptr) result = types::with_origin(base, name);
  } else if (auto git = group_decls_.find(name_sym);
             git != group_decls_.end()) {
    const lang::GroupDecl& g = *git->second;
    std::vector<types::Field> fields;
    bool ok = true;
    for (const lang::FieldDecl& f : g.fields) {
      types::TypeRef ft = resolve_type(*f.type, global_ctx);
      if (ft == nullptr) {
        ok = false;
        break;
      }
      fields.push_back(types::Field{f.name, std::move(ft)});
    }
    if (ok) {
      result = g.is_union ? types::make_union(std::move(fields), name)
                          : types::make_group(std::move(fields), name);
    }
  } else {
    diags_.error("elab", "unknown type '" + name + "'", loc);
  }
  resolving_types_.erase(name_sym);
  if (track_deps) {
    // Store the closure (own file + nested types' files + consts read) for
    // cache-hit replay, and merge it into the enclosing frame.
    DepFrameData frame = pop_dep_frame();
    if (result != nullptr) type_deps_[name_sym] = std::move(frame.sources);
  }
  if (result != nullptr) named_type_cache_[name_sym] = result;
  return result;
}

types::TypeRef Elaborator::resolve_type(const lang::TypeExpr& type,
                                        const Context& ctx) {
  try {
    return std::visit(
        [&](const auto& n) -> types::TypeRef {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, lang::NullTypeExpr>) {
            return types::make_null();
          } else if constexpr (std::is_same_v<T, lang::BitTypeExpr>) {
            std::int64_t width = eval::evaluate_int(*n.width, *ctx.scope);
            if (width < 0) {
              diags_.error("elab",
                           "Bit width must be non-negative, got " +
                               std::to_string(width),
                           type.loc);
              return nullptr;
            }
            return types::make_bit(width);
          } else if constexpr (std::is_same_v<T, lang::NamedTypeExpr>) {
            return resolve_named_type(n.name, type.loc, ctx);
          } else {  // StreamTypeExpr
            types::TypeRef element = resolve_type(*n.element, ctx);
            if (element == nullptr) return nullptr;
            types::StreamParams params;
            if (n.throughput) {
              params.throughput = eval::evaluate_number(*n.throughput,
                                                        *ctx.scope);
              if (params.throughput <= 0) {
                diags_.error("elab", "stream throughput must be positive",
                             type.loc);
                return nullptr;
              }
            }
            if (n.dimension) {
              std::int64_t d = eval::evaluate_int(*n.dimension, *ctx.scope);
              if (d < 0) {
                diags_.error("elab", "stream dimension must be >= 0",
                             type.loc);
                return nullptr;
              }
              params.dimension = static_cast<int>(d);
            }
            if (n.complexity) {
              std::int64_t c = eval::evaluate_int(*n.complexity, *ctx.scope);
              if (c < 1 || c > 8) {
                diags_.error("elab",
                             "stream complexity must be in 1..8, got " +
                                 std::to_string(c),
                             type.loc);
                return nullptr;
              }
              params.complexity = static_cast<int>(c);
            }
            if (n.synchronicity) params.synchronicity = *n.synchronicity;
            if (n.direction) params.direction = *n.direction;
            if (n.user) {
              params.user = resolve_type(*n.user, ctx);
              if (params.user == nullptr) return nullptr;
            }
            return types::make_stream(std::move(element), std::move(params));
          }
        },
        type.node);
  } catch (const EvalError& e) {
    diags_.error("elab", e.what(), e.loc());
    return nullptr;
  }
}

std::vector<TemplateArgValue> Elaborator::evaluate_args(
    const std::vector<lang::TemplateArg>& args, const Context& ctx) {
  std::vector<TemplateArgValue> out;
  out.reserve(args.size());
  for (const lang::TemplateArg& a : args) {
    TemplateArgValue v;
    switch (a.kind) {
      case lang::TemplateArg::Kind::kExpr:
        v.kind = TemplateArgValue::Kind::kValue;
        try {
          v.value = eval::evaluate(*a.expr, *ctx.scope);
        } catch (const EvalError& e) {
          diags_.error("elab", e.what(), e.loc());
        }
        break;
      case lang::TemplateArg::Kind::kType:
        v.kind = TemplateArgValue::Kind::kType;
        v.type = resolve_type(*a.type, ctx);
        break;
      case lang::TemplateArg::Kind::kImpl:
        v.kind = TemplateArgValue::Kind::kImpl;
        v.impl_name = resolve_impl_ref(a.impl_name, {}, ctx, a.loc);
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

bool Elaborator::check_param_binding(const lang::TemplateParam& param,
                                     const TemplateArgValue& arg,
                                     const Context& ctx, Loc loc) {
  using PK = lang::ParamKind;
  auto mismatch = [&](std::string_view got) {
    diags_.error("elab",
                 "template parameter '" + param.name + "' expects " +
                     std::string(lang::to_string(param.kind)) + ", got " +
                     std::string(got),
                 loc);
    return false;
  };
  switch (param.kind) {
    case PK::kInt:
      if (arg.kind != TemplateArgValue::Kind::kValue || !arg.value.is_int()) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kFloat:
      if (arg.kind != TemplateArgValue::Kind::kValue ||
          !arg.value.is_numeric()) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kString:
      if (arg.kind != TemplateArgValue::Kind::kValue ||
          !arg.value.is_string()) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kBool:
      if (arg.kind != TemplateArgValue::Kind::kValue || !arg.value.is_bool()) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kClockdomain:
      if (arg.kind != TemplateArgValue::Kind::kValue ||
          !arg.value.is_clock()) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kType:
      if (arg.kind != TemplateArgValue::Kind::kType || arg.type == nullptr) {
        return mismatch(arg.display());
      }
      return true;
    case PK::kImpl: {
      if (arg.kind != TemplateArgValue::Kind::kImpl || arg.impl_name.empty()) {
        return mismatch(arg.display());
      }
      const Impl* supplied = design_.find_impl(arg.impl_name);
      if (supplied == nullptr) {
        return mismatch("unresolved impl '" + arg.impl_name + "'");
      }
      // The entry under elaboration references this impl without inserting
      // it — record as a memo-hit precondition (see elaborate_streamlet).
      record_ref_impl(supplied->sym);
      // `impl of <streamlet>` constraint: family must match; if the
      // constraint supplies arguments, the exact streamlet instance must
      // match (Sec. IV-B: "the streamlet template only accepts
      // implementations derived from that streamlet").
      if (supplied->streamlet_family != param.impl_of_streamlet) {
        diags_.error("elab",
                     "impl '" + supplied->display_name + "' derives from '" +
                         supplied->streamlet_family +
                         "' but template parameter '" + param.name +
                         "' requires an impl of '" + param.impl_of_streamlet +
                         "'",
                     loc);
        return false;
      }
      if (!param.impl_of_args.empty()) {
        auto sit = streamlet_decls_.find(support::intern(param.impl_of_streamlet));
        if (sit == streamlet_decls_.end()) {
          diags_.error("elab",
                       "unknown streamlet '" + param.impl_of_streamlet +
                           "' in impl constraint",
                       param.loc);
          return false;
        }
        std::vector<TemplateArgValue> cargs =
            evaluate_args(param.impl_of_args, ctx);
        std::string expected =
            elaborate_streamlet(*sit->second, cargs, param.loc);
        if (!expected.empty() && supplied->streamlet_name != expected) {
          diags_.error(
              "elab",
              "impl '" + supplied->display_name + "' implements streamlet '" +
                  supplied->streamlet_name + "' but parameter '" + param.name +
                  "' requires '" + expected + "'",
              loc);
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string Elaborator::elaborate_streamlet(
    const lang::StreamletDecl& decl, const std::vector<TemplateArgValue>& args,
    Loc use_loc) {
  std::string mangled = mangle(decl.name, args);
  const Symbol mangled_sym = support::intern(mangled);
  // Template-instantiation cache: monomorphisation is keyed by the mangled
  // name's symbol; a hit skips re-elaboration entirely.
  if (design_.find_streamlet(mangled_sym) != nullptr) {
    ++stats_.streamlet_hits;
    // A reference to an entity elaborated before the enclosing entry's
    // window opened becomes a hit precondition of that entry (filtered
    // against the window at memoization time).
    record_ref_streamlet(mangled_sym);
    return mangled;
  }
  // Cross-compile memo: a prior compile of this session already
  // monomorphised this streamlet from byte-identical source. The payload is
  // shared into this design, not copied.
  if (memo_.enabled()) {
    if (std::shared_ptr<const Streamlet> cached =
            memo_.memo->find_streamlet(mangled_sym, *memo_.hashes)) {
      design_.add_streamlet(std::move(cached));
      ++stats_.streamlet_hits;
      ++stats_.session_streamlet_hits;
      return mangled;
    }
  }
  ++stats_.streamlet_misses;
  const std::size_t errors_before = diags_.error_count();
  DepFrame dep_frame(this);

  if (args.size() != decl.params.size()) {
    diags_.error("elab",
                 "streamlet '" + decl.name + "' expects " +
                     std::to_string(decl.params.size()) + " argument(s), got " +
                     std::to_string(args.size()),
                 use_loc);
    return {};
  }

  eval::Scope scope(&global_scope_);
  std::map<std::string, types::TypeRef> type_bindings;
  Context ctx;
  ctx.scope = &scope;
  ctx.type_bindings = &type_bindings;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const lang::TemplateParam& p = decl.params[i];
    if (p.kind == lang::ParamKind::kImpl) {
      diags_.error("elab",
                   "streamlet templates cannot take impl parameters ('" +
                       p.name + "' in '" + decl.name + "')",
                   p.loc);
      return {};
    }
    if (!check_param_binding(p, args[i], ctx, use_loc)) return {};
    if (p.kind == lang::ParamKind::kType) {
      type_bindings[p.name] = args[i].type;
    } else {
      scope.define(p.name, args[i].value);
    }
  }

  Streamlet s;
  s.name = mangled;
  s.display_name = args.empty()
                       ? decl.name
                       : decl.name + "<" + display_args(args) + ">";
  s.loc = decl.loc;

  for (const lang::PortDecl& pd : decl.ports) {
    types::TypeRef t = resolve_type(*pd.type, ctx);
    if (t == nullptr) continue;
    if (!t->is_stream()) {
      diags_.error("elab",
                   "port '" + pd.name + "' of streamlet '" + decl.name +
                       "' must bind to a Stream type, got " + t->to_display(),
                   pd.loc);
      continue;
    }
    std::string clock = "default";
    if (pd.clock_domain) {
      if (auto v = scope.lookup(*pd.clock_domain)) {
        if (v->is_clock()) {
          clock = v->as_clock().name;
        } else {
          diags_.error("elab",
                       "'" + *pd.clock_domain +
                           "' used as clock domain but has type " +
                           std::string(v->type_name()),
                       pd.loc);
        }
      } else {
        // Bare clock-domain labels are permitted: `@ sys_clk` names the
        // domain directly without declaring a clockdomain constant.
        clock = *pd.clock_domain;
      }
    }
    std::int64_t count = -1;  // scalar
    if (pd.array_size) {
      try {
        count = eval::evaluate_int(*pd.array_size, scope);
      } catch (const EvalError& e) {
        diags_.error("elab", e.what(), e.loc());
        continue;
      }
      if (count < 0) {
        diags_.error("elab", "port array size must be >= 0", pd.loc);
        continue;
      }
    }
    auto add_port = [&](const std::string& port_name) {
      if (s.find_port(port_name) != nullptr) {
        diags_.error("elab",
                     "duplicate port '" + port_name + "' in streamlet '" +
                         decl.name + "'",
                     pd.loc);
        return;
      }
      Port p;
      p.name = port_name;
      p.type = t;
      p.dir = pd.dir;
      p.clock_domain = clock;
      p.loc = pd.loc;
      s.ports.push_back(std::move(p));
    };
    if (count < 0) {
      add_port(pd.name);
    } else {
      for (std::int64_t i = 0; i < count; ++i) {
        add_port(pd.name + "_" + std::to_string(i));
      }
    }
  }

  design_.add_streamlet(std::move(s));
  // Memoize only clean elaborations of decls with a stampable source file.
  // The entry shares the design's payload object (no copy).
  if (memo_.enabled() && diags_.error_count() == errors_before) {
    SourceStamp stamp = stamp_for(decl.loc);
    if (stamp.file.valid()) {
      memo_.memo->put_streamlet(mangled_sym,
                                design_.share_streamlet(mangled_sym), stamp,
                                dep_stack_.back().sources);
    }
  }
  return mangled;
}

std::string Elaborator::resolve_impl_ref(
    const std::string& name, const std::vector<lang::TemplateArg>& args,
    const Context& ctx, Loc loc) {
  // Impl-parameter binding (already elaborated and concrete).
  if (ctx.impl_bindings != nullptr) {
    auto it = ctx.impl_bindings->find(name);
    if (it != ctx.impl_bindings->end()) {
      if (!args.empty()) {
        diags_.error("elab",
                     "impl parameter '" + name +
                         "' is already concrete and takes no arguments",
                     loc);
        return {};
      }
      return it->second;
    }
  }
  auto it = impl_decls_.find(support::intern(name));
  if (it == impl_decls_.end()) {
    diags_.error("elab", "unknown impl '" + name + "'", loc);
    return {};
  }
  std::vector<TemplateArgValue> evaluated = evaluate_args(args, ctx);
  return elaborate_impl(*it->second, evaluated, loc);
}

std::string Elaborator::elaborate_impl(
    const lang::ImplDecl& decl, const std::vector<TemplateArgValue>& args,
    Loc use_loc) {
  std::string mangled = mangle(decl.name, args);
  const Symbol mangled_sym = support::intern(mangled);
  // Template-instantiation cache (see elaborate_streamlet).
  if (design_.find_impl(mangled_sym) != nullptr) {
    ++stats_.impl_hits;
    record_ref_impl(mangled_sym);  // see elaborate_streamlet
    return mangled;
  }
  // Cross-compile memo: replay the cached impl plus its recorded insertion
  // window (streamlet + transitive children) in original order.
  if (memo_.enabled()) {
    if (std::shared_ptr<const TemplateMemo::ImplEntry> entry =
            memo_.memo->find_impl(mangled_sym, *memo_.hashes)) {
      if (materialize_memo_impl(*entry)) {
        ++stats_.impl_hits;
        ++stats_.session_impl_hits;
        return mangled;
      }
    }
  }
  ++stats_.impl_misses;
  const std::size_t errors_before = diags_.error_count();
  const std::size_t streamlets_before = design_.streamlets().size();
  const std::size_t impls_before = design_.impls().size();
  DepFrame dep_frame(this);
  if (impls_in_progress_.contains(mangled_sym)) {
    diags_.error("elab",
                 "recursive instantiation of impl '" + decl.name + "'",
                 use_loc);
    return {};
  }
  if (args.size() != decl.params.size()) {
    diags_.error("elab",
                 "impl '" + decl.name + "' expects " +
                     std::to_string(decl.params.size()) + " argument(s), got " +
                     std::to_string(args.size()),
                 use_loc);
    return {};
  }
  impls_in_progress_.insert(mangled_sym);

  eval::Scope scope(&global_scope_);
  std::map<std::string, types::TypeRef> type_bindings;
  std::map<std::string, std::string> impl_bindings;
  Context ctx;
  ctx.scope = &scope;
  ctx.type_bindings = &type_bindings;
  ctx.impl_bindings = &impl_bindings;

  std::map<std::string, eval::Value> captured;

  bool params_ok = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const lang::TemplateParam& p = decl.params[i];
    if (!check_param_binding(p, args[i], ctx, use_loc)) {
      params_ok = false;
      continue;
    }
    switch (p.kind) {
      case lang::ParamKind::kType:
        type_bindings[p.name] = args[i].type;
        break;
      case lang::ParamKind::kImpl:
        impl_bindings[p.name] = args[i].impl_name;
        break;
      default:
        scope.define(p.name, args[i].value);
        captured.emplace(p.name, args[i].value);
        break;
    }
  }
  if (!params_ok) {
    impls_in_progress_.erase(mangled_sym);
    return {};
  }

  Impl impl;
  impl.name = mangled;
  impl.display_name =
      args.empty() ? decl.name : decl.name + "<" + display_args(args) + ">";
  impl.template_name = decl.name;
  impl.template_args = args;
  impl.external = decl.external;
  impl.streamlet_family = decl.of_streamlet;
  impl.loc = decl.loc;

  // Elaborate the streamlet this impl derives from.
  auto sit = streamlet_decls_.find(support::intern(decl.of_streamlet));
  if (sit == streamlet_decls_.end()) {
    diags_.error("elab", "unknown streamlet '" + decl.of_streamlet + "'",
                 decl.loc);
    impls_in_progress_.erase(mangled_sym);
    return {};
  }
  std::vector<TemplateArgValue> of_args = evaluate_args(decl.of_args, ctx);
  impl.streamlet_name = elaborate_streamlet(*sit->second, of_args, decl.loc);
  if (impl.streamlet_name.empty()) {
    impls_in_progress_.erase(mangled_sym);
    return {};
  }

  if (decl.external) {
    // External implementations carry no netlist; their behaviour comes from
    // a sim block (Sec. V-A) and their RTL from the stdlib generator.
    for (const lang::ImplStmt& s : decl.body) {
      if (const auto* c = std::get_if<lang::LocalConst>(&s.node)) {
        try {
          Value v = eval::evaluate(*c->init, scope);
          captured.emplace(c->name, v);
          if (!scope.define(c->name, std::move(v))) {
            diags_.error("elab",
                         "'" + c->name + "' is already defined "
                         "(variables are immutable)",
                         c->loc);
          }
        } catch (const EvalError& e) {
          diags_.error("elab", e.what(), e.loc());
        }
      } else if (const auto* a = std::get_if<lang::AssertStmt>(&s.node)) {
        try {
          if (!eval::evaluate_bool(*a->cond, scope)) {
            diags_.error("elab",
                         a->message.empty()
                             ? std::string("assertion failed")
                             : "assertion failed: " + a->message,
                         a->loc);
          }
        } catch (const EvalError& e) {
          diags_.error("elab", e.what(), e.loc());
        }
      } else {
        diags_.error("elab",
                     "external impl '" + decl.name +
                         "' may only contain consts, asserts and a sim block",
                     decl.loc);
      }
    }
  } else {
    walk_stmts(decl.body, impl, scope, ctx, captured);
  }

  if (decl.sim) {
    SimProgram sim;
    sim.block = &*decl.sim;
    sim.captured = captured;
    impl.sim = std::move(sim);
  }

  impls_in_progress_.erase(mangled_sym);
  design_.add_impl(std::move(impl));
  // Memoize clean elaborations together with the insertion window recorded
  // above (everything this call added transitively, in order) and the
  // referenced-but-not-inserted preconditions.
  if (memo_.enabled() && diags_.error_count() == errors_before) {
    SourceStamp stamp = stamp_for(decl.loc);
    if (stamp.file.valid()) {
      TemplateMemo::ImplEntry entry;
      entry.payload = design_.share_impl(mangled_sym);
      entry.stamp = stamp;
      const DepFrameData& frame = dep_stack_.back();
      entry.dep_sources = frame.sources;
      const auto& streamlets = design_.streamlets();
      const auto& impls = design_.impls();
      entry.dep_streamlets.reserve(streamlets.size() - streamlets_before);
      for (std::size_t i = streamlets_before; i < streamlets.size(); ++i) {
        entry.dep_streamlets.push_back(streamlets[i].sym);
      }
      entry.dep_impls.reserve(impls.size() - impls_before - 1);
      for (std::size_t i = impls_before; i + 1 < impls.size(); ++i) {
        entry.dep_impls.push_back(impls[i].sym);
      }
      // References inside the window are replayed anyway; only references
      // predating the window become preconditions.
      auto outside_window = [](const std::vector<Symbol>& refs,
                               const std::vector<Symbol>& window,
                               Symbol self) {
        std::vector<Symbol> out;
        for (Symbol sym : refs) {
          if (sym != self &&
              std::find(window.begin(), window.end(), sym) == window.end()) {
            out.push_back(sym);
          }
        }
        return out;
      };
      entry.required_streamlets = outside_window(
          frame.ref_streamlets, entry.dep_streamlets, support::kNoSymbol);
      entry.required_impls =
          outside_window(frame.ref_impls, entry.dep_impls, mangled_sym);
      memo_.memo->put_impl(mangled_sym, std::move(entry), program_);
    }
  }
  return mangled;
}

Endpoint Elaborator::resolve_port_ref(const lang::PortRef& ref,
                                      const Context& ctx) {
  Endpoint ep;
  ep.loc = ref.loc;
  try {
    if (ref.instance) {
      ep.instance = *ref.instance;
      if (ref.instance_index) {
        std::int64_t i = eval::evaluate_int(*ref.instance_index, *ctx.scope);
        ep.instance += "_" + std::to_string(i);
      }
    }
    ep.port = ref.port;
    if (ref.port_index) {
      std::int64_t i = eval::evaluate_int(*ref.port_index, *ctx.scope);
      ep.port += "_" + std::to_string(i);
    }
  } catch (const EvalError& e) {
    diags_.error("elab", e.what(), e.loc());
  }
  return ep;
}

void Elaborator::walk_stmts(const std::vector<lang::ImplStmt>& stmts,
                            Impl& impl, eval::Scope& scope,
                            const Context& parent_ctx,
                            std::map<std::string, eval::Value>& captured) {
  Context ctx = parent_ctx;
  ctx.scope = &scope;

  for (const lang::ImplStmt& stmt : stmts) {
    std::visit(
        [&](const auto& n) {
          using T = std::decay_t<decltype(n)>;
          try {
            if constexpr (std::is_same_v<T, lang::InstanceStmt>) {
              std::int64_t count = -1;
              if (n.array_size) {
                count = eval::evaluate_int(*n.array_size, scope);
                if (count < 0) {
                  diags_.error("elab", "instance array size must be >= 0",
                               n.loc);
                  return;
                }
              }
              std::string base_name = n.name;
              if (n.name_index) {
                if (n.array_size) {
                  diags_.error("elab",
                               "instance '" + n.name + "' cannot have both "
                               "an explicit index and an array size",
                               n.loc);
                  return;
                }
                std::int64_t i = eval::evaluate_int(*n.name_index, scope);
                base_name += "_" + std::to_string(i);
              }
              std::string child = resolve_impl_ref(n.impl_name, n.args, ctx,
                                                   n.loc);
              if (child.empty()) return;
              auto add_instance = [&](const std::string& inst_name) {
                if (impl.find_instance(inst_name) != nullptr) {
                  diags_.error("elab",
                               "duplicate instance '" + inst_name + "' in '" +
                                   impl.display_name + "'",
                               n.loc);
                  return;
                }
                impl.instances.push_back(Instance{inst_name, child, n.loc});
              };
              if (count < 0) {
                add_instance(base_name);
              } else {
                for (std::int64_t i = 0; i < count; ++i) {
                  add_instance(base_name + "_" + std::to_string(i));
                }
              }
            } else if constexpr (std::is_same_v<T, lang::ConnectStmt>) {
              Connection c;
              c.src = resolve_port_ref(n.src, ctx);
              c.dst = resolve_port_ref(n.dst, ctx);
              c.structural = n.structural;
              c.loc = n.loc;
              impl.connections.push_back(std::move(c));
            } else if constexpr (std::is_same_v<T, lang::ForStmt>) {
              Value iterable = eval::evaluate(*n.iterable, scope);
              if (!iterable.is_array()) {
                diags_.error("elab",
                             "for-loop iterable must be an array or range, "
                             "got " +
                                 std::string(iterable.type_name()),
                             n.loc);
                return;
              }
              for (const Value& element : iterable.as_array()) {
                eval::Scope body_scope(&scope);
                body_scope.define(n.var, element);
                walk_stmts(n.body, impl, body_scope, ctx, captured);
              }
            } else if constexpr (std::is_same_v<T, lang::IfStmt>) {
              bool cond = eval::evaluate_bool(*n.cond, scope);
              const auto& branch = cond ? n.then_body : n.else_body;
              eval::Scope body_scope(&scope);
              walk_stmts(branch, impl, body_scope, ctx, captured);
            } else if constexpr (std::is_same_v<T, lang::AssertStmt>) {
              if (!eval::evaluate_bool(*n.cond, scope)) {
                diags_.error("elab",
                             n.message.empty()
                                 ? std::string("assertion failed")
                                 : "assertion failed: " + n.message,
                             n.loc);
              }
            } else if constexpr (std::is_same_v<T, lang::LocalConst>) {
              Value v = eval::evaluate(*n.init, scope);
              captured.emplace(n.name, v);
              if (!scope.define(n.name, std::move(v))) {
                diags_.error("elab",
                             "'" + n.name + "' is already defined in this "
                             "scope (variables are immutable; shadow in an "
                             "inner scope instead)",
                             n.loc);
              }
            }
          } catch (const EvalError& e) {
            diags_.error("elab", e.what(), e.loc());
          }
        },
        stmt.node);
  }
}

Design Elaborator::run(const std::string& top_impl) {
  auto it = impl_decls_.find(support::intern(top_impl));
  if (it == impl_decls_.end()) {
    diags_.error("elab", "unknown top impl '" + top_impl + "'", {});
    return std::move(design_);
  }
  if (!it->second->params.empty()) {
    diags_.error("elab",
                 "top impl '" + top_impl +
                     "' is a template; instantiate it from a concrete "
                     "wrapper impl",
                 it->second->loc);
    return std::move(design_);
  }
  std::string mangled = elaborate_impl(*it->second, {}, it->second->loc);
  design_.set_top(mangled);
  return std::move(design_);
}

Design Elaborator::run_all() {
  // Declaration order, not hash order: Design insertion order must stay
  // deterministic for reproducible IR/VHDL emission.
  for (const lang::ImplDecl* decl : impl_decl_order_) {
    if (decl->params.empty()) {
      (void)elaborate_impl(*decl, {}, decl->loc);
    }
  }
  return std::move(design_);
}

}  // namespace tydi::elab
