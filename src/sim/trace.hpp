// Columnar trace storage for the simulator.
//
// The old representation — one `TraceEvent` struct per delivered packet,
// pushed into a std::vector — was the dominant steady-state allocation of
// long traced runs: every vector growth copied ~100-byte structs (two
// std::string members each), and the post-run name materialization assigned
// a heap string per event. `TraceBuffer` stores the trace as parallel
// columns (time / channel / value / last) in fixed-size slabs:
//
//  - appending touches the allocator once per kSlabEvents events (one slab,
//    four POD arrays), never copies recorded data, and never moves slabs;
//  - the cross-shard canonical merge permutes *indices* and copies 21 bytes
//    per event instead of re-sorting strings;
//  - per-event strings are gone entirely — boundary/port/name information
//    is a per-channel property and lives in `ChannelStats` (channels are
//    few, events are millions).
//
// `write_binary_trace` / `read_binary_trace` serialize the columns plus the
// channel-name table (`tydic --trace-out`), so long runs can dump traces
// without rendering text.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/support/status.hpp"

namespace tydi::sim {

struct SimResult;

class TraceBuffer {
 public:
  /// Events per slab. 4096 events = one ~86 KB allocation.
  static constexpr std::size_t kSlabEvents = 4096;

  TraceBuffer() = default;
  // User-defined moves: the defaulted ones would copy `size_` while
  // emptying `slabs_`, leaving the moved-from buffer claiming N events over
  // zero slabs (any later append/read would index out of bounds).
  TraceBuffer(TraceBuffer&& other) noexcept
      : slabs_(std::move(other.slabs_)), size_(other.size_) {
    other.slabs_.clear();
    other.size_ = 0;
  }
  TraceBuffer& operator=(TraceBuffer&& other) noexcept {
    slabs_ = std::move(other.slabs_);
    size_ = other.size_;
    other.slabs_.clear();
    other.size_ = 0;
    return *this;
  }

  void append(double time_ns, std::int32_t channel, std::int64_t value,
              bool last) {
    std::size_t slot = size_ & kSlabMask;
    if (slot == 0 && (size_ >> kSlabShift) == slabs_.size()) {
      slabs_.push_back(std::make_unique<Slab>());
      g_slabs_allocated.fetch_add(1, std::memory_order_relaxed);
    }
    Slab& slab = *slabs_[size_ >> kSlabShift];
    slab.time_ns[slot] = time_ns;
    slab.channel[slot] = channel;
    slab.value[slot] = value;
    slab.last[slot] = last ? 1 : 0;
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] double time_ns(std::size_t i) const {
    return slabs_[i >> kSlabShift]->time_ns[i & kSlabMask];
  }
  [[nodiscard]] std::int32_t channel(std::size_t i) const {
    return slabs_[i >> kSlabShift]->channel[i & kSlabMask];
  }
  [[nodiscard]] std::int64_t value(std::size_t i) const {
    return slabs_[i >> kSlabShift]->value[i & kSlabMask];
  }
  [[nodiscard]] bool last(std::size_t i) const {
    return slabs_[i >> kSlabShift]->last[i & kSlabMask] != 0;
  }

  /// True when events are in canonical (time, channel) order already — the
  /// common case for a single kernel without zero-latency channels; the
  /// merge then steals the buffer instead of permuting it.
  [[nodiscard]] bool canonically_sorted() const;

  void clear() {
    slabs_.clear();
    size_ = 0;
  }

  /// Slabs held by this buffer (allocation accounting).
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  /// Process-wide slab allocation counter (the bench's chunk/alloc gauge —
  /// compare against event counts to show steady-state allocs dropped).
  /// Buffers append from worker threads, so the counter is atomic.
  [[nodiscard]] static std::uint64_t slabs_allocated() {
    return g_slabs_allocated.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kSlabShift = 12;
  static constexpr std::size_t kSlabMask = kSlabEvents - 1;
  static_assert(kSlabEvents == (std::size_t{1} << kSlabShift));

  struct Slab {
    double time_ns[kSlabEvents];
    std::int64_t value[kSlabEvents];
    std::int32_t channel[kSlabEvents];
    std::uint8_t last[kSlabEvents];
  };

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::size_t size_ = 0;
  static std::atomic<std::uint64_t> g_slabs_allocated;
};

/// A binary trace file: the channel-name table + the columns.
struct BinaryTrace {
  std::vector<std::string> channels;  ///< indexed by the channel column
  TraceBuffer trace;
};

/// Writes `result.trace` plus the channel-name table in the TYTR v1 binary
/// format. Returns false on stream failure.
bool write_binary_trace(const SimResult& result, std::ostream& out);
bool write_binary_trace(const SimResult& result, const std::string& path);

/// Reads a TYTR v1 file. Every header-supplied count and length is
/// bounds-checked against the stream before allocation or use, and every
/// channel column entry is validated against the name table, so truncated
/// or bit-flipped input yields a kCorruptData / kIoError Status — never an
/// out-of-range index reaching TraceBuffer or a bad_alloc escaping.
[[nodiscard]] support::Status read_binary_trace(std::istream& in,
                                                BinaryTrace& out);
[[nodiscard]] support::Status read_binary_trace(const std::string& path,
                                                BinaryTrace& out);

}  // namespace tydi::sim
