// Run guard + watchdog for the simulation runtime.
//
// A `RunGuard` is the single stop-signal shared by every shard thread, the
// barrier, and the watchdog: one atomic flag plus the cause that raised it.
// Kernels contribute to a global processed-event counter and poll the flag
// every few hundred events, so a stop request (budget exceeded, watchdog
// fired) drains the run within microseconds instead of at the next barrier.
//
// The `Watchdog` is a monitor thread that polls the guard:
//  - *no-progress*: the global event counter has not moved for
//    `watchdog_timeout_ms`. Barrier rounds alone do NOT count as progress —
//    the canonical livelock (withheld acks in credit mode) spins rounds
//    forever while processing zero events, and a round-based monitor would
//    never fire;
//  - *wall-clock budget*: total run time exceeded `wall_clock_budget_ms`;
//  - *RSS budget*: resident set size exceeded `rss_budget_mb` (via
//    getrusage; best-effort — ru_maxrss is a high-water mark).
//
// When any trigger fires the watchdog calls `request_stop(cause)`; shard
// threads and the abortable barrier observe the flag, unwind cooperatively,
// and the runtime converts the partial state into SimResult::aborted with
// per-shard forensics. The watchdog never kills threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace tydi::sim {

/// Why a run was asked to stop. kNone means the run completed on its own.
enum class StopCause : std::uint8_t {
  kNone = 0,
  kWatchdogNoProgress,
  kMaxEvents,
  kWallClock,
  kRss,
};

[[nodiscard]] std::string_view to_string(StopCause cause);

/// Shared stop-signal for one simulation run. All methods are thread-safe.
class RunGuard {
 public:
  /// Adds processed events to the global counter and returns the new total.
  /// Relaxed: the counter is monotonic telemetry, not a synchronization
  /// point.
  std::uint64_t add_events(std::uint64_t n) {
    return events_.fetch_add(n, std::memory_order_relaxed) + n;
  }

  [[nodiscard]] std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// First caller wins; later causes are ignored so forensics report the
  /// original trigger.
  void request_stop(StopCause cause) {
    StopCause expected = StopCause::kNone;
    cause_.compare_exchange_strong(expected, cause,
                                   std::memory_order_relaxed);
    stop_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] StopCause cause() const {
    return cause_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<StopCause> cause_{StopCause::kNone};
  std::atomic<std::uint64_t> events_{0};
};

/// Monitor thread enforcing the no-progress timeout and the run budgets.
/// Construct after the guard, destroy (or stop()) before reading results.
class Watchdog {
 public:
  struct Config {
    /// No-progress window in ms; <= 0 disables the no-progress trigger.
    double timeout_ms = 0.0;
    /// Total wall-clock budget in ms; <= 0 disables.
    double wall_clock_budget_ms = 0.0;
    /// Resident-set budget in MiB; 0 disables.
    std::uint64_t rss_budget_mb = 0;

    [[nodiscard]] bool enabled() const {
      return timeout_ms > 0.0 || wall_clock_budget_ms > 0.0 ||
             rss_budget_mb > 0;
    }
  };

  Watchdog(RunGuard& guard, Config config);
  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Joins the monitor thread. Idempotent.
  void stop();

 private:
  void run();

  RunGuard& guard_;
  Config config_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// Current resident set high-water mark in MiB (getrusage ru_maxrss); 0 when
/// unavailable.
[[nodiscard]] std::uint64_t current_rss_mb();

}  // namespace tydi::sim
