// Component behaviours for the simulator.
//
// Two kinds (Sec. V-A):
//  1. Built-in C++ models for the standard-library template families
//     (duplicator, voider, mux/demux, arithmetic pipes, source/sink, ...),
//     mirroring the hard-coded RTL generator of Sec. IV-C.
//  2. The interpreter for user-written `sim { state ...; on event { ... } }`
//     blocks attached to external implementations.
//
// A behaviour reacts to packet arrivals on its component's input ports and
// to acknowledgements of its own sends; it drives the engine via
// send()/ack()/schedule_timer(). All port references are *indices* into the
// component streamlet's port list — names are resolved once when the
// behaviour is constructed, never on the event path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/elab/design.hpp"
#include "src/sim/kernel.hpp"

namespace tydi::sim {

class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Called once at time zero.
  virtual void on_start(Kernel& engine, int self) {
    (void)engine;
    (void)self;
  }
  /// Called when a packet lands in the component inbox (`port` is the port
  /// index, or -1 for a generic poke). The packet stays in the inbox until
  /// the behaviour calls engine.ack(self, port).
  virtual void on_receive(Kernel& engine, int self, int port) = 0;
  /// Called when a packet previously sent on `port` is acknowledged by the
  /// far side.
  virtual void on_output_acked(Kernel& engine, int self, int port) {
    (void)engine;
    (void)self;
    (void)port;
  }
  /// Called when a queued packet leaves the outbox and enters the channel
  /// register (backpressure released).
  virtual void on_send_accepted(Kernel& engine, int self, int port) {
    (void)engine;
    (void)self;
    (void)port;
  }
  /// Called when a timer scheduled via Engine::schedule_timer fires.
  /// `token` is whatever the behaviour passed when scheduling.
  virtual void on_timer(Kernel& engine, int self, std::int32_t token) {
    (void)engine;
    (void)self;
    (void)token;
  }
  /// Port indices this behaviour is currently waiting on (used by the
  /// deadlock analyzer to build the wait-for graph). Default: none.
  [[nodiscard]] virtual std::vector<int> waiting_ports(
      const Component& self) const {
    (void)self;
    return {};
  }
};

/// Creates a behaviour for a leaf component. Priority:
///  1. a `sim { ... }` block on the impl (interpreted),
///  2. a built-in model for the impl's template family,
///  3. a default pass-through model (warns once).
/// `params` are per-instance model parameters (e.g. latency_cycles).
[[nodiscard]] std::unique_ptr<Behavior> make_behavior(
    const elab::Impl& impl, const elab::Streamlet& streamlet,
    const std::map<std::string, double>& params,
    support::DiagnosticEngine& diags);

/// Families with built-in models (for tests/docs).
[[nodiscard]] const std::vector<std::string>& builtin_behavior_families();

}  // namespace tydi::sim
