#include "src/sim/guard.hpp"

#include <algorithm>
#include <chrono>

#include <sys/resource.h>

namespace tydi::sim {

std::string_view to_string(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kWatchdogNoProgress: return "watchdog-no-progress";
    case StopCause::kMaxEvents: return "max-events-budget";
    case StopCause::kWallClock: return "wall-clock-budget";
    case StopCause::kRss: return "rss-budget";
  }
  return "unknown";
}

std::uint64_t current_rss_mb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
}

Watchdog::Watchdog(RunGuard& guard, Config config)
    : guard_(guard), config_(config) {
  if (config_.enabled()) thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto last_progress_at = start;
  std::uint64_t last_events = guard_.events();

  // Poll fast enough that short test timeouts (~100ms) fire promptly but
  // slow enough to be invisible in profiles.
  double poll_ms = 10.0;
  if (config_.timeout_ms > 0.0) {
    poll_ms = std::min(poll_ms, config_.timeout_ms / 4.0);
  }
  if (config_.wall_clock_budget_ms > 0.0) {
    poll_ms = std::min(poll_ms, config_.wall_clock_budget_ms / 4.0);
  }
  poll_ms = std::max(poll_ms, 1.0);
  const auto poll = std::chrono::duration<double, std::milli>(poll_ms);

  std::unique_lock<std::mutex> lock(mu_);
  while (!done_) {
    cv_.wait_for(lock, poll);
    if (done_ || guard_.stop_requested()) return;

    const auto now = Clock::now();
    const std::uint64_t events = guard_.events();
    if (events != last_events) {
      last_events = events;
      last_progress_at = now;
    }

    auto ms_since = [&](Clock::time_point t) {
      return std::chrono::duration<double, std::milli>(now - t).count();
    };
    if (config_.timeout_ms > 0.0 &&
        ms_since(last_progress_at) >= config_.timeout_ms) {
      guard_.request_stop(StopCause::kWatchdogNoProgress);
      return;
    }
    if (config_.wall_clock_budget_ms > 0.0 &&
        ms_since(start) >= config_.wall_clock_budget_ms) {
      guard_.request_stop(StopCause::kWallClock);
      return;
    }
    if (config_.rss_budget_mb > 0 &&
        current_rss_mb() >= config_.rss_budget_mb) {
      guard_.request_stop(StopCause::kRss);
      return;
    }
  }
}

}  // namespace tydi::sim
