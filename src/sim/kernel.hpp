// The shard-runnable simulation kernel.
//
// A `Kernel` owns the event loop for one shard of a `SimGraph`: a POD
// priority queue of deliver/timer/poke/stimulus events plus per-shard
// result buffers (trace, state transitions, deduplicated warning sites).
// The single-threaded engine drives one kernel over the whole graph; the
// sharded runtime (src/sim/shard/) drives K kernels in lockstep rounds and
// routes cross-shard channel traffic through a `CrossRouter`.
//
// Determinism contract: events are ordered by the canonical key
// (time, kind, a, b) — kind before operands, deliver < timer < poke <
// stimulus < remote-ack — which is *independent of insertion order*. Any
// execution that feeds a kernel the same event set therefore pops it in the
// same order, which is what makes the K-shard run byte-identical to the
// single-queue run: cross-shard messages merely move event insertion to a
// barrier, they cannot reorder the canonical key.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/engine.hpp"

namespace tydi::sim {

class RunGuard;       // guard.hpp
class FaultInjector;  // fault.hpp

/// Scheduler event kinds, in canonical same-time execution order.
enum class EventKind : std::uint8_t {
  kDeliver = 0,   ///< a = channel index
  kTimer = 1,     ///< a = component, b = behaviour-defined token
  kPoke = 2,      ///< a = component
  kStimulus = 3,  ///< a = global stimulus cursor index
  kRemoteAck = 4, ///< a = channel index (sharded runs only; not counted in
                  ///< events_processed — the single-queue engine performs
                  ///< the same work nested inside the sink's ack call)
};

// POD scheduler event dispatched by a switch. No closures, no allocation
// per event, no insertion-order sequence: ties at equal times break on the
// canonical (kind, a, b) key.
struct Event {
  double time = 0.0;
  std::int32_t a = -1;
  std::int32_t b = -1;
  EventKind kind = EventKind::kDeliver;
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

/// Cross-shard message fabric. The sharded runtime implements this over
/// per-shard mailboxes; single-threaded runs pass nullptr (every channel is
/// shard-local).
class CrossRouter {
 public:
  virtual ~CrossRouter() = default;
  /// A packet of `channel` reaches the sink shard at `time`. In exact mode
  /// the payload also sits in the (quiescent) channel register; in credit
  /// mode up to `credit_window` packets are in flight, so the payload rides
  /// in the message and queues in the sink-owned `Channel::arrivals` ring.
  virtual void post_deliver(int to_shard, double time, std::int32_t channel,
                            Packet packet) = 0;
  /// The sink acknowledged `count` packets of `channel` at `time`; the
  /// source shard replenishes the register/credits, notifies the source
  /// behaviour and drains the outbox. Exact mode always posts count 1 at
  /// the consumption timestamp; credit mode posts one batch per barrier
  /// round stamped at the window boundary.
  virtual void post_ack(int to_shard, double time, std::int32_t channel,
                        std::int32_t count) = 0;
};

class Kernel {
 public:
  /// `shard` selects the owned slice of `graph` (graph.component_shard);
  /// `router` must be non-null iff graph.shard_count > 1.
  Kernel(SimGraph& graph, const SimOptions& options,
         support::DiagnosticEngine& diags, int shard, CrossRouter* router);

  // --- API for Behavior models -------------------------------------------
  // Ports are addressed by index into the component's streamlet port list;
  // negative indices are tolerated (warn-and-drop) so behaviours built from
  // unresolvable names degrade gracefully.

  [[nodiscard]] double now() const { return now_; }
  /// Schedules Behavior::on_timer(self=component, token) after `delay_ns`.
  void schedule_timer(double delay_ns, int component, std::int32_t token);
  /// Schedules a poke (re-evaluation of firing conditions) for `component`.
  void schedule_poke(double delay_ns, int component);
  /// Sends on an output port of `component`. Queues when the channel is
  /// occupied.
  void send(int component, int port, Packet packet);
  /// Acknowledges the packet pending on an input port of `component`.
  void ack(int component, int port);
  /// True if the channel out of (component, port) can accept immediately.
  [[nodiscard]] bool can_send(int component, int port) const;
  [[nodiscard]] Component& component(int index) {
    return graph_.components[index];
  }
  [[nodiscard]] const elab::Design& design() const { return *graph_.design; }
  [[nodiscard]] double clock_period(int component) const {
    return component >= 0 ? graph_.components[component].clock_period_ns
                          : graph_.default_period_ns;
  }
  /// `from`/`to` are interned state values (state alphabets are small, so
  /// recording a transition is three integer stores, no string copies).
  void record_state_transition(int component, Symbol variable, Symbol from,
                               Symbol to);
  /// Re-evaluates a component's firing conditions (called by behaviours
  /// after finishing a handler).
  void poke(int component);

  /// Human-readable "path.port" for diagnostics (not on the hot path).
  [[nodiscard]] std::string endpoint_name(const ChannelEndpoint& ep) const {
    return graph_.endpoint_name(ep);
  }

  // --- Driver API --------------------------------------------------------

  /// Pushes the first event of every owned stimulus cursor and calls
  /// on_start for every owned component.
  void seed();

  /// Pops and dispatches events while the head is within `limit`
  /// (`<= limit` when inclusive, `< limit` otherwise) and `<= max_time_ns`.
  /// Sets the capped flag instead of popping an event beyond max_time_ns.
  void process_events(double limit, bool inclusive, double max_time_ns);

  /// Time of the next queued event, or kInfiniteTime when idle.
  [[nodiscard]] double next_time() const {
    return queue_.empty() ? kInfiniteTime : queue_.top().time;
  }

  /// Earliest time a remote sink could acknowledge one of this shard's
  /// occupied cross-shard source channels (kInfiniteTime when none is
  /// occupied). The runtime clamps the round horizon to this bound.
  [[nodiscard]] double ack_risk_bound() const;

  /// Absolute-time event insertion for mailbox drains. Credit-mode cut
  /// channels queue the payload in the sink-owned arrivals ring (exact mode
  /// reads the quiescent channel register instead, byte-compatible with the
  /// pre-credit protocol).
  void enqueue_remote_deliver(double time, std::int32_t channel,
                              Packet packet) {
    Channel& c = graph_.channels[channel];
    if (c.credit_mode()) c.arrivals.push_back(packet);
    queue_.push(Event{time, channel, -1, EventKind::kDeliver});
  }
  void enqueue_remote_ack(double time, std::int32_t channel,
                          std::int32_t count) {
    queue_.push(Event{time, channel, count, EventKind::kRemoteAck});
  }

  /// Credit mode: posts each cut sink channel's accumulated ack batch to
  /// its source shard, stamped at the window boundary `time`. Called by the
  /// sharded runtime once per round, after processing. An attached fault
  /// injector may withhold individual flushes (deferring them to a later
  /// round); `force` overrides that probabilistic fault — but never the
  /// hang fault (FaultPlan::withhold_acks_forever) — and is used by the
  /// quiescence check to flush straggler batches.
  void flush_ack_batches(double time, bool force = false);

  /// Sum of accumulated-but-unflushed ack batches over this shard's
  /// sink-side cut channels. Nonzero at an otherwise-idle barrier means the
  /// run is NOT quiescent: sources are still owed credits.
  [[nodiscard]] std::int64_t pending_ack_batches() const;
  /// Remaining send credits over this shard's source-side cut channels.
  [[nodiscard]] std::int64_t credit_balance() const;
  /// Delivered-but-unacked packets over this shard's sink-side cut
  /// channels.
  [[nodiscard]] std::int64_t unacked_total() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Attaches the run's stop-signal. The event loop contributes to the
  /// guard's global event counter and polls its stop flag every few hundred
  /// events; `max_events` > 0 additionally trips the kMaxEvents budget when
  /// the global counter crosses it.
  void set_guard(RunGuard* guard, std::uint64_t max_events) {
    guard_ = guard;
    max_events_ = max_events;
  }
  /// Attaches this shard's fault oracle (withheld credit-flush site).
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  /// Number of cross-shard acks posted since the last call (the sharded
  /// runtime's same-timestamp fixpoint counter).
  [[nodiscard]] std::uint32_t take_acks_posted() {
    std::uint32_t n = acks_posted_;
    acks_posted_ = 0;
    return n;
  }

  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] double last_event_time() const { return now_; }
  [[nodiscard]] bool capped() const { return capped_; }

  // Result-merge access (after the event loop; see merge_results).
  [[nodiscard]] TraceBuffer& trace() { return trace_; }
  [[nodiscard]] const std::vector<std::uint64_t>& component_events() const {
    return component_events_;
  }
  struct PendingTransition {
    double time_ns;
    std::int32_t component;
    Symbol variable;
    Symbol from;
    Symbol to;
  };
  [[nodiscard]] const std::vector<PendingTransition>& transitions() const {
    return transitions_;
  }
  /// First-hit warning sites in local emission order (deferred mode).
  struct WarnRecord {
    std::uint64_t key;
  };
  [[nodiscard]] const std::vector<WarnRecord>& deferred_warnings() const {
    return deferred_warnings_;
  }
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>&
  warn_counts() const {
    return warn_counts_;
  }
  /// Base phrase of a warning site ("ack on empty channel '...'").
  [[nodiscard]] std::string warn_message(std::uint64_t key) const;
  /// First-hit form: base phrase + the site's advisory suffix.
  [[nodiscard]] std::string warn_first_message(std::uint64_t key) const;

 private:
  // Deduplicated per-packet warnings: each (kind, component, port/channel)
  // site warns once and is counted; totals are reported after the run.
  enum class WarnSite : std::uint8_t {
    kSendUnconnected,
    kAckUnconnected,
    kAckEmptyChannel,
  };

  void push_event(double delay_ns, EventKind kind, std::int32_t a,
                  std::int32_t b);
  void dispatch(const Event& ev);
  void deliver(std::size_t channel_index);
  void start_channel_transfer(std::size_t channel_index, Packet packet);
  /// Starts the next outbox packet if the register is free, charging the
  /// waiting time to the channel's blocked counter.
  void drain_outbox(std::size_t channel_index);
  void send_on_channel(std::size_t channel_index, Packet packet);
  void notify_output_acked(ChannelEndpoint src);
  /// Source-side completion of a cross-shard ack (the tail of what the
  /// single-queue engine runs nested inside Kernel::ack).
  void complete_remote_ack(std::size_t channel_index);
  /// Source-side completion of a credit-mode ack batch: replenishes `count`
  /// credits, notifying the source behaviour and draining the outbox per
  /// credit (the per-ack sequence of the exact protocol, batched).
  void complete_remote_ack_batch(std::size_t channel_index,
                                 std::int32_t count);
  /// Counts the warning site; emits (or defers) the message on first hit.
  void warn_once(WarnSite site, std::int32_t a, std::int32_t b);

  SimGraph& graph_;
  support::DiagnosticEngine& diags_;
  const int shard_;
  CrossRouter* router_;
  RunGuard* guard_ = nullptr;
  std::uint64_t max_events_ = 0;
  FaultInjector* fault_ = nullptr;
  bool trace_enabled_ = true;
  /// Sharded runs defer warning emission to the deterministic post-join
  /// merge instead of calling the diagnostic engine from worker threads.
  bool defer_warnings_ = false;

  double now_ = 0.0;
  std::uint64_t events_processed_ = 0;
  std::uint32_t acks_posted_ = 0;
  bool capped_ = false;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TraceBuffer trace_;
  std::vector<PendingTransition> transitions_;
  /// Events dispatched per component (deliver at the sink, timer, poke) —
  /// the measured activity weights of profile-guided partitioning.
  std::vector<std::uint64_t> component_events_;
  std::unordered_map<std::uint64_t, std::uint64_t> warn_counts_;
  std::vector<WarnRecord> deferred_warnings_;
  /// Channel indices of cross-shard channels whose source side this shard
  /// owns (precomputed for ack_risk_bound).
  std::vector<std::int32_t> cross_src_channels_;
  /// Channel indices of cross-shard channels whose sink side this shard
  /// owns (credit-mode ack-batch flushing).
  std::vector<std::int32_t> cross_dst_channels_;
};

/// Merges K kernels' buffers into one SimResult: channel stats + names,
/// canonically ordered trace and state transitions, top outputs, deadlock
/// analysis over the quiesced graph, deferred warning emission. Identical
/// output for any K covering the same run.
/// `aborted` skips the deadlock analysis: an aborted run's queues are not
/// quiescent, so the wait-for search would report phantom cycles.
[[nodiscard]] SimResult merge_results(SimGraph& graph,
                                      const std::vector<Kernel*>& kernels,
                                      double end_time_ns,
                                      support::DiagnosticEngine& diags,
                                      bool aborted = false);

}  // namespace tydi::sim
