#include "src/sim/behavior.hpp"

#include <cmath>
#include <functional>
#include <memory>

#include "src/eval/interp.hpp"
#include "src/eval/scope.hpp"

namespace tydi::sim {

using elab::Impl;
using elab::Port;
using elab::Streamlet;
using support::Symbol;

namespace {

std::vector<int> port_indices(const Streamlet& s, lang::PortDir dir) {
  std::vector<int> out;
  for (std::size_t i = 0; i < s.ports.size(); ++i) {
    if (s.ports[i].dir == dir) out.push_back(static_cast<int>(i));
  }
  return out;
}

double param(const std::map<std::string, double>& params,
             const std::string& key, double fallback) {
  auto it = params.find(key);
  return it != params.end() ? it->second : fallback;
}

// ---------------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------------

/// Always-ready sink: acknowledges after `latency_cycles` (default 0).
/// Delayed acks travel as timer events whose token is the port index.
class SinkModel : public Behavior {
 public:
  explicit SinkModel(double latency_cycles) : latency_(latency_cycles) {}

  void on_receive(Kernel& engine, int self, int port) override {
    if (port < 0) return;
    if (latency_ <= 0.0) {
      engine.ack(self, port);
      return;
    }
    engine.schedule_timer(latency_ * engine.clock_period(self), self, port);
  }

  void on_timer(Kernel& engine, int self, std::int32_t token) override {
    engine.ack(self, token);
  }

 private:
  double latency_;
};

/// Emits `count` packets at a fixed interval regardless of backpressure
/// (excess queues in the outbox, producing the blocked-time signal the
/// bottleneck analysis ranks).
class SourceModel : public Behavior {
 public:
  SourceModel(int out_port, std::int64_t count, double interval_cycles)
      : out_(out_port), count_(count), interval_(interval_cycles) {}

  void on_start(Kernel& engine, int self) override { emit(engine, self); }

  void on_receive(Kernel&, int, int) override {}

  void on_timer(Kernel& engine, int self, std::int32_t) override {
    emit(engine, self);
  }

 private:
  int out_;
  std::int64_t count_;
  double interval_;
  std::int64_t sent_ = 0;

  void emit(Kernel& engine, int self) {
    if (sent_ >= count_) return;
    Packet p;
    p.value = sent_;
    p.last = (sent_ == count_ - 1);
    engine.send(self, out_, p);
    ++sent_;
    if (sent_ < count_) {
      engine.schedule_timer(interval_ * engine.clock_period(self), self, 0);
    }
  }
};

/// Copies each input packet to every output; acknowledges the input once all
/// outputs were acknowledged (Sec. IV-C).
class DuplicatorModel : public Behavior {
 public:
  DuplicatorModel(int in_port, std::vector<int> out_ports)
      : in_(in_port), outs_(std::move(out_ports)) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }

  void on_output_acked(Kernel& engine, int self, int) override {
    if (!forwarding_) return;
    if (--pending_ == 0) {
      forwarding_ = false;
      engine.ack(self, in_);
      try_fire(engine, self);
    }
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    if (self.inbox[in_].empty()) return {in_};
    return {};
  }

 private:
  int in_;
  std::vector<int> outs_;
  bool forwarding_ = false;
  std::size_t pending_ = 0;

  void try_fire(Kernel& engine, int self) {
    if (forwarding_) return;
    auto& box = engine.component(self).inbox[in_];
    if (box.empty()) return;
    forwarding_ = true;
    pending_ = outs_.size();
    Packet p = box.front();
    for (int out : outs_) {
      engine.send(self, out, p);
    }
  }
};

/// Round-robin distributor: forwards to out[rr] only when that channel is
/// free, so backpressure propagates to the producer.
class DemuxModel : public Behavior {
 public:
  DemuxModel(int in_port, std::vector<int> out_ports)
      : in_(in_port), outs_(std::move(out_ports)) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    if (self.inbox[in_].empty()) return {in_};
    return {};
  }

 private:
  int in_;
  std::vector<int> outs_;
  std::size_t rr_ = 0;

  void try_forward(Kernel& engine, int self) {
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty() && engine.can_send(self, outs_[rr_])) {
      engine.send(self, outs_[rr_], box.front());
      engine.ack(self, in_);
      rr_ = (rr_ + 1) % outs_.size();
    }
  }
};

/// Round-robin collector (order-preserving counterpart of DemuxModel).
class MuxModel : public Behavior {
 public:
  MuxModel(std::vector<int> in_ports, int out_port)
      : ins_(std::move(in_ports)), out_(out_port) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    int want = ins_[rr_];
    if (self.inbox[want].empty()) return {want};
    return {};
  }

 private:
  std::vector<int> ins_;
  int out_;
  std::size_t rr_ = 0;

  void try_forward(Kernel& engine, int self) {
    for (;;) {
      auto& box = engine.component(self).inbox[ins_[rr_]];
      if (box.empty() || !engine.can_send(self, out_)) return;
      engine.send(self, out_, box.front());
      engine.ack(self, ins_[rr_]);
      rr_ = (rr_ + 1) % ins_.size();
    }
  }
};

/// Non-pipelined processing unit: consumes one packet, works for
/// `latency_cycles`, then emits the transformed packet — e.g. the paper's
/// "32-bit adder with a delay of 8 clock cycles" (Sec. IV-B).
class PipeModel : public Behavior {
 public:
  using Transform = std::function<Packet(const Packet&)>;
  PipeModel(int in_port, int out_port, double latency_cycles,
            Transform transform)
      : in_(in_port),
        out_(out_port),
        latency_(latency_cycles),
        transform_(std::move(transform)) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_start(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    if (done_waiting_out_) complete(engine, self);
  }
  void on_timer(Kernel& engine, int self, std::int32_t) override {
    if (engine.can_send(self, out_)) {
      complete(engine, self);
    } else {
      done_waiting_out_ = true;
    }
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    if (busy_) return {};
    if (self.inbox[in_].empty()) return {in_};
    return {};
  }

 private:
  int in_;
  int out_;
  double latency_;
  Transform transform_;
  bool busy_ = false;
  bool done_waiting_out_ = false;
  Packet current_;

  void try_start(Kernel& engine, int self) {
    if (busy_) return;
    auto& box = engine.component(self).inbox[in_];
    if (box.empty()) return;
    busy_ = true;
    current_ = box.front();
    engine.schedule_timer(latency_ * engine.clock_period(self), self, 0);
  }

  void complete(Kernel& engine, int self) {
    done_waiting_out_ = false;
    engine.send(self, out_, transform_(current_));
    engine.ack(self, in_);
    busy_ = false;
    try_start(engine, self);
  }
};

/// `filter<in, keep, out>`: forwards when keep != 0, drops otherwise; both
/// inputs are acknowledged together (Sec. VI).
class FilterModel : public Behavior {
 public:
  FilterModel(int data_port, int keep_port, int out_port)
      : data_(data_port), keep_(keep_port), out_(out_port) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    std::vector<int> missing;
    for (int p : {data_, keep_}) {
      if (self.inbox[p].empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  int data_;
  int keep_;
  int out_;

  void try_fire(Kernel& engine, int self) {
    for (;;) {
      auto& data_box = engine.component(self).inbox[data_];
      auto& keep_box = engine.component(self).inbox[keep_];
      if (data_box.empty() || keep_box.empty()) return;
      bool keep_bit = keep_box.front().value != 0;
      if (keep_bit) {
        if (!engine.can_send(self, out_)) return;
        engine.send(self, out_, data_box.front());
      }
      engine.ack(self, data_);
      engine.ack(self, keep_);
    }
  }
};

/// n-input logical reduce (and/or) with full input synchronization.
class LogicReduceModel : public Behavior {
 public:
  LogicReduceModel(std::vector<int> in_ports, int out_port, bool is_and)
      : ins_(std::move(in_ports)), out_(out_port), and_(is_and) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    std::vector<int> missing;
    for (int p : ins_) {
      if (self.inbox[p].empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  std::vector<int> ins_;
  int out_;
  bool and_;

  void try_fire(Kernel& engine, int self) {
    for (;;) {
      bool all_ready = true;
      for (int p : ins_) {
        if (engine.component(self).inbox[p].empty()) {
          all_ready = false;
          break;
        }
      }
      if (!all_ready || !engine.can_send(self, out_)) return;
      bool result = and_;
      bool last = false;
      for (int p : ins_) {
        const Packet& pk = engine.component(self).inbox[p].front();
        bool bit = pk.value != 0;
        result = and_ ? (result && bit) : (result || bit);
        last = last || pk.last;
      }
      Packet out;
      out.value = result ? 1 : 0;
      out.last = last;
      engine.send(self, out_, out);
      for (int p : ins_) engine.ack(self, p);
    }
  }
};

/// Two-operand synchronized unit (add2/sub2/mul2/cmp2): fires when both
/// operands are present, applies `op`, acknowledges both.
class Join2Model : public Behavior {
 public:
  using Op = std::function<std::int64_t(std::int64_t, std::int64_t)>;
  Join2Model(int lhs, int rhs, int out, Op op)
      : lhs_(lhs), rhs_(rhs), out_(out), op_(std::move(op)) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    std::vector<int> missing;
    for (int p : {lhs_, rhs_}) {
      if (self.inbox[p].empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  int lhs_;
  int rhs_;
  int out_;
  Op op_;

  void try_fire(Kernel& engine, int self) {
    for (;;) {
      auto& lbox = engine.component(self).inbox[lhs_];
      auto& rbox = engine.component(self).inbox[rhs_];
      if (lbox.empty() || rbox.empty() || !engine.can_send(self, out_)) {
        return;
      }
      Packet out;
      out.value = op_(lbox.front().value, rbox.front().value);
      out.last = lbox.front().last || rbox.front().last;
      engine.send(self, out_, out);
      engine.ack(self, lhs_);
      engine.ack(self, rhs_);
    }
  }
};

/// Sums a dimension-1 sequence, emitting the total when `last` arrives.
class AccumulatorModel : public Behavior {
 public:
  AccumulatorModel(int in_port, int out_port) : in_(in_port), out_(out_port) {}

  void on_receive(Kernel& engine, int self, int port) override {
    if (port < 0) return;
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty()) {
      Packet p = box.front();
      acc_ += p.value;
      engine.ack(self, in_);
      if (p.last) {
        Packet total;
        total.value = acc_;
        total.last = true;
        engine.send(self, out_, total);
        acc_ = 0;
      }
    }
  }

 private:
  int in_;
  int out_;
  std::int64_t acc_ = 0;
};

// ---------------------------------------------------------------------------
// sim { } block interpreter (Sec. V-A)
// ---------------------------------------------------------------------------

struct Instr {
  enum class Op { kAck, kSend, kDelay, kSet, kCondJumpFalse, kJump,
                  kBindLocal };
  Op op{};
  int port = -1;                 // port index (ack/send); -1 = unresolved
  Symbol name = support::kNoSymbol;  // state var (set) or local var (bind)
  const lang::Expr* expr = nullptr;  // payload / delay / condition / value
  std::size_t target = 0;        // jump target
  /// kBindLocal: the pre-evaluated loop value. For the other expression
  /// ops: the expression's value when it is a literal (`delay(7)`,
  /// `set s = "busy"`), folded at compile time so execution skips scope
  /// construction and the evaluator entirely (`expr` is nulled then).
  eval::Value bind_value;
  bool constant = false;
};

/// Folds literal expressions into the instruction (engine-side constant
/// propagation; anything with identifiers still evaluates at run time).
/// Non-literal expressions get their identifier symbols interned up front:
/// sibling instances of one impl share the handler AST, and the lazy
/// `Ident::sym` cache must not be written from shard worker threads.
void fold_literal(Instr& instr) {
  if (instr.expr == nullptr) return;
  eval::prime_symbols(*instr.expr);
  const auto& node = instr.expr->node;
  eval::Value v;
  if (const auto* i = std::get_if<lang::IntLit>(&node)) {
    v = eval::Value(i->value);
  } else if (const auto* f = std::get_if<lang::FloatLit>(&node)) {
    v = eval::Value(f->value);
  } else if (const auto* s = std::get_if<lang::StringLit>(&node)) {
    v = eval::Value(s->value);
  } else if (const auto* b = std::get_if<lang::BoolLit>(&node)) {
    v = eval::Value(b->value);
  } else {
    return;
  }
  instr.bind_value = std::move(v);
  instr.constant = true;  // expr stays for diagnostics (source location)
}

// Compiles handler actions to a flat instruction list, resolving port names
// against `streamlet` once. `consts` carries the captured elaboration
// constants plus enclosing sim-for loop bindings; sim-for loops unroll at
// compile time (their iterables must be constant) with the loop variable
// bound per iteration via kBindLocal.
void compile_actions(const std::vector<lang::SimAction>& actions,
                     const Streamlet& streamlet, std::vector<Instr>& out,
                     const std::map<std::string, eval::Value>& consts,
                     support::DiagnosticEngine& diags) {
  auto resolve_port = [&](const std::string& port_name,
                          support::Loc loc) -> int {
    int port = streamlet.port_index(support::intern(port_name));
    if (port < 0) {
      diags.warning("sim",
                    "sim block references unknown port '" + port_name +
                        "' of streamlet '" + streamlet.name + "'",
                    loc);
    }
    return port;
  };
  for (const lang::SimAction& a : actions) {
    std::visit(
        [&](const auto& n) {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, lang::ActAck>) {
            Instr instr;
            instr.op = Instr::Op::kAck;
            instr.port = resolve_port(n.port, a.loc);
            out.push_back(std::move(instr));
          } else if constexpr (std::is_same_v<T, lang::ActSend>) {
            Instr instr;
            instr.op = Instr::Op::kSend;
            instr.port = resolve_port(n.port, a.loc);
            instr.expr = n.payload.get();
            fold_literal(instr);
            out.push_back(std::move(instr));
          } else if constexpr (std::is_same_v<T, lang::ActDelay>) {
            Instr instr;
            instr.op = Instr::Op::kDelay;
            instr.expr = n.cycles.get();
            fold_literal(instr);
            out.push_back(std::move(instr));
          } else if constexpr (std::is_same_v<T, lang::ActSet>) {
            Instr instr;
            instr.op = Instr::Op::kSet;
            instr.name = support::intern(n.state_var);
            instr.expr = n.value.get();
            fold_literal(instr);
            out.push_back(std::move(instr));
          } else if constexpr (std::is_same_v<T, lang::ActFor>) {
            eval::Scope scope;
            for (const auto& [name, value] : consts) {
              scope.define(name, value);
            }
            try {
              eval::Value iterable = eval::evaluate(*n.iterable, scope);
              if (!iterable.is_array()) {
                diags.error("sim",
                            "sim for iterable must be a constant array or "
                            "range",
                            a.loc);
                return;
              }
              for (const eval::Value& element : iterable.as_array()) {
                Instr bind;
                bind.op = Instr::Op::kBindLocal;
                bind.name = support::intern(n.var);
                bind.bind_value = element;
                out.push_back(std::move(bind));
                std::map<std::string, eval::Value> inner = consts;
                inner.insert_or_assign(n.var, element);
                compile_actions(n.body, streamlet, out, inner, diags);
              }
            } catch (const eval::EvalError& e) {
              diags.error("sim",
                          std::string("sim for iterable must be evaluable "
                                      "at elaboration time: ") +
                              e.what(),
                          e.loc());
            }
          } else {  // ActIf
            std::size_t cond_index = out.size();
            Instr cond;
            cond.op = Instr::Op::kCondJumpFalse;
            cond.expr = n.cond.get();
            fold_literal(cond);
            out.push_back(std::move(cond));
            compile_actions(n.then_body, streamlet, out, consts, diags);
            if (n.else_body.empty()) {
              out[cond_index].target = out.size();
            } else {
              std::size_t jump_index = out.size();
              Instr jump;
              jump.op = Instr::Op::kJump;
              out.push_back(std::move(jump));
              out[cond_index].target = out.size();
              compile_actions(n.else_body, streamlet, out, consts, diags);
              out[jump_index].target = out.size();
            }
          }
        },
        a.node);
  }
}

/// Interprets the `sim { state ...; on event { ... } }` block of an external
/// implementation. Handler semantics: fires when every waited port has a
/// pending packet and the component is idle; `send(p)` forwards the trigger
/// payload, `send(p, expr)` sends an evaluated value; `delay(n)` suspends
/// for n clock cycles; handlers must `ack` their waited ports.
///
/// Scope layout (all symbol-keyed, no string hashing per instruction):
///   captured_scope_ (elaboration constants, built once)
///     <- state_scope_ (state variables, updated in place on `set`)
///        <- per-evaluation scope (payload, locals, port payloads)
class SimBlockBehavior : public Behavior {
 public:
  SimBlockBehavior(const elab::SimProgram& program, const Streamlet& streamlet,
                   support::DiagnosticEngine& diags)
      : diags_(diags), state_scope_(&captured_scope_) {
    for (const auto& [name, value] : program.captured) {
      captured_scope_.define(name, value);
    }
    for (const lang::SimStateDecl& s : program.block->states) {
      Symbol sym = support::intern(s.name);
      state_.push_back(StateVar{sym, support::intern(s.initial)});
      state_scope_.assign(sym, eval::Value(s.initial));
    }
    payload_sym_ = support::intern("payload");
    payload_last_sym_ = support::intern("payload_last");
    for (std::size_t i = 0; i < streamlet.ports.size(); ++i) {
      port_payload_syms_.push_back(
          support::intern(streamlet.ports[i].name + "_payload"));
    }
    for (const lang::SimHandler& h : program.block->handlers) {
      Handler compiled;
      for (const std::string& port_name : h.wait_ports) {
        int port = streamlet.port_index(support::intern(port_name));
        if (port < 0) {
          diags_.warning("sim",
                         "sim handler waits on unknown port '" + port_name +
                             "' of streamlet '" + streamlet.name + "'",
                         program.block->loc);
          continue;
        }
        compiled.wait_ports.push_back(port);
      }
      compile_actions(h.actions, streamlet, compiled.code, program.captured,
                      diags_);
      handlers_.push_back(std::move(compiled));
    }
  }

  void on_start(Kernel& engine, int self) override {
    for (std::size_t h = 0; h < handlers_.size(); ++h) {
      if (handlers_[h].wait_ports.empty()) {
        fire(engine, self, h, Packet{});
      }
    }
  }

  void on_receive(Kernel& engine, int self, int) override {
    try_fire(engine, self);
  }

  void on_timer(Kernel& engine, int self, std::int32_t token) override {
    Resume resume = std::move(pending_[token]);
    free_slots_.push_back(token);
    exec(engine, self, resume.handler, resume.pc, resume.trigger,
         std::move(resume.locals));
  }

  [[nodiscard]] std::vector<int> waiting_ports(
      const Component& self) const override {
    std::vector<int> missing;
    for (const Handler& h : handlers_) {
      for (int p : h.wait_ports) {
        if (self.inbox[p].empty()) missing.push_back(p);
      }
    }
    return missing;
  }

 private:
  struct Handler {
    std::vector<int> wait_ports;
    std::vector<Instr> code;
  };

  using Locals = std::shared_ptr<std::vector<std::pair<Symbol, eval::Value>>>;

  /// A handler suspended in `delay(...)`, waiting for its timer.
  struct Resume {
    std::size_t handler = 0;
    std::size_t pc = 0;
    Packet trigger;
    Locals locals;
  };

  support::DiagnosticEngine& diags_;
  eval::Scope captured_scope_;
  eval::Scope state_scope_;
  /// Reusable innermost evaluation scope: cleared (capacity kept) before
  /// each instruction that evaluates an expression. Safe to share because
  /// expression evaluation never re-enters this behaviour.
  eval::Scope scratch_scope_{&state_scope_};
  /// State variables: current values tracked as interned symbols (change
  /// detection and transition recording are integer compares); the string
  /// form lives in state_scope_ for expression evaluation.
  struct StateVar {
    Symbol name;
    Symbol value_sym;
  };
  std::vector<StateVar> state_;
  Symbol payload_sym_ = support::kNoSymbol;
  Symbol payload_last_sym_ = support::kNoSymbol;
  std::vector<Symbol> port_payload_syms_;
  std::vector<Handler> handlers_;
  std::vector<Resume> pending_;
  std::vector<std::int32_t> free_slots_;
  bool busy_ = false;
  std::size_t fires_without_progress_ = 0;

  void try_fire(Kernel& engine, int self) {
    if (busy_) return;
    for (std::size_t h = 0; h < handlers_.size(); ++h) {
      const Handler& handler = handlers_[h];
      if (handler.wait_ports.empty()) continue;
      bool ready = true;
      for (int p : handler.wait_ports) {
        if (engine.component(self).inbox[p].empty()) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (++fires_without_progress_ > 100000) {
        diags_.warning("sim",
                       "sim block of '" +
                           engine.component(self).path +
                           "' fired 100000 times without acknowledging; "
                           "stopping (missing ack in handler?)",
                       {});
        return;
      }
      Packet trigger =
          engine.component(self).inbox[handler.wait_ports.front()].front();
      fire(engine, self, h, trigger);
      return;
    }
  }

  void fire(Kernel& engine, int self, std::size_t handler_index,
            Packet trigger) {
    busy_ = true;
    exec(engine, self, handler_index, 0, trigger, nullptr);
  }

  /// Rebuilds the innermost evaluation scope for one instruction: trigger
  /// payload, loop locals, and per-port head-of-inbox payloads. Parent
  /// chain supplies state and captured constants without copying.
  eval::Scope& build_scope(Kernel& engine, int self, const Packet& trigger,
                           const Locals& locals) {
    eval::Scope& scope = scratch_scope_;
    scope.clear();
    scope.define(payload_sym_, eval::Value(trigger.value));
    scope.define(payload_last_sym_, eval::Value(trigger.last));
    if (locals != nullptr) {
      for (const auto& [name, value] : *locals) scope.assign(name, value);
    }
    const Component& comp = engine.component(self);
    for (std::size_t port = 0; port < comp.inbox.size(); ++port) {
      if (!comp.inbox[port].empty()) {
        scope.define(port_payload_syms_[port],
                     eval::Value(comp.inbox[port].front().value));
      }
    }
    return scope;
  }

  void set_state(Kernel& engine, int self, Symbol var,
                 const std::string& to) {
    for (StateVar& s : state_) {
      if (s.name != var) continue;
      Symbol to_sym = support::intern(to);
      if (s.value_sym != to_sym) {
        engine.record_state_transition(self, var, s.value_sym, to_sym);
        s.value_sym = to_sym;
        state_scope_.assign(var, eval::Value(to));
      }
      return;
    }
    diags_.warning("sim",
                   "set of undeclared state variable '" +
                       support::symbol_name(var) + "'",
                   {});
  }

  // Conversions for compile-time-folded literals, mirroring the
  // eval::evaluate_* contracts (EvalError carries the literal's location).
  static std::int64_t constant_int(const Instr& instr) {
    const eval::Value& v = instr.bind_value;
    if (v.is_int()) return v.as_int();
    if (v.is_float() && std::floor(v.as_float()) == v.as_float()) {
      return static_cast<std::int64_t>(v.as_float());
    }
    throw eval::EvalError("expected an integer, got " +
                              std::string(v.type_name()) + " (" +
                              v.to_display() + ")",
                          instr.expr->loc);
  }
  static double constant_number(const Instr& instr) {
    const eval::Value& v = instr.bind_value;
    if (v.is_numeric()) return v.as_number();
    throw eval::EvalError("expected a number, got " +
                              std::string(v.type_name()),
                          instr.expr->loc);
  }
  static bool constant_bool(const Instr& instr) {
    const eval::Value& v = instr.bind_value;
    if (v.is_bool()) return v.as_bool();
    throw eval::EvalError("expected a bool, got " +
                              std::string(v.type_name()),
                          instr.expr->loc);
  }

  void exec(Kernel& engine, int self, std::size_t handler_index,
            std::size_t pc, Packet trigger, Locals locals) {
    const Handler& handler = handlers_[handler_index];
    while (pc < handler.code.size()) {
      const Instr& instr = handler.code[pc];
      try {
        switch (instr.op) {
          case Instr::Op::kAck:
            engine.ack(self, instr.port);
            fires_without_progress_ = 0;
            ++pc;
            break;
          case Instr::Op::kSend: {
            Packet p = trigger;
            if (instr.constant) {
              p.value = constant_int(instr);
            } else if (instr.expr != nullptr) {
              p.value = eval::evaluate_int(
                  *instr.expr, build_scope(engine, self, trigger, locals));
            }
            engine.send(self, instr.port, p);
            ++pc;
            break;
          }
          case Instr::Op::kDelay: {
            double cycles =
                instr.constant
                    ? constant_number(instr)
                    : eval::evaluate_number(
                          *instr.expr,
                          build_scope(engine, self, trigger, locals));
            double delay = cycles * engine.clock_period(self);
            std::int32_t token;
            if (!free_slots_.empty()) {
              token = free_slots_.back();
              free_slots_.pop_back();
            } else {
              token = static_cast<std::int32_t>(pending_.size());
              pending_.emplace_back();
            }
            pending_[token] =
                Resume{handler_index, pc + 1, trigger, std::move(locals)};
            engine.schedule_timer(delay, self, token);
            return;  // resumes via on_timer
          }
          case Instr::Op::kSet: {
            if (instr.constant) {
              const eval::Value& v = instr.bind_value;
              set_state(engine, self, instr.name,
                        v.is_string() ? v.as_string() : v.to_display());
            } else {
              eval::Value v = eval::evaluate(
                  *instr.expr, build_scope(engine, self, trigger, locals));
              set_state(engine, self, instr.name,
                        v.is_string() ? v.as_string() : v.to_display());
            }
            ++pc;
            break;
          }
          case Instr::Op::kCondJumpFalse: {
            bool cond =
                instr.constant
                    ? constant_bool(instr)
                    : eval::evaluate_bool(
                          *instr.expr,
                          build_scope(engine, self, trigger, locals));
            pc = cond ? pc + 1 : instr.target;
            break;
          }
          case Instr::Op::kJump:
            pc = instr.target;
            break;
          case Instr::Op::kBindLocal: {
            // At most one continuation per fire is alive (delay suspends the
            // whole handler), so the shared list is mutated in place.
            if (locals == nullptr) {
              locals = std::make_shared<
                  std::vector<std::pair<Symbol, eval::Value>>>();
            }
            bool found = false;
            for (auto& [name, value] : *locals) {
              if (name == instr.name) {
                value = instr.bind_value;
                found = true;
                break;
              }
            }
            if (!found) locals->emplace_back(instr.name, instr.bind_value);
            ++pc;
            break;
          }
        }
      } catch (const eval::EvalError& e) {
        diags_.error("sim", e.what(), e.loc());
        break;
      }
    }
    busy_ = false;
    // Re-examine conditions: more packets may be pending.
    engine.schedule_poke(0.0, self);
  }
};

/// Fallback: forwards first input to first output combinationally.
class PassThroughModel : public Behavior {
 public:
  PassThroughModel(int in_port, int out_port) : in_(in_port), out_(out_port) {}

  void on_receive(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }
  void on_output_acked(Kernel& engine, int self, int) override {
    try_forward(engine, self);
  }

 private:
  int in_;
  int out_;

  void try_forward(Kernel& engine, int self) {
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty() && engine.can_send(self, out_)) {
      engine.send(self, out_, box.front());
      engine.ack(self, in_);
    }
  }
};

/// Sink that ignores everything (ports exist but stay idle).
class IdleModel : public Behavior {
 public:
  void on_receive(Kernel&, int, int) override {}
};

}  // namespace

std::unique_ptr<Behavior> make_behavior(
    const Impl& impl, const Streamlet& streamlet,
    const std::map<std::string, double>& params,
    support::DiagnosticEngine& diags) {
  // 1. User-written simulation code wins.
  if (impl.sim.has_value()) {
    return std::make_unique<SimBlockBehavior>(*impl.sim, streamlet, diags);
  }

  auto ins = port_indices(streamlet, lang::PortDir::kIn);
  auto outs = port_indices(streamlet, lang::PortDir::kOut);
  const std::string& family = impl.template_name;
  auto port_name = [&](int port) -> const std::string& {
    return streamlet.ports[port].name;
  };

  // 2. Built-in models by stdlib family.
  if (family == "voider_i" || family == "sink_i") {
    return std::make_unique<SinkModel>(param(params, "latency_cycles", 0.0));
  }
  if (family == "source_i" || family == "const_generator_i") {
    if (!outs.empty()) {
      return std::make_unique<SourceModel>(
          outs.front(),
          static_cast<std::int64_t>(param(params, "count", 256.0)),
          param(params, "interval_cycles", 1.0));
    }
  }
  if (family == "duplicator_i" && !ins.empty()) {
    return std::make_unique<DuplicatorModel>(ins.front(), outs);
  }
  if (family == "group_split2_i" && !ins.empty() && outs.size() >= 2) {
    // The abstract payload cannot be bit-sliced; both field streams carry
    // the packet value (timing-accurate, value-approximate).
    return std::make_unique<DuplicatorModel>(ins.front(), outs);
  }
  if (family == "group_combine2_i" && ins.size() >= 2 && !outs.empty()) {
    // Joint handshake of both fields; the combined packet carries the
    // high-order field's value (see group_split2_i note).
    return std::make_unique<Join2Model>(
        ins[0], ins[1], outs.front(),
        [](std::int64_t a, std::int64_t) { return a; });
  }
  if (family == "demux_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<DemuxModel>(ins.front(), outs);
  }
  if (family == "mux_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<MuxModel>(ins, outs.front());
  }
  if ((family == "adder_i" || family == "subtractor_i" ||
       family == "multiplier_i" || family == "comparator_i" ||
       family == "const_compare_i" || family == "const_compare_int_i") &&
      !ins.empty() && !outs.empty()) {
    double latency = param(params, "latency_cycles", 1.0);
    return std::make_unique<PipeModel>(ins.front(), outs.front(), latency,
                                       [](const Packet& p) { return p; });
  }
  if ((family == "add2_i" || family == "sub2_i" || family == "mul2_i" ||
       family == "cmp2_i") &&
      ins.size() >= 2 && !outs.empty()) {
    Join2Model::Op op;
    if (family == "add2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a + b; };
    } else if (family == "sub2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a - b; };
    } else if (family == "mul2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a * b; };
    } else {
      // cmp2_i defaults to equality; the op string only affects RTL.
      op = [](std::int64_t a, std::int64_t b) {
        return static_cast<std::int64_t>(a == b);
      };
    }
    return std::make_unique<Join2Model>(ins[0], ins[1], outs.front(),
                                        std::move(op));
  }
  if (family == "filter_i" && ins.size() >= 2 && !outs.empty()) {
    int keep = ins[1];
    for (int p : ins) {
      if (port_name(p).find("keep") != std::string::npos) keep = p;
    }
    int data = (ins[0] == keep && ins.size() > 1) ? ins[1] : ins[0];
    return std::make_unique<FilterModel>(data, keep, outs.front());
  }
  if ((family == "logic_and_i" || family == "logic_or_i") && !ins.empty() &&
      !outs.empty()) {
    return std::make_unique<LogicReduceModel>(ins, outs.front(),
                                              family == "logic_and_i");
  }
  if (family == "accumulator_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<AccumulatorModel>(ins.front(), outs.front());
  }

  // 3. Fallback.
  if (!ins.empty() && !outs.empty()) {
    diags.note("sim",
               "no behaviour model for '" + impl.display_name +
                   "' (family '" + family +
                   "'); using pass-through model",
               impl.loc);
    return std::make_unique<PassThroughModel>(ins.front(), outs.front());
  }
  if (!ins.empty()) {
    return std::make_unique<SinkModel>(0.0);
  }
  if (!outs.empty()) {
    return std::make_unique<SourceModel>(outs.front(), 0, 1.0);
  }
  return std::make_unique<IdleModel>();
}

const std::vector<std::string>& builtin_behavior_families() {
  static const std::vector<std::string> families = {
      "voider_i",       "sink_i",           "source_i",
      "const_generator_i", "duplicator_i",  "demux_i",
      "mux_i",          "adder_i",          "subtractor_i",
      "multiplier_i",   "comparator_i",     "const_compare_i",
      "const_compare_int_i", "filter_i",    "logic_and_i",
      "logic_or_i",     "accumulator_i",    "add2_i",
      "sub2_i",         "mul2_i",           "cmp2_i",
      "group_split2_i", "group_combine2_i"};
  return families;
}

}  // namespace tydi::sim
