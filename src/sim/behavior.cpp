#include "src/sim/behavior.hpp"

#include <functional>

#include "src/eval/interp.hpp"
#include "src/eval/scope.hpp"

namespace tydi::sim {

using elab::Impl;
using elab::Port;
using elab::Streamlet;

namespace {

std::vector<std::string> port_names(const Streamlet& s, lang::PortDir dir) {
  std::vector<std::string> out;
  for (const Port& p : s.ports) {
    if (p.dir == dir) out.push_back(p.name);
  }
  return out;
}

double param(const std::map<std::string, double>& params,
             const std::string& key, double fallback) {
  auto it = params.find(key);
  return it != params.end() ? it->second : fallback;
}

// ---------------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------------

/// Always-ready sink: acknowledges after `latency_cycles` (default 0).
class SinkModel : public Behavior {
 public:
  explicit SinkModel(double latency_cycles) : latency_(latency_cycles) {}

  void on_receive(Engine& engine, int self, const std::string& port) override {
    if (port.empty()) return;
    if (latency_ <= 0.0) {
      engine.ack(self, port);
      return;
    }
    double delay = latency_ * engine.clock_period(self);
    engine.schedule(delay, [&engine, self, port] { engine.ack(self, port); });
  }

 private:
  double latency_;
};

/// Emits `count` packets at a fixed interval regardless of backpressure
/// (excess queues in the outbox, producing the blocked-time signal the
/// bottleneck analysis ranks).
class SourceModel : public Behavior {
 public:
  SourceModel(std::string out_port, std::int64_t count, double interval_cycles)
      : out_(std::move(out_port)), count_(count), interval_(interval_cycles) {}

  void on_start(Engine& engine, int self) override {
    emit(engine, self);
  }

  void on_receive(Engine&, int, const std::string&) override {}

 private:
  std::string out_;
  std::int64_t count_;
  double interval_;
  std::int64_t sent_ = 0;

  void emit(Engine& engine, int self) {
    if (sent_ >= count_) return;
    Packet p;
    p.value = sent_;
    p.last = (sent_ == count_ - 1);
    engine.send(self, out_, p);
    ++sent_;
    if (sent_ < count_) {
      engine.schedule(interval_ * engine.clock_period(self),
                      [this, &engine, self] { emit(engine, self); });
    }
  }
};

/// Copies each input packet to every output; acknowledges the input once all
/// outputs were acknowledged (Sec. IV-C).
class DuplicatorModel : public Behavior {
 public:
  DuplicatorModel(std::string in_port, std::vector<std::string> out_ports)
      : in_(std::move(in_port)), outs_(std::move(out_ports)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_fire(engine, self);
  }

  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    if (!forwarding_) return;
    if (--pending_ == 0) {
      forwarding_ = false;
      engine.ack(self, in_);
      try_fire(engine, self);
    }
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    auto it = self.inbox.find(in_);
    if (it == self.inbox.end() || it->second.empty()) return {in_};
    return {};
  }

 private:
  std::string in_;
  std::vector<std::string> outs_;
  bool forwarding_ = false;
  std::size_t pending_ = 0;

  void try_fire(Engine& engine, int self) {
    if (forwarding_) return;
    auto& box = engine.component(self).inbox[in_];
    if (box.empty()) return;
    forwarding_ = true;
    pending_ = outs_.size();
    Packet p = box.front();
    for (const std::string& out : outs_) {
      engine.send(self, out, p);
    }
  }
};

/// Round-robin distributor: forwards to out[rr] only when that channel is
/// free, so backpressure propagates to the producer.
class DemuxModel : public Behavior {
 public:
  DemuxModel(std::string in_port, std::vector<std::string> out_ports)
      : in_(std::move(in_port)), outs_(std::move(out_ports)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_forward(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_forward(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    auto it = self.inbox.find(in_);
    if (it == self.inbox.end() || it->second.empty()) return {in_};
    return {};
  }

 private:
  std::string in_;
  std::vector<std::string> outs_;
  std::size_t rr_ = 0;

  void try_forward(Engine& engine, int self) {
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty() && engine.can_send(self, outs_[rr_])) {
      engine.send(self, outs_[rr_], box.front());
      engine.ack(self, in_);
      rr_ = (rr_ + 1) % outs_.size();
    }
  }
};

/// Round-robin collector (order-preserving counterpart of DemuxModel).
class MuxModel : public Behavior {
 public:
  MuxModel(std::vector<std::string> in_ports, std::string out_port)
      : ins_(std::move(in_ports)), out_(std::move(out_port)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_forward(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_forward(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    const std::string& want = ins_[rr_];
    auto it = self.inbox.find(want);
    if (it == self.inbox.end() || it->second.empty()) return {want};
    return {};
  }

 private:
  std::vector<std::string> ins_;
  std::string out_;
  std::size_t rr_ = 0;

  void try_forward(Engine& engine, int self) {
    for (;;) {
      auto& box = engine.component(self).inbox[ins_[rr_]];
      if (box.empty() || !engine.can_send(self, out_)) return;
      engine.send(self, out_, box.front());
      engine.ack(self, ins_[rr_]);
      rr_ = (rr_ + 1) % ins_.size();
    }
  }
};

/// Non-pipelined processing unit: consumes one packet, works for
/// `latency_cycles`, then emits the transformed packet — e.g. the paper's
/// "32-bit adder with a delay of 8 clock cycles" (Sec. IV-B).
class PipeModel : public Behavior {
 public:
  using Transform = std::function<Packet(const Packet&)>;
  PipeModel(std::string in_port, std::string out_port, double latency_cycles,
            Transform transform)
      : in_(std::move(in_port)),
        out_(std::move(out_port)),
        latency_(latency_cycles),
        transform_(std::move(transform)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_start(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    if (done_waiting_out_) complete(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    if (busy_) return {};
    auto it = self.inbox.find(in_);
    if (it == self.inbox.end() || it->second.empty()) return {in_};
    return {};
  }

 private:
  std::string in_;
  std::string out_;
  double latency_;
  Transform transform_;
  bool busy_ = false;
  bool done_waiting_out_ = false;
  Packet current_;

  void try_start(Engine& engine, int self) {
    if (busy_) return;
    auto& box = engine.component(self).inbox[in_];
    if (box.empty()) return;
    busy_ = true;
    current_ = box.front();
    double delay = latency_ * engine.clock_period(self);
    engine.schedule(delay, [this, &engine, self] {
      if (engine.can_send(self, out_)) {
        complete(engine, self);
      } else {
        done_waiting_out_ = true;
      }
    });
  }

  void complete(Engine& engine, int self) {
    done_waiting_out_ = false;
    engine.send(self, out_, transform_(current_));
    engine.ack(self, in_);
    busy_ = false;
    try_start(engine, self);
  }
};

/// `filter<in, keep, out>`: forwards when keep != 0, drops otherwise; both
/// inputs are acknowledged together (Sec. VI).
class FilterModel : public Behavior {
 public:
  FilterModel(std::string data_port, std::string keep_port,
              std::string out_port)
      : data_(std::move(data_port)),
        keep_(std::move(keep_port)),
        out_(std::move(out_port)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_fire(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    std::vector<std::string> missing;
    for (const std::string& p : {data_, keep_}) {
      auto it = self.inbox.find(p);
      if (it == self.inbox.end() || it->second.empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  std::string data_;
  std::string keep_;
  std::string out_;

  void try_fire(Engine& engine, int self) {
    for (;;) {
      auto& data_box = engine.component(self).inbox[data_];
      auto& keep_box = engine.component(self).inbox[keep_];
      if (data_box.empty() || keep_box.empty()) return;
      bool keep_bit = keep_box.front().value != 0;
      if (keep_bit) {
        if (!engine.can_send(self, out_)) return;
        engine.send(self, out_, data_box.front());
      }
      engine.ack(self, data_);
      engine.ack(self, keep_);
    }
  }
};

/// n-input logical reduce (and/or) with full input synchronization.
class LogicReduceModel : public Behavior {
 public:
  LogicReduceModel(std::vector<std::string> in_ports, std::string out_port,
                   bool is_and)
      : ins_(std::move(in_ports)), out_(std::move(out_port)), and_(is_and) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_fire(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    std::vector<std::string> missing;
    for (const std::string& p : ins_) {
      auto it = self.inbox.find(p);
      if (it == self.inbox.end() || it->second.empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  std::vector<std::string> ins_;
  std::string out_;
  bool and_;

  void try_fire(Engine& engine, int self) {
    for (;;) {
      bool all_ready = true;
      for (const std::string& p : ins_) {
        auto& box = engine.component(self).inbox[p];
        if (box.empty()) {
          all_ready = false;
          break;
        }
      }
      if (!all_ready || !engine.can_send(self, out_)) return;
      bool result = and_;
      bool last = false;
      for (const std::string& p : ins_) {
        const Packet& pk = engine.component(self).inbox[p].front();
        bool bit = pk.value != 0;
        result = and_ ? (result && bit) : (result || bit);
        last = last || pk.last;
      }
      Packet out;
      out.value = result ? 1 : 0;
      out.last = last;
      engine.send(self, out_, out);
      for (const std::string& p : ins_) engine.ack(self, p);
    }
  }
};

/// Two-operand synchronized unit (add2/sub2/mul2/cmp2): fires when both
/// operands are present, applies `op`, acknowledges both.
class Join2Model : public Behavior {
 public:
  using Op = std::function<std::int64_t(std::int64_t, std::int64_t)>;
  Join2Model(std::string lhs, std::string rhs, std::string out, Op op)
      : lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        out_(std::move(out)),
        op_(std::move(op)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_fire(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    std::vector<std::string> missing;
    for (const std::string& p : {lhs_, rhs_}) {
      auto it = self.inbox.find(p);
      if (it == self.inbox.end() || it->second.empty()) missing.push_back(p);
    }
    return missing;
  }

 private:
  std::string lhs_;
  std::string rhs_;
  std::string out_;
  Op op_;

  void try_fire(Engine& engine, int self) {
    for (;;) {
      auto& lbox = engine.component(self).inbox[lhs_];
      auto& rbox = engine.component(self).inbox[rhs_];
      if (lbox.empty() || rbox.empty() || !engine.can_send(self, out_)) {
        return;
      }
      Packet out;
      out.value = op_(lbox.front().value, rbox.front().value);
      out.last = lbox.front().last || rbox.front().last;
      engine.send(self, out_, out);
      engine.ack(self, lhs_);
      engine.ack(self, rhs_);
    }
  }
};

/// Sums a dimension-1 sequence, emitting the total when `last` arrives.
class AccumulatorModel : public Behavior {
 public:
  AccumulatorModel(std::string in_port, std::string out_port)
      : in_(std::move(in_port)), out_(std::move(out_port)) {}

  void on_receive(Engine& engine, int self, const std::string& port) override {
    if (port.empty()) return;
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty()) {
      Packet p = box.front();
      acc_ += p.value;
      engine.ack(self, in_);
      if (p.last) {
        Packet total;
        total.value = acc_;
        total.last = true;
        engine.send(self, out_, total);
        acc_ = 0;
      }
    }
  }

 private:
  std::string in_;
  std::string out_;
  std::int64_t acc_ = 0;
};

// ---------------------------------------------------------------------------
// sim { } block interpreter (Sec. V-A)
// ---------------------------------------------------------------------------

struct Instr {
  enum class Op { kAck, kSend, kDelay, kSet, kCondJumpFalse, kJump,
                  kBindLocal };
  Op op{};
  std::string name;              // port (ack/send), state var, or local var
  const lang::Expr* expr = nullptr;  // payload / delay / condition / value
  std::size_t target = 0;        // jump target
  eval::Value bind_value;        // kBindLocal: pre-evaluated loop value
};

// Compiles handler actions to a flat instruction list. `consts` carries the
// captured elaboration constants plus enclosing sim-for loop bindings;
// sim-for loops unroll at compile time (their iterables must be constant)
// with the loop variable bound per iteration via kBindLocal.
void compile_actions(const std::vector<lang::SimAction>& actions,
                     std::vector<Instr>& out,
                     const std::map<std::string, eval::Value>& consts,
                     support::DiagnosticEngine& diags) {
  for (const lang::SimAction& a : actions) {
    std::visit(
        [&](const auto& n) {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, lang::ActAck>) {
            out.push_back(Instr{Instr::Op::kAck, n.port, nullptr, 0, {}});
          } else if constexpr (std::is_same_v<T, lang::ActSend>) {
            out.push_back(
                Instr{Instr::Op::kSend, n.port, n.payload.get(), 0, {}});
          } else if constexpr (std::is_same_v<T, lang::ActDelay>) {
            out.push_back(
                Instr{Instr::Op::kDelay, "", n.cycles.get(), 0, {}});
          } else if constexpr (std::is_same_v<T, lang::ActSet>) {
            out.push_back(
                Instr{Instr::Op::kSet, n.state_var, n.value.get(), 0, {}});
          } else if constexpr (std::is_same_v<T, lang::ActFor>) {
            eval::Scope scope;
            for (const auto& [name, value] : consts) {
              scope.define(name, value);
            }
            try {
              eval::Value iterable = eval::evaluate(*n.iterable, scope);
              if (!iterable.is_array()) {
                diags.error("sim",
                            "sim for iterable must be a constant array or "
                            "range",
                            a.loc);
                return;
              }
              for (const eval::Value& element : iterable.as_array()) {
                out.push_back(Instr{Instr::Op::kBindLocal, n.var, nullptr, 0,
                                    element});
                std::map<std::string, eval::Value> inner = consts;
                inner.insert_or_assign(n.var, element);
                compile_actions(n.body, out, inner, diags);
              }
            } catch (const eval::EvalError& e) {
              diags.error("sim",
                          std::string("sim for iterable must be evaluable "
                                      "at elaboration time: ") +
                              e.what(),
                          e.loc());
            }
          } else {  // ActIf
            std::size_t cond_index = out.size();
            out.push_back(
                Instr{Instr::Op::kCondJumpFalse, "", n.cond.get(), 0, {}});
            compile_actions(n.then_body, out, consts, diags);
            if (n.else_body.empty()) {
              out[cond_index].target = out.size();
            } else {
              std::size_t jump_index = out.size();
              out.push_back(Instr{Instr::Op::kJump, "", nullptr, 0, {}});
              out[cond_index].target = out.size();
              compile_actions(n.else_body, out, consts, diags);
              out[jump_index].target = out.size();
            }
          }
        },
        a.node);
  }
}

/// Interprets the `sim { state ...; on event { ... } }` block of an external
/// implementation. Handler semantics: fires when every waited port has a
/// pending packet and the component is idle; `send(p)` forwards the trigger
/// payload, `send(p, expr)` sends an evaluated value; `delay(n)` suspends
/// for n clock cycles; handlers must `ack` their waited ports.
class SimBlockBehavior : public Behavior {
 public:
  SimBlockBehavior(const elab::SimProgram& program,
                   support::DiagnosticEngine& diags)
      : diags_(diags) {
    for (const lang::SimStateDecl& s : program.block->states) {
      state_[s.name] = s.initial;
    }
    captured_ = program.captured;
    for (const lang::SimHandler& h : program.block->handlers) {
      Handler compiled;
      compiled.wait_ports = h.wait_ports;
      compile_actions(h.actions, compiled.code, captured_, diags_);
      handlers_.push_back(std::move(compiled));
    }
  }

  void on_start(Engine& engine, int self) override {
    for (std::size_t h = 0; h < handlers_.size(); ++h) {
      if (handlers_[h].wait_ports.empty()) {
        fire(engine, self, h, Packet{});
      }
    }
  }

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_fire(engine, self);
  }

  [[nodiscard]] std::vector<std::string> waiting_ports(
      const Component& self) const override {
    std::vector<std::string> missing;
    for (const Handler& h : handlers_) {
      for (const std::string& p : h.wait_ports) {
        auto it = self.inbox.find(p);
        if (it == self.inbox.end() || it->second.empty()) {
          missing.push_back(p);
        }
      }
    }
    return missing;
  }

 private:
  struct Handler {
    std::vector<std::string> wait_ports;
    std::vector<Instr> code;
  };

  support::DiagnosticEngine& diags_;
  std::map<std::string, std::string> state_;
  std::map<std::string, eval::Value> captured_;
  std::vector<Handler> handlers_;
  bool busy_ = false;
  std::size_t fires_without_progress_ = 0;

  void try_fire(Engine& engine, int self) {
    if (busy_) return;
    for (std::size_t h = 0; h < handlers_.size(); ++h) {
      const Handler& handler = handlers_[h];
      if (handler.wait_ports.empty()) continue;
      bool ready = true;
      for (const std::string& p : handler.wait_ports) {
        auto& box = engine.component(self).inbox[p];
        if (box.empty()) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (++fires_without_progress_ > 100000) {
        diags_.warning("sim",
                       "sim block of '" +
                           engine.component(self).path +
                           "' fired 100000 times without acknowledging; "
                           "stopping (missing ack in handler?)",
                       {});
        return;
      }
      Packet trigger =
          engine.component(self).inbox[handler.wait_ports.front()].front();
      fire(engine, self, h, trigger);
      return;
    }
  }

  using Locals = std::shared_ptr<std::map<std::string, eval::Value>>;

  void fire(Engine& engine, int self, std::size_t handler_index,
            Packet trigger) {
    busy_ = true;
    exec(engine, self, handler_index, 0, trigger,
         std::make_shared<std::map<std::string, eval::Value>>());
  }

  [[nodiscard]] eval::Scope build_scope(Engine& engine, int self,
                                        const Packet& trigger,
                                        const Locals& locals) const {
    eval::Scope scope;
    for (const auto& [name, value] : captured_) scope.define(name, value);
    for (const auto& [name, value] : state_) {
      scope.define(name, eval::Value(value));
    }
    if (locals != nullptr) {
      for (const auto& [name, value] : *locals) scope.define(name, value);
    }
    scope.define("payload", eval::Value(trigger.value));
    scope.define("payload_last", eval::Value(trigger.last));
    for (const auto& [port, box] : engine.component(self).inbox) {
      if (!box.empty()) {
        scope.define(port + "_payload", eval::Value(box.front().value));
      }
    }
    return scope;
  }

  void exec(Engine& engine, int self, std::size_t handler_index,
            std::size_t pc, Packet trigger, Locals locals) {
    const Handler& handler = handlers_[handler_index];
    while (pc < handler.code.size()) {
      const Instr& instr = handler.code[pc];
      try {
        switch (instr.op) {
          case Instr::Op::kAck:
            engine.ack(self, instr.name);
            fires_without_progress_ = 0;
            ++pc;
            break;
          case Instr::Op::kSend: {
            Packet p = trigger;
            if (instr.expr != nullptr) {
              eval::Scope scope = build_scope(engine, self, trigger, locals);
              p.value = eval::evaluate_int(*instr.expr, scope);
            }
            engine.send(self, instr.name, p);
            ++pc;
            break;
          }
          case Instr::Op::kDelay: {
            eval::Scope scope = build_scope(engine, self, trigger, locals);
            double cycles = eval::evaluate_number(*instr.expr, scope);
            double delay = cycles * engine.clock_period(self);
            std::size_t next = pc + 1;
            engine.schedule(delay,
                            [this, &engine, self, handler_index, next,
                             trigger, locals] {
                              exec(engine, self, handler_index, next, trigger,
                                   locals);
                            });
            return;  // resumes later
          }
          case Instr::Op::kSet: {
            eval::Scope scope = build_scope(engine, self, trigger, locals);
            eval::Value v = eval::evaluate(*instr.expr, scope);
            std::string to = v.is_string() ? v.as_string() : v.to_display();
            auto it = state_.find(instr.name);
            if (it == state_.end()) {
              diags_.warning("sim",
                             "set of undeclared state variable '" +
                                 instr.name + "'",
                             {});
            } else if (it->second != to) {
              engine.record_state_transition(self, instr.name, it->second,
                                             to);
              it->second = to;
            }
            ++pc;
            break;
          }
          case Instr::Op::kCondJumpFalse: {
            eval::Scope scope = build_scope(engine, self, trigger, locals);
            bool cond = eval::evaluate_bool(*instr.expr, scope);
            pc = cond ? pc + 1 : instr.target;
            break;
          }
          case Instr::Op::kJump:
            pc = instr.target;
            break;
          case Instr::Op::kBindLocal:
            (*locals)[instr.name] = instr.bind_value;
            ++pc;
            break;
        }
      } catch (const eval::EvalError& e) {
        diags_.error("sim", e.what(), e.loc());
        break;
      }
    }
    busy_ = false;
    // Re-examine conditions: more packets may be pending.
    engine.schedule(0.0, [&engine, self] { engine.poke(self); });
  }
};

/// Fallback: forwards first input to first output combinationally.
class PassThroughModel : public Behavior {
 public:
  PassThroughModel(std::string in_port, std::string out_port)
      : in_(std::move(in_port)), out_(std::move(out_port)) {}

  void on_receive(Engine& engine, int self, const std::string&) override {
    try_forward(engine, self);
  }
  void on_output_acked(Engine& engine, int self,
                       const std::string&) override {
    try_forward(engine, self);
  }

 private:
  std::string in_;
  std::string out_;

  void try_forward(Engine& engine, int self) {
    auto& box = engine.component(self).inbox[in_];
    while (!box.empty() && engine.can_send(self, out_)) {
      engine.send(self, out_, box.front());
      engine.ack(self, in_);
    }
  }
};

}  // namespace

std::unique_ptr<Behavior> make_behavior(
    const Impl& impl, const Streamlet& streamlet,
    const std::map<std::string, double>& params,
    support::DiagnosticEngine& diags) {
  // 1. User-written simulation code wins.
  if (impl.sim.has_value()) {
    return std::make_unique<SimBlockBehavior>(*impl.sim, diags);
  }

  auto ins = port_names(streamlet, lang::PortDir::kIn);
  auto outs = port_names(streamlet, lang::PortDir::kOut);
  const std::string& family = impl.template_name;

  // 2. Built-in models by stdlib family.
  if (family == "voider_i" || family == "sink_i") {
    return std::make_unique<SinkModel>(param(params, "latency_cycles", 0.0));
  }
  if (family == "source_i" || family == "const_generator_i") {
    if (!outs.empty()) {
      return std::make_unique<SourceModel>(
          outs.front(),
          static_cast<std::int64_t>(param(params, "count", 256.0)),
          param(params, "interval_cycles", 1.0));
    }
  }
  if (family == "duplicator_i" && !ins.empty()) {
    return std::make_unique<DuplicatorModel>(ins.front(), outs);
  }
  if (family == "group_split2_i" && !ins.empty() && outs.size() >= 2) {
    // The abstract payload cannot be bit-sliced; both field streams carry
    // the packet value (timing-accurate, value-approximate).
    return std::make_unique<DuplicatorModel>(ins.front(), outs);
  }
  if (family == "group_combine2_i" && ins.size() >= 2 && !outs.empty()) {
    // Joint handshake of both fields; the combined packet carries the
    // high-order field's value (see group_split2_i note).
    return std::make_unique<Join2Model>(
        ins[0], ins[1], outs.front(),
        [](std::int64_t a, std::int64_t) { return a; });
  }
  if (family == "demux_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<DemuxModel>(ins.front(), outs);
  }
  if (family == "mux_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<MuxModel>(ins, outs.front());
  }
  if ((family == "adder_i" || family == "subtractor_i" ||
       family == "multiplier_i" || family == "comparator_i" ||
       family == "const_compare_i" || family == "const_compare_int_i") &&
      !ins.empty() && !outs.empty()) {
    double latency = param(params, "latency_cycles", 1.0);
    return std::make_unique<PipeModel>(ins.front(), outs.front(), latency,
                                       [](const Packet& p) { return p; });
  }
  if ((family == "add2_i" || family == "sub2_i" || family == "mul2_i" ||
       family == "cmp2_i") &&
      ins.size() >= 2 && !outs.empty()) {
    Join2Model::Op op;
    if (family == "add2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a + b; };
    } else if (family == "sub2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a - b; };
    } else if (family == "mul2_i") {
      op = [](std::int64_t a, std::int64_t b) { return a * b; };
    } else {
      // cmp2_i defaults to equality; the op string only affects RTL.
      op = [](std::int64_t a, std::int64_t b) {
        return static_cast<std::int64_t>(a == b);
      };
    }
    return std::make_unique<Join2Model>(ins[0], ins[1], outs.front(),
                                        std::move(op));
  }
  if (family == "filter_i" && ins.size() >= 2 && !outs.empty()) {
    std::string keep = ins[1];
    for (const std::string& p : ins) {
      if (p.find("keep") != std::string::npos) keep = p;
    }
    std::string data = ins[0] == keep && ins.size() > 1 ? ins[1] : ins[0];
    return std::make_unique<FilterModel>(data, keep, outs.front());
  }
  if ((family == "logic_and_i" || family == "logic_or_i") && !ins.empty() &&
      !outs.empty()) {
    return std::make_unique<LogicReduceModel>(ins, outs.front(),
                                              family == "logic_and_i");
  }
  if (family == "accumulator_i" && !ins.empty() && !outs.empty()) {
    return std::make_unique<AccumulatorModel>(ins.front(), outs.front());
  }

  // 3. Fallback.
  if (!ins.empty() && !outs.empty()) {
    diags.note("sim",
               "no behaviour model for '" + impl.display_name +
                   "' (family '" + family +
                   "'); using pass-through model",
               impl.loc);
    return std::make_unique<PassThroughModel>(ins.front(), outs.front());
  }
  if (!ins.empty()) {
    return std::make_unique<SinkModel>(0.0);
  }
  return std::make_unique<SourceModel>(outs.empty() ? "" : outs.front(), 0,
                                       1.0);
}

const std::vector<std::string>& builtin_behavior_families() {
  static const std::vector<std::string> families = {
      "voider_i",       "sink_i",           "source_i",
      "const_generator_i", "duplicator_i",  "demux_i",
      "mux_i",          "adder_i",          "subtractor_i",
      "multiplier_i",   "comparator_i",     "const_compare_i",
      "const_compare_int_i", "filter_i",    "logic_and_i",
      "logic_or_i",     "accumulator_i",    "add2_i",
      "sub2_i",         "mul2_i",           "cmp2_i",
      "group_split2_i", "group_combine2_i"};
  return families;
}

}  // namespace tydi::sim
