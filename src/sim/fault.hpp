// Deterministic, seed-driven fault injection for the sharded simulation
// runtime.
//
// A 1-core container never exercises the scheduling pathologies a real
// multi-core box produces: threads descheduled mid-round, mailbox posts
// landing "late" in wall-clock, one shard racing far ahead of the barrier.
// A `FaultPlan` recreates those pathologies on purpose — and deterministic
// protocols must shrug them off:
//
//  - *wall-clock* faults (delayed mailbox posts, jittered barrier arrival,
//    stalled-shard windows) perturb only thread timing. The exact protocol
//    must stay byte-identical and the credit protocol functionally
//    equivalent, because every control decision derives from barrier-reduced
//    values, never from arrival order;
//  - *protocol* faults (withheld credit grants) defer the credit-mode ack
//    batch flush by whole rounds. Ack timestamps shift further, so only the
//    functional-equivalence contract applies — and only credit mode honours
//    this fault (exact-mode acks are part of the same-time fixpoint and
//    cannot be deferred without changing semantics);
//  - the *hang* fault (withhold_acks_forever) swallows credit ack batches
//    entirely. The run cannot finish; the watchdog must convert the hang
//    into SimResult::aborted with per-shard forensics. This is the negative
//    control proving the guard rails work.
//
// All randomness is a counter-based hash of (seed, shard, site, step):
// stateless, thread-free, reproducible — the same plan produces the same
// fault schedule no matter how the OS schedules the threads.
#pragma once

#include <cstdint>
#include <string>

namespace tydi::sim {

struct FaultPlan {
  /// Master seed. 0 disables every injection site regardless of the
  /// probabilities below.
  std::uint64_t seed = 0;
  /// Probability [0,1] that a cross-shard mailbox post (deliver or ack) is
  /// held back in wall-clock for `delay_spin_iters` busy-iterations before
  /// being written. Wall-clock only: the message still lands in the same
  /// protocol round.
  double delay_delivery_p = 0.0;
  /// Probability [0,1] of spinning before each barrier arrival (models a
  /// thread descheduled on the way into the barrier).
  double barrier_jitter_p = 0.0;
  /// Probability [0,1] that a shard stalls (yield-loop) at the start of a
  /// round's processing phase (models a long preemption window).
  double stall_p = 0.0;
  /// Probability [0,1] that a credit-mode sink defers its ack-batch flush to
  /// a later round (withheld credit grants). Ignored in exact mode.
  double withhold_credit_p = 0.0;
  /// Busy-spin iterations for one injected delay (kept small: the sweep
  /// runs hundreds of configurations).
  std::uint32_t delay_spin_iters = 2000;
  /// Swallow every credit ack-batch flush forever: a deliberate hang that
  /// the watchdog must convert into SimResult::aborted. Test/bench only.
  bool withhold_acks_forever = false;

  [[nodiscard]] bool enabled() const { return seed != 0; }

  /// A mixed plan deriving all probabilities from one seed — the shape the
  /// fault sweep uses (`tydic --sim-fault-seed`). Every site is active with
  /// a seed-dependent probability in [0.05, 0.5].
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed);

  /// Parses "key=value,key=value" plans for `tydic --sim-fault-plan`:
  /// seed=<u64>, delay=<p>, jitter=<p>, stall=<p>, withhold=<p>,
  /// spin=<iters>, hang=0|1. Returns false (with `error` set) on an unknown
  /// key or an unparsable value.
  [[nodiscard]] static bool parse(const std::string& spec, FaultPlan& plan,
                                  std::string& error);

  [[nodiscard]] std::string render() const;
};

/// Per-shard stateless fault oracle. `decide(site, step)` hashes
/// (seed, shard, site, step) into [0,1) and compares against the site's
/// probability, so a given plan yields one fixed fault schedule per shard —
/// independent of thread interleaving.
class FaultInjector {
 public:
  enum class Site : std::uint32_t {
    kMailboxPost = 1,
    kBarrierArrive = 2,
    kRoundStall = 3,
    kWithholdCredit = 4,
  };

  FaultInjector(const FaultPlan& plan, int shard)
      : plan_(plan), shard_(shard) {}

  /// True when the fault at `site` fires for this shard at local step
  /// `step` (each site keeps its own monotonic step counter).
  [[nodiscard]] bool fires(Site site);

  /// Busy-spin delay used by the wall-clock faults. Volatile accumulator so
  /// the optimizer cannot elide it.
  void spin_delay() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  int shard_;
  std::uint64_t steps_[5] = {0, 0, 0, 0, 0};
};

}  // namespace tydi::sim
