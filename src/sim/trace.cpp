#include "src/sim/trace.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/sim/engine.hpp"

namespace tydi::sim {

std::atomic<std::uint64_t> TraceBuffer::g_slabs_allocated{0};

bool TraceBuffer::canonically_sorted() const {
  for (std::size_t i = 1; i < size_; ++i) {
    double prev_time = time_ns(i - 1);
    double time = time_ns(i);
    if (time < prev_time) return false;
    if (time == prev_time && channel(i) < channel(i - 1)) return false;
  }
  return true;
}

namespace {

// TYTR v1 layout (host endianness — the dump is a local artifact, not a
// wire format): magic, version, event count, channel count, the channel
// name table (u32 length + bytes each), then the four columns back to back.
constexpr char kMagic[4] = {'T', 'Y', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

support::Status corrupt(std::string what) {
  return support::Status::error(support::StatusCode::kCorruptData, "trace",
                                std::move(what));
}

}  // namespace

bool write_binary_trace(const SimResult& result, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(result.trace.size()));
  write_pod(out, static_cast<std::uint32_t>(result.channels.size()));
  for (const ChannelStats& c : result.channels) {
    write_pod(out, static_cast<std::uint32_t>(c.name.size()));
    out.write(c.name.data(), static_cast<std::streamsize>(c.name.size()));
  }
  const TraceBuffer& t = result.trace;
  for (std::size_t i = 0; i < t.size(); ++i) write_pod(out, t.time_ns(i));
  for (std::size_t i = 0; i < t.size(); ++i) write_pod(out, t.channel(i));
  for (std::size_t i = 0; i < t.size(); ++i) write_pod(out, t.value(i));
  for (std::size_t i = 0; i < t.size(); ++i) {
    write_pod(out, static_cast<std::uint8_t>(t.last(i) ? 1 : 0));
  }
  return static_cast<bool>(out);
}

bool write_binary_trace(const SimResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return write_binary_trace(result, out);
}

support::Status read_binary_trace(std::istream& in, BinaryTrace& out) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return corrupt("not a TYTR trace file");
  }
  std::uint32_t version = 0;
  if (!read_pod(in, version) || version != kVersion) {
    return corrupt("unsupported trace version");
  }
  std::uint64_t events = 0;
  std::uint32_t channels = 0;
  if (!read_pod(in, events) || !read_pod(in, channels)) {
    return corrupt("truncated trace header");
  }
  // Sanity-cap the header-supplied sizes against the remaining stream
  // length (when seekable) before allocating: a corrupt count must yield
  // the documented false+error, not a bad_alloc escaping the function.
  std::uint64_t remaining = ~std::uint64_t{0};
  std::streampos here = in.tellg();
  if (here >= 0) {
    in.seekg(0, std::ios::end);
    std::streampos stream_end = in.tellg();
    in.seekg(here);
    if (stream_end >= here) {
      remaining = static_cast<std::uint64_t>(stream_end - here);
    }
  }
  constexpr std::uint64_t kBytesPerEvent =
      sizeof(double) + sizeof(std::int32_t) + sizeof(std::int64_t) + 1;
  if (events > remaining / kBytesPerEvent || channels > remaining) {
    return corrupt("trace header sizes exceed the file length");
  }
  out.channels.clear();
  out.channels.reserve(channels);
  for (std::uint32_t i = 0; i < channels; ++i) {
    std::uint32_t length = 0;
    if (!read_pod(in, length)) return corrupt("truncated channel table");
    if (length > remaining) {
      return corrupt("channel name length exceeds the file length");
    }
    std::string name(length, '\0');
    in.read(name.data(), length);
    if (!in) return corrupt("truncated channel table");
    out.channels.push_back(std::move(name));
  }
  std::vector<double> times(events);
  std::vector<std::int32_t> chans(events);
  std::vector<std::int64_t> values(events);
  std::vector<std::uint8_t> lasts(events);
  for (auto& v : times) {
    if (!read_pod(in, v)) return corrupt("truncated time column");
  }
  for (auto& v : chans) {
    if (!read_pod(in, v)) return corrupt("truncated channel column");
  }
  for (auto& v : values) {
    if (!read_pod(in, v)) return corrupt("truncated value column");
  }
  for (auto& v : lasts) {
    if (!read_pod(in, v)) return corrupt("truncated last column");
  }
  // A channel column entry outside the name table would index out of
  // bounds in every consumer (trace_event, per-channel grouping); reject
  // the file instead of handing the corruption downstream.
  for (std::uint64_t i = 0; i < events; ++i) {
    if (chans[i] < 0 ||
        static_cast<std::uint32_t>(chans[i]) >= channels) {
      return corrupt("channel column entry " + std::to_string(i) +
                     " out of range (" + std::to_string(chans[i]) + " of " +
                     std::to_string(channels) + " channels)");
    }
  }
  out.trace.clear();
  for (std::uint64_t i = 0; i < events; ++i) {
    out.trace.append(times[i], chans[i], values[i], lasts[i] != 0);
  }
  return support::Status::ok();
}

support::Status read_binary_trace(const std::string& path, BinaryTrace& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return support::Status::error(support::StatusCode::kIoError, "trace",
                                  "cannot open trace file '" + path + "'");
  }
  return read_binary_trace(in, out);
}

}  // namespace tydi::sim
