#include "src/sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "src/sim/behavior.hpp"
#include "src/support/text.hpp"

namespace tydi::sim {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;

Component::Component() = default;
Component::Component(Component&&) noexcept = default;
Component& Component::operator=(Component&&) noexcept = default;
Component::~Component() = default;

const ChannelStats* SimResult::bottleneck() const {
  const ChannelStats* best = nullptr;
  for (const ChannelStats& c : channels) {
    if (c.blocked_ns <= 0.0) continue;
    if (best == nullptr || c.blocked_ns > best->blocked_ns) best = &c;
  }
  return best;
}

double SimResult::throughput(const std::string& top_port) const {
  auto it = top_outputs.find(top_port);
  if (it == top_outputs.end() || it->second.size() < 2) return 0.0;
  double span = it->second.back().first - it->second.front().first;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(it->second.size() - 1) / span;
}

std::string SimResult::summary() const {
  std::ostringstream out;
  out << "simulation finished at " << end_time_ns << " ns";
  if (deadlock) {
    out << " [DEADLOCK]";
    if (!deadlock_cycle.empty()) {
      out << " cycle: " << support::join(deadlock_cycle, " -> ");
    }
  }
  out << "\n";
  for (const auto& [port, packets] : top_outputs) {
    out << "  top output '" << port << "': " << packets.size()
        << " packet(s)";
    double tp = throughput(port);
    if (tp > 0.0) {
      out << ", " << support::format_fixed(tp * 1000.0, 3)
          << " packets/us steady-state";
    }
    out << "\n";
  }
  if (const ChannelStats* b = bottleneck()) {
    out << "  bottleneck: " << b->name << " (blocked "
        << support::format_fixed(b->blocked_ns, 1) << " ns)\n";
  }
  return out.str();
}

Engine::Engine(const Design& design, support::DiagnosticEngine& diags)
    : design_(design), diags_(diags) {}

void Engine::schedule(double delay_ns, std::function<void()> fn) {
  queue_.push(Event{now_ + delay_ns, sequence_++, std::move(fn)});
}

std::string Engine::endpoint_name(const ChannelEndpoint& ep) const {
  if (ep.component < 0) return "top." + ep.port;
  return components_[ep.component].path + "." + ep.port;
}

std::string Engine::channel_name(const Channel& c) const {
  return endpoint_name(c.src) + " -> " + endpoint_name(c.dst);
}

namespace {

/// Union-find over string keys.
class UnionFind {
 public:
  std::string find(const std::string& key) {
    auto it = parent_.find(key);
    if (it == parent_.end()) {
      parent_[key] = key;
      return key;
    }
    if (it->second == key) return key;
    std::string root = find(it->second);
    parent_[key] = root;
    return root;
  }
  void unite(const std::string& a, const std::string& b) {
    parent_[find(a)] = find(b);
  }
  [[nodiscard]] const std::map<std::string, std::string>& nodes() const {
    return parent_;
  }

 private:
  std::map<std::string, std::string> parent_;
};

std::string join_path(const std::string& path, const std::string& name) {
  return path.empty() ? name : path + "." + name;
}

std::string node_key(const std::string& path, const std::string& port) {
  return path + ":" + port;
}

}  // namespace

void Engine::flatten_impl(
    const Impl& impl, const std::string& path,
    std::vector<std::pair<std::string, std::string>>& links) {
  for (const Instance& inst : impl.instances) {
    const Impl* child = design_.find_impl(inst.impl_name);
    if (child == nullptr) continue;
    std::string child_path = join_path(path, inst.name);
    if (child->external) {
      Component comp;
      comp.path = child_path;
      comp.impl = child;
      components_.push_back(std::move(comp));
    } else {
      flatten_impl(*child, child_path, links);
    }
  }
  for (const Connection& c : impl.connections) {
    auto key_of = [&](const Endpoint& ep) {
      if (ep.instance.empty()) return node_key(path, ep.port);
      return node_key(join_path(path, ep.instance), ep.port);
    };
    links.emplace_back(key_of(c.src), key_of(c.dst));
  }
}

void Engine::flatten(const SimOptions& options) {
  const Impl* top = design_.find_impl(design_.top());
  if (top == nullptr) {
    diags_.error("sim", "design has no top implementation", {});
    return;
  }

  std::vector<std::pair<std::string, std::string>> links;
  if (top->external) {
    diags_.error("sim", "top implementation must be structural", top->loc);
    return;
  }
  flatten_impl(*top, "", links);

  // Union connected endpoints.
  UnionFind uf;
  for (const auto& [a, b] : links) uf.unite(a, b);

  // Component path -> index, and leaf port lookup.
  std::map<std::string, int> comp_index;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    comp_index[components_[i].path] = static_cast<int>(i);
  }

  struct Leaf {
    ChannelEndpoint ep;
    bool is_source = false;
    std::string clock_domain = "default";
  };
  std::map<std::string, std::vector<Leaf>> sets;

  auto classify = [&](const std::string& key) -> std::optional<Leaf> {
    std::size_t colon = key.rfind(':');
    std::string path = key.substr(0, colon);
    std::string port = key.substr(colon + 1);
    if (path.empty()) {
      // Top-level boundary port.
      const Streamlet* s = design_.streamlet_of(*top);
      const Port* p = s != nullptr ? s->find_port(port) : nullptr;
      if (p == nullptr) return std::nullopt;
      Leaf leaf;
      leaf.ep = ChannelEndpoint{-1, port};
      leaf.is_source = (p->dir == lang::PortDir::kIn);
      leaf.clock_domain = p->clock_domain;
      return leaf;
    }
    auto it = comp_index.find(path);
    if (it == comp_index.end()) return std::nullopt;  // pass-through node
    const Component& comp = components_[it->second];
    const Streamlet* s = design_.streamlet_of(*comp.impl);
    const Port* p = s != nullptr ? s->find_port(port) : nullptr;
    if (p == nullptr) return std::nullopt;
    Leaf leaf;
    leaf.ep = ChannelEndpoint{it->second, port};
    leaf.is_source = (p->dir == lang::PortDir::kOut);
    leaf.clock_domain = p->clock_domain;
    return leaf;
  };

  for (const auto& [key, parent] : uf.nodes()) {
    (void)parent;
    if (auto leaf = classify(key)) {
      sets[uf.find(key)].push_back(*leaf);
    }
  }

  for (auto& [root, leaves] : sets) {
    const Leaf* source = nullptr;
    const Leaf* sink = nullptr;
    for (const Leaf& leaf : leaves) {
      if (leaf.is_source) {
        source = &leaf;
      } else {
        sink = &leaf;
      }
    }
    if (leaves.size() != 2 || source == nullptr || sink == nullptr) {
      diags_.warning("sim",
                     "connection net '" + root + "' does not resolve to one "
                     "source and one sink (" +
                         std::to_string(leaves.size()) +
                         " leaf endpoint(s)); skipped",
                     {});
      continue;
    }
    Channel c;
    c.src = source->ep;
    c.dst = sink->ep;
    auto period_it = options.clock_period_ns.find(source->clock_domain);
    c.latency_ns = period_it != options.clock_period_ns.end()
                       ? period_it->second
                       : options.default_period_ns;
    c.stats.name = channel_name(c);
    std::size_t index = channels_.size();
    channels_.push_back(std::move(c));
    channel_by_src_[{channels_[index].src.component,
                     channels_[index].src.port}] = index;
    channel_by_dst_[{channels_[index].dst.component,
                     channels_[index].dst.port}] = index;
  }
}

double Engine::clock_period(int component) const {
  if (options_ == nullptr) return 10.0;
  if (component < 0 ||
      static_cast<std::size_t>(component) >= components_.size()) {
    return options_->default_period_ns;
  }
  const Component& comp = components_[component];
  const Streamlet* s = design_.streamlet_of(*comp.impl);
  if (s != nullptr && !s->ports.empty()) {
    auto it = options_->clock_period_ns.find(s->ports.front().clock_domain);
    if (it != options_->clock_period_ns.end()) return it->second;
  }
  return options_->default_period_ns;
}

void Engine::record_state_transition(int component,
                                     const std::string& variable,
                                     const std::string& from,
                                     const std::string& to) {
  result_.state_transitions.push_back(StateTransition{
      now_, components_[component].path, variable, from, to});
}

void Engine::send(int component, const std::string& port, Packet packet) {
  auto it = channel_by_src_.find({component, port});
  if (it == channel_by_src_.end()) {
    diags_.warning("sim",
                   "send on unconnected port '" +
                       endpoint_name(ChannelEndpoint{component, port}) +
                       "'; packet dropped",
                   {});
    return;
  }
  Channel& c = channels_[it->second];
  if (!c.occupied && c.outbox.empty()) {
    start_channel_transfer(it->second, packet);
  } else {
    c.outbox.emplace_back(now_, packet);
  }
}

bool Engine::can_send(int component, const std::string& port) const {
  auto it = channel_by_src_.find({component, port});
  if (it == channel_by_src_.end()) return false;
  const Channel& c = channels_[it->second];
  return !c.occupied && c.outbox.empty();
}

void Engine::start_channel_transfer(std::size_t channel_index, Packet packet) {
  Channel& c = channels_[channel_index];
  c.occupied = true;
  c.in_flight = packet;
  schedule(c.latency_ns, [this, channel_index] { deliver(channel_index); });
}

void Engine::deliver(std::size_t channel_index) {
  Channel& c = channels_[channel_index];
  c.stats.packets += 1;
  if (c.stats.packets == 1) c.stats.first_delivery_ns = now_;
  c.stats.last_delivery_ns = now_;

  if (trace_enabled_) {
    TraceEvent ev;
    ev.time_ns = now_;
    ev.channel = c.stats.name;
    ev.packet = c.in_flight;
    ev.is_top_input = (c.src.component < 0);
    ev.is_top_output = (c.dst.component < 0);
    ev.top_port = ev.is_top_input ? c.src.port
                                  : (ev.is_top_output ? c.dst.port : "");
    result_.trace.push_back(std::move(ev));
  }

  if (c.dst.component < 0) {
    // Environment observer: always ready, records and acknowledges.
    result_.top_outputs[c.dst.port].emplace_back(now_, c.in_flight);
    c.occupied = false;
    if (c.src.component >= 0) {
      Component& src = components_[c.src.component];
      if (src.behavior) src.behavior->on_output_acked(*this, c.src.component,
                                                      c.src.port);
    }
    if (!c.outbox.empty()) {
      auto [t_enq, packet] = c.outbox.front();
      c.outbox.pop_front();
      c.stats.blocked_ns += now_ - t_enq;
      start_channel_transfer(channel_index, packet);
      if (c.src.component >= 0) {
        Component& src = components_[c.src.component];
        if (src.behavior) {
          src.behavior->on_send_accepted(*this, c.src.component, c.src.port);
        }
      }
    }
    return;
  }

  Component& dst = components_[c.dst.component];
  dst.inbox[c.dst.port].push_back(c.in_flight);
  if (dst.behavior) dst.behavior->on_receive(*this, c.dst.component,
                                             c.dst.port);
}

void Engine::ack(int component, const std::string& port) {
  auto it = channel_by_dst_.find({component, port});
  if (it == channel_by_dst_.end()) {
    diags_.warning("sim",
                   "ack on unconnected port '" +
                       endpoint_name(ChannelEndpoint{component, port}) + "'",
                   {});
    return;
  }
  Channel& c = channels_[it->second];
  if (!c.occupied) {
    diags_.warning("sim", "ack on empty channel '" + c.stats.name + "'", {});
    return;
  }
  // Consume the packet from the sink inbox.
  Component& dst = components_[component];
  auto& box = dst.inbox[port];
  if (!box.empty()) box.pop_front();

  c.occupied = false;
  std::size_t channel_index = it->second;
  if (c.src.component >= 0) {
    Component& src = components_[c.src.component];
    if (src.behavior) src.behavior->on_output_acked(*this, c.src.component,
                                                    c.src.port);
  }
  Channel& c2 = channels_[channel_index];
  if (!c2.occupied && !c2.outbox.empty()) {
    auto [t_enq, packet] = c2.outbox.front();
    c2.outbox.pop_front();
    c2.stats.blocked_ns += now_ - t_enq;
    start_channel_transfer(channel_index, packet);
    if (c2.src.component >= 0) {
      Component& src = components_[c2.src.component];
      if (src.behavior) {
        src.behavior->on_send_accepted(*this, c2.src.component, c2.src.port);
      }
    }
  }
}

void Engine::poke(int component) {
  Component& comp = components_[component];
  if (comp.behavior) comp.behavior->on_receive(*this, component, "");
}

void Engine::inject_stimuli(const SimOptions& options) {
  for (const Stimulus& stim : options.stimuli) {
    auto it = channel_by_src_.find({-1, stim.port});
    if (it == channel_by_src_.end()) {
      diags_.warning("sim",
                     "stimulus targets unknown top input '" + stim.port + "'",
                     {});
      continue;
    }
    for (const auto& [time, packet] : stim.packets) {
      Packet p = packet;
      std::string port = stim.port;
      schedule(time, [this, port, p] { send(-1, port, p); });
    }
  }
}

void Engine::detect_deadlock() {
  // Anything still in flight when the queue runs dry is blocked for good.
  bool anything_blocked = false;
  for (const Channel& c : channels_) {
    if (c.occupied || !c.outbox.empty()) {
      anything_blocked = true;
      std::ostringstream why;
      why << "channel " << c.stats.name << ": ";
      if (c.occupied) why << "packet not acknowledged by sink";
      if (!c.outbox.empty()) {
        if (c.occupied) why << ", ";
        why << c.outbox.size() << " packet(s) blocked in outbox";
      }
      result_.blocked_report.push_back(why.str());
    }
  }
  for (const Component& comp : components_) {
    for (const auto& [port, box] : comp.inbox) {
      if (!box.empty()) {
        anything_blocked = true;
        result_.blocked_report.push_back(
            "component " + comp.path + ": " + std::to_string(box.size()) +
            " unconsumed packet(s) on port '" + port + "'");
      }
    }
  }
  if (!anything_blocked) return;
  result_.deadlock = true;

  // Wait-for graph: X -> Y means "X cannot make progress until Y acts".
  //  - a source whose outbox is blocked waits on the sink of that channel;
  //  - a component waiting for a packet on port p waits on the source
  //    feeding p.
  std::map<int, std::vector<int>> edges;
  for (const Channel& c : channels_) {
    if (!c.outbox.empty() && c.src.component >= 0 && c.dst.component >= 0) {
      edges[c.src.component].push_back(c.dst.component);
    }
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Component& comp = components_[i];
    if (!comp.behavior) continue;
    for (const std::string& port : comp.behavior->waiting_ports(comp)) {
      auto it = channel_by_dst_.find({static_cast<int>(i), port});
      if (it == channel_by_dst_.end()) continue;
      const Channel& c = channels_[it->second];
      if (c.src.component >= 0) {
        edges[static_cast<int>(i)].push_back(c.src.component);
      }
    }
  }

  // DFS cycle search.
  std::map<int, int> color;  // 0 white, 1 gray, 2 black
  std::vector<int> stack;
  std::function<bool(int)> dfs = [&](int node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (int next : edges[node]) {
      if (color[next] == 1) {
        auto it = std::find(stack.begin(), stack.end(), next);
        for (; it != stack.end(); ++it) {
          result_.deadlock_cycle.push_back(components_[*it].path);
        }
        return true;
      }
      if (color[next] == 0 && dfs(next)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [node, next] : edges) {
    (void)next;
    if (color[node] == 0 && dfs(node)) break;
  }
}

SimResult Engine::run(const SimOptions& options) {
  options_ = &options;
  trace_enabled_ = options.record_trace;
  result_ = SimResult{};
  components_.clear();
  channels_.clear();
  channel_by_src_.clear();
  channel_by_dst_.clear();
  now_ = 0.0;

  flatten(options);

  // Attach behaviours.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    Component& comp = components_[i];
    const Streamlet* s = design_.streamlet_of(*comp.impl);
    if (s == nullptr) continue;
    std::map<std::string, double> params;
    auto pit = options.model_params.find(comp.path);
    if (pit != options.model_params.end()) params = pit->second;
    comp.behavior = make_behavior(*comp.impl, *s, params, diags_);
  }

  inject_stimuli(options);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].behavior) {
      components_[i].behavior->on_start(*this, static_cast<int>(i));
    }
  }

  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.time > options.max_time_ns) {
      now_ = options.max_time_ns;
      break;
    }
    now_ = ev.time;
    ev.fn();
  }
  result_.end_time_ns = now_;
  detect_deadlock();
  for (const Channel& c : channels_) result_.channels.push_back(c.stats);
  return std::move(result_);
}

}  // namespace tydi::sim
