#include "src/sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "src/sim/behavior.hpp"
#include "src/support/text.hpp"

namespace tydi::sim {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;

Component::Component() = default;
Component::Component(Component&&) noexcept = default;
Component& Component::operator=(Component&&) noexcept = default;
Component::~Component() = default;

const ChannelStats* SimResult::bottleneck() const {
  const ChannelStats* best = nullptr;
  for (const ChannelStats& c : channels) {
    if (c.blocked_ns <= 0.0) continue;
    if (best == nullptr || c.blocked_ns > best->blocked_ns ||
        (c.blocked_ns == best->blocked_ns && c.name < best->name)) {
      best = &c;
    }
  }
  return best;
}

double SimResult::throughput(const std::string& top_port) const {
  auto it = top_outputs.find(top_port);
  if (it == top_outputs.end() || it->second.size() < 2) return 0.0;
  double span = it->second.back().first - it->second.front().first;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(it->second.size() - 1) / span;
}

std::string SimResult::summary() const {
  std::ostringstream out;
  out << "simulation finished at " << end_time_ns << " ns";
  if (deadlock) {
    out << " [DEADLOCK]";
    if (!deadlock_cycle.empty()) {
      out << " cycle: " << support::join(deadlock_cycle, " -> ");
    }
  }
  out << "\n";
  for (const auto& [port, packets] : top_outputs) {
    out << "  top output '" << port << "': " << packets.size()
        << " packet(s)";
    double tp = throughput(port);
    if (tp > 0.0) {
      out << ", " << support::format_fixed(tp * 1000.0, 3)
          << " packets/us steady-state";
    }
    out << "\n";
  }
  if (const ChannelStats* b = bottleneck()) {
    out << "  bottleneck: " << b->name << " (blocked "
        << support::format_fixed(b->blocked_ns, 1) << " ns)\n";
  }
  return out.str();
}

Engine::Engine(const Design& design, support::DiagnosticEngine& diags)
    : design_(design), diags_(diags) {}

std::string Engine::endpoint_name(const ChannelEndpoint& ep) const {
  const Streamlet* s =
      ep.component < 0 ? top_streamlet_ : components_[ep.component].streamlet;
  std::string port = s != nullptr && ep.port >= 0 &&
                             static_cast<std::size_t>(ep.port) <
                                 s->ports.size()
                         ? s->ports[ep.port].name
                         : "<port " + std::to_string(ep.port) + ">";
  if (ep.component < 0) return "top." + port;
  return components_[ep.component].path + "." + port;
}

std::string Engine::channel_display_name(const Channel& c) const {
  return endpoint_name(c.src) + " -> " + endpoint_name(c.dst);
}

namespace {

/// Index-based union-find with path halving; roots by arbitrary attach
/// (net groups are tiny).
class UnionFind {
 public:
  int make_node() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<int> parent_;
};

std::string join_path(const std::string& path, const std::string& name) {
  return path.empty() ? name : path + "." + name;
}

/// One endpoint of a connection net during flattening. Nodes are created
/// with their classification baked in, so channel construction after the
/// union pass is pure index work.
struct FlatNode {
  enum class Kind : std::uint8_t { kLeaf, kTop, kPass };
  Kind kind = Kind::kPass;
  std::int32_t component = -1;  ///< leaf component index (kLeaf)
  std::int32_t port = -1;       ///< port index (kLeaf/kTop)
  bool is_source = false;
  const Port* decl = nullptr;   ///< port declaration (clock domain)
  Symbol key = support::kNoSymbol;  ///< "path:port" for diagnostics
};

/// Transient flattening state: preassigned endpoint-ID table (node key
/// symbol -> dense node id) + union-find over those ids.
struct Flattener {
  UnionFind uf;
  std::vector<FlatNode> nodes;
  std::unordered_map<Symbol, int> node_ids;
  std::vector<std::pair<int, int>> links;

  int node_of(const std::string& path, const std::string& port_name,
              const FlatNode& info) {
    Symbol key = support::intern(path + ":" + port_name);
    auto it = node_ids.find(key);
    if (it != node_ids.end()) return it->second;
    int id = uf.make_node();
    nodes.push_back(info);
    nodes.back().key = key;
    node_ids.emplace(key, id);
    return id;
  }
};

}  // namespace

void Engine::flatten(const SimOptions& options) {
  const Impl* top = design_.find_impl(design_.top());
  if (top == nullptr) {
    diags_.error("sim", "design has no top implementation", {});
    return;
  }
  if (top->external) {
    diags_.error("sim", "top implementation must be structural", top->loc);
    return;
  }
  top_streamlet_ = design_.streamlet_of(*top);

  Flattener flat;

  // Recursive flatten: leaf instances become components; every connection
  // endpoint becomes a dense node id in the endpoint table.
  auto flatten_impl = [&](auto&& self, const Impl& impl,
                          const std::string& path, bool is_top) -> void {
    // Instance name -> leaf component index (-1 = structural child).
    std::unordered_map<Symbol, std::int32_t> local;
    for (const Instance& inst : impl.instances) {
      const Impl* child = design_.find_impl(inst.impl_name);
      if (child == nullptr) continue;
      std::string child_path = join_path(path, inst.name);
      if (child->external) {
        std::int32_t index = static_cast<std::int32_t>(components_.size());
        Component comp;
        comp.path = child_path;
        comp.impl = child;
        comp.streamlet = design_.streamlet_of(*child);
        std::size_t nports =
            comp.streamlet != nullptr ? comp.streamlet->ports.size() : 0;
        comp.inbox.resize(nports);
        comp.out_channel.assign(nports, -1);
        comp.in_channel.assign(nports, -1);
        components_.push_back(std::move(comp));
        local.emplace(support::intern(inst.name), index);
      } else {
        local.emplace(support::intern(inst.name), -1);
        self(self, *child, child_path, false);
      }
    }
    for (const Connection& c : impl.connections) {
      auto node_of_endpoint = [&](const Endpoint& ep) -> int {
        if (ep.instance.empty()) {
          FlatNode info;
          if (is_top && top_streamlet_ != nullptr) {
            int port = top_streamlet_->port_index(support::intern(ep.port));
            if (port >= 0) {
              const Port& decl = top_streamlet_->ports[port];
              info.kind = FlatNode::Kind::kTop;
              info.port = port;
              info.decl = &decl;
              // A top *input* drives data into the design: source side.
              info.is_source = (decl.dir == lang::PortDir::kIn);
            }
          }
          return flat.node_of(path, ep.port, info);
        }
        std::string child_path = join_path(path, ep.instance);
        FlatNode info;
        auto lit = local.find(support::intern(ep.instance));
        if (lit != local.end() && lit->second >= 0) {
          const Component& comp = components_[lit->second];
          int port = comp.streamlet != nullptr
                         ? comp.streamlet->port_index(support::intern(ep.port))
                         : -1;
          if (port >= 0) {
            const Port& decl = comp.streamlet->ports[port];
            info.kind = FlatNode::Kind::kLeaf;
            info.component = lit->second;
            info.port = port;
            info.decl = &decl;
            info.is_source = (decl.dir == lang::PortDir::kOut);
          }
        }
        return flat.node_of(child_path, ep.port, info);
      };
      flat.links.emplace_back(node_of_endpoint(c.src),
                              node_of_endpoint(c.dst));
    }
  };
  flatten_impl(flatten_impl, *top, "", true);

  for (const auto& [a, b] : flat.links) flat.uf.unite(a, b);

  // Group nodes by net root in node-id order (deterministic channel order),
  // then collapse each net to one channel.
  std::unordered_map<int, std::vector<int>> sets;
  std::vector<int> roots;
  for (int id = 0; id < static_cast<int>(flat.nodes.size()); ++id) {
    int root = flat.uf.find(id);
    auto [it, inserted] = sets.try_emplace(root);
    if (inserted) roots.push_back(root);
    it->second.push_back(id);
  }

  std::size_t top_ports =
      top_streamlet_ != nullptr ? top_streamlet_->ports.size() : 0;
  top_src_channel_.assign(top_ports, -1);
  top_out_packets_.assign(top_ports, {});

  for (int root : roots) {
    const std::vector<int>& members = sets[root];
    const FlatNode* source = nullptr;
    const FlatNode* sink = nullptr;
    std::size_t leaves = 0;
    for (int id : members) {
      const FlatNode& n = flat.nodes[id];
      if (n.kind == FlatNode::Kind::kPass) continue;
      ++leaves;
      if (n.is_source) {
        source = &n;
      } else {
        sink = &n;
      }
    }
    if (leaves != 2 || source == nullptr || sink == nullptr) {
      diags_.warning("sim",
                     "connection net '" +
                         support::symbol_name(flat.nodes[root].key) +
                         "' does not resolve to one source and one sink (" +
                         std::to_string(leaves) + " leaf endpoint(s)); "
                         "skipped",
                     {});
      continue;
    }
    Channel c;
    c.src = ChannelEndpoint{source->component, source->port};
    c.dst = ChannelEndpoint{sink->component, sink->port};
    const std::string& domain =
        source->decl != nullptr ? source->decl->clock_domain : "default";
    auto period_it = options.clock_period_ns.find(domain);
    c.latency_ns = period_it != options.clock_period_ns.end()
                       ? period_it->second
                       : options.default_period_ns;
    std::int32_t index = static_cast<std::int32_t>(channels_.size());
    if (c.src.component >= 0) {
      components_[c.src.component].out_channel[c.src.port] = index;
    } else {
      top_src_channel_[c.src.port] = index;
    }
    if (c.dst.component >= 0) {
      components_[c.dst.component].in_channel[c.dst.port] = index;
    }
    channels_.push_back(std::move(c));
  }
}

void Engine::record_state_transition(int component, Symbol variable,
                                     Symbol from, Symbol to) {
  pending_transitions_.push_back(
      PendingTransition{now_, component, variable, from, to});
}

void Engine::push_event(double delay_ns, EventKind kind, std::int32_t a,
                        std::int32_t b) {
  Event ev;
  ev.time = now_ + delay_ns;
  ev.seq = sequence_++;
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  queue_.push(ev);
}

void Engine::schedule_timer(double delay_ns, int component,
                            std::int32_t token) {
  push_event(delay_ns, EventKind::kTimer, component, token);
}

void Engine::schedule_poke(double delay_ns, int component) {
  push_event(delay_ns, EventKind::kPoke, component, -1);
}

void Engine::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kDeliver:
      deliver(static_cast<std::size_t>(ev.a));
      break;
    case EventKind::kTimer: {
      Component& comp = components_[ev.a];
      if (comp.behavior) comp.behavior->on_timer(*this, ev.a, ev.b);
      break;
    }
    case EventKind::kPoke:
      poke(ev.a);
      break;
    case EventKind::kStimulus: {
      StimulusCursor& cursor = stimulus_cursors_[ev.a];
      send_on_channel(static_cast<std::size_t>(cursor.channel),
                      cursor.stimulus->packets[cursor.next].second);
      cursor.next += 1;
      if (cursor.next < cursor.stimulus->packets.size()) {
        // Packets enter the channel in list order; out-of-order timestamps
        // clamp to "now".
        double at = cursor.stimulus->packets[cursor.next].first;
        push_event(at > now_ ? at - now_ : 0.0, EventKind::kStimulus, ev.a,
                   -1);
      }
      break;
    }
  }
}

bool Engine::should_warn(WarnSite site, std::int32_t a, std::int32_t b) {
  std::uint64_t key = (static_cast<std::uint64_t>(site) << 56) |
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           a + 1))
                       << 24) |
                      (static_cast<std::uint32_t>(b + 1) & 0xFFFFFFu);
  return warn_counts_[key]++ == 0;
}

void Engine::send(int component, int port, Packet packet) {
  std::int32_t ch = -1;
  if (component >= 0) {
    const Component& comp = components_[component];
    if (port >= 0 && static_cast<std::size_t>(port) < comp.out_channel.size()) {
      ch = comp.out_channel[port];
    }
  } else if (port >= 0 &&
             static_cast<std::size_t>(port) < top_src_channel_.size()) {
    ch = top_src_channel_[port];
  }
  if (ch < 0) {
    if (should_warn(WarnSite::kSendUnconnected, component, port)) {
      diags_.warning("sim",
                     "send on unconnected port '" +
                         endpoint_name(ChannelEndpoint{component, port}) +
                         "'; packet dropped (repeats counted)",
                     {});
    }
    return;
  }
  send_on_channel(static_cast<std::size_t>(ch), packet);
}

void Engine::send_on_channel(std::size_t channel_index, Packet packet) {
  Channel& c = channels_[channel_index];
  if (!c.occupied && c.outbox.empty()) {
    start_channel_transfer(channel_index, packet);
  } else {
    c.outbox.emplace_back(now_, packet);
  }
}

bool Engine::can_send(int component, int port) const {
  std::int32_t ch = -1;
  if (component >= 0) {
    const Component& comp = components_[component];
    if (port >= 0 && static_cast<std::size_t>(port) < comp.out_channel.size()) {
      ch = comp.out_channel[port];
    }
  } else if (port >= 0 &&
             static_cast<std::size_t>(port) < top_src_channel_.size()) {
    ch = top_src_channel_[port];
  }
  if (ch < 0) return false;
  const Channel& c = channels_[ch];
  return !c.occupied && c.outbox.empty();
}

void Engine::start_channel_transfer(std::size_t channel_index, Packet packet) {
  Channel& c = channels_[channel_index];
  c.occupied = true;
  c.in_flight = packet;
  push_event(c.latency_ns, EventKind::kDeliver,
             static_cast<std::int32_t>(channel_index), -1);
}

void Engine::notify_output_acked(ChannelEndpoint src) {
  if (src.component < 0) return;
  Component& comp = components_[src.component];
  if (comp.behavior) {
    comp.behavior->on_output_acked(*this, src.component, src.port);
  }
}

void Engine::drain_outbox(std::size_t channel_index) {
  // Note: re-check `occupied` — a behaviour notified just before this call
  // may have re-filled the register (the pre-refactor code raced here and
  // could overwrite an in-flight packet).
  Channel& c = channels_[channel_index];
  if (c.occupied || c.outbox.empty()) return;
  auto [t_enq, packet] = c.outbox.front();
  c.outbox.pop_front();
  c.stats.blocked_ns += now_ - t_enq;
  start_channel_transfer(channel_index, packet);
  ChannelEndpoint src = channels_[channel_index].src;
  if (src.component >= 0) {
    Component& comp = components_[src.component];
    if (comp.behavior) {
      comp.behavior->on_send_accepted(*this, src.component, src.port);
    }
  }
}

void Engine::deliver(std::size_t channel_index) {
  Channel& c = channels_[channel_index];
  c.stats.packets += 1;
  if (c.stats.packets == 1) c.stats.first_delivery_ns = now_;
  c.stats.last_delivery_ns = now_;

  if (trace_enabled_) {
    TraceEvent ev;
    ev.time_ns = now_;
    ev.channel_index = static_cast<std::int32_t>(channel_index);
    ev.packet = c.in_flight;
    ev.is_top_input = (c.src.component < 0);
    ev.is_top_output = (c.dst.component < 0);
    result_.trace.push_back(std::move(ev));
  }

  if (c.dst.component < 0) {
    // Environment observer: always ready, records and acknowledges.
    top_out_packets_[c.dst.port].emplace_back(now_, c.in_flight);
    c.occupied = false;
    notify_output_acked(c.src);
    drain_outbox(channel_index);
    return;
  }

  Component& dst = components_[c.dst.component];
  dst.inbox[c.dst.port].push_back(c.in_flight);
  if (dst.behavior) {
    dst.behavior->on_receive(*this, c.dst.component, c.dst.port);
  }
}

void Engine::ack(int component, int port) {
  Component& comp = components_[component];
  std::int32_t ch =
      port >= 0 && static_cast<std::size_t>(port) < comp.in_channel.size()
          ? comp.in_channel[port]
          : -1;
  if (ch < 0) {
    if (should_warn(WarnSite::kAckUnconnected, component, port)) {
      diags_.warning("sim",
                     "ack on unconnected port '" +
                         endpoint_name(ChannelEndpoint{component, port}) +
                         "' (repeats counted)",
                     {});
    }
    return;
  }
  std::size_t channel_index = static_cast<std::size_t>(ch);
  Channel& c = channels_[channel_index];
  if (!c.occupied) {
    if (should_warn(WarnSite::kAckEmptyChannel, ch, -1)) {
      diags_.warning("sim",
                     "ack on empty channel '" + channel_display_name(c) +
                         "' (repeats counted)",
                     {});
    }
    return;
  }
  // Consume the packet from the sink inbox.
  auto& box = comp.inbox[port];
  if (!box.empty()) box.pop_front();

  c.occupied = false;
  notify_output_acked(c.src);
  drain_outbox(channel_index);
}

void Engine::poke(int component) {
  Component& comp = components_[component];
  if (comp.behavior) comp.behavior->on_receive(*this, component, -1);
}

void Engine::inject_stimuli(const SimOptions& options) {
  for (const Stimulus& stim : options.stimuli) {
    int port = top_streamlet_ != nullptr
                   ? top_streamlet_->port_index(support::intern(stim.port))
                   : -1;
    std::int32_t ch = port >= 0 ? top_src_channel_[port] : -1;
    if (ch < 0) {
      diags_.warning("sim",
                     "stimulus targets unknown top input '" + stim.port + "'",
                     {});
      continue;
    }
    if (stim.packets.empty()) continue;
    std::int32_t cursor = static_cast<std::int32_t>(stimulus_cursors_.size());
    stimulus_cursors_.push_back(StimulusCursor{ch, &stim, 0});
    push_event(stim.packets.front().first, EventKind::kStimulus, cursor, -1);
  }
}

void Engine::detect_deadlock() {
  // Anything still in flight when the queue runs dry is blocked for good.
  bool anything_blocked = false;
  for (const Channel& c : channels_) {
    if (c.occupied || !c.outbox.empty()) {
      anything_blocked = true;
      std::ostringstream why;
      why << "channel " << channel_display_name(c) << ": ";
      if (c.occupied) why << "packet not acknowledged by sink";
      if (!c.outbox.empty()) {
        if (c.occupied) why << ", ";
        why << c.outbox.size() << " packet(s) blocked in outbox";
      }
      result_.blocked_report.push_back(why.str());
    }
  }
  for (const Component& comp : components_) {
    for (std::size_t port = 0; port < comp.inbox.size(); ++port) {
      if (!comp.inbox[port].empty()) {
        anything_blocked = true;
        std::string port_name =
            comp.streamlet != nullptr ? comp.streamlet->ports[port].name
                                      : std::to_string(port);
        result_.blocked_report.push_back(
            "component " + comp.path + ": " +
            std::to_string(comp.inbox[port].size()) +
            " unconsumed packet(s) on port '" + port_name + "'");
      }
    }
  }
  if (!anything_blocked) return;
  result_.deadlock = true;

  // Wait-for graph: X -> Y means "X cannot make progress until Y acts".
  //  - a source whose outbox is blocked waits on the sink of that channel;
  //  - a component waiting for a packet on port p waits on the source
  //    feeding p.
  std::vector<std::vector<int>> edges(components_.size());
  for (const Channel& c : channels_) {
    if (!c.outbox.empty() && c.src.component >= 0 && c.dst.component >= 0) {
      edges[c.src.component].push_back(c.dst.component);
    }
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const Component& comp = components_[i];
    if (!comp.behavior) continue;
    for (int port : comp.behavior->waiting_ports(comp)) {
      std::int32_t ch =
          port >= 0 && static_cast<std::size_t>(port) < comp.in_channel.size()
              ? comp.in_channel[port]
              : -1;
      if (ch < 0) continue;
      const Channel& c = channels_[ch];
      if (c.src.component >= 0) {
        edges[i].push_back(c.src.component);
      }
    }
  }

  // Iterative DFS cycle search in component-index order (deterministic).
  std::vector<std::uint8_t> color(components_.size(), 0);  // 0 w, 1 g, 2 b
  std::vector<int> stack;
  auto dfs = [&](auto&& self, int node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (int next : edges[node]) {
      if (color[next] == 1) {
        auto it = std::find(stack.begin(), stack.end(), next);
        for (; it != stack.end(); ++it) {
          result_.deadlock_cycle.push_back(components_[*it].path);
        }
        return true;
      }
      if (color[next] == 0 && self(self, next)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (!edges[i].empty() && color[i] == 0 && dfs(dfs, static_cast<int>(i))) {
      break;
    }
  }
}

void Engine::finalize_result() {
  // Materialize the name strings the hot path never built.
  for (Channel& c : channels_) {
    c.stats.name = channel_display_name(c);
    result_.channels.push_back(c.stats);
  }
  for (TraceEvent& ev : result_.trace) {
    const Channel& c = channels_[ev.channel_index];
    ev.channel = c.stats.name;
    if (ev.is_top_input) {
      ev.top_port = top_streamlet_->ports[c.src.port].name;
    } else if (ev.is_top_output) {
      ev.top_port = top_streamlet_->ports[c.dst.port].name;
    }
  }
  for (std::size_t port = 0; port < top_out_packets_.size(); ++port) {
    if (top_out_packets_[port].empty()) continue;
    result_.top_outputs[top_streamlet_->ports[port].name] =
        std::move(top_out_packets_[port]);
  }
  for (const PendingTransition& t : pending_transitions_) {
    result_.state_transitions.push_back(StateTransition{
        t.time_ns, components_[t.component].path,
        support::symbol_name(t.variable), support::symbol_name(t.from),
        support::symbol_name(t.to)});
  }
  // Summarize deduplicated warning sites (decode the packed key back into
  // the site kind and its endpoint/channel).
  for (const auto& [key, count] : warn_counts_) {
    if (count <= 1) continue;
    auto site = static_cast<WarnSite>(key >> 56);
    auto a = static_cast<std::int32_t>((key >> 24) & 0xFFFFFFFFu) - 1;
    auto b = static_cast<std::int32_t>(key & 0xFFFFFFu) - 1;
    std::string what;
    switch (site) {
      case WarnSite::kSendUnconnected:
        what = "send on unconnected port '" +
               endpoint_name(ChannelEndpoint{a, b}) + "'";
        break;
      case WarnSite::kAckUnconnected:
        what = "ack on unconnected port '" +
               endpoint_name(ChannelEndpoint{a, b}) + "'";
        break;
      case WarnSite::kAckEmptyChannel:
        what = "ack on empty channel '" + channel_display_name(channels_[a]) +
               "'";
        break;
    }
    diags_.note("sim",
                what + " occurred " + std::to_string(count) +
                    " time(s) in total",
                {});
  }
}

SimResult Engine::run(const SimOptions& options) {
  options_ = &options;
  trace_enabled_ = options.record_trace;
  default_period_ns_ = options.default_period_ns;
  result_ = SimResult{};
  components_.clear();
  channels_.clear();
  top_src_channel_.clear();
  top_out_packets_.clear();
  pending_transitions_.clear();
  warn_counts_.clear();
  stimulus_cursors_.clear();
  queue_ = {};  // drop events left over from a cut-off previous run
  now_ = 0.0;
  sequence_ = 0;

  flatten(options);

  // Attach behaviours and resolve per-component clock periods once.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    Component& comp = components_[i];
    comp.clock_period_ns = options.default_period_ns;
    if (comp.streamlet == nullptr) continue;
    if (!comp.streamlet->ports.empty()) {
      auto it = options.clock_period_ns.find(
          comp.streamlet->ports.front().clock_domain);
      if (it != options.clock_period_ns.end()) comp.clock_period_ns = it->second;
    }
    std::map<std::string, double> params;
    auto pit = options.model_params.find(comp.path);
    if (pit != options.model_params.end()) params = pit->second;
    comp.behavior = make_behavior(*comp.impl, *comp.streamlet, params, diags_);
  }

  inject_stimuli(options);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].behavior) {
      components_[i].behavior->on_start(*this, static_cast<int>(i));
    }
  }

  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.time > options.max_time_ns) {
      now_ = options.max_time_ns;
      break;
    }
    now_ = ev.time;
    result_.events_processed += 1;
    dispatch(ev);
  }
  result_.end_time_ns = now_;
  detect_deadlock();
  finalize_result();
  return std::move(result_);
}

}  // namespace tydi::sim
