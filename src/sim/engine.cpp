#include "src/sim/engine.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/sim/behavior.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/shard/runtime.hpp"
#include "src/support/text.hpp"

namespace tydi::sim {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;

Component::Component() = default;
Component::Component(Component&&) noexcept = default;
Component& Component::operator=(Component&&) noexcept = default;
Component::~Component() = default;

const ChannelStats* SimResult::bottleneck() const {
  const ChannelStats* best = nullptr;
  for (const ChannelStats& c : channels) {
    if (c.blocked_ns <= 0.0) continue;
    if (best == nullptr || c.blocked_ns > best->blocked_ns ||
        (c.blocked_ns == best->blocked_ns && c.name < best->name)) {
      best = &c;
    }
  }
  return best;
}

TraceEvent SimResult::trace_event(std::size_t i) const {
  TraceEvent ev;
  ev.time_ns = trace.time_ns(i);
  ev.channel_index = trace.channel(i);
  ev.packet = Packet{trace.value(i), trace.last(i)};
  const ChannelStats& c = channels[ev.channel_index];
  ev.channel = c.name;
  ev.is_top_input = c.top_input;
  ev.is_top_output = c.top_output;
  ev.top_port = c.top_port;
  return ev;
}

double SimResult::throughput(const std::string& top_port) const {
  auto it = top_outputs.find(top_port);
  if (it == top_outputs.end() || it->second.size() < 2) return 0.0;
  double span = it->second.back().first - it->second.front().first;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(it->second.size() - 1) / span;
}

std::string ShardForensics::summary() const {
  std::ostringstream out;
  out << "shard " << shard << ": window=";
  if (window_time_ns == kInfiniteTime) {
    out << "idle";
  } else {
    out << window_time_ns << "ns";
  }
  out << " last_event=" << last_event_time_ns << "ns"
      << " events=" << events_processed << " queue=" << queue_depth
      << " mailbox=" << mailbox_depth << " credits=" << credit_balance
      << " unacked=" << unacked
      << " pending_ack_batches=" << pending_ack_batches;
  return out.str();
}

support::Status SimResult::status() const {
  using support::Status;
  using support::StatusCode;
  if (aborted) {
    return Status::error(StatusCode::kAborted, "sim",
                         "run aborted (" + abort_reason + ") at " +
                             std::to_string(end_time_ns) + " ns");
  }
  if (deadlock) {
    std::string what = "simulation deadlocked";
    if (!deadlock_cycle.empty()) {
      what += ": " + support::join(deadlock_cycle, " -> ");
    }
    return Status::error(StatusCode::kDeadlock, "sim", std::move(what));
  }
  return Status::ok();
}

std::string SimResult::summary() const {
  std::ostringstream out;
  if (aborted) {
    out << "simulation ABORTED (" << abort_reason << ") at " << end_time_ns
        << " ns\n";
    for (const ShardForensics& f : shard_forensics) {
      out << "  " << f.summary() << "\n";
    }
    return out.str();
  }
  out << "simulation finished at " << end_time_ns << " ns";
  if (deadlock) {
    out << " [DEADLOCK]";
    if (!deadlock_cycle.empty()) {
      out << " cycle: " << support::join(deadlock_cycle, " -> ");
    }
  }
  out << "\n";
  for (const auto& [port, packets] : top_outputs) {
    out << "  top output '" << port << "': " << packets.size()
        << " packet(s)";
    double tp = throughput(port);
    if (tp > 0.0) {
      out << ", " << support::format_fixed(tp * 1000.0, 3)
          << " packets/us steady-state";
    }
    out << "\n";
  }
  if (const ChannelStats* b = bottleneck()) {
    out << "  bottleneck: " << b->name << " (blocked "
        << support::format_fixed(b->blocked_ns, 1) << " ns)\n";
  }
  return out.str();
}

std::string SimGraph::endpoint_name(const ChannelEndpoint& ep) const {
  const Streamlet* s =
      ep.component < 0 ? top_streamlet : components[ep.component].streamlet;
  std::string port = s != nullptr && ep.port >= 0 &&
                             static_cast<std::size_t>(ep.port) <
                                 s->ports.size()
                         ? s->ports[ep.port].name
                         : "<port " + std::to_string(ep.port) + ">";
  if (ep.component < 0) return "top." + port;
  return components[ep.component].path + "." + port;
}

std::string SimGraph::channel_display_name(const Channel& c) const {
  return endpoint_name(c.src) + " -> " + endpoint_name(c.dst);
}

namespace {

/// Index-based union-find with path halving; roots by arbitrary attach
/// (net groups are tiny).
class UnionFind {
 public:
  int make_node() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<int> parent_;
};

std::string join_path(const std::string& path, const std::string& name) {
  return path.empty() ? name : path + "." + name;
}

/// One endpoint of a connection net during flattening. Nodes are created
/// with their classification baked in, so channel construction after the
/// union pass is pure index work.
struct FlatNode {
  enum class Kind : std::uint8_t { kLeaf, kTop, kPass };
  Kind kind = Kind::kPass;
  std::int32_t component = -1;  ///< leaf component index (kLeaf)
  std::int32_t port = -1;       ///< port index (kLeaf/kTop)
  bool is_source = false;
  const Port* decl = nullptr;   ///< port declaration (clock domain)
  Symbol key = support::kNoSymbol;  ///< "path:port" for diagnostics
};

/// Transient flattening state: preassigned endpoint-ID table (node key
/// symbol -> dense node id) + union-find over those ids.
struct Flattener {
  UnionFind uf;
  std::vector<FlatNode> nodes;
  std::unordered_map<Symbol, int> node_ids;
  std::vector<std::pair<int, int>> links;

  int node_of(const std::string& path, const std::string& port_name,
              const FlatNode& info) {
    Symbol key = support::intern(path + ":" + port_name);
    auto it = node_ids.find(key);
    if (it != node_ids.end()) return it->second;
    int id = uf.make_node();
    nodes.push_back(info);
    nodes.back().key = key;
    node_ids.emplace(key, id);
    return id;
  }
};

}  // namespace

bool build_sim_graph(const Design& design, const SimOptions& options,
                     support::DiagnosticEngine& diags, SimGraph& graph) {
  graph.design = &design;
  graph.default_period_ns = options.default_period_ns;

  const Impl* top = design.find_impl(design.top());
  if (top == nullptr) {
    diags.error("sim", "design has no top implementation", {});
    return false;
  }
  if (top->external) {
    diags.error("sim", "top implementation must be structural", top->loc);
    return false;
  }
  graph.top_streamlet = design.streamlet_of(*top);

  Flattener flat;

  // Recursive flatten: leaf instances become components; every connection
  // endpoint becomes a dense node id in the endpoint table.
  auto flatten_impl = [&](auto&& self, const Impl& impl,
                          const std::string& path, bool is_top) -> void {
    // Instance name -> leaf component index (-1 = structural child).
    std::unordered_map<Symbol, std::int32_t> local;
    for (const Instance& inst : impl.instances) {
      const Impl* child = design.find_impl(inst.impl_name);
      if (child == nullptr) continue;
      std::string child_path = join_path(path, inst.name);
      if (child->external) {
        std::int32_t index =
            static_cast<std::int32_t>(graph.components.size());
        Component comp;
        comp.path = child_path;
        comp.impl = child;
        comp.streamlet = design.streamlet_of(*child);
        std::size_t nports =
            comp.streamlet != nullptr ? comp.streamlet->ports.size() : 0;
        comp.inbox.resize(nports);
        comp.out_channel.assign(nports, -1);
        comp.in_channel.assign(nports, -1);
        graph.components.push_back(std::move(comp));
        local.emplace(support::intern(inst.name), index);
      } else {
        local.emplace(support::intern(inst.name), -1);
        self(self, *child, child_path, false);
      }
    }
    for (const Connection& c : impl.connections) {
      auto node_of_endpoint = [&](const Endpoint& ep) -> int {
        if (ep.instance.empty()) {
          FlatNode info;
          if (is_top && graph.top_streamlet != nullptr) {
            int port =
                graph.top_streamlet->port_index(support::intern(ep.port));
            if (port >= 0) {
              const Port& decl = graph.top_streamlet->ports[port];
              info.kind = FlatNode::Kind::kTop;
              info.port = port;
              info.decl = &decl;
              // A top *input* drives data into the design: source side.
              info.is_source = (decl.dir == lang::PortDir::kIn);
            }
          }
          return flat.node_of(path, ep.port, info);
        }
        std::string child_path = join_path(path, ep.instance);
        FlatNode info;
        auto lit = local.find(support::intern(ep.instance));
        if (lit != local.end() && lit->second >= 0) {
          const Component& comp = graph.components[lit->second];
          int port = comp.streamlet != nullptr
                         ? comp.streamlet->port_index(support::intern(ep.port))
                         : -1;
          if (port >= 0) {
            const Port& decl = comp.streamlet->ports[port];
            info.kind = FlatNode::Kind::kLeaf;
            info.component = lit->second;
            info.port = port;
            info.decl = &decl;
            info.is_source = (decl.dir == lang::PortDir::kOut);
          }
        }
        return flat.node_of(child_path, ep.port, info);
      };
      flat.links.emplace_back(node_of_endpoint(c.src),
                              node_of_endpoint(c.dst));
    }
  };
  flatten_impl(flatten_impl, *top, "", true);

  for (const auto& [a, b] : flat.links) flat.uf.unite(a, b);

  // Group nodes by net root in node-id order (deterministic channel order),
  // then collapse each net to one channel.
  std::unordered_map<int, std::vector<int>> sets;
  std::vector<int> roots;
  for (int id = 0; id < static_cast<int>(flat.nodes.size()); ++id) {
    int root = flat.uf.find(id);
    auto [it, inserted] = sets.try_emplace(root);
    if (inserted) roots.push_back(root);
    it->second.push_back(id);
  }

  std::size_t top_ports =
      graph.top_streamlet != nullptr ? graph.top_streamlet->ports.size() : 0;
  graph.top_src_channel.assign(top_ports, -1);
  graph.top_out_packets.assign(top_ports, {});

  for (int root : roots) {
    const std::vector<int>& members = sets[root];
    const FlatNode* source = nullptr;
    const FlatNode* sink = nullptr;
    std::size_t leaves = 0;
    for (int id : members) {
      const FlatNode& n = flat.nodes[id];
      if (n.kind == FlatNode::Kind::kPass) continue;
      ++leaves;
      if (n.is_source) {
        source = &n;
      } else {
        sink = &n;
      }
    }
    if (leaves != 2 || source == nullptr || sink == nullptr) {
      diags.warning("sim",
                    "connection net '" +
                        support::symbol_name(flat.nodes[root].key) +
                        "' does not resolve to one source and one sink (" +
                        std::to_string(leaves) + " leaf endpoint(s)); "
                        "skipped",
                    {});
      continue;
    }
    Channel c;
    c.src = ChannelEndpoint{source->component, source->port};
    c.dst = ChannelEndpoint{sink->component, sink->port};
    const std::string& domain =
        source->decl != nullptr ? source->decl->clock_domain : "default";
    auto period_it = options.clock_period_ns.find(domain);
    c.latency_ns = period_it != options.clock_period_ns.end()
                       ? period_it->second
                       : options.default_period_ns;
    std::int32_t index = static_cast<std::int32_t>(graph.channels.size());
    if (c.src.component >= 0) {
      graph.components[c.src.component].out_channel[c.src.port] = index;
    } else {
      graph.top_src_channel[c.src.port] = index;
    }
    if (c.dst.component >= 0) {
      graph.components[c.dst.component].in_channel[c.dst.port] = index;
    }
    graph.channels.push_back(std::move(c));
  }

  // Attach behaviours and resolve per-component clock periods once.
  for (std::size_t i = 0; i < graph.components.size(); ++i) {
    Component& comp = graph.components[i];
    comp.clock_period_ns = options.default_period_ns;
    if (comp.streamlet == nullptr) continue;
    if (!comp.streamlet->ports.empty()) {
      auto it = options.clock_period_ns.find(
          comp.streamlet->ports.front().clock_domain);
      if (it != options.clock_period_ns.end()) {
        comp.clock_period_ns = it->second;
      }
    }
    std::map<std::string, double> params;
    auto pit = options.model_params.find(comp.path);
    if (pit != options.model_params.end()) params = pit->second;
    comp.behavior = make_behavior(*comp.impl, *comp.streamlet, params, diags);
  }

  // Stimulus cursor table (global indices: options order).
  for (const Stimulus& stim : options.stimuli) {
    int port = graph.top_streamlet != nullptr
                   ? graph.top_streamlet->port_index(support::intern(stim.port))
                   : -1;
    std::int32_t ch = port >= 0 ? graph.top_src_channel[port] : -1;
    if (ch < 0) {
      diags.warning("sim",
                    "stimulus targets unknown top input '" + stim.port + "'",
                    {});
      continue;
    }
    if (stim.packets.empty()) continue;
    graph.stimulus_cursors.push_back(StimulusCursor{ch, &stim, 0});
  }

  graph.component_shard.assign(graph.components.size(), 0);
  graph.shard_count = 1;
  return true;
}

std::vector<Stimulus> generic_stimuli(const Design& design, int packets,
                                      double interval_ns) {
  std::vector<Stimulus> stimuli;
  const Impl* top = design.find_impl(design.top());
  const Streamlet* s = top != nullptr ? design.streamlet_of(*top) : nullptr;
  if (s == nullptr) return stimuli;
  for (const Port& port : s->ports) {
    if (port.dir != lang::PortDir::kIn) continue;
    Stimulus stim;
    stim.port = port.name;
    stim.packets.reserve(static_cast<std::size_t>(packets));
    for (int i = 0; i < packets; ++i) {
      stim.packets.emplace_back(interval_ns * i,
                                Packet{i, i == packets - 1});
    }
    stimuli.push_back(std::move(stim));
  }
  return stimuli;
}

Engine::Engine(const Design& design, support::DiagnosticEngine& diags)
    : design_(design), diags_(diags) {}

SimResult Engine::run(const SimOptions& options) {
  SimGraph graph;
  if (!build_sim_graph(design_, options, diags_, graph)) return SimResult{};

  // Always route through the sharded driver: its single-shard path is the
  // plain single-queue loop, and keeping one entry point means the
  // watchdog and the event/wall-clock/RSS budgets guard every run shape.
  return shard::run_sharded(graph, options, diags_);
}

}  // namespace tydi::sim
