#include "src/sim/kernel.hpp"

#include <algorithm>
#include <sstream>

#include "src/sim/behavior.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/guard.hpp"

namespace tydi::sim {

Kernel::Kernel(SimGraph& graph, const SimOptions& options,
               support::DiagnosticEngine& diags, int shard,
               CrossRouter* router)
    : graph_(graph),
      diags_(diags),
      shard_(shard),
      router_(router),
      trace_enabled_(options.record_trace),
      defer_warnings_(graph.shard_count > 1) {
  for (std::size_t i = 0; i < graph_.channels.size(); ++i) {
    const Channel& c = graph_.channels[i];
    if (c.cross_shard() && c.src_shard == shard_) {
      cross_src_channels_.push_back(static_cast<std::int32_t>(i));
    }
    if (c.cross_shard() && c.dst_shard == shard_) {
      cross_dst_channels_.push_back(static_cast<std::int32_t>(i));
    }
  }
  component_events_.assign(graph_.components.size(), 0);
}

void Kernel::push_event(double delay_ns, EventKind kind, std::int32_t a,
                        std::int32_t b) {
  queue_.push(Event{now_ + delay_ns, a, b, kind});
}

void Kernel::schedule_timer(double delay_ns, int component,
                            std::int32_t token) {
  push_event(delay_ns, EventKind::kTimer, component, token);
}

void Kernel::schedule_poke(double delay_ns, int component) {
  push_event(delay_ns, EventKind::kPoke, component, -1);
}

void Kernel::seed() {
  for (std::size_t i = 0; i < graph_.stimulus_cursors.size(); ++i) {
    const StimulusCursor& cursor = graph_.stimulus_cursors[i];
    if (cursor.channel < 0 ||
        graph_.channels[cursor.channel].src_shard != shard_) {
      continue;
    }
    queue_.push(Event{cursor.stimulus->packets.front().first,
                      static_cast<std::int32_t>(i), -1, EventKind::kStimulus});
  }
  for (std::size_t i = 0; i < graph_.components.size(); ++i) {
    if (graph_.component_shard[i] != shard_) continue;
    Component& comp = graph_.components[i];
    if (comp.behavior) comp.behavior->on_start(*this, static_cast<int>(i));
  }
}

void Kernel::process_events(double limit, bool inclusive, double max_time_ns) {
  // Guard sync granularity: one relaxed fetch_add + one acquire load every
  // 256 events keeps the stop latency in the microseconds without touching
  // shared cache lines per event.
  constexpr std::uint64_t kGuardStride = 256;
  std::uint64_t unsynced = 0;
  auto sync_guard = [&] {
    if (guard_ == nullptr || unsynced == 0) return false;
    std::uint64_t total = guard_->add_events(unsynced);
    unsynced = 0;
    if (max_events_ != 0 && total >= max_events_) {
      guard_->request_stop(StopCause::kMaxEvents);
    }
    return guard_->stop_requested();
  };
  while (!queue_.empty()) {
    const Event& head = queue_.top();
    if (head.time > max_time_ns) {
      capped_ = true;
      break;
    }
    if (inclusive ? head.time > limit : head.time >= limit) break;
    Event ev = head;
    queue_.pop();
    now_ = ev.time;
    if (ev.kind != EventKind::kRemoteAck) {
      events_processed_ += 1;
      if (++unsynced >= kGuardStride && sync_guard()) break;
    }
    dispatch(ev);
  }
  sync_guard();
}

void Kernel::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kDeliver:
      deliver(static_cast<std::size_t>(ev.a));
      break;
    case EventKind::kTimer: {
      component_events_[ev.a] += 1;
      Component& comp = graph_.components[ev.a];
      if (comp.behavior) comp.behavior->on_timer(*this, ev.a, ev.b);
      break;
    }
    case EventKind::kPoke:
      component_events_[ev.a] += 1;
      poke(ev.a);
      break;
    case EventKind::kStimulus: {
      StimulusCursor& cursor = graph_.stimulus_cursors[ev.a];
      send_on_channel(static_cast<std::size_t>(cursor.channel),
                      cursor.stimulus->packets[cursor.next].second);
      cursor.next += 1;
      if (cursor.next < cursor.stimulus->packets.size()) {
        // Packets enter the channel in list order; out-of-order timestamps
        // clamp to "now".
        double at = cursor.stimulus->packets[cursor.next].first;
        queue_.push(Event{at > now_ ? at : now_, ev.a, -1,
                          EventKind::kStimulus});
      }
      break;
    }
    case EventKind::kRemoteAck:
      if (graph_.channels[ev.a].credit_mode()) {
        complete_remote_ack_batch(static_cast<std::size_t>(ev.a), ev.b);
      } else {
        complete_remote_ack(static_cast<std::size_t>(ev.a));
      }
      break;
  }
}

std::string Kernel::warn_message(std::uint64_t key) const {
  auto site = static_cast<WarnSite>(key >> 56);
  auto a = static_cast<std::int32_t>((key >> 24) & 0xFFFFFFFFu) - 1;
  auto b = static_cast<std::int32_t>(key & 0xFFFFFFu) - 1;
  switch (site) {
    case WarnSite::kSendUnconnected:
      return "send on unconnected port '" +
             graph_.endpoint_name(ChannelEndpoint{a, b}) + "'";
    case WarnSite::kAckUnconnected:
      return "ack on unconnected port '" +
             graph_.endpoint_name(ChannelEndpoint{a, b}) + "'";
    case WarnSite::kAckEmptyChannel:
      return "ack on empty channel '" +
             graph_.channel_display_name(graph_.channels[a]) + "'";
  }
  return {};
}

std::string Kernel::warn_first_message(std::uint64_t key) const {
  std::string what = warn_message(key);
  if (static_cast<WarnSite>(key >> 56) == WarnSite::kSendUnconnected) {
    what += "; packet dropped (repeats counted)";
  } else {
    what += " (repeats counted)";
  }
  return what;
}

void Kernel::warn_once(WarnSite site, std::int32_t a, std::int32_t b) {
  std::uint64_t key = (static_cast<std::uint64_t>(site) << 56) |
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           a + 1))
                       << 24) |
                      (static_cast<std::uint32_t>(b + 1) & 0xFFFFFFu);
  if (warn_counts_[key]++ != 0) return;
  if (defer_warnings_) {
    deferred_warnings_.push_back(WarnRecord{key});
    return;
  }
  diags_.warning("sim", warn_first_message(key), {});
}

void Kernel::send(int component, int port, Packet packet) {
  std::int32_t ch = -1;
  if (component >= 0) {
    const Component& comp = graph_.components[component];
    if (port >= 0 && static_cast<std::size_t>(port) < comp.out_channel.size()) {
      ch = comp.out_channel[port];
    }
  } else if (port >= 0 &&
             static_cast<std::size_t>(port) < graph_.top_src_channel.size()) {
    ch = graph_.top_src_channel[port];
  }
  if (ch < 0) {
    warn_once(WarnSite::kSendUnconnected, component, port);
    return;
  }
  send_on_channel(static_cast<std::size_t>(ch), packet);
}

void Kernel::send_on_channel(std::size_t channel_index, Packet packet) {
  Channel& c = graph_.channels[channel_index];
  if (c.credit_mode()) {
    // Credit-mode cut channel (source side): consume a credit per launch;
    // exhausted credits queue in the outbox until an ack batch returns.
    if (c.credits > 0 && c.outbox.empty()) {
      c.credits -= 1;
      router_->post_deliver(c.dst_shard, now_ + c.latency_ns,
                            static_cast<std::int32_t>(channel_index), packet);
    } else {
      c.outbox.emplace_back(now_, packet);
    }
    return;
  }
  if (!c.occupied && c.outbox.empty()) {
    start_channel_transfer(channel_index, packet);
  } else {
    c.outbox.emplace_back(now_, packet);
  }
}

bool Kernel::can_send(int component, int port) const {
  std::int32_t ch = -1;
  if (component >= 0) {
    const Component& comp = graph_.components[component];
    if (port >= 0 && static_cast<std::size_t>(port) < comp.out_channel.size()) {
      ch = comp.out_channel[port];
    }
  } else if (port >= 0 &&
             static_cast<std::size_t>(port) < graph_.top_src_channel.size()) {
    ch = graph_.top_src_channel[port];
  }
  if (ch < 0) return false;
  const Channel& c = graph_.channels[ch];
  if (c.credit_mode()) return c.credits > 0 && c.outbox.empty();
  return !c.occupied && c.outbox.empty();
}

void Kernel::start_channel_transfer(std::size_t channel_index, Packet packet) {
  Channel& c = graph_.channels[channel_index];
  c.occupied = true;
  c.in_flight = packet;
  c.deliver_time_ns = now_ + c.latency_ns;
  if (c.dst_shard != shard_) {
    router_->post_deliver(c.dst_shard, c.deliver_time_ns,
                          static_cast<std::int32_t>(channel_index), packet);
  } else {
    push_event(c.latency_ns, EventKind::kDeliver,
               static_cast<std::int32_t>(channel_index), -1);
  }
}

void Kernel::notify_output_acked(ChannelEndpoint src) {
  if (src.component < 0) return;
  Component& comp = graph_.components[src.component];
  if (comp.behavior) {
    comp.behavior->on_output_acked(*this, src.component, src.port);
  }
}

void Kernel::drain_outbox(std::size_t channel_index) {
  // Note: re-check `occupied` — a behaviour notified just before this call
  // may have re-filled the register (the pre-refactor code raced here and
  // could overwrite an in-flight packet).
  Channel& c = graph_.channels[channel_index];
  if (c.credit_mode()) {
    // Credit-mode launch: one queued packet per available credit (a batch
    // of n acks releases up to n packets through repeated drains).
    while (c.credits > 0 && !c.outbox.empty()) {
      QueuedPacket queued = c.outbox.front();
      c.outbox.pop_front();
      c.stats.blocked_ns += now_ - queued.enqueue_ns;
      c.credits -= 1;
      router_->post_deliver(c.dst_shard, now_ + c.latency_ns,
                            static_cast<std::int32_t>(channel_index),
                            queued.packet);
      ChannelEndpoint src = c.src;
      if (src.component >= 0) {
        Component& comp = graph_.components[src.component];
        if (comp.behavior) {
          comp.behavior->on_send_accepted(*this, src.component, src.port);
        }
      }
    }
    return;
  }
  if (c.occupied || c.outbox.empty()) return;
  QueuedPacket queued = c.outbox.front();
  c.outbox.pop_front();
  c.stats.blocked_ns += now_ - queued.enqueue_ns;
  start_channel_transfer(channel_index, queued.packet);
  ChannelEndpoint src = graph_.channels[channel_index].src;
  if (src.component >= 0) {
    Component& comp = graph_.components[src.component];
    if (comp.behavior) {
      comp.behavior->on_send_accepted(*this, src.component, src.port);
    }
  }
}

void Kernel::deliver(std::size_t channel_index) {
  Channel& c = graph_.channels[channel_index];
  c.stats.packets += 1;
  if (c.stats.packets == 1) c.stats.first_delivery_ns = now_;
  c.stats.last_delivery_ns = now_;

  // Credit-mode cut channels carry the payload in the sink-owned arrivals
  // ring (several packets can be in flight); everything else reads the
  // one-deep register.
  Packet packet;
  if (c.credit_mode()) {
    packet = c.arrivals.front();
    c.arrivals.pop_front();
  } else {
    packet = c.in_flight;
  }

  if (trace_enabled_) {
    trace_.append(now_, static_cast<std::int32_t>(channel_index),
                  packet.value, packet.last);
  }

  if (c.dst.component < 0) {
    // Environment observer: always ready, records and acknowledges.
    // Boundary channels are never cut, so this path is always shard-local.
    graph_.top_out_packets[c.dst.port].emplace_back(now_, packet);
    c.occupied = false;
    notify_output_acked(c.src);
    drain_outbox(channel_index);
    return;
  }

  component_events_[c.dst.component] += 1;
  if (c.credit_mode()) {
    c.unacked += 1;
  } else if (c.cross_shard()) {
    c.delivered_pending = true;
  }
  Component& dst = graph_.components[c.dst.component];
  dst.inbox[c.dst.port].push_back(packet);
  if (dst.behavior) {
    dst.behavior->on_receive(*this, c.dst.component, c.dst.port);
  }
}

void Kernel::ack(int component, int port) {
  Component& comp = graph_.components[component];
  std::int32_t ch =
      port >= 0 && static_cast<std::size_t>(port) < comp.in_channel.size()
          ? comp.in_channel[port]
          : -1;
  if (ch < 0) {
    warn_once(WarnSite::kAckUnconnected, component, port);
    return;
  }
  std::size_t channel_index = static_cast<std::size_t>(ch);
  Channel& c = graph_.channels[channel_index];

  if (c.credit_mode()) {
    // Credit-mode cut channel, sink side: consume locally and batch the
    // ack; the batch flushes to the source shard at the window boundary
    // (Kernel::flush_ack_batches) instead of per timestamp.
    if (c.unacked == 0) {
      warn_once(WarnSite::kAckEmptyChannel, ch, -1);
      return;
    }
    auto& box = comp.inbox[port];
    if (!box.empty()) box.pop_front();
    c.unacked -= 1;
    c.ack_batch += 1;
    return;
  }

  if (c.cross_shard()) {
    // Sink side of a cut channel: consume locally, then route the ack to
    // the source shard, which frees the register at this same timestamp
    // (the runtime's same-time fixpoint round).
    //
    // Acking before anything was delivered is warned-and-dropped here. The
    // single-queue engine tolerates that protocol violation differently
    // (it frees a register whose packet is still in flight); mirroring it
    // would let acks precede the channel's delivery time and unsound the
    // runtime's ack-risk bound, so the sharded engine refuses instead —
    // well-formed behaviours never hit this path.
    if (!c.delivered_pending) {
      warn_once(WarnSite::kAckEmptyChannel, ch, -1);
      return;
    }
    auto& box = comp.inbox[port];
    if (!box.empty()) box.pop_front();
    c.delivered_pending = false;
    acks_posted_ += 1;
    router_->post_ack(c.src_shard, now_, ch, 1);
    return;
  }

  if (!c.occupied) {
    warn_once(WarnSite::kAckEmptyChannel, ch, -1);
    return;
  }
  // Consume the packet from the sink inbox.
  auto& box = comp.inbox[port];
  if (!box.empty()) box.pop_front();

  c.occupied = false;
  notify_output_acked(c.src);
  drain_outbox(channel_index);
}

void Kernel::complete_remote_ack(std::size_t channel_index) {
  Channel& c = graph_.channels[channel_index];
  if (!c.occupied) return;  // protocol violation; tolerate
  c.occupied = false;
  notify_output_acked(c.src);
  drain_outbox(channel_index);
}

void Kernel::complete_remote_ack_batch(std::size_t channel_index,
                                       std::int32_t count) {
  Channel& c = graph_.channels[channel_index];
  for (std::int32_t i = 0; i < count; ++i) {
    c.credits += 1;
    notify_output_acked(c.src);
    drain_outbox(channel_index);
  }
}

void Kernel::flush_ack_batches(double time, bool force) {
  for (std::int32_t ch : cross_dst_channels_) {
    Channel& c = graph_.channels[ch];
    if (c.ack_batch == 0) continue;
    if (fault_ != nullptr) {
      // The hang fault swallows batches unconditionally (the watchdog's
      // negative control); the probabilistic withhold defers this channel's
      // flush to a later round unless the quiescence check forces it.
      if (fault_->plan().withhold_acks_forever) continue;
      if (!force && fault_->fires(FaultInjector::Site::kWithholdCredit)) {
        continue;
      }
    }
    router_->post_ack(c.src_shard, time, ch, c.ack_batch);
    c.ack_batch = 0;
  }
}

std::int64_t Kernel::pending_ack_batches() const {
  std::int64_t total = 0;
  for (std::int32_t ch : cross_dst_channels_) {
    total += graph_.channels[ch].ack_batch;
  }
  return total;
}

std::int64_t Kernel::credit_balance() const {
  std::int64_t total = 0;
  for (std::int32_t ch : cross_src_channels_) {
    const Channel& c = graph_.channels[ch];
    if (c.credit_mode()) total += c.credits;
  }
  return total;
}

std::int64_t Kernel::unacked_total() const {
  std::int64_t total = 0;
  for (std::int32_t ch : cross_dst_channels_) {
    const Channel& c = graph_.channels[ch];
    if (c.credit_mode()) total += c.unacked;
  }
  return total;
}

double Kernel::ack_risk_bound() const {
  double bound = kInfiniteTime;
  for (std::int32_t ch : cross_src_channels_) {
    const Channel& c = graph_.channels[ch];
    if (c.occupied && c.deliver_time_ns < bound) bound = c.deliver_time_ns;
  }
  return bound;
}

void Kernel::poke(int component) {
  Component& comp = graph_.components[component];
  if (comp.behavior) comp.behavior->on_receive(*this, component, -1);
}

void Kernel::record_state_transition(int component, Symbol variable,
                                     Symbol from, Symbol to) {
  transitions_.push_back(
      PendingTransition{now_, component, variable, from, to});
}

namespace {

/// Deadlock analysis over the quiesced graph (identical for any shard
/// count: by the time this runs, every queue and mailbox is empty).
void detect_deadlock(SimGraph& graph, SimResult& result) {
  bool anything_blocked = false;
  for (const Channel& c : graph.channels) {
    if (c.occupied || !c.outbox.empty()) {
      anything_blocked = true;
      std::ostringstream why;
      why << "channel " << graph.channel_display_name(c) << ": ";
      if (c.occupied) why << "packet not acknowledged by sink";
      if (!c.outbox.empty()) {
        if (c.occupied) why << ", ";
        why << c.outbox.size() << " packet(s) blocked in outbox";
      }
      result.blocked_report.push_back(why.str());
    }
  }
  for (const Component& comp : graph.components) {
    for (std::size_t port = 0; port < comp.inbox.size(); ++port) {
      if (!comp.inbox[port].empty()) {
        anything_blocked = true;
        std::string port_name =
            comp.streamlet != nullptr ? comp.streamlet->ports[port].name
                                      : std::to_string(port);
        result.blocked_report.push_back(
            "component " + comp.path + ": " +
            std::to_string(comp.inbox[port].size()) +
            " unconsumed packet(s) on port '" + port_name + "'");
      }
    }
  }
  if (!anything_blocked) return;
  result.deadlock = true;

  // Wait-for graph: X -> Y means "X cannot make progress until Y acts".
  //  - a source whose outbox is blocked waits on the sink of that channel;
  //  - a component waiting for a packet on port p waits on the source
  //    feeding p.
  std::vector<std::vector<int>> edges(graph.components.size());
  for (const Channel& c : graph.channels) {
    if (!c.outbox.empty() && c.src.component >= 0 && c.dst.component >= 0) {
      edges[c.src.component].push_back(c.dst.component);
    }
  }
  for (std::size_t i = 0; i < graph.components.size(); ++i) {
    const Component& comp = graph.components[i];
    if (!comp.behavior) continue;
    for (int port : comp.behavior->waiting_ports(comp)) {
      std::int32_t ch =
          port >= 0 && static_cast<std::size_t>(port) < comp.in_channel.size()
              ? comp.in_channel[port]
              : -1;
      if (ch < 0) continue;
      const Channel& c = graph.channels[ch];
      if (c.src.component >= 0) {
        edges[i].push_back(c.src.component);
      }
    }
  }

  // Iterative DFS cycle search in component-index order (deterministic).
  std::vector<std::uint8_t> color(graph.components.size(), 0);  // 0w 1g 2b
  std::vector<int> stack;
  auto dfs = [&](auto&& self, int node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (int next : edges[node]) {
      if (color[next] == 1) {
        auto it = std::find(stack.begin(), stack.end(), next);
        for (; it != stack.end(); ++it) {
          result.deadlock_cycle.push_back(graph.components[*it].path);
        }
        return true;
      }
      if (color[next] == 0 && self(self, next)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (std::size_t i = 0; i < graph.components.size(); ++i) {
    if (!edges[i].empty() && color[i] == 0 && dfs(dfs, static_cast<int>(i))) {
      break;
    }
  }
}

}  // namespace

SimResult merge_results(SimGraph& graph, const std::vector<Kernel*>& kernels,
                        double end_time_ns,
                        support::DiagnosticEngine& diags, bool aborted) {
  SimResult result;
  result.end_time_ns = end_time_ns;
  result.component_events.assign(graph.components.size(), 0);
  for (const Kernel* k : kernels) {
    result.events_processed += k->events_processed();
    const std::vector<std::uint64_t>& per_comp = k->component_events();
    for (std::size_t i = 0; i < per_comp.size(); ++i) {
      result.component_events[i] += per_comp[i];
    }
  }

  // Aborted runs are not quiescent: the wait-for analysis would mistake
  // in-flight work for blockage, so the abort forensics replace it.
  if (!aborted) detect_deadlock(graph, result);

  // Materialize the name strings (and per-channel boundary info) the hot
  // path never built. These are per-channel, not per-event: the columnar
  // trace only stores the channel index.
  for (Channel& c : graph.channels) {
    c.stats.name = graph.channel_display_name(c);
    c.stats.top_input = c.src.component < 0;
    c.stats.top_output = c.dst.component < 0;
    if (c.stats.top_input) {
      c.stats.top_port = graph.top_streamlet->ports[c.src.port].name;
    } else if (c.stats.top_output) {
      c.stats.top_port = graph.top_streamlet->ports[c.dst.port].name;
    }
    result.channels.push_back(c.stats);
  }

  // Trace: the canonical order is (time, channel), stable — a zero-latency
  // channel (clock period 0) can deliver more than once per timestamp, and
  // those duplicates keep their shard-local delivery order. A single
  // already-sorted buffer (the common case) is stolen wholesale; otherwise
  // the merge permutes indices over the columns, which is equivalent to a
  // stable sort of the shard-order concatenation.
  if (kernels.size() == 1 && kernels.front()->trace().canonically_sorted()) {
    result.trace = std::move(kernels.front()->trace());
  } else {
    struct TraceRef {
      double time_ns;
      std::int32_t channel;
      std::uint32_t kernel;
      std::uint32_t index;
    };
    std::size_t total = 0;
    for (Kernel* k : kernels) total += k->trace().size();
    std::vector<TraceRef> refs;
    refs.reserve(total);
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const TraceBuffer& t = kernels[ki]->trace();
      for (std::size_t i = 0; i < t.size(); ++i) {
        refs.push_back(TraceRef{t.time_ns(i), t.channel(i),
                                static_cast<std::uint32_t>(ki),
                                static_cast<std::uint32_t>(i)});
      }
    }
    std::stable_sort(refs.begin(), refs.end(),
                     [](const TraceRef& a, const TraceRef& b) {
                       if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                       return a.channel < b.channel;
                     });
    for (const TraceRef& ref : refs) {
      const TraceBuffer& t = kernels[ref.kernel]->trace();
      result.trace.append(ref.time_ns, ref.channel, t.value(ref.index),
                          t.last(ref.index));
    }
  }

  for (std::size_t port = 0; port < graph.top_out_packets.size(); ++port) {
    if (graph.top_out_packets[port].empty()) continue;
    result.top_outputs[graph.top_streamlet->ports[port].name] =
        std::move(graph.top_out_packets[port]);
  }

  // State transitions: canonical order is (time, component), with a
  // component's own transitions kept in its execution order (a component
  // runs on exactly one shard, so the stable sort preserves it).
  std::vector<Kernel::PendingTransition> pending;
  for (const Kernel* k : kernels) {
    pending.insert(pending.end(), k->transitions().begin(),
                   k->transitions().end());
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Kernel::PendingTransition& a,
                      const Kernel::PendingTransition& b) {
                     if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                     return a.component < b.component;
                   });
  for (const Kernel::PendingTransition& t : pending) {
    result.state_transitions.push_back(StateTransition{
        t.time_ns, graph.components[t.component].path,
        support::symbol_name(t.variable), support::symbol_name(t.from),
        support::symbol_name(t.to)});
  }

  // Warnings. Sharded kernels deferred their first-hit warnings to keep the
  // diagnostic engine off worker threads; emit them now in shard order.
  if (graph.shard_count > 1) {
    for (Kernel* k : kernels) {
      for (const Kernel::WarnRecord& rec : k->deferred_warnings()) {
        diags.warning("sim", k->warn_first_message(rec.key), {});
      }
    }
  }
  // Summarize deduplicated warning sites across shards (sorted by key so
  // the report order is deterministic).
  std::map<std::uint64_t, std::uint64_t> totals;
  for (const Kernel* k : kernels) {
    for (const auto& [key, count] : k->warn_counts()) totals[key] += count;
  }
  for (const auto& [key, count] : totals) {
    if (count <= 1) continue;
    diags.note("sim",
               kernels.front()->warn_message(key) + " occurred " +
                   std::to_string(count) + " time(s) in total",
               {});
  }
  return result;
}

}  // namespace tydi::sim
