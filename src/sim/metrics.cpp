#include "src/sim/metrics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/support/text.hpp"

namespace tydi::sim {

std::vector<ChannelStats> rank_bottlenecks(const SimResult& result) {
  std::vector<ChannelStats> ranked = result.channels;
  // Name tie-break at equal blocked time: the ranking must be identical
  // across runs regardless of channel construction order.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ChannelStats& a, const ChannelStats& b) {
                     if (a.blocked_ns != b.blocked_ns) {
                       return a.blocked_ns > b.blocked_ns;
                     }
                     return a.name < b.name;
                   });
  return ranked;
}

std::vector<ChannelUtilization> channel_utilization(
    const SimResult& result, double clock_period_ns) {
  std::vector<ChannelUtilization> out;
  for (const ChannelStats& c : result.channels) {
    ChannelUtilization u;
    u.name = c.name;
    u.packets = c.packets;
    u.blocked_ns = c.blocked_ns;
    double window = c.last_delivery_ns - c.first_delivery_ns;
    if (c.packets > 1 && window > 0.0) {
      double busy = static_cast<double>(c.packets - 1) * clock_period_ns;
      u.utilization = std::min(1.0, busy / window);
    } else if (c.packets == 1) {
      u.utilization = 0.0;
    }
    out.push_back(std::move(u));
  }
  return out;
}

std::string render_bottleneck_report(const SimResult& result,
                                     std::size_t limit) {
  support::TextTable table;
  table.header({"channel", "packets", "blocked_ns"});
  std::size_t shown = 0;
  for (const ChannelStats& c : rank_bottlenecks(result)) {
    if (shown++ >= limit) break;
    table.row({c.name, std::to_string(c.packets),
               support::format_fixed(c.blocked_ns, 1)});
  }
  std::ostringstream out;
  out << "Bottleneck report (worst blocked channels first)\n"
      << table.render();
  if (result.deadlock) {
    out << "DEADLOCK detected";
    if (!result.deadlock_cycle.empty()) {
      out << "; wait-for cycle: "
          << support::join(result.deadlock_cycle, " -> ");
    }
    out << "\n";
    for (const std::string& line : result.blocked_report) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

std::string render_state_table(const SimResult& result) {
  std::map<std::string, std::vector<const StateTransition*>> by_component;
  for (const StateTransition& t : result.state_transitions) {
    by_component[t.component].push_back(&t);
  }
  std::ostringstream out;
  out << "State-transition table\n";
  for (const auto& [component, transitions] : by_component) {
    out << "  " << component << ":\n";
    for (const StateTransition* t : transitions) {
      out << "    " << support::format_fixed(t->time_ns, 1) << " ns: "
          << t->variable << ": \"" << t->from << "\" -> \"" << t->to
          << "\"\n";
    }
  }
  return out.str();
}

}  // namespace tydi::sim
