#include "src/sim/metrics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/support/text.hpp"

namespace tydi::sim {

std::vector<ChannelStats> rank_bottlenecks(const SimResult& result) {
  std::vector<ChannelStats> ranked = result.channels;
  // Name tie-break at equal blocked time: the ranking must be identical
  // across runs regardless of channel construction order.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ChannelStats& a, const ChannelStats& b) {
                     if (a.blocked_ns != b.blocked_ns) {
                       return a.blocked_ns > b.blocked_ns;
                     }
                     return a.name < b.name;
                   });
  return ranked;
}

std::vector<ChannelUtilization> channel_utilization(
    const SimResult& result, double clock_period_ns) {
  std::vector<ChannelUtilization> out;
  for (const ChannelStats& c : result.channels) {
    ChannelUtilization u;
    u.name = c.name;
    u.packets = c.packets;
    u.blocked_ns = c.blocked_ns;
    double window = c.last_delivery_ns - c.first_delivery_ns;
    if (c.packets > 1 && window > 0.0) {
      double busy = static_cast<double>(c.packets - 1) * clock_period_ns;
      u.utilization = std::min(1.0, busy / window);
    } else if (c.packets == 1) {
      u.utilization = 0.0;
    }
    out.push_back(std::move(u));
  }
  return out;
}

std::string render_bottleneck_report(const SimResult& result,
                                     std::size_t limit) {
  support::TextTable table;
  table.header({"channel", "packets", "blocked_ns"});
  std::size_t shown = 0;
  for (const ChannelStats& c : rank_bottlenecks(result)) {
    if (shown++ >= limit) break;
    table.row({c.name, std::to_string(c.packets),
               support::format_fixed(c.blocked_ns, 1)});
  }
  std::ostringstream out;
  out << "Bottleneck report (worst blocked channels first)\n"
      << table.render();
  if (result.deadlock) {
    out << "DEADLOCK detected";
    if (!result.deadlock_cycle.empty()) {
      out << "; wait-for cycle: "
          << support::join(result.deadlock_cycle, " -> ");
    }
    out << "\n";
    for (const std::string& line : result.blocked_report) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

std::string render_state_table(const SimResult& result) {
  std::map<std::string, std::vector<const StateTransition*>> by_component;
  for (const StateTransition& t : result.state_transitions) {
    by_component[t.component].push_back(&t);
  }
  std::ostringstream out;
  out << "State-transition table\n";
  for (const auto& [component, transitions] : by_component) {
    out << "  " << component << ":\n";
    for (const StateTransition* t : transitions) {
      out << "    " << support::format_fixed(t->time_ns, 1) << " ns: "
          << t->variable << ": \"" << t->from << "\" -> \"" << t->to
          << "\"\n";
    }
  }
  return out.str();
}

bool results_identical(const SimResult& a, const SimResult& b,
                       std::string* why) {
  auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (a.end_time_ns != b.end_time_ns) return fail("end_time_ns differs");
  if (a.events_processed != b.events_processed) {
    return fail("events_processed differs: " +
                std::to_string(a.events_processed) + " vs " +
                std::to_string(b.events_processed));
  }
  if (a.deadlock != b.deadlock) return fail("deadlock flag differs");
  if (a.deadlock_cycle != b.deadlock_cycle) {
    return fail("deadlock_cycle differs");
  }
  if (a.blocked_report != b.blocked_report) {
    return fail("blocked_report differs");
  }
  if (a.channels.size() != b.channels.size()) {
    return fail("channel count differs");
  }
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    const ChannelStats& ca = a.channels[i];
    const ChannelStats& cb = b.channels[i];
    if (ca.name != cb.name || ca.packets != cb.packets ||
        ca.blocked_ns != cb.blocked_ns ||
        ca.first_delivery_ns != cb.first_delivery_ns ||
        ca.last_delivery_ns != cb.last_delivery_ns) {
      return fail("channel stats differ at '" + ca.name + "'");
    }
  }
  if (a.top_outputs.size() != b.top_outputs.size()) {
    return fail("top_outputs port set differs");
  }
  for (const auto& [port, packets] : a.top_outputs) {
    auto it = b.top_outputs.find(port);
    if (it == b.top_outputs.end() || it->second.size() != packets.size()) {
      return fail("top output '" + port + "' differs in packet count");
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (packets[i].first != it->second[i].first ||
          packets[i].second.value != it->second[i].second.value ||
          packets[i].second.last != it->second[i].second.last) {
        return fail("top output '" + port + "' differs at packet " +
                    std::to_string(i));
      }
    }
  }
  if (a.trace.size() != b.trace.size()) return fail("trace length differs");
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const TraceEvent& ta = a.trace[i];
    const TraceEvent& tb = b.trace[i];
    if (ta.time_ns != tb.time_ns || ta.channel != tb.channel ||
        ta.channel_index != tb.channel_index ||
        ta.packet.value != tb.packet.value ||
        ta.packet.last != tb.packet.last ||
        ta.is_top_input != tb.is_top_input ||
        ta.is_top_output != tb.is_top_output || ta.top_port != tb.top_port) {
      return fail("trace differs at event " + std::to_string(i));
    }
  }
  if (a.state_transitions.size() != b.state_transitions.size()) {
    return fail("state transition count differs");
  }
  for (std::size_t i = 0; i < a.state_transitions.size(); ++i) {
    const StateTransition& sa = a.state_transitions[i];
    const StateTransition& sb = b.state_transitions[i];
    if (sa.time_ns != sb.time_ns || sa.component != sb.component ||
        sa.variable != sb.variable || sa.from != sb.from || sa.to != sb.to) {
      return fail("state transition differs at " + std::to_string(i));
    }
  }
  return true;
}

}  // namespace tydi::sim
