#include "src/sim/metrics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/support/text.hpp"

namespace tydi::sim {

std::vector<ChannelStats> rank_bottlenecks(const SimResult& result) {
  std::vector<ChannelStats> ranked = result.channels;
  // Name tie-break at equal blocked time: the ranking must be identical
  // across runs regardless of channel construction order.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ChannelStats& a, const ChannelStats& b) {
                     if (a.blocked_ns != b.blocked_ns) {
                       return a.blocked_ns > b.blocked_ns;
                     }
                     return a.name < b.name;
                   });
  return ranked;
}

std::vector<ChannelUtilization> channel_utilization(
    const SimResult& result, double clock_period_ns) {
  std::vector<ChannelUtilization> out;
  for (const ChannelStats& c : result.channels) {
    ChannelUtilization u;
    u.name = c.name;
    u.packets = c.packets;
    u.blocked_ns = c.blocked_ns;
    double window = c.last_delivery_ns - c.first_delivery_ns;
    if (c.packets > 1 && window > 0.0) {
      double busy = static_cast<double>(c.packets - 1) * clock_period_ns;
      u.utilization = std::min(1.0, busy / window);
    } else if (c.packets == 1) {
      u.utilization = 0.0;
    }
    out.push_back(std::move(u));
  }
  return out;
}

std::string render_bottleneck_report(const SimResult& result,
                                     std::size_t limit) {
  support::TextTable table;
  table.header({"channel", "packets", "blocked_ns"});
  std::size_t shown = 0;
  for (const ChannelStats& c : rank_bottlenecks(result)) {
    if (shown++ >= limit) break;
    table.row({c.name, std::to_string(c.packets),
               support::format_fixed(c.blocked_ns, 1)});
  }
  std::ostringstream out;
  out << "Bottleneck report (worst blocked channels first)\n"
      << table.render();
  if (result.deadlock) {
    out << "DEADLOCK detected";
    if (!result.deadlock_cycle.empty()) {
      out << "; wait-for cycle: "
          << support::join(result.deadlock_cycle, " -> ");
    }
    out << "\n";
    for (const std::string& line : result.blocked_report) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

std::string render_state_table(const SimResult& result) {
  std::map<std::string, std::vector<const StateTransition*>> by_component;
  for (const StateTransition& t : result.state_transitions) {
    by_component[t.component].push_back(&t);
  }
  std::ostringstream out;
  out << "State-transition table\n";
  for (const auto& [component, transitions] : by_component) {
    out << "  " << component << ":\n";
    for (const StateTransition* t : transitions) {
      out << "    " << support::format_fixed(t->time_ns, 1) << " ns: "
          << t->variable << ": \"" << t->from << "\" -> \"" << t->to
          << "\"\n";
    }
  }
  return out.str();
}

bool results_identical(const SimResult& a, const SimResult& b,
                       std::string* why) {
  auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (a.aborted != b.aborted) return fail("aborted flag differs");
  if (a.abort_reason != b.abort_reason) return fail("abort_reason differs");
  if (a.end_time_ns != b.end_time_ns) return fail("end_time_ns differs");
  if (a.events_processed != b.events_processed) {
    return fail("events_processed differs: " +
                std::to_string(a.events_processed) + " vs " +
                std::to_string(b.events_processed));
  }
  if (a.deadlock != b.deadlock) return fail("deadlock flag differs");
  if (a.deadlock_cycle != b.deadlock_cycle) {
    return fail("deadlock_cycle differs");
  }
  if (a.blocked_report != b.blocked_report) {
    return fail("blocked_report differs");
  }
  if (a.channels.size() != b.channels.size()) {
    return fail("channel count differs");
  }
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    const ChannelStats& ca = a.channels[i];
    const ChannelStats& cb = b.channels[i];
    if (ca.name != cb.name || ca.packets != cb.packets ||
        ca.blocked_ns != cb.blocked_ns ||
        ca.first_delivery_ns != cb.first_delivery_ns ||
        ca.last_delivery_ns != cb.last_delivery_ns ||
        ca.top_port != cb.top_port || ca.top_input != cb.top_input ||
        ca.top_output != cb.top_output) {
      return fail("channel stats differ at '" + ca.name + "'");
    }
  }
  if (a.component_events != b.component_events) {
    return fail("per-component event counts differ");
  }
  if (a.top_outputs.size() != b.top_outputs.size()) {
    return fail("top_outputs port set differs");
  }
  for (const auto& [port, packets] : a.top_outputs) {
    auto it = b.top_outputs.find(port);
    if (it == b.top_outputs.end() || it->second.size() != packets.size()) {
      return fail("top output '" + port + "' differs in packet count");
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (packets[i].first != it->second[i].first ||
          packets[i].second.value != it->second[i].second.value ||
          packets[i].second.last != it->second[i].second.last) {
        return fail("top output '" + port + "' differs at packet " +
                    std::to_string(i));
      }
    }
  }
  if (a.trace.size() != b.trace.size()) return fail("trace length differs");
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    // Column compare; name/boundary fields are per-channel and covered by
    // the ChannelStats comparison above.
    if (a.trace.time_ns(i) != b.trace.time_ns(i) ||
        a.trace.channel(i) != b.trace.channel(i) ||
        a.trace.value(i) != b.trace.value(i) ||
        a.trace.last(i) != b.trace.last(i)) {
      return fail("trace differs at event " + std::to_string(i));
    }
  }
  if (a.state_transitions.size() != b.state_transitions.size()) {
    return fail("state transition count differs");
  }
  for (std::size_t i = 0; i < a.state_transitions.size(); ++i) {
    const StateTransition& sa = a.state_transitions[i];
    const StateTransition& sb = b.state_transitions[i];
    if (sa.time_ns != sb.time_ns || sa.component != sb.component ||
        sa.variable != sb.variable || sa.from != sb.from || sa.to != sb.to) {
      return fail("state transition differs at " + std::to_string(i));
    }
  }
  return true;
}

bool results_functionally_equivalent(const SimResult& a, const SimResult& b,
                                     std::string* why) {
  auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (a.aborted != b.aborted) return fail("aborted flag differs");
  if (a.deadlock != b.deadlock) return fail("deadlock flag differs");

  // Per-channel delivered counts, keyed by name (channel construction order
  // is deterministic, but keying by name makes the diagnostic readable).
  if (a.channels.size() != b.channels.size()) {
    return fail("channel count differs");
  }
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    const ChannelStats& ca = a.channels[i];
    const ChannelStats& cb = b.channels[i];
    if (ca.name != cb.name) return fail("channel order differs");
    if (ca.packets != cb.packets) {
      return fail("delivered packet count differs at '" + ca.name + "': " +
                  std::to_string(ca.packets) + " vs " +
                  std::to_string(cb.packets));
    }
  }

  // Per-channel traced payload sequences: same packets in the same FIFO
  // order, whatever their timestamps.
  if (!a.trace.empty() && !b.trace.empty()) {
    if (a.trace.size() != b.trace.size()) {
      return fail("trace length differs");
    }
    std::vector<std::vector<std::size_t>> per_channel_a(a.channels.size());
    std::vector<std::vector<std::size_t>> per_channel_b(b.channels.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      per_channel_a[a.trace.channel(i)].push_back(i);
      per_channel_b[b.trace.channel(i)].push_back(i);
    }
    for (std::size_t ch = 0; ch < per_channel_a.size(); ++ch) {
      const auto& ia = per_channel_a[ch];
      const auto& ib = per_channel_b[ch];
      if (ia.size() != ib.size()) {
        return fail("traced packet count differs on '" +
                    a.channels[ch].name + "'");
      }
      for (std::size_t j = 0; j < ia.size(); ++j) {
        if (a.trace.value(ia[j]) != b.trace.value(ib[j]) ||
            a.trace.last(ia[j]) != b.trace.last(ib[j])) {
          return fail("traced payload differs on '" + a.channels[ch].name +
                      "' at packet " + std::to_string(j));
        }
      }
    }
  }

  // Top output payload sequences per port.
  if (a.top_outputs.size() != b.top_outputs.size()) {
    return fail("top_outputs port set differs");
  }
  for (const auto& [port, packets] : a.top_outputs) {
    auto it = b.top_outputs.find(port);
    if (it == b.top_outputs.end() || it->second.size() != packets.size()) {
      return fail("top output '" + port + "' differs in packet count");
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (packets[i].second.value != it->second[i].second.value ||
          packets[i].second.last != it->second[i].second.last) {
        return fail("top output '" + port + "' differs at packet " +
                    std::to_string(i));
      }
    }
  }

  // State-transition sequences grouped per component (cross-component
  // interleaving is timing, the per-component order is causality).
  auto group = [](const SimResult& r) {
    std::map<std::string, std::vector<const StateTransition*>> by_component;
    for (const StateTransition& t : r.state_transitions) {
      by_component[t.component].push_back(&t);
    }
    return by_component;
  };
  auto ga = group(a);
  auto gb = group(b);
  if (ga.size() != gb.size()) return fail("transitioning component sets differ");
  for (const auto& [component, seq] : ga) {
    auto it = gb.find(component);
    if (it == gb.end() || it->second.size() != seq.size()) {
      return fail("state transition count differs for '" + component + "'");
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i]->variable != it->second[i]->variable ||
          seq[i]->from != it->second[i]->from ||
          seq[i]->to != it->second[i]->to) {
        return fail("state transition sequence differs for '" + component +
                    "' at step " + std::to_string(i));
      }
    }
  }
  return true;
}

}  // namespace tydi::sim
